# Convenience targets; each is a thin wrapper over cargo.

.PHONY: build test lint bench bench-check bench-sched bench-defense bench-dos bench-fleet bench-fleet-mem check-conformance repro repro-quick

build:
	cargo build --release --workspace

test:
	cargo test --workspace

lint:
	sh scripts/lint.sh

bench:
	cargo bench -p h2priv-bench

bench-check:
	sh scripts/bench_check.sh

bench-sched:
	cargo bench -p h2priv-bench --bench sched

# The countermeasure arena: every defense vs. the adversary grid, with
# the conformance oracle attached (exit 2 on any violation). Use
# `--defense <name>` via `make repro` to evaluate a single defense.
bench-defense:
	cargo run --release -p h2priv-bench --bin repro -- defend --check

# The slow-DoS triad: every attack workload vs. the hardened server and
# the online detector, standalone and inside a contended fleet, plus the
# false-positive sweep — with the conformance oracle attached (the
# attacks are RFC-legal, so the oracle must stay green).
bench-dos:
	cargo run --release -p h2priv-bench --bin repro -- dos --check

# The population-scale exhibit at fleet size: 10k client-server pairs
# sharded over 8 engines. Byte-identical at any --threads.
bench-fleet:
	cargo run --release -p h2priv-bench --bin repro -- fleet --population 10000 --shards 8

# Memory telemetry at fleet size: the counting allocator reports
# peak_alloc_bytes and bytes per co-resident pair on stderr ([timing]
# lines) and in the JSON. bench-check gates the fleet entry's
# bytes_per_pair against BENCH_repro.json (>20% growth fails).
bench-fleet-mem:
	cargo run --release -p h2priv-bench --bin repro -- fleet --population 10000 --shards 8 --bench-json=/dev/stdout

check-conformance:
	cargo run --release -p h2priv-bench --bin repro -- --quick --check

repro:
	cargo run --release -p h2priv-bench --bin repro

repro-quick:
	cargo run --release -p h2priv-bench --bin repro -- --quick --bench-json
