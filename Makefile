# Convenience targets; each is a thin wrapper over cargo.

.PHONY: build test lint bench repro repro-quick

build:
	cargo build --release --workspace

test:
	cargo test --workspace

lint:
	sh scripts/lint.sh

bench:
	cargo bench -p h2priv-bench

repro:
	cargo run --release -p h2priv-bench --bin repro

repro-quick:
	cargo run --release -p h2priv-bench --bin repro -- --quick --bench-json
