# Convenience targets; each is a thin wrapper over cargo.

.PHONY: build test lint bench bench-check check-conformance repro repro-quick

build:
	cargo build --release --workspace

test:
	cargo test --workspace

lint:
	sh scripts/lint.sh

bench:
	cargo bench -p h2priv-bench

bench-check:
	sh scripts/bench_check.sh

check-conformance:
	cargo run --release -p h2priv-bench --bin repro -- --quick --check

repro:
	cargo run --release -p h2priv-bench --bin repro

repro-quick:
	cargo run --release -p h2priv-bench --bin repro -- --quick --bench-json
