# Convenience targets; each is a thin wrapper over cargo.

.PHONY: build test lint bench bench-check bench-sched bench-defense bench-dos bench-fleet bench-fleet-mem bench-fleet-1m bench-scaleout check-conformance repro repro-quick

build:
	cargo build --release --workspace

test:
	cargo test --workspace

lint:
	sh scripts/lint.sh

bench:
	cargo bench -p h2priv-bench

bench-check:
	sh scripts/bench_check.sh

bench-sched:
	cargo bench -p h2priv-bench --bench sched

# The countermeasure arena: every defense vs. the adversary grid, with
# the conformance oracle attached (exit 2 on any violation). Use
# `--defense <name>` via `make repro` to evaluate a single defense.
bench-defense:
	cargo run --release -p h2priv-bench --bin repro -- defend --check

# The slow-DoS triad: every attack workload vs. the hardened server and
# the online detector, standalone and inside a contended fleet, plus the
# false-positive sweep — with the conformance oracle attached (the
# attacks are RFC-legal, so the oracle must stay green).
bench-dos:
	cargo run --release -p h2priv-bench --bin repro -- dos --check

# The population-scale exhibit at fleet size: 10k client-server pairs
# sharded over 8 engines. Byte-identical at any --threads.
bench-fleet:
	cargo run --release -p h2priv-bench --bin repro -- fleet --population 10000 --shards 8

# Memory telemetry at fleet size: the counting allocator reports
# peak_alloc_bytes and bytes per co-resident pair on stderr ([timing]
# lines) and in the JSON. bench-check gates the fleet entry's
# bytes_per_pair against BENCH_repro.json (>20% growth fails).
bench-fleet-mem:
	cargo run --release -p h2priv-bench --bin repro -- fleet --population 10000 --shards 8 --bench-json=/dev/stdout

# The million-pair sitting: cohort-streamed shards admit each pair at
# its staggered start time and retire it (returning its slab slot and
# buffers) the moment its page load settles, so peak memory tracks the
# number of co-resident pairs — set by --spread — instead of the
# population. --progress prints a pairs/events/ETA heartbeat on stderr
# every ~2s; stdout stays byte-identical to an unstreamed run of the
# same spread. Expect a few hours on one core; scale --threads to taste.
bench-fleet-1m:
	cargo run --release -p h2priv-bench --bin repro -- fleet --population 1000000 --shards 64 --cohort 512 --spread 14400 --progress --bench-json=BENCH_fleet_1m.json

# Parallel-efficiency curve: re-runs the baseline fleet population at
# --threads 1/2/4/8 and reports aggregate ev/s, ev/s per core, and
# efficiency vs. the 1-thread point. Outcome rows are asserted identical
# across thread counts before any rate is reported.
bench-scaleout:
	cargo run --release -p h2priv-bench --bin repro -- scaleout --population 2000 --shards 8

check-conformance:
	cargo run --release -p h2priv-bench --bin repro -- --quick --check

repro:
	cargo run --release -p h2priv-bench --bin repro

repro-quick:
	cargo run --release -p h2priv-bench --bin repro -- --quick --bench-json
