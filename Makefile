# Convenience targets; each is a thin wrapper over cargo.

.PHONY: build test lint bench bench-check bench-sched check-conformance repro repro-quick

build:
	cargo build --release --workspace

test:
	cargo test --workspace

lint:
	sh scripts/lint.sh

bench:
	cargo bench -p h2priv-bench

bench-check:
	sh scripts/bench_check.sh

bench-sched:
	cargo bench -p h2priv-bench --bench sched

check-conformance:
	cargo run --release -p h2priv-bench --bin repro -- --quick --check

repro:
	cargo run --release -p h2priv-bench --bin repro

repro-quick:
	cargo run --release -p h2priv-bench --bin repro -- --quick --bench-json
