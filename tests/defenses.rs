//! Cross-crate integration of the defenses: server-side padding (related
//! work's countermeasure, refs \[17\]–\[21\]) must defeat the size-map
//! predictor without breaking page delivery, while the §VII request-order
//! randomization must destroy the ranking signal but not identification.

use h2priv::attack::experiment::{
    analyze_trial, calibrate_size_map, objects_of_interest, run_paper_trial,
};
use h2priv::attack::AttackConfig;

const BUCKET: usize = 8_192;

#[test]
fn padding_defeats_the_calibrated_size_map() {
    let (iw, _) = h2priv::attack::experiment::paper_scenario(0);
    let objects = objects_of_interest(&iw);
    let map = calibrate_size_map(&objects);
    let attack = AttackConfig::paper_attack();
    let mut html_successes = 0;
    let mut defended_total = 0;
    let mut undefended_total = 0;
    for seed in 0..3 {
        let trial = run_paper_trial(seed, Some(&attack), |cfg| {
            cfg.server.pad_bucket = Some(BUCKET);
        });
        trial.result.assert_conformant();
        assert!(!trial.result.broken, "seed {seed}: padding broke the page");
        let start = trial
            .adversary
            .as_ref()
            .and_then(|a| a.analysis_start(&attack));
        let analysis = analyze_trial(&trial, &map, &objects, start);
        html_successes += usize::from(analysis.objects[0].success);
        defended_total += analysis.objects.iter().filter(|o| o.success).count();

        let baseline = run_paper_trial(seed, Some(&attack), |_| {});
        baseline.result.assert_conformant();
        let start = baseline
            .adversary
            .as_ref()
            .and_then(|a| a.analysis_start(&attack));
        let analysis = analyze_trial(&baseline, &map, &objects, start);
        undefended_total += analysis.objects.iter().filter(|o| o.success).count();
    }
    assert_eq!(
        html_successes, 0,
        "the padded HTML must not match its unpadded signature"
    );
    // Padded image bursts can still *alias* other objects' signatures when
    // a bucket multiple falls inside the match tolerance (a misattribution,
    // not a leak — the matched identity is wrong), so the per-image success
    // count drops without necessarily reaching zero.
    assert!(
        defended_total * 2 <= undefended_total,
        "defense too weak: {defended_total} vs undefended {undefended_total}"
    );
}

#[test]
fn padding_grows_delivered_bytes_to_bucket_multiples() {
    let trial = run_paper_trial(7, None, |cfg| {
        cfg.server.pad_bucket = Some(BUCKET);
    });
    assert!(!trial.result.broken);
    for outcome in &trial.result.outcomes {
        assert!(!outcome.failed, "{:?} failed under padding", outcome.object);
        let body = trial.iw.site.object(outcome.object).unwrap().size as u64;
        assert!(outcome.bytes >= body, "{:?} shrank", outcome.object);
        assert_eq!(
            outcome.bytes % BUCKET as u64,
            0,
            "{:?}: {} not a bucket multiple",
            outcome.object,
            outcome.bytes
        );
    }
}

#[test]
fn padding_does_not_prevent_serialization_itself() {
    // The defense works by destroying *identifiability*, not by preventing
    // the adversary from serializing: degree-0 transmissions still occur.
    let attack = AttackConfig::paper_attack();
    let trial = run_paper_trial(1, Some(&attack), |cfg| {
        cfg.server.pad_bucket = Some(BUCKET);
    });
    let serialized = trial
        .iw
        .images
        .iter()
        .filter(|&&img| trial.result.truth.min_degree_for(img) == Some(0.0))
        .count();
    assert!(
        serialized >= 4,
        "only {serialized}/8 emblems serialized under padding"
    );
}

#[test]
fn small_bucket_padding_is_cheap() {
    // The 2 KiB bucket defeats the 400-byte matching tolerance at under
    // five percent bandwidth overhead (EXPERIMENTS.md records ≈ 1.9 %).
    let (iw, _) = h2priv::attack::experiment::paper_scenario(0);
    let bucket = 2_048usize;
    let raw: u64 = iw.site.total_bytes();
    let padded: u64 = iw
        .site
        .objects()
        .iter()
        .map(|o| (o.size.div_ceil(bucket) * bucket) as u64)
        .sum();
    let overhead = padded as f64 / raw as f64 - 1.0;
    assert!(
        overhead > 0.0 && overhead < 0.05,
        "overhead {:.1} % out of band",
        overhead * 100.0
    );
}

#[test]
fn order_randomization_kills_the_ranking_but_not_identification() {
    // Modeled as in examples/defense_reordering.rs: the defended page
    // requests emblems in an order independent of the displayed ranking,
    // so we score a different user's transmission order against this
    // user's golden order.
    let (iw, _) = h2priv::attack::experiment::paper_scenario(0);
    let objects = objects_of_interest(&iw);
    let map = calibrate_size_map(&objects);
    let attack = AttackConfig::paper_attack();
    let trials = 4u64;
    let mut rank_hits = 0usize;
    let mut idents = 0usize;
    for seed in 0..trials {
        let trial = run_paper_trial(seed + 50_000, Some(&attack), |_| {});
        let start = trial
            .adversary
            .as_ref()
            .and_then(|a| a.analysis_start(&attack));
        let analysis = analyze_trial(&trial, &map, &objects, start);
        // The *displayed* ranking belongs to the decoupled user `seed`.
        let golden =
            h2priv::netsim::SimRng::seed_from(seed.wrapping_mul(0x9E37_79B9).wrapping_add(7))
                .permutation(8);
        rank_hits += (0..8)
            .filter(|&r| analysis.predicted_parties.get(r) == golden.get(r))
            .count();
        idents += (1..9).filter(|&i| analysis.objects[i].identified).count();
    }
    let total_ranks = (trials * 8) as usize;
    // Chance level is 1/8 = 12.5 %; allow a generous band.
    assert!(
        rank_hits * 100 / total_ranks <= 40,
        "defense leaked the ranking: {rank_hits}/{total_ranks}"
    );
    // Identification is untouched — the sizes still match.
    assert!(
        idents * 100 / total_ranks >= 75,
        "identification collapsed: {idents}/{total_ranks}"
    );
}
