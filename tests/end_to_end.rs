//! Cross-crate integration: a complete unattacked page load through the
//! full stack (browser → HTTP/2 → TLS → TCP → simulated network → server)
//! delivers every object, intact, with sensible traces and annotations.

use h2priv::attack::experiment::{paper_scenario, run_paper_trial};
use h2priv::netsim::{Dir, StopReason};

#[test]
fn baseline_page_load_completes_everything() {
    let trial = run_paper_trial(3, None, |_| {});
    trial.result.assert_conformant();
    assert!(!trial.result.broken, "baseline must not break");
    assert!(matches!(
        trial.result.stop,
        StopReason::Halted | StopReason::Quiescent
    ));
    // 5 survey objects + HTML + 47 embedded.
    assert_eq!(trial.result.outcomes.len(), 53);
    for outcome in &trial.result.outcomes {
        assert!(!outcome.failed, "{:?} failed", outcome.object);
        let expected = trial.iw.site.object(outcome.object).unwrap().size as u64;
        assert_eq!(
            outcome.bytes, expected,
            "{:?} delivered wrong byte count",
            outcome.object
        );
    }
}

#[test]
fn baseline_traffic_flows_in_both_directions() {
    let trial = run_paper_trial(4, None, |_| {});
    trial.result.assert_conformant();
    let c2s = trial.result.trace.bytes_in_dir(Dir::LeftToRight);
    let s2c = trial.result.trace.bytes_in_dir(Dir::RightToLeft);
    // The page is ≈ 2.7 MB of response data; requests are small.
    assert!(s2c > 2_000_000, "s2c bytes = {s2c}");
    assert!(c2s > 10_000 && c2s < s2c / 10, "c2s bytes = {c2s}");
}

#[test]
fn ground_truth_covers_every_object() {
    let trial = run_paper_trial(5, None, |_| {});
    trial.result.assert_conformant();
    for object in trial.iw.site.objects() {
        let instances = trial.result.truth.instances_of(object.id);
        assert!(
            !instances.is_empty(),
            "{} has no ground-truth instances",
            object.path
        );
        let complete = instances.iter().any(|&i| trial.result.truth.is_complete(i));
        assert!(complete, "{} never completed", object.path);
        // Annotated bytes cover at least the body (frames add overhead).
        let best: u64 = instances
            .iter()
            .map(|&i| trial.result.truth.instance_bytes(i))
            .max()
            .unwrap();
        assert!(
            best >= object.size as u64,
            "{}: {} annotated < {} body",
            object.path,
            best,
            object.size
        );
    }
}

#[test]
fn html_request_is_the_sixth_get() {
    let (iw, _) = paper_scenario(0);
    assert_eq!(iw.plan.request_index(iw.html), Some(5));
}

#[test]
fn determinism_same_seed_identical_outcome() {
    let a = run_paper_trial(11, None, |_| {});
    let b = run_paper_trial(11, None, |_| {});
    assert_eq!(a.result.trace.len(), b.result.trace.len());
    assert_eq!(a.result.client_tcp, b.result.client_tcp);
    assert_eq!(a.result.server_tcp, b.result.server_tcp);
    let times_a: Vec<_> = a.result.outcomes.iter().map(|o| o.completed_at).collect();
    let times_b: Vec<_> = b.result.outcomes.iter().map(|o| o.completed_at).collect();
    assert_eq!(times_a, times_b);
}

#[test]
fn different_seeds_differ() {
    let a = run_paper_trial(1, None, |_| {});
    let b = run_paper_trial(2, None, |_| {});
    let t_a: Vec<_> = a.result.outcomes.iter().map(|o| o.completed_at).collect();
    let t_b: Vec<_> = b.result.outcomes.iter().map(|o| o.completed_at).collect();
    assert_ne!(t_a, t_b);
}
