//! Property harness for the conformance oracle: a deterministic sweep of
//! adversary schedules (request jitter × bandwidth throttle × packet
//! drops) over seeded page loads, asserting that no combination drives
//! any protocol layer out of conformance.
//!
//! This is the oracle's adversarial workout: drops force RTO and fast
//! retransmit, throttles force cwnd contraction and flow-control stalls,
//! jitter shifts every race — and TCP/TLS/HTTP/2 must hold their RFC
//! invariants through all of it. Everything derives from the trial seed,
//! so a failure here reproduces exactly.

use h2priv::attack::experiment::run_paper_trial;
use h2priv::attack::AttackConfig;
use h2priv::netsim::{mbps, SimDuration};

/// One schedule of the sweep grid.
fn schedule(
    jitter_ms: Option<u64>,
    throttle_mbps: Option<u64>,
    drop_per_mille: u16,
) -> AttackConfig {
    let mut attack = AttackConfig::paper_attack();
    attack.initial_spacing = jitter_ms.map(SimDuration::from_millis);
    attack.throttle = throttle_mbps.map(mbps);
    attack.drop_rate_per_mille = drop_per_mille;
    if drop_per_mille == 0 {
        attack.drop_duration = SimDuration::ZERO;
    }
    attack
}

#[test]
fn adversary_schedule_sweep_stays_conformant() {
    let jitters = [None, Some(30), Some(80)];
    let throttles = [None, Some(400)];
    let drops = [0u16, 400, 800];
    for &jitter in &jitters {
        for &throttle in &throttles {
            for &drop in &drops {
                let attack = schedule(jitter, throttle, drop);
                for seed in 0..2u64 {
                    let trial = run_paper_trial(seed, Some(&attack), |_| {});
                    assert!(
                        trial.result.violations_total == 0,
                        "jitter {jitter:?} throttle {throttle:?} drop {drop}‰ seed {seed}: \
                         {} violation(s), first: {}",
                        trial.result.violations_total,
                        trial
                            .result
                            .violations
                            .first()
                            .map(|v| v.to_string())
                            .unwrap_or_default()
                    );
                }
            }
        }
    }
}

#[test]
fn harsh_loss_schedule_stays_conformant() {
    // Long, heavy drop window without the reset cue: the connection lives
    // through repeated RTO backoff cycles — the regime where Karn's rule
    // and the backoff-persistence fix actually bite.
    let mut attack = schedule(Some(50), Some(200), 900);
    attack.stop_drops_on_reset_get = false;
    attack.drop_duration = SimDuration::from_secs(10);
    for seed in 0..3u64 {
        let trial = run_paper_trial(seed, Some(&attack), |_| {});
        assert!(
            trial.result.violations_total == 0,
            "seed {seed}: {} violation(s), first: {}",
            trial.result.violations_total,
            trial
                .result
                .violations
                .first()
                .map(|v| v.to_string())
                .unwrap_or_default()
        );
    }
}
