//! Cross-crate integration of the eavesdropper's pipeline: the passive
//! observer's reconstruction must agree with ground truth exactly where the
//! paper says it can — and must fail where multiplexing protects the page.

use h2priv::analysis::{app_data_records, extract_records, segment_bursts};
use h2priv::attack::experiment::{
    calibrate_size_map, objects_of_interest, run_paper_trial, BURST_GAP,
};
use h2priv::attack::{identify_bursts, AttackConfig};
use h2priv::netsim::Dir;
use h2priv::tls::ContentType;

#[test]
fn observer_reconstructs_records_without_keys() {
    let trial = run_paper_trial(1, None, |_| {});
    trial.result.assert_conformant();
    let records = extract_records(&trial.result.trace);
    assert!(!records.is_empty());
    // Handshake records precede application data in each direction.
    let first_app = records
        .iter()
        .position(|r| r.content_type == ContentType::ApplicationData)
        .expect("app data present");
    let first_hs = records
        .iter()
        .position(|r| r.content_type == ContentType::Handshake)
        .expect("handshake present");
    assert!(first_hs < first_app);
    // Total reconstructed s2c application plaintext must cover the site's
    // response bytes (body + frame overhead).
    let s2c_plain: usize = app_data_records(&records, Dir::RightToLeft)
        .iter()
        .map(|r| r.plaintext_len())
        .sum();
    assert!(
        s2c_plain as u64 >= trial.iw.site.total_bytes(),
        "{s2c_plain} < site bytes"
    );
}

#[test]
fn calibrated_sizes_are_stable_and_distinct() {
    let (iw, _) = h2priv::attack::experiment::paper_scenario(0);
    let objects = objects_of_interest(&iw);
    let map_a = calibrate_size_map(&objects);
    let map_b = calibrate_size_map(&objects);
    for &o in &objects {
        let a = map_a.expected(o).expect("calibrated");
        let b = map_b.expected(o).expect("calibrated");
        assert_eq!(a, b, "calibration must be deterministic");
        // The estimate sits just above the body size (frame overhead).
        let body = iw.site.object(o).unwrap().size as u64;
        assert!(
            a >= body && a < body + body / 10 + 200,
            "{o}: {a} vs {body}"
        );
    }
    // All nine sizes resolve uniquely at the calibrated tolerance.
    for &o in &objects {
        let expected = map_a.expected(o).unwrap();
        assert_eq!(map_a.match_size(expected), Some(o));
    }
}

#[test]
fn multiplexed_baseline_defeats_identification_of_the_html() {
    let (iw0, _) = h2priv::attack::experiment::paper_scenario(0);
    let objects = objects_of_interest(&iw0);
    let map = calibrate_size_map(&objects);
    let mut identified = 0;
    let mut multiplexed_trials = 0;
    for seed in 0..6 {
        let trial = run_paper_trial(seed, None, |_| {});
        if trial.result.truth.min_degree_for(trial.iw.html) == Some(0.0) {
            continue; // naturally clean trial: identification is fair game
        }
        multiplexed_trials += 1;
        let records = extract_records(&trial.result.trace);
        let data = app_data_records(&records, Dir::RightToLeft);
        let bursts = segment_bursts(&data, BURST_GAP);
        let idents = identify_bursts(&map, &bursts);
        if idents.iter().any(|i| i.object == trial.iw.html) {
            identified += 1;
        }
    }
    assert!(multiplexed_trials > 0, "expected some multiplexed trials");
    assert!(
        identified <= multiplexed_trials / 2,
        "multiplexing should hide the HTML: {identified}/{multiplexed_trials} identified"
    );
}

#[test]
fn degree_zero_objects_are_identifiable_under_attack() {
    let (iw0, _) = h2priv::attack::experiment::paper_scenario(0);
    let objects = objects_of_interest(&iw0);
    let map = calibrate_size_map(&objects);
    let attack = AttackConfig::paper_attack();
    let trial = run_paper_trial(0, Some(&attack), |_| {});
    trial.result.assert_conformant();
    let start = trial
        .adversary
        .as_ref()
        .and_then(|a| a.analysis_start(&attack))
        .unwrap();
    let records = extract_records(&trial.result.trace);
    let mut data = app_data_records(&records, Dir::RightToLeft);
    data.retain(|r| r.time >= start);
    let bursts = segment_bursts(&data, BURST_GAP);
    let idents = identify_bursts(&map, &bursts);
    for &img in &trial.iw.images {
        if trial.result.truth.min_degree_for(img) == Some(0.0) {
            assert!(
                idents.iter().any(|i| i.object == img),
                "degree-0 image {img} should be identified"
            );
        }
    }
}

#[test]
fn observer_counts_match_tap_counts() {
    // Sanity link between layers: every record the observer reconstructs
    // fits inside the bytes the tap captured.
    let trial = run_paper_trial(2, None, |_| {});
    let records = extract_records(&trial.result.trace);
    let recon: usize = records.iter().map(|r| r.wire_len).sum();
    let captured: u64 = trial.result.trace.bytes_in_dir(Dir::LeftToRight)
        + trial.result.trace.bytes_in_dir(Dir::RightToLeft);
    assert!(
        (recon as u64) < captured,
        "reconstructed {recon} exceeds captured {captured}"
    );
}
