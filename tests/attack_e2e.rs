//! Cross-crate integration: the full §V attack run end-to-end, scored
//! against the paper's success criterion.

use h2priv::attack::experiment::{
    analyze_trial, calibrate_size_map, objects_of_interest, run_paper_trial,
};
use h2priv::attack::{AttackConfig, AttackPhase};

fn map() -> h2priv::attack::SizeMap {
    let (iw, _) = h2priv::attack::experiment::paper_scenario(0);
    calibrate_size_map(&objects_of_interest(&iw))
}

#[test]
fn paper_attack_recovers_the_survey_result() {
    let map = map();
    let attack = AttackConfig::paper_attack();
    let trials = 8;
    let mut html_ok = 0;
    let mut sequences_ok = 0;
    for seed in 0..trials {
        let trial = run_paper_trial(seed, Some(&attack), |_| {});
        trial.result.assert_conformant();
        let start = trial
            .adversary
            .as_ref()
            .and_then(|a| a.analysis_start(&attack));
        let objects = objects_of_interest(&trial.iw);
        let analysis = analyze_trial(&trial, &map, &objects, start);
        assert!(!analysis.broken, "seed {seed} broke the connection");
        if analysis.objects[0].success {
            html_ok += 1;
        }
        if analysis.full_sequence_correct {
            sequences_ok += 1;
        }
    }
    // The paper reports ≈ 90 % for the HTML; our cleaner adversary should
    // clear a conservative majority bar on any seed set.
    assert!(html_ok * 100 / trials >= 75, "html {html_ok}/{trials}");
    assert!(
        sequences_ok * 100 / trials >= 75,
        "sequences {sequences_ok}/{trials}"
    );
}

#[test]
fn attack_phases_progress_in_order() {
    let attack = AttackConfig::paper_attack();
    let trial = run_paper_trial(1, Some(&attack), |_| {});
    trial.result.assert_conformant();
    let snapshot = trial.adversary.expect("adversary installed");
    let phases: Vec<AttackPhase> = snapshot.phase_log.iter().map(|&(_, p)| p).collect();
    assert_eq!(
        phases,
        vec![
            AttackPhase::Observing,
            AttackPhase::Disrupting,
            AttackPhase::Serializing
        ]
    );
    // Timestamps strictly increase across transitions.
    let times: Vec<_> = snapshot.phase_log.iter().map(|&(t, _)| t).collect();
    assert!(times[0] < times[1] && times[1] < times[2]);
    // The trigger fired on the 6th GET (the HTML).
    assert!(snapshot.gets_seen >= 6);
    let t6 = snapshot
        .phase_log
        .iter()
        .find(|(_, p)| *p == AttackPhase::Disrupting)
        .map(|&(t, _)| t)
        .unwrap();
    // The HTML request was issued just before the trigger observed it.
    let html_issue = trial.result.outcomes[5].issued_at[0];
    assert!(html_issue <= t6);
}

#[test]
fn attack_forces_the_stream_reset() {
    let attack = AttackConfig::paper_attack();
    let mut resets = 0;
    for seed in 0..5 {
        let trial = run_paper_trial(seed, Some(&attack), |_| {});
        trial.result.assert_conformant();
        if trial.result.outcomes[5].resets_sent > 0 {
            resets += 1;
        }
    }
    assert!(resets >= 4, "HTML stream reset in only {resets}/5 trials");
}

#[test]
fn attack_without_drops_does_not_reset() {
    let mut attack = AttackConfig::paper_attack();
    attack.drop_rate_per_mille = 0;
    attack.drop_duration = h2priv::netsim::SimDuration::ZERO;
    let trial = run_paper_trial(2, Some(&attack), |_| {});
    assert_eq!(trial.result.outcomes[5].resets_sent, 0);
}

#[test]
fn jitter_only_leaves_connection_alive() {
    let attack = AttackConfig::jitter_only(h2priv::netsim::SimDuration::from_millis(50));
    for seed in 0..5 {
        let trial = run_paper_trial(seed, Some(&attack), |_| {});
        trial.result.assert_conformant();
        assert!(!trial.result.broken, "seed {seed} broke");
        assert!(
            trial.result.outcomes.iter().all(|o| !o.failed),
            "seed {seed} lost objects"
        );
    }
}

#[test]
fn adversary_spaces_requests_at_the_server() {
    // Under the full attack, consecutive emblem-image requests must reach
    // the server roughly post_spacing apart — visible as serialized
    // completion times roughly post_spacing apart as well.
    let attack = AttackConfig::paper_attack();
    let trial = run_paper_trial(0, Some(&attack), |_| {});
    let mut completions: Vec<u64> = trial
        .iw
        .images
        .iter()
        .filter_map(|&img| {
            trial
                .result
                .outcomes
                .iter()
                .find(|o| o.object == img)
                .and_then(|o| o.completed_at)
                .map(|t| t.as_millis())
        })
        .collect();
    completions.sort_unstable();
    assert_eq!(completions.len(), 8);
    let gaps: Vec<u64> = completions.windows(2).map(|w| w[1] - w[0]).collect();
    let mean_gap = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
    assert!(
        (50.0..=140.0).contains(&mean_gap),
        "mean completion gap {mean_gap} ms should straddle the 80 ms spacing"
    );
}
