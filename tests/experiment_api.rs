//! Integration tests of the experiment API surface that the benches and
//! examples build on.

use h2priv::attack::experiment::{
    analyze_trial, calibrate_size_map, objects_of_interest, paper_scenario, run_paper_trial,
};
use h2priv::attack::{AttackConfig, AttackPhase};

#[test]
fn paper_scenario_derives_golden_from_seed() {
    let (a1, _) = paper_scenario(9);
    let (a2, _) = paper_scenario(9);
    let (b, _) = paper_scenario(10);
    assert_eq!(a1.golden_order, a2.golden_order);
    assert_ne!(a1.golden_order, b.golden_order);
    // Always a permutation of 0..8.
    let mut sorted = b.golden_order.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..8).collect::<Vec<_>>());
}

#[test]
fn objects_of_interest_is_html_plus_images() {
    let (iw, _) = paper_scenario(0);
    let objects = objects_of_interest(&iw);
    assert_eq!(objects.len(), 9);
    assert_eq!(objects[0], iw.html);
    assert_eq!(&objects[1..], &iw.images[..]);
}

#[test]
fn analysis_start_prefers_gate_release() {
    let attack = AttackConfig::paper_attack();
    let trial = run_paper_trial(0, Some(&attack), |_| {});
    let snap = trial.adversary.as_ref().unwrap();
    assert!(snap.gate_released_at.is_some(), "gate should have released");
    assert_eq!(snap.analysis_start(&attack), snap.gate_released_at);
    // The gate releases after serialization begins.
    assert!(snap.gate_released_at.unwrap() >= snap.serialize_start.unwrap());
}

#[test]
fn jitter_only_snapshot_has_no_disruption() {
    let attack = AttackConfig::jitter_only(h2priv::netsim::SimDuration::from_millis(50));
    let trial = run_paper_trial(0, Some(&attack), |_| {});
    let snap = trial.adversary.as_ref().unwrap();
    assert!(snap.drop_window_end.is_none());
    assert!(snap
        .phase_log
        .iter()
        .all(|(_, p)| *p == AttackPhase::Observing));
    assert!(snap.controller.dropped == 0);
    assert!(snap.controller.gets_spaced > 0);
}

#[test]
fn tweak_closure_reaches_the_scenario() {
    // Shrinking the trial deadline must cut the run short.
    let trial = run_paper_trial(0, None, |cfg| {
        cfg.deadline = h2priv::netsim::SimDuration::from_millis(700);
    });
    assert!(trial
        .result
        .outcomes
        .iter()
        .any(|o| o.completed_at.is_none()));
}

#[test]
fn analyze_trial_scores_against_any_object_set() {
    let (iw0, _) = paper_scenario(0);
    let objects = objects_of_interest(&iw0);
    let map = calibrate_size_map(&objects);
    let trial = run_paper_trial(0, None, |_| {});
    // Score only the HTML.
    let analysis = analyze_trial(&trial, &map, &objects[..1], None);
    assert_eq!(analysis.objects.len(), 1);
    // Rank vectors still come back sized 8.
    assert_eq!(analysis.rank_correct.len(), 8);
}
