//! # h2priv — facade crate
//!
//! Re-exports the whole `h2priv` workspace: the reproduction of
//! *"Depending on HTTP/2 for Privacy? Good Luck!"* (DSN 2020).
//!
//! See the workspace `README.md` for an architecture overview, `DESIGN.md`
//! for the system inventory and `EXPERIMENTS.md` for paper-vs-measured
//! results. Runnable examples live under `examples/`.

#![warn(missing_docs)]

pub use h2priv_analysis as analysis;
pub use h2priv_core as attack;
pub use h2priv_http2 as http2;
pub use h2priv_netsim as netsim;
pub use h2priv_tcp as tcp;
pub use h2priv_testkit as testkit;
pub use h2priv_tls as tls;
pub use h2priv_web as web;
