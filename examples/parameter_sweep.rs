//! Explore the attack's parameter space: how much jitter does it take to
//! de-multiplex the target, and what does it cost in retransmissions?
//! (A miniature, configurable version of the Table I / Fig. 5 benches.)
//!
//! ```text
//! cargo run --release --example parameter_sweep -- [trials]
//! ```

use h2priv::attack::experiment::run_paper_trial;
use h2priv::attack::AttackConfig;
use h2priv::netsim::SimDuration;

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);

    println!("jitter sweep ({trials} page loads per point)\n");
    println!(
        "{:>11} {:>12} {:>16} {:>9}",
        "jitter(ms)", "non-mux(%)", "retransmissions", "broken(%)"
    );
    for jitter_ms in [0u64, 10, 25, 50, 100, 200] {
        let attack = if jitter_ms == 0 {
            None
        } else {
            Some(AttackConfig::jitter_only(SimDuration::from_millis(
                jitter_ms,
            )))
        };
        let mut non_mux = 0u64;
        let mut rexmit = 0u64;
        let mut broken = 0u64;
        for seed in 0..trials {
            let trial = run_paper_trial(seed, attack.as_ref(), |_| {});
            if trial.result.truth.min_degree_for(trial.iw.html) == Some(0.0) {
                non_mux += 1;
            }
            rexmit += trial.result.total_retransmissions();
            if trial.result.broken {
                broken += 1;
            }
        }
        println!(
            "{:>11} {:>12.0} {:>16} {:>9.0}",
            jitter_ms,
            non_mux as f64 * 100.0 / trials as f64,
            rexmit,
            broken as f64 * 100.0 / trials as f64,
        );
    }
    println!("\n(the result HTML de-multiplexes more often as per-request jitter grows,");
    println!(" at the price of a growing retransmission storm — the paper's Table I)");
}
