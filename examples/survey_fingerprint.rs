//! The paper's headline scenario at scale: "volunteers" take the survey,
//! the gateway adversary watches, and we report how often each volunteer's
//! political ranking was recovered from encrypted traffic alone.
//!
//! ```text
//! cargo run --release --example survey_fingerprint -- [volunteers]
//! ```

use h2priv::attack::experiment::{
    analyze_trial, calibrate_size_map, objects_of_interest, run_paper_trial,
};
use h2priv::attack::AttackConfig;
use h2priv::web::isidewith::PARTY_NAMES;

fn main() {
    let volunteers: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);

    let (iw, _) = h2priv::attack::experiment::paper_scenario(0);
    let objects = objects_of_interest(&iw);
    let map = calibrate_size_map(&objects);
    let attack = AttackConfig::paper_attack();

    let mut full_recoveries = 0u64;
    let mut rank_hits = [0u64; 8];
    for volunteer in 0..volunteers {
        let trial = run_paper_trial(volunteer, Some(&attack), |_| {});
        let start = trial
            .adversary
            .as_ref()
            .and_then(|a| a.analysis_start(&attack));
        let analysis = analyze_trial(&trial, &map, &objects, start);
        for (rank, &ok) in analysis.rank_correct.iter().enumerate() {
            if ok {
                rank_hits[rank] += 1;
            }
        }
        if analysis.full_sequence_correct {
            full_recoveries += 1;
        }
        if volunteer < 5 {
            let golden: Vec<&str> = trial
                .iw
                .golden_order
                .iter()
                .map(|&p| PARTY_NAMES[p])
                .collect();
            let predicted: Vec<&str> = analysis
                .predicted_parties
                .iter()
                .map(|&p| PARTY_NAMES[p])
                .collect();
            println!("volunteer {volunteer:>2}:");
            println!("  actual leaning    {golden:?}");
            println!("  adversary's guess {predicted:?}");
        }
    }
    println!(
        "\nfull ranking recovered for {full_recoveries}/{volunteers} volunteers ({:.0} %)",
        full_recoveries as f64 * 100.0 / volunteers as f64
    );
    println!("per-rank accuracy:");
    for (rank, hits) in rank_hits.iter().enumerate() {
        println!(
            "  choice #{}: {:>3.0} %",
            rank + 1,
            *hits as f64 * 100.0 / volunteers as f64
        );
    }
}
