//! The paper's §VII defense sketch, evaluated: "the client can opt for a
//! different priority/order of object delivery every time, thereby
//! confusing the adversary."
//!
//! The defense decouples the *request order* of the emblem images from the
//! user's preference order. The attack still recovers every image's
//! identity (sizes don't lie), but the transmission order now carries no
//! information about the displayed ranking.
//!
//! ```text
//! cargo run --release --example defense_reordering -- [trials]
//! ```

use h2priv::attack::experiment::{
    analyze_trial, calibrate_size_map, objects_of_interest, run_paper_trial,
};
use h2priv::attack::AttackConfig;
use h2priv::netsim::SimRng;

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);

    let (iw, _) = h2priv::attack::experiment::paper_scenario(0);
    let objects = objects_of_interest(&iw);
    let map = calibrate_size_map(&objects);
    let attack = AttackConfig::paper_attack();

    for (label, defended) in [("undefended", false), ("randomized request order", true)] {
        let mut order_hits = 0u64;
        let mut ident_hits = 0u64;
        for seed in 0..trials {
            // Under the defense the page requests images in an order drawn
            // independently of the user's preference; we model it by
            // running an unrelated user's request order and scoring
            // against this user's true (displayed) preference.
            let trial = if defended {
                run_paper_trial(seed + 50_000, Some(&attack), |_| {})
            } else {
                run_paper_trial(seed, Some(&attack), |_| {})
            };
            let start = trial
                .adversary
                .as_ref()
                .and_then(|a| a.analysis_start(&attack));
            let analysis = analyze_trial(&trial, &map, &objects, start);
            let golden = if defended {
                SimRng::seed_from(seed.wrapping_mul(0x9E37_79B9).wrapping_add(7)).permutation(8)
            } else {
                trial.iw.golden_order.clone()
            };
            order_hits += (0..8)
                .filter(|&r| analysis.predicted_parties.get(r) == golden.get(r))
                .count() as u64;
            ident_hits += (1..9).filter(|&i| analysis.objects[i].identified).count() as u64;
        }
        let denom = (trials * 8) as f64;
        println!("{label}:");
        println!(
            "  image identities recovered: {:>5.1} %",
            ident_hits as f64 * 100.0 / denom
        );
        println!(
            "  display ranking recovered:  {:>5.1} %   (chance = 12.5 %)",
            order_hits as f64 * 100.0 / denom
        );
    }
    println!("\n(the defense hides the *order*, not the *identities* — and for a");
    println!(" fixed-content page like this one the order was the secret)");
}
