//! §VII generality: the same adversary, pointed at a different website —
//! and the attack's boundary condition (size uniqueness) in action.
//!
//! A news front page carries two thumbnails of identical size. The attack
//! serializes everything as usual, but the size-map predictor must abstain
//! on the twins: degree 0 is necessary, unique size is sufficient.
//!
//! ```text
//! cargo run --release --example generality -- [trials]
//! ```

use h2priv::analysis::{app_data_records, extract_records, segment_bursts};
use h2priv::attack::experiment::BURST_GAP;
use h2priv::attack::{identify_bursts, Adversary, AttackConfig, SizeMap};
use h2priv::netsim::Dir;
use h2priv::tcp::TcpSegment;
use h2priv::testkit::{build_scenario, run_scenario, ScenarioConfig};
use h2priv::web::newssite;
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let news = newssite::build();

    // Calibrate the size map by fetching each object alone.
    let mut map = SizeMap::new(400);
    for object in news.site.objects() {
        let plan = h2priv::web::BrowsePlan::new().with_phase(h2priv::web::Phase {
            trigger: h2priv::web::Trigger::Start,
            delay: h2priv::netsim::SimDuration::ZERO,
            steps: vec![h2priv::web::PlanStep {
                object: object.id,
                gap: h2priv::netsim::SimDuration::ZERO,
            }],
            reissue: true,
        });
        let mut cfg = ScenarioConfig {
            seed: 0xCAFE ^ object.id.0 as u64,
            ..ScenarioConfig::default()
        };
        cfg.browser.gap_noise_frac = 0.0;
        cfg.server_link.jitter = h2priv::netsim::DurationDist::None;
        cfg.server_link.loss = 0.0;
        let result = h2priv::testkit::run_trial(&news.site, &plan, &cfg, None);
        let records = extract_records(&result.trace);
        let data = app_data_records(&records, Dir::RightToLeft);
        if let Some(b) = segment_bursts(&data, BURST_GAP)
            .iter()
            .max_by_key(|b| b.plaintext_bytes)
        {
            map.insert(object.id, b.plaintext_bytes);
        }
    }

    // Attack: the article is the site's 1st GET, and — per §IV-B, "the
    // amount of jitter to be introduced should depend on the size of the
    // object of interest" — the spacing is widened to cover this site's
    // larger objects (a 152 KB script needs ~200 ms of service at the
    // 16 Mbps bottleneck).
    let mut attack = AttackConfig::paper_attack();
    attack.trigger_get = Some(1);
    attack.post_spacing = Some(h2priv::netsim::SimDuration::from_millis(240));
    let mut identified = vec![0u64; news.site.len()];
    let mut deg0 = vec![0u64; news.site.len()];
    for seed in 0..trials {
        let cfg = ScenarioConfig {
            seed,
            ..ScenarioConfig::default()
        };
        let adversary = Rc::new(RefCell::new(Adversary::new(attack.clone())));
        let scenario = build_scenario(
            &news.site,
            &news.plan,
            &cfg,
            Some(Box::new(adversary.clone()) as Box<dyn h2priv::netsim::Middlebox<TcpSegment>>),
        );
        let result = run_scenario(scenario);
        let start = adversary.borrow().gate_released_at();
        let records = extract_records(&result.trace);
        let mut data = app_data_records(&records, Dir::RightToLeft);
        if let Some(start) = start {
            data.retain(|r| r.time >= start);
        }
        let bursts = segment_bursts(&data, BURST_GAP);
        let idents = identify_bursts(&map, &bursts);
        for object in news.site.objects() {
            if idents.iter().any(|i| i.object == object.id) {
                identified[object.id.0 as usize] += 1;
            }
            if result.truth.min_degree_for(object.id) == Some(0.0) {
                deg0[object.id.0 as usize] += 1;
            }
        }
    }
    println!("news-site attack, {trials} trials:\n");
    println!(
        "{:<36} {:>8} {:>12} {:>12}",
        "object", "size", "degree-0 %", "identified %"
    );
    for object in news.site.objects() {
        let i = object.id.0 as usize;
        println!(
            "{:<36} {:>8} {:>11.0}% {:>11.0}%",
            object.path,
            object.size,
            deg0[i] as f64 * 100.0 / trials as f64,
            identified[i] as f64 * 100.0 / trials as f64
        );
    }
    println!("\n(thumb1 and thumb3 share a size: serialization succeeds — degree 0 —");
    println!(" but the predictor must abstain, the §II uniqueness condition in action)");
}
