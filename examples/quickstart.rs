//! Quickstart: one unattacked page load, one attacked page load, and what
//! the eavesdropper learned from each.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use h2priv::attack::experiment::{
    analyze_trial, calibrate_size_map, objects_of_interest, run_paper_trial,
};
use h2priv::attack::AttackConfig;

fn main() {
    // The adversary's pre-compiled size map (§V): each object of interest
    // fetched once in isolation over a quiet network.
    let (iw, _) = h2priv::attack::experiment::paper_scenario(42);
    let objects = objects_of_interest(&iw);
    println!(
        "calibrating the size map ({} objects of interest)…",
        objects.len()
    );
    let map = calibrate_size_map(&objects);

    // ---- Baseline: HTTP/2 multiplexing protects the page. -----------------
    let baseline = run_paper_trial(42, None, |_| {});
    let analysis = analyze_trial(&baseline, &map, &objects, None);
    println!("\n== baseline (no adversary) ==");
    println!(
        "degree of multiplexing of the result HTML: {:.0} %",
        analysis.objects[0].degree.unwrap_or(1.0) * 100.0
    );
    println!(
        "objects the eavesdropper identified: {}/9",
        analysis.objects.iter().filter(|o| o.identified).count()
    );

    // ---- Attack: the §V adversary serializes the transmissions. -----------
    let attack = AttackConfig::paper_attack();
    let attacked = run_paper_trial(42, Some(&attack), |_| {});
    let start = attacked
        .adversary
        .as_ref()
        .and_then(|a| a.analysis_start(&attack));
    let analysis = analyze_trial(&attacked, &map, &objects, start);
    println!("\n== under attack (jitter → throttle → drops → reset → 80 ms spacing) ==");
    println!(
        "degree of multiplexing of the result HTML: {:.0} %",
        analysis.objects[0].degree.unwrap_or(1.0) * 100.0
    );
    println!(
        "objects the eavesdropper identified: {}/9",
        analysis.objects.iter().filter(|o| o.identified).count()
    );
    println!(
        "user's survey result (golden): {:?}",
        attacked.iw.golden_order
    );
    println!(
        "order recovered by the adversary: {:?}",
        analysis.predicted_parties
    );
    println!(
        "full political ranking recovered: {}",
        analysis.full_sequence_correct
    );
}
