//! §VII future work: streaming traffic. A DASH-like player requests one
//! media segment per segment-duration — transfers are *naturally*
//! serialized, so the eavesdropper reads the per-title segment-size
//! fingerprint off the record bursts without any active attack at all.
//!
//! ```text
//! cargo run --release --example streaming_leak -- [segments]
//! ```

use h2priv::analysis::{app_data_records, extract_records, segment_bursts};
use h2priv::netsim::{Dir, SimDuration};
use h2priv::testkit::{run_trial, ScenarioConfig};
use h2priv::web::streaming::{build_session, Video};

fn main() {
    let segments: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25);

    // A small catalog of titles, each with its size fingerprint.
    let catalog: Vec<Video> = [
        "the-phantom-gateway",
        "attack-of-the-middleboxes",
        "revenge-of-the-resets",
        "a-new-jitter",
        "the-buffer-strikes-back",
        "return-of-the-rst",
    ]
    .iter()
    .map(|t| Video::synthesize(t, segments, 2020))
    .collect();

    // The victim streams one of them.
    let victim = &catalog[2];
    let session = build_session(victim, SimDuration::from_secs(2));
    let mut cfg = ScenarioConfig {
        seed: 99,
        ..ScenarioConfig::default()
    };
    cfg.browser.gap_noise_frac = 0.05;
    cfg.deadline = SimDuration::from_secs(240);
    let result = run_trial(&session.site, &session.plan, &cfg, None);

    // Passive observation only: burst sizes in arrival order.
    let records = extract_records(&result.trace);
    let data = app_data_records(&records, Dir::RightToLeft);
    let bursts = segment_bursts(&data, SimDuration::from_millis(200));
    let observed: Vec<u64> = bursts
        .iter()
        .filter(|b| b.plaintext_bytes > 5_000)
        .map(|b| b.plaintext_bytes)
        .collect();
    println!(
        "observed {} segment bursts (streamed {} segments)\n",
        observed.len(),
        segments
    );
    println!("{:<28} {:>10}", "title", "distance");
    let mut best: Option<(&str, f64)> = None;
    for video in &catalog {
        let d = video.distance(&observed);
        println!("{:<28} {:>10.4}", video.title, d);
        if best.is_none() || d < best.unwrap().1 {
            best = Some((&video.title, d));
        }
    }
    let (guess, _) = best.unwrap();
    println!("\neavesdropper's guess: {guess}");
    println!("actually streamed:    {}", victim.title);
    println!("correct: {}", guess == victim.title);
    println!("\n(no adversary was installed: segment pacing serializes the transfers");
    println!(" by itself, so streaming leaks its fingerprint to any passive observer)");
}
