//! Vectorized record-sealing regression tests.
//!
//! The batched host pump seals a whole run of queued HTTP/2 frames into
//! one reused buffer via [`TlsSession::seal_app_data_into`]. This binary
//! installs the allocation-counting global allocator and proves the two
//! properties that path depends on:
//!
//! * sealing into a sink is **byte-identical** to the allocating
//!   [`TlsSession::seal_app_data`] — coalescing records changes nothing
//!   on the wire; and
//! * sealing a run of records into a warm (pre-sized) buffer performs
//!   **zero** heap allocations — one keystream pass, no per-record `Vec`.

use h2priv_bytes::count_alloc::{measure, CountingAlloc};
use h2priv_tls::{Role, TlsSession};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const KEY: u64 = 0xBA7C_45EA;

fn established_client() -> TlsSession {
    let mut client = TlsSession::new(Role::Client, KEY);
    let mut server = TlsSession::new(Role::Server, KEY);
    let hello = client.initial_flight().expect("client starts");
    let out = server.receive(&hello).unwrap();
    let out = client.receive(&out.reply).unwrap();
    assert!(out.established_now);
    server.receive(&out.reply).unwrap();
    assert!(client.is_established());
    client
}

#[test]
fn sink_sealing_is_byte_identical_to_allocating_sealing() {
    // Two identically-keyed sessions produce identical keystreams, so the
    // sink variant must emit exactly the bytes the allocating variant
    // returns, record for record, across a coalesced run.
    let mut a = established_client();
    let mut b = established_client();

    let payloads: Vec<Vec<u8>> = (0..12u8)
        .map(|i| vec![i; 100 + 1_500 * i as usize % 4_000])
        .collect();

    let mut individually = Vec::new();
    for p in &payloads {
        individually.extend_from_slice(&a.seal_app_data(p).unwrap());
    }

    let mut run = Vec::new();
    for p in &payloads {
        b.seal_app_data_into(p, &mut run).unwrap();
    }

    assert_eq!(individually, run);
    assert_eq!(a.records_sealed(), b.records_sealed());
}

#[test]
fn sealing_a_run_into_a_warm_buffer_is_allocation_free() {
    let mut session = established_client();

    // Steady state of the batched pump: the run buffer is recycled from
    // the previous flush, so its capacity already covers a full socket
    // buffer of sealed records.
    let payload = vec![0x5A_u8; 2_048];
    let mut run: Vec<u8> = Vec::with_capacity(64 * 1024);
    for _ in 0..16 {
        session.seal_app_data_into(&payload, &mut run).unwrap();
    }
    assert!(run.len() < run.capacity(), "warm-up must fit the buffer");
    run.clear();

    let ((), allocs) = measure(|| {
        for _ in 0..16 {
            session.seal_app_data_into(&payload, &mut run).unwrap();
        }
    });
    assert!(!run.is_empty());
    assert_eq!(
        allocs, 0,
        "sealing a run of records into a warm buffer must not allocate"
    );
}
