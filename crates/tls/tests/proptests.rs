//! Property-based tests of the TLS record layer: roundtrips, chunking
//! invariance, tamper detection, and the observer/endpoint agreement that
//! the attack's analysis relies on.
//!
//! Gated behind the `proptests` feature: the external `proptest` crate is
//! unavailable in offline builds. Re-add the dev-dependency and enable the
//! feature to run these.
#![cfg(feature = "proptests")]

use h2priv_tls::{
    ContentType, RecordCipher, RecordReader, RecordScanner, RecordWriter, AEAD_OVERHEAD,
    HEADER_LEN, MAX_PLAINTEXT,
};
use proptest::prelude::*;

fn arb_ct() -> impl Strategy<Value = ContentType> {
    prop_oneof![
        Just(ContentType::Handshake),
        Just(ContentType::ApplicationData),
        Just(ContentType::Alert),
        Just(ContentType::ChangeCipherSpec),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Message streams roundtrip through seal → chunked delivery → open.
    #[test]
    fn records_roundtrip_under_any_chunking(
        key: u64,
        msgs in proptest::collection::vec(
            (arb_ct(), proptest::collection::vec(any::<u8>(), 0..2_000)), 1..8),
        chunk in 1usize..1_600,
    ) {
        let mut writer = RecordWriter::new(RecordCipher::new(key, 1));
        let mut reader = RecordReader::new(RecordCipher::new(key, 1));
        let wire: Vec<u8> = msgs
            .iter()
            .flat_map(|(ct, m)| writer.seal_message(*ct, m))
            .collect();
        let mut got = Vec::new();
        for piece in wire.chunks(chunk) {
            reader.push(piece);
            while let Some(msg) = reader.next_message().unwrap() {
                got.push((msg.content_type, msg.plaintext));
            }
        }
        prop_assert_eq!(got, msgs);
    }

    /// Oversized messages fragment and reassemble.
    #[test]
    fn oversized_messages_fragment(key: u64, extra in 1usize..5_000) {
        let len = MAX_PLAINTEXT + extra;
        let payload: Vec<u8> = (0..len).map(|i| (i % 256) as u8).collect();
        let mut writer = RecordWriter::new(RecordCipher::new(key, 2));
        let mut reader = RecordReader::new(RecordCipher::new(key, 2));
        let wire = writer.seal_message(ContentType::ApplicationData, &payload);
        reader.push(&wire);
        let total: Vec<u8> = reader
            .drain_messages()
            .unwrap()
            .into_iter()
            .flat_map(|m| m.plaintext)
            .collect();
        prop_assert_eq!(total, payload);
    }

    /// Flipping any single ciphertext bit is detected.
    #[test]
    fn any_bitflip_is_detected(
        key: u64,
        payload in proptest::collection::vec(any::<u8>(), 1..500),
        byte_idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut writer = RecordWriter::new(RecordCipher::new(key, 1));
        let mut reader = RecordReader::new(RecordCipher::new(key, 1));
        let mut wire = writer.seal_message(ContentType::ApplicationData, &payload);
        // Flip a bit in the encrypted fragment body (after the header and
        // nonce, before the tag filler) so the tag check must catch it.
        let lo = HEADER_LEN + 8;
        let hi = HEADER_LEN + 8 + payload.len() + 2;
        let idx = lo + byte_idx.index(hi - lo);
        wire[idx] ^= 1 << bit;
        reader.push(&wire);
        prop_assert!(reader.next_message().is_err());
    }

    /// The keyless scanner and the keyed reader agree on record boundaries
    /// — the observer sees exactly the record structure the endpoints use.
    #[test]
    fn scanner_agrees_with_reader(
        key: u64,
        msgs in proptest::collection::vec(
            (arb_ct(), proptest::collection::vec(any::<u8>(), 0..1_500)), 1..6),
    ) {
        let mut writer = RecordWriter::new(RecordCipher::new(key, 1));
        let wire: Vec<u8> = msgs
            .iter()
            .flat_map(|(ct, m)| writer.seal_message(*ct, m))
            .collect();
        let mut scanner = RecordScanner::new();
        let scanned = scanner.push(&wire);
        prop_assert_eq!(scanned.len(), msgs.len());
        for (rec, (ct, m)) in scanned.iter().zip(&msgs) {
            prop_assert_eq!(rec.content_type, *ct);
            prop_assert_eq!(rec.wire_len, HEADER_LEN + m.len() + AEAD_OVERHEAD);
        }
    }

    /// The scanner never panics on arbitrary bytes.
    #[test]
    fn scanner_total(bytes in proptest::collection::vec(any::<u8>(), 0..2_000)) {
        let mut scanner = RecordScanner::new();
        let _ = scanner.push(&bytes);
    }
}
