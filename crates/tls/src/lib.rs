//! # h2priv-tls — the TLS record-layer model
//!
//! Part of the `h2priv` reproduction of *"Depending on HTTP/2 for Privacy?
//! Good Luck!"* (DSN 2020). The paper's adversary is bound by exactly one
//! cryptographic assumption: it "does not have the capability to decrypt"
//! (§III, assumption 2) and therefore sees only what the TLS record layer
//! leaves in plaintext — record headers (content type + length) and the
//! resulting packet sizes. This crate models that boundary precisely:
//!
//! * [`RecordHeader`]/[`ContentType`] — RFC 5246 framing, including the
//!   `application_data(23)` type the paper's monitor filters on.
//! * [`RecordCipher`] — a *modeled* AEAD: scrambles fragments (so nothing in
//!   the workspace can cheat by parsing ciphertext), detects corruption and
//!   reordering, and adds the exact TLS 1.2 AES-GCM length expansion.
//! * [`RecordWriter`]/[`RecordReader`] — endpoint-side serialization over a
//!   byte stream, with fragmentation at 16 KiB.
//! * [`RecordScanner`] — the eavesdropper's keyless header parser.
//! * [`TlsSession`] — role-aware session with a realistically-sized
//!   handshake transcript preceding application data.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cipher;
mod codec;
mod record;
mod session;

pub use cipher::RecordCipher;
pub use codec::{
    ReadRecordError, RecordReader, RecordScanner, RecordWriter, ScannedRecord, TlsMessage,
};
pub use record::{
    ContentType, RecordHeader, AEAD_OVERHEAD, HEADER_LEN, MAX_CIPHERTEXT, MAX_PLAINTEXT,
    RECORD_PREFIX, VERSION,
};
pub use session::{Role, SessionError, SessionOutput, TlsSession};
