//! Record serialization: sealing messages into wire bytes and recovering
//! them from a (possibly fragmented) byte stream.
//!
//! [`RecordWriter`] turns application messages into one or more records —
//! fragmenting at [`MAX_PLAINTEXT`] — and [`RecordReader`] incrementally
//! parses and opens records from arbitrarily-chunked input, exactly as a
//! TLS implementation reading from a TCP socket must.
//!
//! [`RecordScanner`] is the *eavesdropper's* parser: it walks the same byte
//! stream using only the plaintext headers, yielding content types and
//! lengths without any key material. The analysis crate builds the paper's
//! `content_type == 23` filter on top of it.

use crate::cipher::RecordCipher;
use crate::record::{ContentType, RecordHeader, HEADER_LEN, MAX_PLAINTEXT};

/// Seals application messages into record wire bytes.
#[derive(Debug, Clone)]
pub struct RecordWriter {
    cipher: RecordCipher,
}

impl RecordWriter {
    /// Creates a writer sealing with the given cipher.
    pub fn new(cipher: RecordCipher) -> Self {
        RecordWriter { cipher }
    }

    /// Seals one message, producing the wire bytes of one or more records.
    ///
    /// Messages longer than [`MAX_PLAINTEXT`] are fragmented; empty messages
    /// produce a single empty record (TLS permits these).
    pub fn seal_message(&mut self, content_type: ContentType, plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + HEADER_LEN + 32);
        let mut chunks: Vec<&[u8]> = plaintext.chunks(MAX_PLAINTEXT).collect();
        if chunks.is_empty() {
            chunks.push(&[]);
        }
        for chunk in chunks {
            let fragment = self.cipher.seal(chunk);
            let header = RecordHeader {
                content_type,
                fragment_len: fragment.len() as u16,
            };
            out.extend_from_slice(&header.encode());
            out.extend_from_slice(&fragment);
        }
        out
    }

    /// Records sealed so far.
    pub fn records_sealed(&self) -> u64 {
        self.cipher.seq()
    }
}

/// A message recovered by [`RecordReader`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlsMessage {
    /// The record's content type.
    pub content_type: ContentType,
    /// The decrypted fragment.
    pub plaintext: Vec<u8>,
}

/// Errors surfaced while reading records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadRecordError {
    /// The stream contained bytes that do not parse as a record header.
    BadHeader,
    /// A record failed to open (bad tag / wrong sequence): the connection
    /// must be torn down, as real TLS does on a `bad_record_mac` alert.
    DecryptFailed,
}

impl std::fmt::Display for ReadRecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadRecordError::BadHeader => write!(f, "invalid record header"),
            ReadRecordError::DecryptFailed => write!(f, "record failed to decrypt"),
        }
    }
}

impl std::error::Error for ReadRecordError {}

/// Incrementally parses and opens records from a byte stream.
#[derive(Debug, Clone)]
pub struct RecordReader {
    cipher: RecordCipher,
    buf: Vec<u8>,
    poisoned: bool,
}

impl RecordReader {
    /// Creates a reader opening with the given cipher.
    pub fn new(cipher: RecordCipher) -> Self {
        RecordReader {
            cipher,
            buf: Vec::new(),
            poisoned: false,
        }
    }

    /// Appends newly received stream bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Attempts to read the next complete message.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed headers or decryption failure; after an
    /// error the reader is poisoned and every subsequent call fails, because
    /// record boundaries can no longer be trusted.
    pub fn next_message(&mut self) -> Result<Option<TlsMessage>, ReadRecordError> {
        if self.poisoned {
            return Err(ReadRecordError::DecryptFailed);
        }
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let header = match RecordHeader::decode(&self.buf) {
            Some(h) => h,
            None => {
                self.poisoned = true;
                return Err(ReadRecordError::BadHeader);
            }
        };
        if self.buf.len() < header.wire_len() {
            return Ok(None);
        }
        let fragment = &self.buf[HEADER_LEN..header.wire_len()];
        let plaintext = match self.cipher.open(fragment) {
            Some(p) => p,
            None => {
                self.poisoned = true;
                return Err(ReadRecordError::DecryptFailed);
            }
        };
        let content_type = header.content_type;
        self.buf.drain(..header.wire_len());
        Ok(Some(TlsMessage {
            content_type,
            plaintext,
        }))
    }

    /// Drains all complete messages currently buffered.
    ///
    /// # Errors
    ///
    /// As for [`RecordReader::next_message`].
    pub fn drain_messages(&mut self) -> Result<Vec<TlsMessage>, ReadRecordError> {
        let mut out = Vec::new();
        while let Some(msg) = self.next_message()? {
            out.push(msg);
        }
        Ok(out)
    }

    /// Bytes buffered but not yet consumed.
    pub fn buffered_len(&self) -> usize {
        self.buf.len()
    }
}

/// Header-level view of one record, as visible to an eavesdropper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScannedRecord {
    /// Content type from the plaintext header.
    pub content_type: ContentType,
    /// Total record size on the wire (header + encrypted fragment).
    pub wire_len: usize,
    /// Offset of the record's first byte within the scanned stream.
    pub stream_offset: u64,
}

/// Parses record *headers* from a byte stream without any key material —
/// the passive observer's view.
#[derive(Debug, Clone, Default)]
pub struct RecordScanner {
    buf: Vec<u8>,
    offset: u64,
    desynced: bool,
}

impl RecordScanner {
    /// Creates an empty scanner.
    pub fn new() -> Self {
        RecordScanner::default()
    }

    /// True if the scanner hit an unparseable header and gave up; real
    /// monitors resynchronize heuristically, ours reports the condition.
    pub fn is_desynced(&self) -> bool {
        self.desynced
    }

    /// Appends observed stream bytes and returns any complete record
    /// headers they reveal.
    pub fn push(&mut self, bytes: &[u8]) -> Vec<ScannedRecord> {
        if self.desynced {
            return Vec::new();
        }
        self.buf.extend_from_slice(bytes);
        let mut out = Vec::new();
        loop {
            if self.buf.len() < HEADER_LEN {
                break;
            }
            let Some(header) = RecordHeader::decode(&self.buf) else {
                self.desynced = true;
                break;
            };
            if self.buf.len() < header.wire_len() {
                break;
            }
            out.push(ScannedRecord {
                content_type: header.content_type,
                wire_len: header.wire_len(),
                stream_offset: self.offset,
            });
            self.offset += header.wire_len() as u64;
            self.buf.drain(..header.wire_len());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::AEAD_OVERHEAD;

    fn pair() -> (RecordWriter, RecordReader) {
        (
            RecordWriter::new(RecordCipher::new(9, 1)),
            RecordReader::new(RecordCipher::new(9, 1)),
        )
    }

    #[test]
    fn single_message_roundtrip() {
        let (mut w, mut r) = pair();
        let wire = w.seal_message(ContentType::ApplicationData, b"GET /index");
        r.push(&wire);
        let msg = r.next_message().unwrap().unwrap();
        assert_eq!(msg.content_type, ContentType::ApplicationData);
        assert_eq!(msg.plaintext, b"GET /index");
        assert_eq!(r.next_message().unwrap(), None);
        assert_eq!(r.buffered_len(), 0);
    }

    #[test]
    fn large_message_fragments() {
        let (mut w, mut r) = pair();
        let big = vec![7u8; MAX_PLAINTEXT * 2 + 100];
        let wire = w.seal_message(ContentType::ApplicationData, &big);
        assert_eq!(w.records_sealed(), 3);
        r.push(&wire);
        let msgs = r.drain_messages().unwrap();
        assert_eq!(msgs.len(), 3);
        let total: Vec<u8> = msgs.into_iter().flat_map(|m| m.plaintext).collect();
        assert_eq!(total, big);
    }

    #[test]
    fn byte_at_a_time_delivery() {
        let (mut w, mut r) = pair();
        let wire = w.seal_message(ContentType::Handshake, b"hello");
        let mut got = None;
        for &b in &wire {
            r.push(&[b]);
            if let Some(msg) = r.next_message().unwrap() {
                assert!(got.is_none());
                got = Some(msg);
            }
        }
        assert_eq!(got.unwrap().plaintext, b"hello");
    }

    #[test]
    fn interleaved_content_types() {
        let (mut w, mut r) = pair();
        let mut wire = w.seal_message(ContentType::Handshake, b"finished");
        wire.extend(w.seal_message(ContentType::ApplicationData, b"data"));
        r.push(&wire);
        let msgs = r.drain_messages().unwrap();
        assert_eq!(msgs[0].content_type, ContentType::Handshake);
        assert_eq!(msgs[1].content_type, ContentType::ApplicationData);
    }

    #[test]
    fn empty_message_roundtrips() {
        let (mut w, mut r) = pair();
        let wire = w.seal_message(ContentType::Alert, b"");
        assert_eq!(wire.len(), HEADER_LEN + AEAD_OVERHEAD);
        r.push(&wire);
        let msg = r.next_message().unwrap().unwrap();
        assert!(msg.plaintext.is_empty());
    }

    #[test]
    fn corrupted_stream_poisons_reader() {
        let (mut w, mut r) = pair();
        let mut wire = w.seal_message(ContentType::ApplicationData, b"secret");
        wire[HEADER_LEN + 9] ^= 0xFF;
        r.push(&wire);
        assert_eq!(r.next_message(), Err(ReadRecordError::DecryptFailed));
        assert_eq!(r.next_message(), Err(ReadRecordError::DecryptFailed));
    }

    #[test]
    fn garbage_header_is_bad_header() {
        let (_, mut r) = pair();
        r.push(&[0xFFu8; 16]);
        assert_eq!(r.next_message(), Err(ReadRecordError::BadHeader));
    }

    #[test]
    fn scanner_sees_types_and_lengths_only() {
        let mut w = RecordWriter::new(RecordCipher::new(123, 2));
        let mut scanner = RecordScanner::new();
        let mut wire = w.seal_message(ContentType::Handshake, &[0u8; 300]);
        wire.extend(w.seal_message(ContentType::ApplicationData, &[1u8; 1000]));
        let records = scanner.push(&wire);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].content_type, ContentType::Handshake);
        assert_eq!(records[0].wire_len, HEADER_LEN + 300 + AEAD_OVERHEAD);
        assert_eq!(records[0].stream_offset, 0);
        assert_eq!(records[1].content_type, ContentType::ApplicationData);
        assert_eq!(records[1].wire_len, HEADER_LEN + 1000 + AEAD_OVERHEAD);
        assert_eq!(records[1].stream_offset, records[0].wire_len as u64);
    }

    #[test]
    fn scanner_handles_partial_chunks() {
        let mut w = RecordWriter::new(RecordCipher::new(123, 2));
        let wire = w.seal_message(ContentType::ApplicationData, &[1u8; 500]);
        let mut scanner = RecordScanner::new();
        let mid = wire.len() / 2;
        assert!(scanner.push(&wire[..mid]).is_empty());
        let records = scanner.push(&wire[mid..]);
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn scanner_desyncs_on_garbage() {
        let mut scanner = RecordScanner::new();
        assert!(scanner.push(&[0u8; 32]).is_empty());
        assert!(scanner.is_desynced());
    }
}
