//! Record serialization: sealing messages into wire bytes and recovering
//! them from a (possibly fragmented) byte stream.
//!
//! [`RecordWriter`] turns application messages into one or more records —
//! fragmenting at [`MAX_PLAINTEXT`] — and [`RecordReader`] incrementally
//! parses and opens records from arbitrarily-chunked input, exactly as a
//! TLS implementation reading from a TCP socket must.
//!
//! [`RecordScanner`] is the *eavesdropper's* parser: it walks the same byte
//! stream using only the plaintext headers, yielding content types and
//! lengths without any key material. The analysis crate builds the paper's
//! `content_type == 23` filter on top of it.

use crate::cipher::RecordCipher;
use crate::record::{
    ContentType, RecordHeader, AEAD_OVERHEAD, HEADER_LEN, MAX_PLAINTEXT, RECORD_PREFIX,
};

/// Seals application messages into record wire bytes.
#[derive(Debug, Clone)]
pub struct RecordWriter {
    cipher: RecordCipher,
}

impl RecordWriter {
    /// Creates a writer sealing with the given cipher.
    pub fn new(cipher: RecordCipher) -> Self {
        RecordWriter { cipher }
    }

    /// Seals one message, producing the wire bytes of one or more records.
    ///
    /// Messages longer than [`MAX_PLAINTEXT`] are fragmented; empty messages
    /// produce a single empty record (TLS permits these).
    pub fn seal_message(&mut self, content_type: ContentType, plaintext: &[u8]) -> Vec<u8> {
        let records = plaintext.len().div_ceil(MAX_PLAINTEXT).max(1);
        let mut out = Vec::with_capacity(plaintext.len() + records * (HEADER_LEN + AEAD_OVERHEAD));
        self.seal_message_into(content_type, plaintext, &mut out);
        out
    }

    /// Seals one message, appending its wire bytes to `out` — the sink
    /// variant of [`seal_message`](Self::seal_message), producing
    /// byte-identical output. Callers sealing a *run* of queued messages
    /// (the batched host pump) call this repeatedly against one reused
    /// buffer, so the whole run is a single keystream pass with no
    /// per-message wire allocation.
    pub fn seal_message_into(
        &mut self,
        content_type: ContentType,
        plaintext: &[u8],
        out: &mut Vec<u8>,
    ) {
        // An empty message still seals one (empty) record; otherwise the
        // chunks are iterated directly — materializing them would cost an
        // allocation per message on the pump's hottest path.
        let mut chunks = plaintext.chunks(MAX_PLAINTEXT);
        let mut chunk = chunks.next().unwrap_or(&[]);
        loop {
            let header = RecordHeader {
                content_type,
                fragment_len: (chunk.len() + AEAD_OVERHEAD) as u16,
            };
            out.extend_from_slice(&header.encode());
            // Seal straight into the wire buffer: no per-record fragment
            // allocation or copy.
            self.cipher.seal_into(chunk, out);
            match chunks.next() {
                Some(next) => chunk = next,
                None => break,
            }
        }
    }

    /// Seals one message whose plaintext is the concatenation of `parts`,
    /// appending its wire bytes to `out` — the scatter-gather variant of
    /// [`seal_message_into`](Self::seal_message_into), producing
    /// byte-identical records (same [`MAX_PLAINTEXT`] fragmentation over
    /// the logical concatenation) without the caller assembling a
    /// contiguous message. The HTTP/2 host pump passes a frame header and
    /// the stream's shared body chunk as separate parts, so body bytes are
    /// never copied into a frame buffer before sealing.
    pub fn seal_message_parts_into(
        &mut self,
        content_type: ContentType,
        parts: &[&[u8]],
        out: &mut Vec<u8>,
    ) {
        let total: usize = parts.iter().map(|p| p.len()).sum();
        // Record cursor into the logical concatenation: part index + byte
        // offset within it. Each record gathers at most MAX_PLAINTEXT
        // bytes as sub-slices — no copies, just a tiny per-record Vec of
        // slice views reused across records.
        let mut part_idx = 0usize;
        let mut part_off = 0usize;
        let mut remaining = total;
        let mut record_parts: Vec<&[u8]> = Vec::with_capacity(parts.len());
        loop {
            let n = remaining.min(MAX_PLAINTEXT);
            record_parts.clear();
            let mut need = n;
            while need > 0 {
                let part = parts[part_idx];
                let avail = part.len() - part_off;
                if avail == 0 {
                    part_idx += 1;
                    part_off = 0;
                    continue;
                }
                let take = avail.min(need);
                record_parts.push(&part[part_off..part_off + take]);
                part_off += take;
                need -= take;
            }
            let header = RecordHeader {
                content_type,
                fragment_len: (n + AEAD_OVERHEAD) as u16,
            };
            out.extend_from_slice(&header.encode());
            self.cipher.seal_parts_into(&record_parts, out);
            remaining -= n;
            if remaining == 0 {
                break;
            }
        }
    }

    /// Seals one message *in place*: the plaintext already sits at
    /// `buf[RECORD_PREFIX..]` (at most [`MAX_PLAINTEXT`] bytes), with the
    /// leading [`RECORD_PREFIX`] bytes reserved for the record header and
    /// explicit nonce. Produces wire bytes identical to
    /// [`RecordWriter::seal_message`] without copying the plaintext.
    pub fn seal_message_in_place(&mut self, content_type: ContentType, buf: &mut Vec<u8>) {
        debug_assert!(buf.len() >= RECORD_PREFIX);
        let plaintext_len = buf.len() - RECORD_PREFIX;
        debug_assert!(plaintext_len <= MAX_PLAINTEXT);
        let header = RecordHeader {
            content_type,
            fragment_len: (plaintext_len + AEAD_OVERHEAD) as u16,
        };
        buf[..HEADER_LEN].copy_from_slice(&header.encode());
        self.cipher.seal_in_place(buf, RECORD_PREFIX);
    }

    /// Records sealed so far.
    pub fn records_sealed(&self) -> u64 {
        self.cipher.seq()
    }
}

/// A message recovered by [`RecordReader`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlsMessage {
    /// The record's content type.
    pub content_type: ContentType,
    /// The decrypted fragment.
    pub plaintext: Vec<u8>,
}

/// Errors surfaced while reading records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadRecordError {
    /// The stream contained bytes that do not parse as a record header.
    BadHeader,
    /// A record failed to open (bad tag / wrong sequence): the connection
    /// must be torn down, as real TLS does on a `bad_record_mac` alert.
    DecryptFailed,
}

impl std::fmt::Display for ReadRecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadRecordError::BadHeader => write!(f, "invalid record header"),
            ReadRecordError::DecryptFailed => write!(f, "record failed to decrypt"),
        }
    }
}

impl std::error::Error for ReadRecordError {}

/// Incrementally parses and opens records from a byte stream.
///
/// Consumed records advance a cursor instead of draining the front of the
/// buffer, so reading a record is free of the `memmove` a `Vec::drain`
/// would do on every record; the consumed prefix is reclaimed at the
/// quiescent points (buffer fully drained, or waiting for more bytes).
#[derive(Debug, Clone)]
pub struct RecordReader {
    cipher: RecordCipher,
    buf: Vec<u8>,
    /// Start of unconsumed bytes in `buf`.
    pos: usize,
    poisoned: bool,
}

impl RecordReader {
    /// Creates a reader opening with the given cipher.
    pub fn new(cipher: RecordCipher) -> Self {
        RecordReader {
            cipher,
            buf: Vec::new(),
            pos: 0,
            poisoned: false,
        }
    }

    /// Appends newly received stream bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Surrenders the stash buffer's capacity (for a buffer pool) when no
    /// partial record is pending. Streams that are done free their stash;
    /// a reader that receives again simply reallocates.
    pub fn take_buf_spare(&mut self) -> Option<Vec<u8>> {
        if self.pos == 0 && self.buf.is_empty() && self.buf.capacity() > 0 {
            Some(std::mem::take(&mut self.buf))
        } else {
            None
        }
    }

    /// Seeds the stash buffer with recycled capacity; kept only when the
    /// current buffer is empty with none. `buf` is cleared.
    pub fn give_buf_spare(&mut self, mut buf: Vec<u8>) {
        if self.pos == 0 && self.buf.is_empty() && self.buf.capacity() == 0 && buf.capacity() > 0 {
            buf.clear();
            self.buf = buf;
        }
    }

    /// Reclaims the consumed prefix. Called only when parsing pauses, so
    /// the cost is once per burst of records, not once per record.
    fn compact(&mut self) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Attempts to read the next complete message.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed headers or decryption failure; after an
    /// error the reader is poisoned and every subsequent call fails, because
    /// record boundaries can no longer be trusted.
    pub fn next_message(&mut self) -> Result<Option<TlsMessage>, ReadRecordError> {
        let mut plaintext = Vec::new();
        Ok(self
            .next_record_into(&mut plaintext)?
            .map(|content_type| TlsMessage {
                content_type,
                plaintext,
            }))
    }

    /// Attempts to read the next complete record, appending its plaintext
    /// to `out` — the sink variant [`next_message`](Self::next_message)
    /// wraps, for callers assembling a plaintext stream (no per-record
    /// allocation). Returns the record's content type, or `Ok(None)` when
    /// more bytes are needed; on `Ok(None)` and on errors `out` is
    /// untouched.
    ///
    /// # Errors
    ///
    /// As for [`next_message`](Self::next_message).
    pub fn next_record_into(
        &mut self,
        out: &mut Vec<u8>,
    ) -> Result<Option<ContentType>, ReadRecordError> {
        if self.poisoned {
            return Err(ReadRecordError::DecryptFailed);
        }
        let avail = &self.buf[self.pos..];
        if avail.len() < HEADER_LEN {
            self.compact();
            return Ok(None);
        }
        let header = match RecordHeader::decode(avail) {
            Some(h) => h,
            None => {
                self.poisoned = true;
                return Err(ReadRecordError::BadHeader);
            }
        };
        if avail.len() < header.wire_len() {
            self.compact();
            return Ok(None);
        }
        let fragment = &self.buf[self.pos + HEADER_LEN..self.pos + header.wire_len()];
        if !self.cipher.open_into(fragment, out) {
            self.poisoned = true;
            return Err(ReadRecordError::DecryptFailed);
        }
        self.pos += header.wire_len();
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        Ok(Some(header.content_type))
    }

    /// Attempts to read the next complete record from the internal buffer
    /// plus `input`, consuming from `input` and appending plaintext to
    /// `out`. The streaming variant of
    /// [`next_record_into`](Self::next_record_into): complete records that
    /// lie entirely within `input` are parsed *borrowed* — never copied
    /// into the internal buffer — and only a trailing partial record is
    /// stashed for the next feed. Returns `Ok(None)` when more bytes are
    /// needed (at which point `input` is fully consumed).
    ///
    /// # Errors
    ///
    /// As for [`next_message`](Self::next_message).
    pub fn next_record_borrowed(
        &mut self,
        input: &mut &[u8],
        out: &mut Vec<u8>,
    ) -> Result<Option<ContentType>, ReadRecordError> {
        if self.poisoned {
            return Err(ReadRecordError::DecryptFailed);
        }
        // Finish any record whose prefix was stashed by an earlier feed,
        // topping the buffer up with only the bytes that record needs.
        if self.buffered_len() > 0 {
            if self.buffered_len() < HEADER_LEN {
                let take = (HEADER_LEN - self.buffered_len()).min(input.len());
                self.buf.extend_from_slice(&input[..take]);
                *input = &input[take..];
            }
            if self.buffered_len() < HEADER_LEN {
                self.compact();
                return Ok(None);
            }
            let header = match RecordHeader::decode(&self.buf[self.pos..]) {
                Some(h) => h,
                None => {
                    self.poisoned = true;
                    return Err(ReadRecordError::BadHeader);
                }
            };
            let take = header
                .wire_len()
                .saturating_sub(self.buffered_len())
                .min(input.len());
            self.buf.extend_from_slice(&input[..take]);
            *input = &input[take..];
            if self.buffered_len() < header.wire_len() {
                self.compact();
                return Ok(None);
            }
            let fragment = &self.buf[self.pos + HEADER_LEN..self.pos + header.wire_len()];
            if !self.cipher.open_into(fragment, out) {
                self.poisoned = true;
                return Err(ReadRecordError::DecryptFailed);
            }
            self.pos += header.wire_len();
            if self.pos == self.buf.len() {
                self.buf.clear();
                self.pos = 0;
            }
            return Ok(Some(header.content_type));
        }
        // Buffer empty: parse straight from the borrowed input.
        if input.len() < HEADER_LEN {
            self.buf.extend_from_slice(input);
            *input = &[];
            return Ok(None);
        }
        let header = match RecordHeader::decode(input) {
            Some(h) => h,
            None => {
                self.poisoned = true;
                return Err(ReadRecordError::BadHeader);
            }
        };
        if input.len() < header.wire_len() {
            self.buf.extend_from_slice(input);
            *input = &[];
            return Ok(None);
        }
        let fragment = &input[HEADER_LEN..header.wire_len()];
        if !self.cipher.open_into(fragment, out) {
            self.poisoned = true;
            return Err(ReadRecordError::DecryptFailed);
        }
        *input = &input[header.wire_len()..];
        Ok(Some(header.content_type))
    }

    /// Drains all complete messages currently buffered.
    ///
    /// # Errors
    ///
    /// As for [`RecordReader::next_message`].
    pub fn drain_messages(&mut self) -> Result<Vec<TlsMessage>, ReadRecordError> {
        let mut out = Vec::new();
        while let Some(msg) = self.next_message()? {
            out.push(msg);
        }
        Ok(out)
    }

    /// Bytes buffered but not yet consumed.
    pub fn buffered_len(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Header-level view of one record, as visible to an eavesdropper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScannedRecord {
    /// Content type from the plaintext header.
    pub content_type: ContentType,
    /// Total record size on the wire (header + encrypted fragment).
    pub wire_len: usize,
    /// Offset of the record's first byte within the scanned stream.
    pub stream_offset: u64,
}

/// Parses record *headers* from a byte stream without any key material —
/// the passive observer's view.
#[derive(Debug, Clone, Default)]
pub struct RecordScanner {
    buf: Vec<u8>,
    /// Start of unconsumed bytes in `buf` (consumed records advance this
    /// cursor; the prefix is reclaimed once per `push`, not per record).
    pos: usize,
    offset: u64,
    desynced: bool,
}

impl RecordScanner {
    /// Creates an empty scanner.
    pub fn new() -> Self {
        RecordScanner::default()
    }

    /// True if the scanner hit an unparseable header and gave up; real
    /// monitors resynchronize heuristically, ours reports the condition.
    pub fn is_desynced(&self) -> bool {
        self.desynced
    }

    /// Appends observed stream bytes and returns any complete record
    /// headers they reveal.
    pub fn push(&mut self, bytes: &[u8]) -> Vec<ScannedRecord> {
        if self.desynced {
            return Vec::new();
        }
        self.buf.extend_from_slice(bytes);
        let mut out = Vec::new();
        loop {
            let avail = &self.buf[self.pos..];
            if avail.len() < HEADER_LEN {
                break;
            }
            let Some(header) = RecordHeader::decode(avail) else {
                self.desynced = true;
                break;
            };
            if avail.len() < header.wire_len() {
                break;
            }
            out.push(ScannedRecord {
                content_type: header.content_type,
                wire_len: header.wire_len(),
                stream_offset: self.offset,
            });
            self.offset += header.wire_len() as u64;
            self.pos += header.wire_len();
        }
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::AEAD_OVERHEAD;

    fn pair() -> (RecordWriter, RecordReader) {
        (
            RecordWriter::new(RecordCipher::new(9, 1)),
            RecordReader::new(RecordCipher::new(9, 1)),
        )
    }

    #[test]
    fn parts_seal_matches_contiguous_seal() {
        // Gather sealing must fragment and seal exactly as the contiguous
        // path does, for messages below, at, and spanning MAX_PLAINTEXT —
        // including record boundaries that fall inside a part.
        for (label, sizes) in [
            ("sub-record", vec![10usize, 100, 7]),
            ("exact record", vec![9, MAX_PLAINTEXT - 9]),
            ("multi-record", vec![10, 2 * MAX_PLAINTEXT + 100, 4990]),
            ("empty parts", vec![0, 25, 0]),
            ("all empty", vec![0, 0]),
        ] {
            let total: usize = sizes.iter().sum();
            let msg: Vec<u8> = (0..total).map(|i| (i % 249) as u8).collect();
            let mut contiguous = Vec::new();
            RecordWriter::new(RecordCipher::new(9, 1)).seal_message_into(
                ContentType::ApplicationData,
                &msg,
                &mut contiguous,
            );
            let mut parts: Vec<&[u8]> = Vec::new();
            let mut pos = 0;
            for n in &sizes {
                parts.push(&msg[pos..pos + n]);
                pos += n;
            }
            let mut gathered = Vec::new();
            RecordWriter::new(RecordCipher::new(9, 1)).seal_message_parts_into(
                ContentType::ApplicationData,
                &parts,
                &mut gathered,
            );
            assert_eq!(gathered, contiguous, "{label}");
        }
    }

    #[test]
    fn single_message_roundtrip() {
        let (mut w, mut r) = pair();
        let wire = w.seal_message(ContentType::ApplicationData, b"GET /index");
        r.push(&wire);
        let msg = r.next_message().unwrap().unwrap();
        assert_eq!(msg.content_type, ContentType::ApplicationData);
        assert_eq!(msg.plaintext, b"GET /index");
        assert_eq!(r.next_message().unwrap(), None);
        assert_eq!(r.buffered_len(), 0);
    }

    #[test]
    fn large_message_fragments() {
        let (mut w, mut r) = pair();
        let big = vec![7u8; MAX_PLAINTEXT * 2 + 100];
        let wire = w.seal_message(ContentType::ApplicationData, &big);
        assert_eq!(w.records_sealed(), 3);
        r.push(&wire);
        let msgs = r.drain_messages().unwrap();
        assert_eq!(msgs.len(), 3);
        let total: Vec<u8> = msgs.into_iter().flat_map(|m| m.plaintext).collect();
        assert_eq!(total, big);
    }

    #[test]
    fn byte_at_a_time_delivery() {
        let (mut w, mut r) = pair();
        let wire = w.seal_message(ContentType::Handshake, b"hello");
        let mut got = None;
        for &b in &wire {
            r.push(&[b]);
            if let Some(msg) = r.next_message().unwrap() {
                assert!(got.is_none());
                got = Some(msg);
            }
        }
        assert_eq!(got.unwrap().plaintext, b"hello");
    }

    #[test]
    fn interleaved_content_types() {
        let (mut w, mut r) = pair();
        let mut wire = w.seal_message(ContentType::Handshake, b"finished");
        wire.extend(w.seal_message(ContentType::ApplicationData, b"data"));
        r.push(&wire);
        let msgs = r.drain_messages().unwrap();
        assert_eq!(msgs[0].content_type, ContentType::Handshake);
        assert_eq!(msgs[1].content_type, ContentType::ApplicationData);
    }

    #[test]
    fn empty_message_roundtrips() {
        let (mut w, mut r) = pair();
        let wire = w.seal_message(ContentType::Alert, b"");
        assert_eq!(wire.len(), HEADER_LEN + AEAD_OVERHEAD);
        r.push(&wire);
        let msg = r.next_message().unwrap().unwrap();
        assert!(msg.plaintext.is_empty());
    }

    #[test]
    fn corrupted_stream_poisons_reader() {
        let (mut w, mut r) = pair();
        let mut wire = w.seal_message(ContentType::ApplicationData, b"secret");
        wire[HEADER_LEN + 9] ^= 0xFF;
        r.push(&wire);
        assert_eq!(r.next_message(), Err(ReadRecordError::DecryptFailed));
        assert_eq!(r.next_message(), Err(ReadRecordError::DecryptFailed));
    }

    #[test]
    fn garbage_header_is_bad_header() {
        let (_, mut r) = pair();
        r.push(&[0xFFu8; 16]);
        assert_eq!(r.next_message(), Err(ReadRecordError::BadHeader));
    }

    #[test]
    fn scanner_sees_types_and_lengths_only() {
        let mut w = RecordWriter::new(RecordCipher::new(123, 2));
        let mut scanner = RecordScanner::new();
        let mut wire = w.seal_message(ContentType::Handshake, &[0u8; 300]);
        wire.extend(w.seal_message(ContentType::ApplicationData, &[1u8; 1000]));
        let records = scanner.push(&wire);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].content_type, ContentType::Handshake);
        assert_eq!(records[0].wire_len, HEADER_LEN + 300 + AEAD_OVERHEAD);
        assert_eq!(records[0].stream_offset, 0);
        assert_eq!(records[1].content_type, ContentType::ApplicationData);
        assert_eq!(records[1].wire_len, HEADER_LEN + 1000 + AEAD_OVERHEAD);
        assert_eq!(records[1].stream_offset, records[0].wire_len as u64);
    }

    #[test]
    fn scanner_handles_partial_chunks() {
        let mut w = RecordWriter::new(RecordCipher::new(123, 2));
        let wire = w.seal_message(ContentType::ApplicationData, &[1u8; 500]);
        let mut scanner = RecordScanner::new();
        let mid = wire.len() / 2;
        assert!(scanner.push(&wire[..mid]).is_empty());
        let records = scanner.push(&wire[mid..]);
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn scanner_desyncs_on_garbage() {
        let mut scanner = RecordScanner::new();
        assert!(scanner.push(&[0u8; 32]).is_empty());
        assert!(scanner.is_desynced());
    }
}
