//! TLS record framing.
//!
//! The eavesdropper in the paper never breaks encryption; everything it
//! learns comes from the record layer's *plaintext* metadata: the 5-byte
//! record header exposing a content type and a length. The paper's monitor
//! literally filters on `ssl.record.content_type == 23` (§IV-D), i.e.
//! application-data records. This module defines that framing.

use std::fmt;

/// Length of the plaintext record header on the wire.
pub const HEADER_LEN: usize = 5;

/// Maximum plaintext fragment length per record (RFC 5246 §6.2.1).
pub const MAX_PLAINTEXT: usize = 16_384;

/// Per-record ciphertext expansion for the modeled AEAD
/// (TLS 1.2 AES-128-GCM: 8-byte explicit nonce + 16-byte tag).
pub const AEAD_OVERHEAD: usize = 24;

/// Maximum ciphertext fragment length per record.
pub const MAX_CIPHERTEXT: usize = MAX_PLAINTEXT + AEAD_OVERHEAD;

/// Bytes of a sealed record that precede the transformed payload on the
/// wire: the plaintext header plus the 8-byte explicit nonce. A caller
/// that reserves this much headroom in front of a payload can have it
/// sealed in place (no copy into a fresh record buffer).
pub const RECORD_PREFIX: usize = HEADER_LEN + 8;

/// The TLS 1.2 wire version bytes (0x03, 0x03).
pub const VERSION: (u8, u8) = (3, 3);

/// TLS record content types (RFC 5246 §6.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContentType {
    /// `change_cipher_spec` (20).
    ChangeCipherSpec,
    /// `alert` (21).
    Alert,
    /// `handshake` (22).
    Handshake,
    /// `application_data` (23) — the paper's filter target.
    ApplicationData,
}

impl ContentType {
    /// The wire byte.
    pub fn as_u8(self) -> u8 {
        match self {
            ContentType::ChangeCipherSpec => 20,
            ContentType::Alert => 21,
            ContentType::Handshake => 22,
            ContentType::ApplicationData => 23,
        }
    }

    /// Parses a wire byte.
    pub fn from_u8(byte: u8) -> Option<ContentType> {
        match byte {
            20 => Some(ContentType::ChangeCipherSpec),
            21 => Some(ContentType::Alert),
            22 => Some(ContentType::Handshake),
            23 => Some(ContentType::ApplicationData),
            _ => None,
        }
    }
}

impl fmt::Display for ContentType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ContentType::ChangeCipherSpec => "change_cipher_spec",
            ContentType::Alert => "alert",
            ContentType::Handshake => "handshake",
            ContentType::ApplicationData => "application_data",
        };
        write!(f, "{name}({})", self.as_u8())
    }
}

/// A parsed record header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordHeader {
    /// The record's content type.
    pub content_type: ContentType,
    /// Length of the (encrypted) fragment that follows the header.
    pub fragment_len: u16,
}

impl RecordHeader {
    /// Encodes the header into its 5 wire bytes.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let len = self.fragment_len.to_be_bytes();
        [
            self.content_type.as_u8(),
            VERSION.0,
            VERSION.1,
            len[0],
            len[1],
        ]
    }

    /// Decodes a header from the first [`HEADER_LEN`] bytes of `buf`.
    ///
    /// Returns `None` if `buf` is too short, the content type is unknown,
    /// or the length exceeds [`MAX_CIPHERTEXT`].
    pub fn decode(buf: &[u8]) -> Option<RecordHeader> {
        if buf.len() < HEADER_LEN {
            return None;
        }
        let content_type = ContentType::from_u8(buf[0])?;
        let fragment_len = u16::from_be_bytes([buf[3], buf[4]]);
        if fragment_len as usize > MAX_CIPHERTEXT {
            return None;
        }
        Some(RecordHeader {
            content_type,
            fragment_len,
        })
    }

    /// Total wire size of this record (header + fragment).
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.fragment_len as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_type_roundtrip() {
        for ct in [
            ContentType::ChangeCipherSpec,
            ContentType::Alert,
            ContentType::Handshake,
            ContentType::ApplicationData,
        ] {
            assert_eq!(ContentType::from_u8(ct.as_u8()), Some(ct));
        }
        assert_eq!(ContentType::from_u8(0), None);
        assert_eq!(ContentType::from_u8(24), None);
    }

    #[test]
    fn application_data_is_23() {
        // The paper's tshark filter: ssl.record.content_type == 23.
        assert_eq!(ContentType::ApplicationData.as_u8(), 23);
    }

    #[test]
    fn header_roundtrip() {
        let hdr = RecordHeader {
            content_type: ContentType::ApplicationData,
            fragment_len: 1234,
        };
        let bytes = hdr.encode();
        assert_eq!(bytes[0], 23);
        assert_eq!(bytes[1], 3);
        assert_eq!(bytes[2], 3);
        assert_eq!(RecordHeader::decode(&bytes), Some(hdr));
        assert_eq!(hdr.wire_len(), HEADER_LEN + 1234);
    }

    #[test]
    fn decode_rejects_short_and_bogus() {
        assert_eq!(RecordHeader::decode(&[23, 3]), None);
        assert_eq!(RecordHeader::decode(&[99, 3, 3, 0, 1, 0]), None);
        // Length beyond MAX_CIPHERTEXT.
        let mut bytes = RecordHeader {
            content_type: ContentType::Handshake,
            fragment_len: 100,
        }
        .encode();
        let too_big = (MAX_CIPHERTEXT as u16) + 1;
        bytes[3..5].copy_from_slice(&too_big.to_be_bytes());
        assert_eq!(RecordHeader::decode(&bytes), None);
    }

    #[test]
    fn limits_are_consistent() {
        assert_eq!(MAX_CIPHERTEXT, MAX_PLAINTEXT + AEAD_OVERHEAD);
        assert!(MAX_CIPHERTEXT <= u16::MAX as usize);
    }
}
