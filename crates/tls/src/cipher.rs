//! The modeled record cipher.
//!
//! Real cryptography is out of scope (the paper's adversary never decrypts),
//! but the simulation must still guarantee that nothing downstream can cheat
//! by peeking into "ciphertext". We therefore scramble each fragment with a
//! keystream derived from a session key and the record sequence number
//! (four splitmix64-hashed generator words per record, each advanced by a
//! Weyl increment and whitened per block — **not** cryptographically
//! secure, purely an anti-cheating seal), and append [`AEAD_OVERHEAD`]
//! filler bytes so that ciphertext lengths match what a TLS 1.2 AES-GCM
//! eavesdropper would see.
//!
//! Seal and open sit on the simulator's per-record hot path, so both the
//! keystream and the tag consume input in 8-byte blocks, and neither has a
//! serial dependency from one block to the next: the expensive hash runs
//! once per record lane (the per-block step is an add and a shift-xor),
//! and the tag folds into four independent lanes, so the CPU can keep
//! several blocks in flight.
//!
//! Tampered or reordered records fail to open, which models AEAD integrity:
//! the simulated endpoints abort on corruption just as real TLS stacks do.

use crate::record::AEAD_OVERHEAD;

/// Seals and opens record fragments for one direction of a session.
///
/// Each direction of a TLS connection has its own keys and sequence numbers;
/// create one `RecordCipher` per direction from the same session key and
/// role-distinct labels.
///
/// # Examples
///
/// ```
/// use h2priv_tls::RecordCipher;
///
/// let mut seal = RecordCipher::new(0xC0FFEE, 1);
/// let mut open = RecordCipher::new(0xC0FFEE, 1);
/// let ct = seal.seal(b"hello");
/// assert_ne!(&ct[..5], b"hello"); // scrambled on the wire
/// assert_eq!(open.open(&ct).as_deref(), Some(&b"hello"[..]));
/// ```
#[derive(Debug, Clone)]
pub struct RecordCipher {
    key: u64,
    seq: u64,
}

const PHI: u64 = 0x9E3779B97F4A7C15;

/// Running tag accumulator standing in for the AEAD tag: wrong key, wrong
/// sequence number or flipped bits make verification fail. Folds plaintext
/// in 8-byte blocks across four independent multiply-add lanes (block `i`
/// feeds lane `i % 4`), so the serial FNV multiply chain that bounds a
/// single accumulator is split four ways and the CPU can overlap the
/// multiplies; the lanes are mixed together (and avalanched) only once,
/// in [`Tag16::finish`].
#[derive(Debug, Clone, Copy)]
struct Tag16 {
    acc: [u64; 4],
}

impl Tag16 {
    fn new(key: u64, seq: u64, plaintext_len: usize) -> Self {
        let base = key ^ seq.rotate_left(17) ^ plaintext_len as u64;
        Tag16 {
            acc: [
                base,
                base.wrapping_add(PHI),
                base.wrapping_add(PHI.wrapping_mul(2)),
                base.wrapping_add(PHI.wrapping_mul(3)),
            ],
        }
    }

    #[inline]
    fn fold(&mut self, lane: usize, block: u64) {
        self.acc[lane] = self.acc[lane]
            .wrapping_mul(0x100000001b3)
            .wrapping_add(block);
    }

    fn finish(self) -> u16 {
        // Mix the lanes, then a final avalanche so every input bit reaches
        // the 16 tag bits.
        let mut acc = 0u64;
        for lane in self.acc {
            acc = (acc ^ lane).wrapping_mul(0x100000001b3);
        }
        acc ^= acc >> 33;
        acc = acc.wrapping_mul(0xFF51AFD7ED558CCD);
        acc ^= acc >> 33;
        (acc ^ (acc >> 32)) as u16
    }
}

/// Hashes one of the record's four keystream *generator words* from the
/// per-record seed — splitmix64, run exactly four times per record. The
/// expensive hash happens once per lane; within the record each lane then
/// advances by a cheap Weyl increment per 32-byte quad (see
/// [`transform`]), so the per-byte keystream cost is an add and a
/// shift-xor instead of three multiplies.
#[inline]
fn generator_word(seed: u64, lane: u64) -> u64 {
    let mut z = seed.wrapping_add(lane.wrapping_mul(PHI));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Per-quad Weyl step for the generator words: odd, so the walk visits
/// every 64-bit state, and carries ripple into the high bits quad after
/// quad.
const WEYL: u64 = PHI.wrapping_mul(4) | 1;

/// Output whitening of a generator word into eight keystream bytes — one
/// shift-xor so neighbouring Weyl states do not differ by a constant.
#[inline]
fn whiten(word: u64) -> u64 {
    word ^ (word >> 31)
}

/// One fused pass over `data`: XORs the keystream in place (8 bytes per
/// block) and folds the **plaintext** side of the transform into `tag`.
/// `data` holds plaintext when sealing and ciphertext when opening, so the
/// plaintext block is the input block when `sealing` and the post-XOR
/// block otherwise. A single read-modify-write sweep keeps the record hot
/// path at one memory pass instead of separate keystream and tag
/// traversals, and both the keystream and the tag lanes are free of
/// cross-block serial dependencies.
fn transform(seed: u64, tag: &mut Tag16, data: &mut [u8], sealing: bool) {
    // Four generator words, splitmix-hashed once per record. Block `i`
    // draws its keystream from lane `i % 4`, whose word has advanced by
    // `WEYL * (i / 4)`.
    let mut w = [
        generator_word(seed, 0),
        generator_word(seed, 1),
        generator_word(seed, 2),
        generator_word(seed, 3),
    ];
    // Main loop: four blocks per iteration. Blocks land on tag lanes
    // `0..4` in order (quads always start at a multiple of four), so the
    // four keystream whitenings and the four lane multiplies are visibly
    // independent and the CPU pipelines them instead of waiting on a
    // one-block-at-a-time chain.
    let mut quads = data.chunks_exact_mut(32);
    for quad in &mut quads {
        let mut xored = [0u64; 4];
        for (j, x) in xored.iter_mut().enumerate() {
            let word = &quad[j * 8..j * 8 + 8];
            let block = u64::from_le_bytes(word.try_into().expect("8-byte word"));
            *x = block ^ whiten(w[j]);
            w[j] = w[j].wrapping_add(WEYL);
            tag.fold(j, if sealing { block } else { *x });
        }
        for (j, x) in xored.iter().enumerate() {
            quad[j * 8..j * 8 + 8].copy_from_slice(&x.to_le_bytes());
        }
    }
    // Tail: fewer than four blocks remain, continuing on lanes `0..`
    // of the final (partial) quad row.
    let mut lane = 0usize;
    let mut chunks = quads.into_remainder().chunks_exact_mut(8);
    for chunk in &mut chunks {
        let block = u64::from_le_bytes((&*chunk).try_into().expect("8-byte chunk"));
        let xored = block ^ whiten(w[lane]);
        tag.fold(lane, if sealing { block } else { xored });
        chunk.copy_from_slice(&xored.to_le_bytes());
        lane += 1;
    }
    let rest = chunks.into_remainder();
    if !rest.is_empty() {
        let ks = whiten(w[lane]);
        let mut block = [0u8; 8];
        block[..rest.len()].copy_from_slice(rest);
        let plain = u64::from_le_bytes(block);
        let xored = plain ^ (ks & !(u64::MAX << (8 * rest.len())));
        tag.fold(lane, if sealing { plain } else { xored });
        rest.copy_from_slice(&xored.to_le_bytes()[..rest.len()]);
    }
}

/// The fused *gather* variant of [`transform`]: reads plaintext (or
/// ciphertext) from `src`, XORs the keystream, and appends the result to
/// `out` in the same sweep — one read of the source and one write of the
/// destination per byte, where the copy-then-transform-in-place shape
/// costs an extra read-modify-write pass over the destination. Keystream
/// schedule, tag lane assignment, and output bytes are identical to
/// [`transform`] over a copied buffer.
fn transform_from(seed: u64, tag: &mut Tag16, src: &[u8], out: &mut Vec<u8>, sealing: bool) {
    out.reserve(src.len());
    let mut w = [
        generator_word(seed, 0),
        generator_word(seed, 1),
        generator_word(seed, 2),
        generator_word(seed, 3),
    ];
    // Main loop: a quad (four 8-byte blocks) is staged in one 32-byte
    // stack row and appended in a single extend, so the inner work stays
    // in registers and `out` grows one cache line at a time.
    let mut quads = src.chunks_exact(32);
    for quad in &mut quads {
        let mut row = [0u8; 32];
        for (j, word) in quad.chunks_exact(8).enumerate() {
            let block = u64::from_le_bytes(word.try_into().expect("8-byte word"));
            let xored = block ^ whiten(w[j]);
            w[j] = w[j].wrapping_add(WEYL);
            tag.fold(j, if sealing { block } else { xored });
            row[j * 8..j * 8 + 8].copy_from_slice(&xored.to_le_bytes());
        }
        out.extend_from_slice(&row);
    }
    // Tail: fewer than four blocks remain, continuing on lanes `0..` of
    // the final (partial) quad row.
    let mut lane = 0usize;
    let mut chunks = quads.remainder().chunks_exact(8);
    for chunk in &mut chunks {
        let block = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let xored = block ^ whiten(w[lane]);
        tag.fold(lane, if sealing { block } else { xored });
        out.extend_from_slice(&xored.to_le_bytes());
        lane += 1;
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let ks = whiten(w[lane]);
        let mut block = [0u8; 8];
        block[..rest.len()].copy_from_slice(rest);
        let plain = u64::from_le_bytes(block);
        let xored = plain ^ (ks & !(u64::MAX << (8 * rest.len())));
        tag.fold(lane, if sealing { plain } else { xored });
        out.extend_from_slice(&xored.to_le_bytes()[..rest.len()]);
    }
}

/// The *scatter-gather* variant of [`transform_from`]: the plaintext is
/// the logical concatenation of `parts`, read in order. Output bytes, tag,
/// and keystream schedule are byte-identical to [`transform_from`] over a
/// pre-concatenated buffer — which is the point: the caller skips building
/// that buffer (the HTTP/2 mux hands the record writer a frame header and
/// a shared body chunk as separate parts).
///
/// The keystream rule generalizes from the quad loop: block `i` draws from
/// lane `i % 4`, whose generator word has advanced by one Weyl step per
/// prior use. Within one part, blocks are read at whatever byte phase the
/// preceding parts left (unaligned `u64` reads are fine); only a block
/// that *straddles* a part boundary goes through an 8-byte staging buffer.
fn transform_parts(seed: u64, tag: &mut Tag16, parts: &[&[u8]], out: &mut Vec<u8>, sealing: bool) {
    let total: usize = parts.iter().map(|p| p.len()).sum();
    out.reserve(total);
    let mut w = [
        generator_word(seed, 0),
        generator_word(seed, 1),
        generator_word(seed, 2),
        generator_word(seed, 3),
    ];
    let mut lane = 0usize;
    let mut stage = [0u8; 8];
    let mut staged = 0usize;
    let mut remaining = total;
    for part in parts {
        let mut part = *part;
        // Top up a block left straddling the previous part boundary.
        if staged > 0 {
            let take = (8 - staged).min(part.len());
            stage[staged..staged + take].copy_from_slice(&part[..take]);
            staged += take;
            part = &part[take..];
            if staged < 8 {
                continue; // part exhausted mid-block
            }
            let block = u64::from_le_bytes(stage);
            let xored = block ^ whiten(w[lane]);
            w[lane] = w[lane].wrapping_add(WEYL);
            tag.fold(lane, if sealing { block } else { xored });
            out.extend_from_slice(&xored.to_le_bytes());
            lane = (lane + 1) & 3;
            staged = 0;
            remaining -= 8;
        }
        // Whole blocks within this part, four to a row as in
        // [`transform_from`] so `out` grows one cache line at a time.
        let mut quads = part.chunks_exact(32);
        for quad in &mut quads {
            let mut row = [0u8; 32];
            for (j, word) in quad.chunks_exact(8).enumerate() {
                let block = u64::from_le_bytes(word.try_into().expect("8-byte word"));
                let l = (lane + j) & 3;
                let xored = block ^ whiten(w[l]);
                w[l] = w[l].wrapping_add(WEYL);
                tag.fold(l, if sealing { block } else { xored });
                row[j * 8..j * 8 + 8].copy_from_slice(&xored.to_le_bytes());
            }
            out.extend_from_slice(&row);
            remaining -= 32;
        }
        let mut chunks = quads.remainder().chunks_exact(8);
        for chunk in &mut chunks {
            let block = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            let xored = block ^ whiten(w[lane]);
            w[lane] = w[lane].wrapping_add(WEYL);
            tag.fold(lane, if sealing { block } else { xored });
            out.extend_from_slice(&xored.to_le_bytes());
            lane = (lane + 1) & 3;
            remaining -= 8;
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            if rest.len() == remaining {
                // Final partial block of the whole message: masked
                // keystream, zero-extended plaintext fold, exactly as in
                // [`transform_from`].
                let ks = whiten(w[lane]);
                let mut block = [0u8; 8];
                block[..rest.len()].copy_from_slice(rest);
                let plain = u64::from_le_bytes(block);
                let xored = plain ^ (ks & !(u64::MAX << (8 * rest.len())));
                tag.fold(lane, if sealing { plain } else { xored });
                out.extend_from_slice(&xored.to_le_bytes()[..rest.len()]);
                remaining -= rest.len();
            } else {
                // More parts follow: stage for the boundary-straddling
                // block.
                stage[..rest.len()].copy_from_slice(rest);
                staged = rest.len();
            }
        }
    }
    debug_assert_eq!(staged.min(remaining), remaining, "all bytes consumed");
    if staged > 0 {
        // Trailing parts were all empty: flush the staged partial block.
        let ks = whiten(w[lane]);
        let mut block = [0u8; 8];
        block[..staged].copy_from_slice(&stage[..staged]);
        let plain = u64::from_le_bytes(block);
        let xored = plain ^ (ks & !(u64::MAX << (8 * staged)));
        tag.fold(lane, if sealing { plain } else { xored });
        out.extend_from_slice(&xored.to_le_bytes()[..staged]);
    }
}

impl RecordCipher {
    /// Creates a cipher for one direction. `key` is the shared session key;
    /// `label` distinguishes directions (conventionally 1 = client→server,
    /// 2 = server→client).
    pub fn new(key: u64, label: u64) -> Self {
        RecordCipher {
            key: key ^ label.wrapping_mul(0x9E3779B97F4A7C15),
            seq: 0,
        }
    }

    /// Records sealed (or opened) so far in this direction.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Seals one fragment, consuming the next sequence number.
    ///
    /// Output length is `plaintext.len() + AEAD_OVERHEAD`.
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + AEAD_OVERHEAD);
        self.seal_into(plaintext, &mut out);
        out
    }

    /// Seals one fragment, appending the ciphertext to `out` — the
    /// allocation-free variant writers use to seal straight into a wire
    /// buffer instead of materializing each fragment separately.
    pub fn seal_into(&mut self, plaintext: &[u8], out: &mut Vec<u8>) {
        let seq = self.seq;
        self.seq += 1;
        out.reserve(plaintext.len() + AEAD_OVERHEAD);
        let start = out.len();
        // Explicit nonce (8 bytes): the sequence number, as in TLS 1.2 GCM.
        out.extend_from_slice(&seq.to_be_bytes());
        let seed = self.key ^ seq.wrapping_mul(PHI) | 1;
        let mut tag = Tag16::new(self.key, seq, plaintext.len());
        // Fused copy + keystream: the plaintext is read once and the sealed
        // bytes written once, instead of copy-then-scramble-in-place.
        transform_from(seed, &mut tag, plaintext, out, true);
        // Tag: 16 meaningful bits + 14 filler bytes to reach AEAD_OVERHEAD.
        out.extend_from_slice(&tag.finish().to_be_bytes());
        out.resize(start + plaintext.len() + AEAD_OVERHEAD, 0xA5);
    }

    /// Seals one fragment whose plaintext is the concatenation of `parts`,
    /// appending the ciphertext to `out` — byte-identical output to
    /// [`RecordCipher::seal_into`] over the concatenated bytes, without
    /// the caller ever materializing them. The batched host pump hands the
    /// frame header and the shared body chunk as separate parts, so a
    /// response body is read exactly once (by the keystream pass) on its
    /// way to the wire.
    pub fn seal_parts_into(&mut self, parts: &[&[u8]], out: &mut Vec<u8>) {
        let plaintext_len: usize = parts.iter().map(|p| p.len()).sum();
        let seq = self.seq;
        self.seq += 1;
        out.reserve(plaintext_len + AEAD_OVERHEAD);
        let start = out.len();
        out.extend_from_slice(&seq.to_be_bytes());
        let seed = self.key ^ seq.wrapping_mul(PHI) | 1;
        let mut tag = Tag16::new(self.key, seq, plaintext_len);
        transform_parts(seed, &mut tag, parts, out, true);
        out.extend_from_slice(&tag.finish().to_be_bytes());
        out.resize(start + plaintext_len + AEAD_OVERHEAD, 0xA5);
    }

    /// Seals one fragment *in place*: the plaintext already sits at
    /// `buf[body_start..]` with (at least) 8 reserved bytes immediately
    /// before it for the explicit nonce. Writes the nonce, transforms the
    /// payload where it lies, and appends the tag + filler — byte-for-byte
    /// identical output to [`RecordCipher::seal_into`], minus the plaintext
    /// copy.
    pub fn seal_in_place(&mut self, buf: &mut Vec<u8>, body_start: usize) {
        debug_assert!(body_start >= 8);
        let seq = self.seq;
        self.seq += 1;
        let plaintext_len = buf.len() - body_start;
        buf[body_start - 8..body_start].copy_from_slice(&seq.to_be_bytes());
        let seed = self.key ^ seq.wrapping_mul(PHI) | 1;
        let mut tag = Tag16::new(self.key, seq, plaintext_len);
        transform(seed, &mut tag, &mut buf[body_start..], true);
        buf.extend_from_slice(&tag.finish().to_be_bytes());
        buf.resize(body_start - 8 + plaintext_len + AEAD_OVERHEAD, 0xA5);
    }

    /// Opens one fragment, consuming the next sequence number.
    ///
    /// Returns `None` if the fragment is too short, the explicit nonce does
    /// not match the expected sequence number (replay/reorder), or the tag
    /// check fails (corruption).
    pub fn open(&mut self, ciphertext: &[u8]) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        self.open_into(ciphertext, &mut out).then_some(out)
    }

    /// Opens one fragment, appending the plaintext to `out` — the sink
    /// variant readers use to decrypt straight into a stream buffer instead
    /// of materializing each fragment separately. On failure `out` is left
    /// exactly as it was and the sequence number is not consumed.
    pub fn open_into(&mut self, ciphertext: &[u8], out: &mut Vec<u8>) -> bool {
        if ciphertext.len() < AEAD_OVERHEAD {
            return false;
        }
        let seq = u64::from_be_bytes(ciphertext[..8].try_into().expect("8 bytes"));
        if seq != self.seq {
            return false;
        }
        let body_len = ciphertext.len() - AEAD_OVERHEAD;
        let body = &ciphertext[8..8 + body_len];
        let seed = self.key ^ seq.wrapping_mul(PHI) | 1;
        let start = out.len();
        let mut tag = Tag16::new(self.key, seq, body_len);
        // Fused copy + keystream, as in `seal_into`: ciphertext is read
        // once and plaintext written once.
        transform_from(seed, &mut tag, body, out, false);
        let wire_tag = u16::from_be_bytes(
            ciphertext[8 + body_len..8 + body_len + 2]
                .try_into()
                .expect("2 bytes"),
        );
        if wire_tag != tag.finish() {
            out.truncate(start);
            return false;
        }
        self.seq += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_many_records() {
        let mut seal = RecordCipher::new(42, 1);
        let mut open = RecordCipher::new(42, 1);
        for i in 0..50u32 {
            let msg = vec![i as u8; (i as usize * 37) % 1000 + 1];
            let ct = seal.seal(&msg);
            assert_eq!(ct.len(), msg.len() + AEAD_OVERHEAD);
            assert_eq!(open.open(&ct), Some(msg));
        }
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let mut seal = RecordCipher::new(42, 1);
        let msg = vec![0u8; 256];
        let ct = seal.seal(&msg);
        // The body (after the nonce) must not be all zeros.
        assert!(ct[8..8 + 256].iter().any(|&b| b != 0));
    }

    #[test]
    fn same_plaintext_different_records_differ() {
        let mut seal = RecordCipher::new(42, 1);
        let a = seal.seal(b"identical");
        let b = seal.seal(b"identical");
        assert_ne!(a, b);
    }

    #[test]
    fn directions_are_independent() {
        let mut c2s = RecordCipher::new(42, 1);
        let mut s2c_wrong = RecordCipher::new(42, 2);
        let ct = c2s.seal(b"request");
        assert_eq!(s2c_wrong.open(&ct), None);
    }

    #[test]
    fn wrong_key_fails() {
        let mut seal = RecordCipher::new(42, 1);
        let mut open = RecordCipher::new(43, 1);
        assert_eq!(open.open(&seal.seal(b"secret")), None);
    }

    #[test]
    fn corruption_fails() {
        let mut seal = RecordCipher::new(42, 1);
        let mut open = RecordCipher::new(42, 1);
        let mut ct = seal.seal(b"payload");
        ct[10] ^= 0x01;
        assert_eq!(open.open(&ct), None);
    }

    #[test]
    fn reorder_fails() {
        let mut seal = RecordCipher::new(42, 1);
        let mut open = RecordCipher::new(42, 1);
        let first = seal.seal(b"one");
        let second = seal.seal(b"two");
        // Delivering the second record first is a sequence mismatch.
        assert_eq!(open.open(&second), None);
        // The first still opens (sequence untouched by the failed open).
        assert_eq!(open.open(&first).as_deref(), Some(&b"one"[..]));
    }

    #[test]
    fn empty_plaintext_roundtrips() {
        let mut seal = RecordCipher::new(42, 1);
        let mut open = RecordCipher::new(42, 1);
        let ct = seal.seal(b"");
        assert_eq!(ct.len(), AEAD_OVERHEAD);
        assert_eq!(open.open(&ct).as_deref(), Some(&b""[..]));
    }

    #[test]
    fn fused_gather_seal_matches_in_place_seal() {
        // `seal_into` (fused source→dest pass) and `seal_in_place`
        // (copy + in-place transform) must stay byte-identical at every
        // tail shape: empty, sub-block, block, quad, and fragment sizes.
        for len in [0usize, 1, 7, 8, 9, 15, 31, 32, 33, 63, 64, 100, 1000, 16384] {
            let msg: Vec<u8> = (0..len).map(|i| (i.wrapping_mul(31) % 251) as u8).collect();
            let mut fused_cipher = RecordCipher::new(0xABCD, 1);
            let mut inplace_cipher = RecordCipher::new(0xABCD, 1);
            let mut fused = Vec::new();
            fused_cipher.seal_into(&msg, &mut fused);
            let mut inplace = vec![0u8; 8];
            inplace.extend_from_slice(&msg);
            inplace_cipher.seal_in_place(&mut inplace, 8);
            assert_eq!(fused, inplace, "len {len}");
        }
    }

    #[test]
    fn gather_seal_matches_contiguous_seal() {
        // `seal_parts_into` over any split of the plaintext must be
        // byte-identical to `seal_into` over the concatenation — every
        // part-boundary phase vs. the 8-byte block grid and the 32-byte
        // quad grid, including empty parts and an all-parts-empty record.
        let msg: Vec<u8> = (0..1000)
            .map(|i: usize| (i.wrapping_mul(37) % 241) as u8)
            .collect();
        for len in [0usize, 1, 7, 8, 9, 31, 32, 33, 100, 1000] {
            let msg = &msg[..len];
            let mut splits: Vec<Vec<usize>> = vec![vec![len]];
            for a in [0usize, 1, 7, 8, 9, 15, 16, 17] {
                if a <= len {
                    splits.push(vec![a, len - a]);
                    for b in [0usize, 1, 8, 9, 13] {
                        if a + b <= len {
                            splits.push(vec![a, b, len - a - b]);
                        }
                    }
                }
            }
            let mut contiguous = Vec::new();
            RecordCipher::new(0x5EA1, 2).seal_into(msg, &mut contiguous);
            for split in splits {
                let mut parts: Vec<&[u8]> = Vec::new();
                let mut pos = 0;
                for n in &split {
                    parts.push(&msg[pos..pos + n]);
                    pos += n;
                }
                let mut gathered = Vec::new();
                RecordCipher::new(0x5EA1, 2).seal_parts_into(&parts, &mut gathered);
                assert_eq!(gathered, contiguous, "len {len} split {split:?}");
                let mut opened = Vec::new();
                assert!(
                    RecordCipher::new(0x5EA1, 2).open_into(&gathered, &mut opened),
                    "len {len} split {split:?}"
                );
                assert_eq!(opened, msg);
            }
        }
    }

    #[test]
    fn short_ciphertext_rejected() {
        let mut open = RecordCipher::new(42, 1);
        assert_eq!(open.open(&[0u8; 10]), None);
    }
}
