//! The modeled record cipher.
//!
//! Real cryptography is out of scope (the paper's adversary never decrypts),
//! but the simulation must still guarantee that nothing downstream can cheat
//! by peeking into "ciphertext". We therefore scramble each fragment with a
//! keystream derived from a session key and the record sequence number
//! (a xorshift64* generator — **not** cryptographically secure, purely an
//! anti-cheating seal), and append [`AEAD_OVERHEAD`] filler bytes so that
//! ciphertext lengths match what a TLS 1.2 AES-GCM eavesdropper would see.
//!
//! Tampered or reordered records fail to open, which models AEAD integrity:
//! the simulated endpoints abort on corruption just as real TLS stacks do.

use crate::record::AEAD_OVERHEAD;

/// Seals and opens record fragments for one direction of a session.
///
/// Each direction of a TLS connection has its own keys and sequence numbers;
/// create one `RecordCipher` per direction from the same session key and
/// role-distinct labels.
///
/// # Examples
///
/// ```
/// use h2priv_tls::RecordCipher;
///
/// let mut seal = RecordCipher::new(0xC0FFEE, 1);
/// let mut open = RecordCipher::new(0xC0FFEE, 1);
/// let ct = seal.seal(b"hello");
/// assert_ne!(&ct[..5], b"hello"); // scrambled on the wire
/// assert_eq!(open.open(&ct).as_deref(), Some(&b"hello"[..]));
/// ```
#[derive(Debug, Clone)]
pub struct RecordCipher {
    key: u64,
    seq: u64,
}

/// A 16-bit checksum standing in for the AEAD tag: wrong key, wrong
/// sequence number or flipped bits make verification fail.
fn tag16(key: u64, seq: u64, plaintext: &[u8]) -> u16 {
    let mut acc = key ^ seq.rotate_left(17);
    for (i, &b) in plaintext.iter().enumerate() {
        acc = acc
            .wrapping_mul(0x100000001b3)
            .wrapping_add(b as u64 + i as u64);
    }
    (acc ^ (acc >> 32)) as u16
}

fn keystream_byte(state: &mut u64) -> u8 {
    // xorshift64* step.
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    (x.wrapping_mul(0x2545F4914F6CDD1D) >> 56) as u8
}

impl RecordCipher {
    /// Creates a cipher for one direction. `key` is the shared session key;
    /// `label` distinguishes directions (conventionally 1 = client→server,
    /// 2 = server→client).
    pub fn new(key: u64, label: u64) -> Self {
        RecordCipher {
            key: key ^ label.wrapping_mul(0x9E3779B97F4A7C15),
            seq: 0,
        }
    }

    /// Records sealed (or opened) so far in this direction.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Seals one fragment, consuming the next sequence number.
    ///
    /// Output length is `plaintext.len() + AEAD_OVERHEAD`.
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let seq = self.seq;
        self.seq += 1;
        let mut out = Vec::with_capacity(plaintext.len() + AEAD_OVERHEAD);
        // Explicit nonce (8 bytes): the sequence number, as in TLS 1.2 GCM.
        out.extend_from_slice(&seq.to_be_bytes());
        let mut state = self.key ^ seq.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        out.extend(plaintext.iter().map(|&b| b ^ keystream_byte(&mut state)));
        // Tag: 16 meaningful bits + 14 filler bytes to reach AEAD_OVERHEAD.
        let tag = tag16(self.key, seq, plaintext);
        out.extend_from_slice(&tag.to_be_bytes());
        out.resize(plaintext.len() + AEAD_OVERHEAD, 0xA5);
        out
    }

    /// Opens one fragment, consuming the next sequence number.
    ///
    /// Returns `None` if the fragment is too short, the explicit nonce does
    /// not match the expected sequence number (replay/reorder), or the tag
    /// check fails (corruption).
    pub fn open(&mut self, ciphertext: &[u8]) -> Option<Vec<u8>> {
        if ciphertext.len() < AEAD_OVERHEAD {
            return None;
        }
        let seq = u64::from_be_bytes(ciphertext[..8].try_into().expect("8 bytes"));
        if seq != self.seq {
            return None;
        }
        let body_len = ciphertext.len() - AEAD_OVERHEAD;
        let body = &ciphertext[8..8 + body_len];
        let mut state = self.key ^ seq.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let plaintext: Vec<u8> = body
            .iter()
            .map(|&b| b ^ keystream_byte(&mut state))
            .collect();
        let tag = u16::from_be_bytes(
            ciphertext[8 + body_len..8 + body_len + 2]
                .try_into()
                .expect("2 bytes"),
        );
        if tag != tag16(self.key, seq, &plaintext) {
            return None;
        }
        self.seq += 1;
        Some(plaintext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_many_records() {
        let mut seal = RecordCipher::new(42, 1);
        let mut open = RecordCipher::new(42, 1);
        for i in 0..50u32 {
            let msg = vec![i as u8; (i as usize * 37) % 1000 + 1];
            let ct = seal.seal(&msg);
            assert_eq!(ct.len(), msg.len() + AEAD_OVERHEAD);
            assert_eq!(open.open(&ct), Some(msg));
        }
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let mut seal = RecordCipher::new(42, 1);
        let msg = vec![0u8; 256];
        let ct = seal.seal(&msg);
        // The body (after the nonce) must not be all zeros.
        assert!(ct[8..8 + 256].iter().any(|&b| b != 0));
    }

    #[test]
    fn same_plaintext_different_records_differ() {
        let mut seal = RecordCipher::new(42, 1);
        let a = seal.seal(b"identical");
        let b = seal.seal(b"identical");
        assert_ne!(a, b);
    }

    #[test]
    fn directions_are_independent() {
        let mut c2s = RecordCipher::new(42, 1);
        let mut s2c_wrong = RecordCipher::new(42, 2);
        let ct = c2s.seal(b"request");
        assert_eq!(s2c_wrong.open(&ct), None);
    }

    #[test]
    fn wrong_key_fails() {
        let mut seal = RecordCipher::new(42, 1);
        let mut open = RecordCipher::new(43, 1);
        assert_eq!(open.open(&seal.seal(b"secret")), None);
    }

    #[test]
    fn corruption_fails() {
        let mut seal = RecordCipher::new(42, 1);
        let mut open = RecordCipher::new(42, 1);
        let mut ct = seal.seal(b"payload");
        ct[10] ^= 0x01;
        assert_eq!(open.open(&ct), None);
    }

    #[test]
    fn reorder_fails() {
        let mut seal = RecordCipher::new(42, 1);
        let mut open = RecordCipher::new(42, 1);
        let first = seal.seal(b"one");
        let second = seal.seal(b"two");
        // Delivering the second record first is a sequence mismatch.
        assert_eq!(open.open(&second), None);
        // The first still opens (sequence untouched by the failed open).
        assert_eq!(open.open(&first).as_deref(), Some(&b"one"[..]));
    }

    #[test]
    fn empty_plaintext_roundtrips() {
        let mut seal = RecordCipher::new(42, 1);
        let mut open = RecordCipher::new(42, 1);
        let ct = seal.seal(b"");
        assert_eq!(ct.len(), AEAD_OVERHEAD);
        assert_eq!(open.open(&ct).as_deref(), Some(&b""[..]));
    }

    #[test]
    fn short_ciphertext_rejected() {
        let mut open = RecordCipher::new(42, 1);
        assert_eq!(open.open(&[0u8; 10]), None);
    }
}
