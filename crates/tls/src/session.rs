//! A modeled TLS session: handshake transcript plus record protection for
//! both directions.
//!
//! The handshake does no real key agreement — both sides are constructed
//! with the same session key — but it *does* put realistically-sized
//! `handshake(22)` records on the wire before any `application_data(23)`
//! flows. That matters for the reproduction: the paper's traffic monitor
//! distinguishes GET requests from handshake noise purely via the
//! `content_type == 23` filter, so our traces must contain both kinds.

use h2priv_bytes::SharedBytes;

use crate::cipher::RecordCipher;
use crate::codec::{ReadRecordError, RecordReader, RecordWriter, TlsMessage};
use crate::record::ContentType;

/// Which side of the connection a session is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The connection initiator (browser).
    Client,
    /// The accepting side (web server).
    Server,
}

/// Modeled handshake message sizes (bytes of handshake plaintext), chosen to
/// match a typical TLS 1.2 RSA exchange as seen in packet captures.
mod flight_sizes {
    /// ClientHello with a normal extension set.
    pub const CLIENT_HELLO: usize = 512;
    /// ServerHello + Certificate chain + ServerHelloDone.
    pub const SERVER_FLIGHT: usize = 3400;
    /// ClientKeyExchange + ChangeCipherSpec + Finished.
    pub const CLIENT_FINISH: usize = 134;
    /// Server ChangeCipherSpec + Finished.
    pub const SERVER_FINISH: usize = 51;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HandshakeState {
    /// Client: nothing sent yet. Server: waiting for ClientHello.
    Start,
    /// Client: hello sent, waiting for the server flight.
    /// Server: flight sent, waiting for the client finish.
    FlightSent,
    /// Both finished; application data may flow.
    Established,
}

/// Errors from session processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionError {
    /// The record layer failed (bad header / decryption).
    Record(ReadRecordError),
    /// Application data arrived before the handshake completed.
    EarlyAppData,
    /// The peer sent an unexpected handshake message.
    UnexpectedHandshake,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Record(e) => write!(f, "record layer failure: {e}"),
            SessionError::EarlyAppData => write!(f, "application data before handshake completed"),
            SessionError::UnexpectedHandshake => write!(f, "unexpected handshake message"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ReadRecordError> for SessionError {
    fn from(e: ReadRecordError) -> Self {
        SessionError::Record(e)
    }
}

/// Output of feeding received bytes into a session.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionOutput {
    /// Bytes to transmit to the peer (handshake replies).
    pub reply: Vec<u8>,
    /// Decrypted application-data payloads, in order.
    pub app_data: Vec<Vec<u8>>,
    /// True exactly once: on the call during which the handshake completed.
    pub established_now: bool,
}

/// One endpoint's TLS session.
///
/// # Examples
///
/// ```
/// use h2priv_tls::{Role, TlsSession};
///
/// let mut client = TlsSession::new(Role::Client, 0xBEEF);
/// let mut server = TlsSession::new(Role::Server, 0xBEEF);
///
/// // Client → Server: ClientHello.
/// let hello = client.initial_flight().expect("client starts");
/// let out = server.receive(&hello).unwrap();
/// // Server → Client: server flight; the client establishes on sending
/// // its finish (false start).
/// let out = client.receive(&out.reply).unwrap();
/// assert!(out.established_now);
/// let out = server.receive(&out.reply).unwrap();
/// assert!(out.established_now);
/// client.receive(&out.reply).unwrap(); // server finish: no-op for client
///
/// // Application data now flows.
/// let wire = client.seal_app_data(b"GET /").unwrap();
/// let got = server.receive(&wire).unwrap();
/// assert_eq!(got.app_data, vec![b"GET /".to_vec()]);
/// ```
#[derive(Debug, Clone)]
pub struct TlsSession {
    role: Role,
    state: HandshakeState,
    writer: RecordWriter,
    reader: RecordReader,
}

impl TlsSession {
    /// Creates a session. Both endpoints of a connection must use the same
    /// `session_key` (the modeled out-of-band key agreement).
    pub fn new(role: Role, session_key: u64) -> Self {
        let (seal_label, open_label) = match role {
            Role::Client => (1, 2),
            Role::Server => (2, 1),
        };
        TlsSession {
            role,
            state: HandshakeState::Start,
            writer: RecordWriter::new(RecordCipher::new(session_key, seal_label)),
            reader: RecordReader::new(RecordCipher::new(session_key, open_label)),
        }
    }

    /// The session's role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Surrenders the record reader's idle stash buffer to `sink` (for a
    /// buffer pool), if it is empty. See [`RecordReader::take_buf_spare`].
    pub fn shed_spare_capacity(&mut self, sink: &mut dyn FnMut(Vec<u8>)) {
        if let Some(buf) = self.reader.take_buf_spare() {
            sink(buf);
        }
    }

    /// Warms the record reader's stash from recycled capacity. See
    /// [`RecordReader::give_buf_spare`].
    pub fn adopt_spare_capacity(&mut self, supply: &mut dyn FnMut() -> Option<Vec<u8>>) {
        if let Some(buf) = supply() {
            self.reader.give_buf_spare(buf);
        }
    }

    /// True once the handshake has completed.
    pub fn is_established(&self) -> bool {
        self.state == HandshakeState::Established
    }

    /// The client's opening flight (ClientHello). Returns `None` for
    /// servers or if already sent.
    pub fn initial_flight(&mut self) -> Option<Vec<u8>> {
        if self.role != Role::Client || self.state != HandshakeState::Start {
            return None;
        }
        self.state = HandshakeState::FlightSent;
        Some(self.writer.seal_message(
            ContentType::Handshake,
            &vec![0x01; flight_sizes::CLIENT_HELLO],
        ))
    }

    /// Feeds received wire bytes into the session.
    ///
    /// # Errors
    ///
    /// Fails on record-layer corruption, application data before
    /// establishment, or out-of-place handshake messages. A failed session
    /// should be torn down, as a real stack would after a fatal alert.
    pub fn receive(&mut self, bytes: &[u8]) -> Result<SessionOutput, SessionError> {
        self.reader.push(bytes);
        let mut out = SessionOutput::default();
        while let Some(msg) = self.reader.next_message()? {
            self.handle_message(msg, &mut out)?;
        }
        Ok(out)
    }

    /// Feeds received wire bytes into the session, appending application
    /// plaintext to `app` instead of returning per-record chunks — the
    /// sink variant the host's pump uses so that steady-state receive
    /// decrypts straight into one reusable stream buffer (no per-record
    /// allocation). `SessionOutput::app_data` is left empty.
    ///
    /// # Errors
    ///
    /// As for [`receive`](Self::receive).
    pub fn receive_into(
        &mut self,
        bytes: &[u8],
        app: &mut Vec<u8>,
    ) -> Result<SessionOutput, SessionError> {
        let mut input = bytes;
        let mut out = SessionOutput::default();
        loop {
            let before = app.len();
            let Some(content_type) = self.reader.next_record_borrowed(&mut input, app)? else {
                break;
            };
            match content_type {
                ContentType::ApplicationData => {
                    if self.state != HandshakeState::Established {
                        return Err(SessionError::EarlyAppData);
                    }
                }
                ContentType::Handshake | ContentType::ChangeCipherSpec => {
                    // Handshake plaintext drives the state machine but is
                    // not application data.
                    app.truncate(before);
                    self.advance_handshake(&mut out)?;
                }
                ContentType::Alert => app.truncate(before),
            }
        }
        Ok(out)
    }

    fn handle_message(
        &mut self,
        msg: TlsMessage,
        out: &mut SessionOutput,
    ) -> Result<(), SessionError> {
        match msg.content_type {
            ContentType::ApplicationData => {
                if self.state != HandshakeState::Established {
                    return Err(SessionError::EarlyAppData);
                }
                out.app_data.push(msg.plaintext);
                Ok(())
            }
            ContentType::Handshake | ContentType::ChangeCipherSpec => self.advance_handshake(out),
            ContentType::Alert => Ok(()), // modeled alerts are informational
        }
    }

    fn advance_handshake(&mut self, out: &mut SessionOutput) -> Result<(), SessionError> {
        match (self.role, self.state) {
            // Server got ClientHello: send the server flight.
            (Role::Server, HandshakeState::Start) => {
                out.reply.extend(self.writer.seal_message(
                    ContentType::Handshake,
                    &vec![0x02; flight_sizes::SERVER_FLIGHT],
                ));
                self.state = HandshakeState::FlightSent;
                Ok(())
            }
            // Client got the server flight: send finish, consider
            // ourselves established (TLS false start — the client may
            // send application data along with its Finished).
            (Role::Client, HandshakeState::FlightSent) => {
                out.reply.extend(
                    self.writer
                        .seal_message(ContentType::Handshake, &[0x03; flight_sizes::CLIENT_FINISH]),
                );
                self.state = HandshakeState::Established;
                out.established_now = true;
                Ok(())
            }
            // Server got the client finish: send our finish, established.
            (Role::Server, HandshakeState::FlightSent) => {
                out.reply.extend(
                    self.writer
                        .seal_message(ContentType::Handshake, &[0x04; flight_sizes::SERVER_FINISH]),
                );
                self.state = HandshakeState::Established;
                out.established_now = true;
                Ok(())
            }
            // Client receiving the server's Finished after false start:
            // nothing to do.
            (Role::Client, HandshakeState::Established) => Ok(()),
            _ => Err(SessionError::UnexpectedHandshake),
        }
    }

    /// Seals application bytes for transmission. The sealed record is
    /// returned as a [`SharedBytes`] so callers can queue it on a TCP
    /// connection (or clone it into taps) without copying it again.
    ///
    /// # Errors
    ///
    /// Fails with [`SessionError::EarlyAppData`] before establishment.
    pub fn seal_app_data(&mut self, payload: &[u8]) -> Result<SharedBytes, SessionError> {
        if self.state != HandshakeState::Established {
            return Err(SessionError::EarlyAppData);
        }
        Ok(SharedBytes::from_vec(
            self.writer
                .seal_message(ContentType::ApplicationData, payload),
        ))
    }

    /// Seals application bytes, appending the wire record(s) to `out` —
    /// the sink variant of [`seal_app_data`](Self::seal_app_data),
    /// producing byte-identical wire output. The batched host pump seals a
    /// whole run of queued messages into one reused buffer with this, so
    /// sealing N records costs a single keystream pass over the coalesced
    /// run and zero steady-state allocations.
    ///
    /// # Errors
    ///
    /// Fails with [`SessionError::EarlyAppData`] before establishment
    /// (leaving `out` untouched).
    pub fn seal_app_data_into(
        &mut self,
        payload: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), SessionError> {
        if self.state != HandshakeState::Established {
            return Err(SessionError::EarlyAppData);
        }
        self.writer
            .seal_message_into(ContentType::ApplicationData, payload, out);
        Ok(())
    }

    /// Seals application bytes given as separate `parts` (their logical
    /// concatenation is the message), appending the wire record(s) to
    /// `out` — byte-identical to [`seal_app_data_into`] over the
    /// concatenated bytes, without materializing them. The host pump's
    /// split DATA path seals `[frame header, shared body, pad]` directly.
    ///
    /// [`seal_app_data_into`]: Self::seal_app_data_into
    ///
    /// # Errors
    ///
    /// Fails with [`SessionError::EarlyAppData`] before establishment
    /// (leaving `out` untouched).
    pub fn seal_app_data_parts_into(
        &mut self,
        parts: &[&[u8]],
        out: &mut Vec<u8>,
    ) -> Result<(), SessionError> {
        if self.state != HandshakeState::Established {
            return Err(SessionError::EarlyAppData);
        }
        self.writer
            .seal_message_parts_into(ContentType::ApplicationData, parts, out);
        Ok(())
    }

    /// Seals application bytes *in place*: `buf[RECORD_PREFIX..]` holds the
    /// payload (at most [`MAX_PLAINTEXT`](crate::MAX_PLAINTEXT) bytes) and
    /// the leading [`RECORD_PREFIX`](crate::RECORD_PREFIX) bytes are
    /// reserved for the record header and nonce. On success `buf` holds the
    /// complete wire record — byte-identical to what
    /// [`TlsSession::seal_app_data`] would return, without copying the
    /// payload.
    ///
    /// # Errors
    ///
    /// Fails with [`SessionError::EarlyAppData`] before establishment
    /// (leaving `buf` untouched).
    pub fn seal_app_data_in_place(&mut self, buf: &mut Vec<u8>) -> Result<(), SessionError> {
        if self.state != HandshakeState::Established {
            return Err(SessionError::EarlyAppData);
        }
        self.writer
            .seal_message_in_place(ContentType::ApplicationData, buf);
        Ok(())
    }

    /// Total records sealed by this endpoint (handshake + data).
    pub fn records_sealed(&self) -> u64 {
        self.writer.records_sealed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn establish() -> (TlsSession, TlsSession) {
        let mut client = TlsSession::new(Role::Client, 7);
        let mut server = TlsSession::new(Role::Server, 7);
        let hello = client.initial_flight().unwrap();
        let s1 = server.receive(&hello).unwrap();
        let c1 = client.receive(&s1.reply).unwrap();
        assert!(c1.established_now);
        let s2 = server.receive(&c1.reply).unwrap();
        assert!(s2.established_now);
        let c2 = client.receive(&s2.reply).unwrap();
        assert!(c2.reply.is_empty());
        (client, server)
    }

    #[test]
    fn full_handshake_establishes_both_sides() {
        let (client, server) = establish();
        assert!(client.is_established());
        assert!(server.is_established());
    }

    #[test]
    fn app_data_flows_both_ways() {
        let (mut client, mut server) = establish();
        let wire = client.seal_app_data(b"request").unwrap();
        let got = server.receive(&wire).unwrap();
        assert_eq!(got.app_data, vec![b"request".to_vec()]);
        let wire = server.seal_app_data(b"response").unwrap();
        let got = client.receive(&wire).unwrap();
        assert_eq!(got.app_data, vec![b"response".to_vec()]);
    }

    #[test]
    fn false_start_app_data_with_finish() {
        let mut client = TlsSession::new(Role::Client, 7);
        let mut server = TlsSession::new(Role::Server, 7);
        let hello = client.initial_flight().unwrap();
        let s1 = server.receive(&hello).unwrap();
        let mut c1 = client.receive(&s1.reply).unwrap();
        // Client piggybacks a request onto its finish flight.
        c1.reply
            .extend_from_slice(&client.seal_app_data(b"early").unwrap());
        let s2 = server.receive(&c1.reply).unwrap();
        assert!(s2.established_now);
        assert_eq!(s2.app_data, vec![b"early".to_vec()]);
    }

    #[test]
    fn early_app_data_is_rejected() {
        let mut client = TlsSession::new(Role::Client, 7);
        assert_eq!(client.seal_app_data(b"x"), Err(SessionError::EarlyAppData));
    }

    #[test]
    fn server_has_no_initial_flight() {
        let mut server = TlsSession::new(Role::Server, 7);
        assert_eq!(server.initial_flight(), None);
    }

    #[test]
    fn client_initial_flight_only_once() {
        let mut client = TlsSession::new(Role::Client, 7);
        assert!(client.initial_flight().is_some());
        assert_eq!(client.initial_flight(), None);
    }

    #[test]
    fn mismatched_keys_fail() {
        let mut client = TlsSession::new(Role::Client, 7);
        let mut server = TlsSession::new(Role::Server, 8);
        let hello = client.initial_flight().unwrap();
        assert!(server.receive(&hello).is_err());
    }

    #[test]
    fn fragmented_delivery() {
        let (mut client, mut server) = establish();
        let wire = client.seal_app_data(&vec![9u8; 40_000]).unwrap();
        // Deliver in uneven chunks.
        let mut collected = Vec::new();
        for chunk in wire.chunks(1461) {
            let got = server.receive(chunk).unwrap();
            collected.extend(got.app_data);
        }
        let total: Vec<u8> = collected.into_iter().flatten().collect();
        assert_eq!(total, vec![9u8; 40_000]);
    }

    #[test]
    fn handshake_record_count_and_types() {
        // A fresh transcript contains exactly 4 handshake records before
        // any application data — the monitor must be able to skip them.
        let (client, server) = establish();
        assert_eq!(client.records_sealed(), 2); // hello + finish
        assert_eq!(server.records_sealed(), 2); // flight + finish
    }
}
