//! Property-based tests of the analysis crate: the degree-of-multiplexing
//! metric's invariants and the observer pipeline's totality.
//!
//! Gated behind the `proptests` feature: the external `proptest` crate is
//! unavailable in offline builds. Re-add the dev-dependency and enable the
//! feature to run these.
#![cfg(feature = "proptests")]

use h2priv_analysis::{segment_bursts, GroundTruth, StreamFollower};
use h2priv_http2::StreamId;
use h2priv_netsim::{SimDuration, SimTime};
use h2priv_tcp::{Seq, TcpFlags, TcpSegment};
use h2priv_web::ObjectId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Degrees are always within [0, 1].
    #[test]
    fn degree_is_a_fraction(
        layout in proptest::collection::vec((0u32..8, 1u64..2_000), 1..40),
    ) {
        // Lay consecutive ranges owned by pseudo-random instances.
        let mut gt = GroundTruth::new();
        let mut offset = 0u64;
        for &(who, len) in &layout {
            let inst = StreamId(1 + 2 * who);
            gt.add_range(offset, offset + len, ObjectId(who), inst);
            offset += len;
        }
        for &(who, _) in &layout {
            let inst = StreamId(1 + 2 * who);
            gt.mark_complete(inst);
            let d = gt.degree_of_instance(inst).unwrap();
            prop_assert!((0.0..=1.0).contains(&d), "degree {d}");
        }
    }

    /// Strictly sequential transmissions always have degree zero, in any
    /// instance order.
    #[test]
    fn sequential_layout_has_degree_zero(
        sizes in proptest::collection::vec(1u64..5_000, 1..20),
    ) {
        let mut gt = GroundTruth::new();
        let mut offset = 0;
        for (i, &len) in sizes.iter().enumerate() {
            let inst = StreamId(1 + 2 * i as u32);
            gt.add_range(offset, offset + len, ObjectId(i as u32), inst);
            gt.mark_complete(inst);
            offset += len;
        }
        for i in 0..sizes.len() {
            let inst = StreamId(1 + 2 * i as u32);
            prop_assert_eq!(gt.degree_of_instance(inst), Some(0.0));
        }
    }

    /// Perfect round-robin interleaving of ≥ 2 instances gives every
    /// instance a high degree (> 0.5 for interior chunks).
    #[test]
    fn round_robin_layout_is_multiplexed(
        instances in 2u32..6,
        rounds in 3u64..20,
        chunk in 1u64..2_000,
    ) {
        let mut gt = GroundTruth::new();
        let mut offset = 0;
        for _ in 0..rounds {
            for who in 0..instances {
                let inst = StreamId(1 + 2 * who);
                gt.add_range(offset, offset + chunk, ObjectId(who), inst);
                offset += chunk;
            }
        }
        for who in 0..instances {
            let inst = StreamId(1 + 2 * who);
            gt.mark_complete(inst);
            let d = gt.degree_of_instance(inst).unwrap();
            prop_assert!(d > 0.5, "instance {inst} degree {d}");
        }
    }

    /// Burst segmentation conserves records and bytes, and burst starts are
    /// separated by at least the gap.
    #[test]
    fn bursts_conserve_records(
        gaps_ms in proptest::collection::vec(0u64..100, 1..60),
        min_gap_ms in 1u64..50,
    ) {
        let mut t = 0u64;
        let mut offset = 0u64;
        let records: Vec<h2priv_analysis::RecordEvent> = gaps_ms
            .iter()
            .map(|&g| {
                t += g;
                let r = h2priv_analysis::RecordEvent {
                    time: SimTime::from_millis(t),
                    dir: h2priv_netsim::Dir::RightToLeft,
                    content_type: h2priv_tls::ContentType::ApplicationData,
                    wire_len: 100,
                    stream_offset: offset,
                };
                offset += 100;
                r
            })
            .collect();
        let bursts = segment_bursts(&records, SimDuration::from_millis(min_gap_ms));
        prop_assert_eq!(
            bursts.iter().map(|b| b.records).sum::<usize>(),
            records.len()
        );
        let total: u64 = bursts.iter().map(|b| b.plaintext_bytes).sum();
        prop_assert_eq!(total, records.iter().map(|r| r.plaintext_len() as u64).sum::<u64>());
        for w in bursts.windows(2) {
            prop_assert!(w[1].start.saturating_since(w[0].end) >= SimDuration::from_millis(min_gap_ms));
        }
    }

    /// The passive follower reproduces the endpoint's byte stream for any
    /// segmentation and delivery order of a sent stream.
    #[test]
    fn follower_matches_endpoint_stream(
        len in 1usize..20_000,
        mss in 100usize..1_460,
        swaps in proptest::collection::vec((any::<prop::sample::Index>(), any::<prop::sample::Index>()), 0..10),
    ) {
        let data: Vec<u8> = (0..len).map(|i| (i % 256) as u8).collect();
        let mut segments: Vec<TcpSegment> = data
            .chunks(mss)
            .enumerate()
            .map(|(i, c)| TcpSegment {
                seq: Seq(1_001 + (i * mss) as u32),
                ack: Seq(0),
                flags: TcpFlags::ACK,
                window: 0,
                payload: c.to_vec().into(),
            })
            .collect();
        let n = segments.len();
        for (a, b) in &swaps {
            segments.swap(a.index(n), b.index(n));
        }
        let mut follower = StreamFollower::new();
        follower.push(&TcpSegment {
            seq: Seq(1_000),
            ack: Seq(0),
            flags: TcpFlags::SYN,
            window: 0,
            payload: h2priv_bytes::SharedBytes::new(),
        });
        let mut stream = Vec::new();
        for seg in &segments {
            stream.extend(follower.push(seg));
        }
        prop_assert_eq!(stream, data);
    }
}
