//! Burst segmentation: the eavesdropper's object-boundary heuristic.
//!
//! Fig. 1 of the paper: when transmissions are serialized, an object's
//! packets form a contiguous run ending in a delimiting (sub-MTU) packet,
//! and "the adversary can sum up the packet sizes … to determine their
//! sizes". Our observer works one level up, on reconstructed TLS records:
//! a *burst* is a maximal run of server→client application-data records
//! with no inter-record gap ≥ `min_gap`. When the adversary has forced
//! serialization, each response is one burst whose summed plaintext length
//! estimates the object size; under baseline multiplexing, bursts span
//! several objects and the estimate matches nothing.

use h2priv_netsim::{SimDuration, SimTime};

use crate::records::RecordEvent;

/// A maximal gap-free run of records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Burst {
    /// Arrival time of the first record.
    pub start: SimTime,
    /// Arrival time of the last record.
    pub end: SimTime,
    /// Number of records in the burst.
    pub records: usize,
    /// Sum of plaintext fragment lengths — the observer's size estimate.
    pub plaintext_bytes: u64,
    /// TLS stream offset of the first record (ties bursts to stream order).
    pub first_offset: u64,
    /// Wire length of the first record. A response burst opens with a
    /// small HEADERS-frame record; a burst that opens with a full-size
    /// DATA record is a fragment of an interrupted transfer.
    pub first_record_wire: usize,
}

/// Splits time-ordered records (one direction, pre-filtered to
/// application data) into bursts at gaps of at least `min_gap`.
pub fn segment_bursts(records: &[RecordEvent], min_gap: SimDuration) -> Vec<Burst> {
    let mut out: Vec<Burst> = Vec::new();
    for r in records {
        let start_new = match out.last() {
            None => true,
            Some(last) => r.time.saturating_since(last.end) >= min_gap,
        };
        if start_new {
            out.push(Burst {
                start: r.time,
                end: r.time,
                records: 1,
                plaintext_bytes: r.plaintext_len() as u64,
                first_offset: r.stream_offset,
                first_record_wire: r.wire_len,
            });
        } else {
            let last = out.last_mut().expect("non-empty after first record");
            last.end = r.time;
            last.records += 1;
            last.plaintext_bytes += r.plaintext_len() as u64;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_netsim::Dir;
    use h2priv_tls::ContentType;

    fn rec(ms: u64, plaintext: usize, offset: u64) -> RecordEvent {
        RecordEvent {
            time: SimTime::from_millis(ms),
            dir: Dir::RightToLeft,
            content_type: ContentType::ApplicationData,
            wire_len: plaintext + h2priv_tls::HEADER_LEN + h2priv_tls::AEAD_OVERHEAD,
            stream_offset: offset,
        }
    }

    #[test]
    fn single_burst() {
        let records = vec![rec(0, 100, 0), rec(1, 200, 129), rec(2, 300, 358)];
        let bursts = segment_bursts(&records, SimDuration::from_millis(10));
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].plaintext_bytes, 600);
        assert_eq!(bursts[0].records, 3);
        assert_eq!(bursts[0].start, SimTime::ZERO);
        assert_eq!(bursts[0].end, SimTime::from_millis(2));
    }

    #[test]
    fn gap_splits_bursts() {
        let records = vec![rec(0, 100, 0), rec(1, 100, 129), rec(50, 500, 258)];
        let bursts = segment_bursts(&records, SimDuration::from_millis(10));
        assert_eq!(bursts.len(), 2);
        assert_eq!(bursts[0].plaintext_bytes, 200);
        assert_eq!(bursts[1].plaintext_bytes, 500);
        assert_eq!(bursts[1].first_offset, 258);
    }

    #[test]
    fn gap_exactly_at_threshold_splits() {
        let records = vec![rec(0, 10, 0), rec(10, 10, 39)];
        let bursts = segment_bursts(&records, SimDuration::from_millis(10));
        assert_eq!(bursts.len(), 2);
    }

    #[test]
    fn empty_input() {
        assert!(segment_bursts(&[], SimDuration::from_millis(1)).is_empty());
    }

    #[test]
    fn plaintext_len_inverts_overhead() {
        let r = rec(0, 1234, 0);
        assert_eq!(r.plaintext_len(), 1234);
    }
}
