//! # h2priv-analysis — encrypted-traffic analysis
//!
//! Part of the `h2priv` reproduction of *"Depending on HTTP/2 for Privacy?
//! Good Luck!"* (DSN 2020). Everything the paper's eavesdropper computes
//! from captured traffic lives here, plus the simulation-side ground truth
//! used to score it:
//!
//! * [`WireTrace`]/[`ObservedPacket`] — the capture: header fields, sizes,
//!   timings, encrypted payload octets; never key material.
//! * [`StreamFollower`] — passive TCP reassembly (what `tshark` does).
//! * [`RecordExtractor`]/[`extract_records`] — keyless TLS record
//!   recovery; [`app_data_records`] is the paper's
//!   `ssl.record.content_type == 23` filter.
//! * [`segment_bursts`] — the Fig. 1 boundary heuristic lifted to record
//!   level: serialized responses form bursts whose summed sizes identify
//!   objects.
//! * [`GroundTruth`] — the §II-A *degree of multiplexing* metric, computed
//!   from seal-time annotations the simulation host records.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bursts;
mod follower;
mod observed;
mod records;
#[cfg(test)]
mod records_tests_extra;
pub mod stats;
mod truth;

pub use bursts::{segment_bursts, Burst};
pub use follower::StreamFollower;
pub use observed::{ObservedPacket, WireTrace};
pub use records::{app_data_records, extract_records, RecordEvent, RecordExtractor};
pub use truth::{GroundTruth, ObjectRange};
