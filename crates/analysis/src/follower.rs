//! Passive TCP stream following.
//!
//! `tshark` reconstructs TCP streams from captured packets without being an
//! endpoint; so does the paper's monitor. [`StreamFollower`] does the same:
//! it learns the initial sequence number from the SYN, maps wire sequence
//! numbers to stream offsets, and reassembles the byte stream — duplicates
//! and retransmissions included — using the very same [`Reassembler`] the
//! endpoints use. Reassembly is not an endpoint privilege.

use h2priv_tcp::{Reassembler, Seq, TcpSegment};

/// Follows one direction of one TCP connection from captured segments.
#[derive(Debug, Clone, Default)]
pub struct StreamFollower {
    /// The sender's ISN, learned from its SYN.
    isn: Option<Seq>,
    reassembler: Reassembler,
    /// Segments seen before the SYN (should not happen in ordered captures;
    /// counted for diagnostics).
    orphan_segments: u64,
}

impl StreamFollower {
    /// Creates a follower awaiting the SYN.
    pub fn new() -> Self {
        StreamFollower::default()
    }

    /// Feeds one captured segment (must be from the followed direction).
    /// Returns any newly contiguous stream bytes.
    pub fn push(&mut self, segment: &TcpSegment) -> Vec<u8> {
        if segment.flags.syn {
            self.isn = Some(segment.seq);
            return Vec::new();
        }
        let Some(isn) = self.isn else {
            if !segment.payload.is_empty() {
                self.orphan_segments += 1;
            }
            return Vec::new();
        };
        if segment.payload.is_empty() {
            return Vec::new();
        }
        // Data starts at isn + 1 (the SYN consumes one sequence number).
        let offset = (segment.seq - (isn + 1)) as u64;
        self.reassembler.insert(offset, &segment.payload);
        self.reassembler.read()
    }

    /// Bytes buffered out of order (a gap is in front of them).
    pub fn gap_bytes(&self) -> usize {
        self.reassembler.pending_bytes()
    }

    /// Duplicate bytes seen (retransmissions).
    pub fn duplicate_bytes(&self) -> u64 {
        self.reassembler.duplicate_bytes()
    }

    /// Segments with data that arrived before the SYN was seen.
    pub fn orphan_segments(&self) -> u64 {
        self.orphan_segments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_tcp::TcpFlags;

    fn syn(seq: u32) -> TcpSegment {
        TcpSegment {
            seq: Seq(seq),
            ack: Seq(0),
            flags: TcpFlags::SYN,
            window: 1000,
            payload: h2priv_bytes::SharedBytes::new(),
        }
    }

    fn data(seq: u32, payload: &[u8]) -> TcpSegment {
        TcpSegment {
            seq: Seq(seq),
            ack: Seq(0),
            flags: TcpFlags::ACK,
            window: 1000,
            payload: payload.to_vec().into(),
        }
    }

    #[test]
    fn follows_in_order_stream() {
        let mut f = StreamFollower::new();
        assert!(f.push(&syn(100)).is_empty());
        assert_eq!(f.push(&data(101, b"hel")), b"hel");
        assert_eq!(f.push(&data(104, b"lo")), b"lo");
    }

    #[test]
    fn reorders_like_an_endpoint() {
        let mut f = StreamFollower::new();
        f.push(&syn(100));
        assert!(f.push(&data(104, b"lo")).is_empty());
        assert_eq!(f.gap_bytes(), 2);
        assert_eq!(f.push(&data(101, b"hel")), b"hello");
    }

    #[test]
    fn retransmissions_are_deduplicated() {
        let mut f = StreamFollower::new();
        f.push(&syn(100));
        assert_eq!(f.push(&data(101, b"abc")), b"abc");
        assert!(f.push(&data(101, b"abc")).is_empty());
        assert_eq!(f.duplicate_bytes(), 3);
    }

    #[test]
    fn data_before_syn_is_orphaned() {
        let mut f = StreamFollower::new();
        assert!(f.push(&data(101, b"abc")).is_empty());
        assert_eq!(f.orphan_segments(), 1);
    }

    #[test]
    fn pure_acks_produce_nothing() {
        let mut f = StreamFollower::new();
        f.push(&syn(100));
        assert!(f.push(&data(101, b"")).is_empty());
    }
}
