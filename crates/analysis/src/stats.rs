//! Small statistics helpers for experiment summaries.

/// Arithmetic mean; 0.0 for empty input.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation; 0.0 for fewer than two values.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64).sqrt()
}

/// Percentile by nearest-rank (p in 0..=100); 0.0 for empty input.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Fraction of items satisfying a predicate; 0.0 for empty input.
pub fn fraction<T>(items: &[T], pred: impl Fn(&T) -> bool) -> f64 {
    if items.is_empty() {
        return 0.0;
    }
    items.iter().filter(|i| pred(i)).count() as f64 / items.len() as f64
}

/// Percentage change from `baseline` to `value` (+33.0 means 33 % more).
/// Returns 0.0 when the baseline is zero.
pub fn percent_increase(baseline: f64, value: f64) -> f64 {
    if baseline == 0.0 {
        return 0.0;
    }
    (value - baseline) / baseline * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        let sd = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((sd - 2.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&v, 50.0), 5.0);
        assert_eq!(percentile(&v, 100.0), 10.0);
        assert_eq!(percentile(&v, 1.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn fraction_counts() {
        let v = [1, 2, 3, 4];
        assert_eq!(fraction(&v, |&x| x % 2 == 0), 0.5);
        assert_eq!(fraction::<i32>(&[], |_| true), 0.0);
    }

    #[test]
    fn percent_increase_math() {
        assert_eq!(percent_increase(100.0, 133.0), 33.0);
        assert_eq!(percent_increase(0.0, 5.0), 0.0);
        assert_eq!(percent_increase(50.0, 25.0), -50.0);
    }
}
