//! TLS record extraction from a captured trace.
//!
//! Combines [`StreamFollower`] reassembly with the keyless
//! [`RecordScanner`] to recover, for each direction, the sequence of record
//! headers with arrival timestamps. The result is the paper's working
//! dataset: its monitor counts GET requests with the filter
//! `ssl.record.content_type == 23` over exactly this view (§IV-D, §V).

use h2priv_netsim::{Dir, SimTime};
use h2priv_tls::{ContentType, RecordScanner};

use crate::follower::StreamFollower;
use crate::observed::{ObservedPacket, WireTrace};

/// One record as seen by the observer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordEvent {
    /// Arrival time of the packet that completed the record.
    pub time: SimTime,
    /// Direction of travel.
    pub dir: Dir,
    /// Content type from the plaintext record header.
    pub content_type: ContentType,
    /// Full record size on the wire (header + encrypted fragment).
    pub wire_len: usize,
    /// Offset of the record within its direction's TLS byte stream.
    pub stream_offset: u64,
}

impl RecordEvent {
    /// The encrypted fragment's plaintext length (the observer knows the
    /// record-layer constants, so this is computable without keys).
    pub fn plaintext_len(&self) -> usize {
        self.wire_len
            .saturating_sub(h2priv_tls::HEADER_LEN + h2priv_tls::AEAD_OVERHEAD)
    }
}

/// Incremental record extractor for one direction.
#[derive(Debug, Clone, Default)]
pub struct RecordExtractor {
    follower: StreamFollower,
    scanner: RecordScanner,
}

impl RecordExtractor {
    /// Creates an extractor.
    pub fn new() -> Self {
        RecordExtractor::default()
    }

    /// Feeds one captured packet; returns records completed by it.
    pub fn push(&mut self, packet: &ObservedPacket) -> Vec<RecordEvent> {
        let segment = h2priv_tcp::TcpSegment {
            seq: packet.seq,
            ack: packet.ack,
            flags: packet.flags,
            window: 0,
            payload: packet.payload.clone(),
        };
        let bytes = self.follower.push(&segment);
        if bytes.is_empty() {
            return Vec::new();
        }
        self.scanner
            .push(&bytes)
            .into_iter()
            .map(|r| RecordEvent {
                time: packet.time,
                dir: packet.dir,
                content_type: r.content_type,
                wire_len: r.wire_len,
                stream_offset: r.stream_offset,
            })
            .collect()
    }
}

/// Extracts all records from a completed capture, both directions, in
/// arrival order.
pub fn extract_records(trace: &WireTrace) -> Vec<RecordEvent> {
    let mut c2s = RecordExtractor::new();
    let mut s2c = RecordExtractor::new();
    let mut out = Vec::new();
    for packet in &trace.packets {
        let extractor = match packet.dir {
            Dir::LeftToRight => &mut c2s,
            Dir::RightToLeft => &mut s2c,
        };
        out.extend(extractor.push(packet));
    }
    out
}

/// Convenience filter: application-data records in one direction — the
/// paper's `content_type == 23` view.
pub fn app_data_records(records: &[RecordEvent], dir: Dir) -> Vec<RecordEvent> {
    records
        .iter()
        .filter(|r| r.dir == dir && r.content_type == ContentType::ApplicationData)
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_tcp::{Seq, TcpFlags, TcpSegment};
    use h2priv_tls::{RecordCipher, RecordWriter};

    /// Builds a capture of one direction carrying `messages` as records,
    /// split into MSS-sized packets.
    fn capture(messages: &[(ContentType, usize)]) -> WireTrace {
        let mut writer = RecordWriter::new(RecordCipher::new(5, 2));
        let mut stream = Vec::new();
        for &(ct, len) in messages {
            stream.extend(writer.seal_message(ct, &vec![0xAB; len]));
        }
        let mut trace = WireTrace::new();
        // SYN first.
        trace.push(ObservedPacket::capture(
            SimTime::ZERO,
            Dir::RightToLeft,
            &TcpSegment {
                seq: Seq(500),
                ack: Seq(0),
                flags: TcpFlags::SYN,
                window: 0,
                payload: h2priv_bytes::SharedBytes::new(),
            },
        ));
        for (i, chunk) in stream.chunks(1460).enumerate() {
            trace.push(ObservedPacket::capture(
                SimTime::from_millis(1 + i as u64),
                Dir::RightToLeft,
                &TcpSegment {
                    seq: Seq(501 + (i * 1460) as u32),
                    ack: Seq(0),
                    flags: TcpFlags::ACK,
                    window: 0,
                    payload: chunk.into(),
                },
            ));
        }
        trace
    }

    #[test]
    fn extracts_records_with_sizes() {
        let trace = capture(&[
            (ContentType::Handshake, 512),
            (ContentType::ApplicationData, 2_000),
            (ContentType::ApplicationData, 100),
        ]);
        let records = extract_records(&trace);
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].content_type, ContentType::Handshake);
        assert_eq!(records[0].plaintext_len(), 512);
        assert_eq!(records[1].plaintext_len(), 2_000);
        assert_eq!(records[2].plaintext_len(), 100);
        // Offsets are cumulative.
        assert_eq!(records[1].stream_offset, records[0].wire_len as u64);
    }

    #[test]
    fn app_data_filter_matches_paper() {
        let trace = capture(&[
            (ContentType::Handshake, 512),
            (ContentType::ApplicationData, 64),
        ]);
        let records = extract_records(&trace);
        let app = app_data_records(&records, Dir::RightToLeft);
        assert_eq!(app.len(), 1);
        assert_eq!(app[0].plaintext_len(), 64);
        assert!(app_data_records(&records, Dir::LeftToRight).is_empty());
    }

    #[test]
    fn records_spanning_packets_stamp_completion_time() {
        // One 2000-byte record spans two 1460-byte packets: completion time
        // is the second packet's.
        let trace = capture(&[(ContentType::ApplicationData, 2_000)]);
        let records = extract_records(&trace);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].time, SimTime::from_millis(2));
    }

    #[test]
    fn out_of_order_capture_still_extracts() {
        let mut trace = capture(&[(ContentType::ApplicationData, 4_000)]);
        // Swap two data packets.
        let n = trace.packets.len();
        assert!(n >= 3);
        trace.packets.swap(1, 2);
        let records = extract_records(&trace);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].plaintext_len(), 4_000);
    }
}
