//! What a passive on-path observer sees.
//!
//! The paper's adversary "can (1) access unencrypted header fields of both
//! control and data packets, (2) monitor size of encrypted packets" (§III).
//! An [`ObservedPacket`] is exactly that: TCP/IP header fields, sizes,
//! timing, and the (encrypted) payload octets — never any decryption key.

use h2priv_bytes::SharedBytes;
use h2priv_netsim::{Dir, SimTime};
use h2priv_tcp::{TcpFlags, TcpSegment};

/// One packet as captured at the gateway.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservedPacket {
    /// Capture timestamp.
    pub time: SimTime,
    /// Direction through the gateway.
    pub dir: Dir,
    /// Total bytes on the wire.
    pub wire_bytes: u32,
    /// TCP sequence number (plaintext header field).
    pub seq: h2priv_tcp::Seq,
    /// TCP acknowledgment number.
    pub ack: h2priv_tcp::Seq,
    /// TCP flags.
    pub flags: TcpFlags,
    /// The encrypted payload octets (copyable off the wire; opaque without
    /// the session keys). A shared view of the captured segment's bytes —
    /// capturing does not copy the payload.
    pub payload: SharedBytes,
}

impl ObservedPacket {
    /// Captures a segment transiting the gateway at `time`.
    pub fn capture(time: SimTime, dir: Dir, segment: &TcpSegment) -> Self {
        ObservedPacket {
            time,
            dir,
            wire_bytes: segment.wire_bytes(),
            seq: segment.seq,
            ack: segment.ack,
            flags: segment.flags,
            payload: segment.payload.clone(),
        }
    }
}

/// A complete capture of one connection's traffic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireTrace {
    /// Packets in capture order.
    pub packets: Vec<ObservedPacket>,
}

impl WireTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        WireTrace::default()
    }

    /// Appends a packet.
    pub fn push(&mut self, packet: ObservedPacket) {
        self.packets.push(packet);
    }

    /// Packets traveling in `dir`.
    pub fn in_dir(&self, dir: Dir) -> impl Iterator<Item = &ObservedPacket> {
        self.packets.iter().filter(move |p| p.dir == dir)
    }

    /// Total wire bytes in `dir`.
    pub fn bytes_in_dir(&self, dir: Dir) -> u64 {
        self.in_dir(dir).map(|p| p.wire_bytes as u64).sum()
    }

    /// Number of packets captured.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Capture duration (first to last packet).
    pub fn duration(&self) -> h2priv_netsim::SimDuration {
        match (self.packets.first(), self.packets.last()) {
            (Some(a), Some(b)) => b.time - a.time,
            _ => h2priv_netsim::SimDuration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_tcp::Seq;

    fn seg(len: usize) -> TcpSegment {
        TcpSegment {
            seq: Seq(1),
            ack: Seq(2),
            flags: TcpFlags::ACK,
            window: 1000,
            payload: vec![0xEE; len].into(),
        }
    }

    #[test]
    fn capture_copies_metadata() {
        let p = ObservedPacket::capture(SimTime::from_millis(3), Dir::LeftToRight, &seg(100));
        assert_eq!(p.wire_bytes, 140);
        assert_eq!(p.payload.len(), 100);
        assert_eq!(p.time, SimTime::from_millis(3));
    }

    #[test]
    fn trace_filters_by_direction() {
        let mut t = WireTrace::new();
        t.push(ObservedPacket::capture(
            SimTime::ZERO,
            Dir::LeftToRight,
            &seg(10),
        ));
        t.push(ObservedPacket::capture(
            SimTime::from_millis(1),
            Dir::RightToLeft,
            &seg(20),
        ));
        t.push(ObservedPacket::capture(
            SimTime::from_millis(2),
            Dir::RightToLeft,
            &seg(30),
        ));
        assert_eq!(t.len(), 3);
        assert_eq!(t.in_dir(Dir::RightToLeft).count(), 2);
        assert_eq!(t.bytes_in_dir(Dir::RightToLeft), 60 + 70);
        assert_eq!(t.duration(), h2priv_netsim::SimDuration::from_millis(2));
    }

    #[test]
    fn empty_trace() {
        let t = WireTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.duration(), h2priv_netsim::SimDuration::ZERO);
    }
}
