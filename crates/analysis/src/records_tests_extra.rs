//! Additional record-extraction edge cases: mixed directions, desync
//! behaviour, and retransmission transparency — the situations the live
//! monitor encounters during the attack's disruption phase.

use crate::{extract_records, ObservedPacket, RecordExtractor, WireTrace};
use h2priv_netsim::{Dir, SimTime};
use h2priv_tcp::{Seq, TcpFlags, TcpSegment};
use h2priv_tls::{ContentType, RecordCipher, RecordWriter};

struct Flow {
    writer: RecordWriter,
    next_seq: u32,
    dir: Dir,
    synced: bool,
}

impl Flow {
    fn new(dir: Dir, label: u64) -> Self {
        Flow {
            writer: RecordWriter::new(RecordCipher::new(42, label)),
            next_seq: 1_001,
            dir,
            synced: false,
        }
    }

    fn syn(&mut self) -> ObservedPacket {
        self.synced = true;
        ObservedPacket::capture(
            SimTime::ZERO,
            self.dir,
            &TcpSegment {
                seq: Seq(1_000),
                ack: Seq(0),
                flags: TcpFlags::SYN,
                window: 0,
                payload: h2priv_bytes::SharedBytes::new(),
            },
        )
    }

    fn message(&mut self, len: usize, at_ms: u64) -> Vec<ObservedPacket> {
        assert!(self.synced);
        let wire = self
            .writer
            .seal_message(ContentType::ApplicationData, &vec![7u8; len]);
        wire.chunks(1460)
            .map(|chunk| {
                let seq = self.next_seq;
                self.next_seq += chunk.len() as u32;
                ObservedPacket::capture(
                    SimTime::from_millis(at_ms),
                    self.dir,
                    &TcpSegment {
                        seq: Seq(seq),
                        ack: Seq(0),
                        flags: TcpFlags::ACK,
                        window: 0,
                        payload: chunk.to_vec().into(),
                    },
                )
            })
            .collect()
    }
}

#[test]
fn directions_are_followed_independently() {
    let mut c2s = Flow::new(Dir::LeftToRight, 1);
    let mut s2c = Flow::new(Dir::RightToLeft, 2);
    let mut trace = WireTrace::new();
    trace.push(c2s.syn());
    trace.push(s2c.syn());
    // Interleave packets of both directions.
    for p in c2s.message(100, 1) {
        trace.push(p);
    }
    for p in s2c.message(5_000, 2) {
        trace.push(p);
    }
    for p in c2s.message(80, 3) {
        trace.push(p);
    }
    let records = extract_records(&trace);
    let c2s_count = records.iter().filter(|r| r.dir == Dir::LeftToRight).count();
    let s2c_count = records.iter().filter(|r| r.dir == Dir::RightToLeft).count();
    assert_eq!(c2s_count, 2);
    assert_eq!(s2c_count, 1);
    // Stream offsets are per-direction.
    let offsets: Vec<u64> = records
        .iter()
        .filter(|r| r.dir == Dir::LeftToRight)
        .map(|r| r.stream_offset)
        .collect();
    assert_eq!(offsets[0], 0);
    assert!(offsets[1] > 0);
}

#[test]
fn hole_blocks_later_records_until_filled() {
    let mut flow = Flow::new(Dir::RightToLeft, 2);
    let mut extractor = RecordExtractor::new();
    extractor.push(&flow.syn());
    let first = flow.message(2_000, 1);
    let second = flow.message(2_000, 2);
    // Deliver the second message's packets first: nothing completes.
    let mut got = 0;
    for p in &second {
        got += extractor.push(p).len();
    }
    assert_eq!(got, 0, "records behind a hole must not complete");
    // Fill the hole: both messages flood out, stamped with the filling
    // packet's time — exactly the behaviour the adversary's gate has to
    // wait out after its drop window.
    let mut released = Vec::new();
    for p in &first {
        released.extend(extractor.push(p));
    }
    assert_eq!(released.len(), 2);
    assert!(released
        .iter()
        .all(|r| r.time == first.last().unwrap().time));
}

#[test]
fn duplicate_packets_do_not_duplicate_records() {
    let mut flow = Flow::new(Dir::RightToLeft, 2);
    let mut extractor = RecordExtractor::new();
    extractor.push(&flow.syn());
    let packets = flow.message(3_000, 1);
    let mut count = 0;
    for p in &packets {
        count += extractor.push(p).len();
    }
    for p in &packets {
        count += extractor.push(p).len();
    }
    assert_eq!(count, 1);
}
