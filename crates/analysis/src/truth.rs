//! Ground truth and the paper's privacy metric.
//!
//! §II-A: *"We define the degree of multiplexing of an object as the
//! fraction of bytes of the object that is interleaved with those of
//! another object within the same TCP stream"*, and the attack succeeds on
//! an object only when its degree is driven to 0 **and** the object is
//! identified from the encrypted traffic.
//!
//! The simulation host records, at TLS-seal time, which server→client TCP
//! byte ranges carry which response's DATA. Each response *instance* (one
//! HTTP/2 stream serving one copy of an object — duplicate serves are
//! separate instances) owns a set of ranges; an instance's bytes are
//! *interleaved* when they fall inside the transmission span of any other
//! instance.

use h2priv_bytes::FxHashMap;

use h2priv_http2::StreamId;
use h2priv_web::ObjectId;

/// A contiguous server→client TCP byte range carrying one instance's data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectRange {
    /// First TCP stream offset (inclusive).
    pub start: u64,
    /// One past the last offset (exclusive).
    pub end: u64,
    /// The object whose bytes these are.
    pub object: ObjectId,
    /// The response instance (HTTP/2 stream) carrying them.
    pub instance: StreamId,
}

/// Ground-truth annotations for one connection's server→client stream.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    ranges: Vec<ObjectRange>,
    complete: FxHashMap<StreamId, bool>,
    object_of: FxHashMap<StreamId, ObjectId>,
}

impl GroundTruth {
    /// Creates an empty annotation set.
    pub fn new() -> Self {
        GroundTruth::default()
    }

    /// Records that `[start, end)` carries DATA of `object` on `instance`.
    pub fn add_range(&mut self, start: u64, end: u64, object: ObjectId, instance: StreamId) {
        debug_assert!(start <= end);
        if start == end {
            return;
        }
        self.ranges.push(ObjectRange {
            start,
            end,
            object,
            instance,
        });
        self.object_of.insert(instance, object);
        self.complete.entry(instance).or_insert(false);
    }

    /// Marks an instance as fully transmitted (its END_STREAM DATA frame
    /// was sealed).
    pub fn mark_complete(&mut self, instance: StreamId) {
        self.complete.insert(instance, true);
    }

    /// All recorded ranges.
    pub fn ranges(&self) -> &[ObjectRange] {
        &self.ranges
    }

    /// The object an instance serves, if known.
    pub fn object_of(&self, instance: StreamId) -> Option<ObjectId> {
        self.object_of.get(&instance).copied()
    }

    /// Instances serving `object`, in first-byte order.
    pub fn instances_of(&self, object: ObjectId) -> Vec<StreamId> {
        let mut firsts: FxHashMap<StreamId, u64> = FxHashMap::default();
        for r in &self.ranges {
            if r.object == object {
                let e = firsts.entry(r.instance).or_insert(r.start);
                *e = (*e).min(r.start);
            }
        }
        let mut v: Vec<(u64, StreamId)> = firsts.into_iter().map(|(s, f)| (f, s)).collect();
        v.sort_unstable_by_key(|&(f, s)| (f, s));
        v.into_iter().map(|(_, s)| s).collect()
    }

    /// True if the instance finished transmitting.
    pub fn is_complete(&self, instance: StreamId) -> bool {
        self.complete.get(&instance).copied().unwrap_or(false)
    }

    /// Total bytes recorded for an instance.
    pub fn instance_bytes(&self, instance: StreamId) -> u64 {
        self.ranges
            .iter()
            .filter(|r| r.instance == instance)
            .map(|r| r.end - r.start)
            .sum()
    }

    /// The degree of multiplexing of one instance — the fraction of its
    /// bytes whose size-contribution an observer cannot attribute by
    /// contiguity. Returns `None` for an unknown instance.
    ///
    /// Two effects make a byte "interleaved with those of another object"
    /// (§II-A), and the degree is the larger of the two fractions:
    ///
    /// * **span overlap** — bytes lying within the transmission span of any
    ///   *other* instance (including another copy of the same object): they
    ///   arrive mixed into someone else's transfer;
    /// * **run breakage** — bytes outside the instance's largest contiguous
    ///   foreign-free run: a foreign insertion in the middle of the
    ///   transfer means those bytes cannot be summed with the rest.
    ///
    /// Both reduce to 0 exactly when the instance was transmitted alone and
    /// unbroken — the condition the paper's attack engineers.
    pub fn degree_of_instance(&self, instance: StreamId) -> Option<f64> {
        let mut mine: Vec<&ObjectRange> = self
            .ranges
            .iter()
            .filter(|r| r.instance == instance)
            .collect();
        if mine.is_empty() {
            return None;
        }
        mine.sort_unstable_by_key(|r| r.start);
        let total: u64 = mine.iter().map(|r| r.end - r.start).sum();

        // Span overlap.
        let mut spans: FxHashMap<StreamId, (u64, u64)> = FxHashMap::default();
        for r in &self.ranges {
            if r.instance == instance {
                continue;
            }
            let e = spans.entry(r.instance).or_insert((r.start, r.end));
            e.0 = e.0.min(r.start);
            e.1 = e.1.max(r.end);
        }
        let merged = merge_intervals(spans.values().copied().collect());
        let in_spans: u64 = mine
            .iter()
            .map(|r| overlap_with(r.start, r.end, &merged))
            .sum();
        let span_degree = in_spans as f64 / total as f64;

        // Run breakage: group consecutive own ranges not separated by
        // foreign bytes; keep the largest group.
        let foreign: Vec<(u64, u64)> = {
            let mut v: Vec<(u64, u64)> = self
                .ranges
                .iter()
                .filter(|r| r.instance != instance)
                .map(|r| (r.start, r.end))
                .collect();
            v.sort_unstable();
            v
        };
        let mut largest_run = 0u64;
        let mut current_run = 0u64;
        let mut prev_end: Option<u64> = None;
        for r in &mine {
            let broken = match prev_end {
                None => false,
                Some(pe) => foreign
                    .iter()
                    .any(|&(fs, fe)| fe > pe && fs < r.start && fe > fs),
            };
            if broken {
                largest_run = largest_run.max(current_run);
                current_run = 0;
            }
            current_run += r.end - r.start;
            prev_end = Some(r.end);
        }
        largest_run = largest_run.max(current_run);
        let run_degree = 1.0 - largest_run as f64 / total as f64;

        Some(span_degree.max(run_degree))
    }

    /// The smallest degree of multiplexing across *complete* instances of
    /// `object` — the paper counts a trial "not multiplexed" when some
    /// fully-transmitted copy of the object was interleaving-free.
    pub fn min_degree_for(&self, object: ObjectId) -> Option<f64> {
        self.instances_of(object)
            .into_iter()
            .filter(|&i| self.is_complete(i))
            .filter_map(|i| self.degree_of_instance(i))
            .min_by(|a, b| a.partial_cmp(b).expect("degrees are finite"))
    }

    /// The degree of the first (primary) complete instance of `object`.
    pub fn primary_degree_for(&self, object: ObjectId) -> Option<f64> {
        self.instances_of(object)
            .into_iter()
            .find(|&i| self.is_complete(i))
            .and_then(|i| self.degree_of_instance(i))
    }
}

fn merge_intervals(mut intervals: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    intervals.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(intervals.len());
    for (s, e) in intervals {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

fn overlap_with(start: u64, end: u64, merged: &[(u64, u64)]) -> u64 {
    // merged is sorted and disjoint.
    let mut total = 0;
    for &(s, e) in merged {
        if e <= start {
            continue;
        }
        if s >= end {
            break;
        }
        total += end.min(e) - start.max(s);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ObjectId = ObjectId(0);
    const B: ObjectId = ObjectId(1);
    const S1: StreamId = StreamId(1);
    const S3: StreamId = StreamId(3);
    const S5: StreamId = StreamId(5);

    #[test]
    fn sequential_transmissions_have_zero_degree() {
        let mut gt = GroundTruth::new();
        gt.add_range(0, 100, A, S1);
        gt.add_range(100, 250, B, S3);
        gt.mark_complete(S1);
        gt.mark_complete(S3);
        assert_eq!(gt.degree_of_instance(S1), Some(0.0));
        assert_eq!(gt.degree_of_instance(S3), Some(0.0));
        assert_eq!(gt.min_degree_for(A), Some(0.0));
    }

    #[test]
    fn fully_interleaved_is_one() {
        // A: [0,10) [20,30); B: [10,20) — B sits inside A's span entirely.
        let mut gt = GroundTruth::new();
        gt.add_range(0, 10, A, S1);
        gt.add_range(20, 30, A, S1);
        gt.add_range(10, 20, B, S3);
        gt.mark_complete(S1);
        gt.mark_complete(S3);
        assert_eq!(gt.degree_of_instance(S3), Some(1.0));
        // A's runs are broken in half by B's insertion: half its bytes
        // cannot be attributed by contiguity.
        assert_eq!(gt.degree_of_instance(S1), Some(0.5));
    }

    #[test]
    fn partial_interleaving_fraction() {
        // A occupies [0,50) and [60,110); B's span is [50,150): A's bytes
        // in [60,110) are interleaved and A's largest clean run is 50 of
        // 100 bytes → degree 0.5 under both sub-metrics.
        let mut gt = GroundTruth::new();
        gt.add_range(0, 50, A, S1);
        gt.add_range(60, 110, A, S1);
        gt.add_range(50, 60, B, S3);
        gt.add_range(140, 150, B, S3);
        gt.mark_complete(S1);
        gt.mark_complete(S3);
        assert_eq!(gt.degree_of_instance(S1), Some(0.5));
    }

    #[test]
    fn duplicate_copies_interleave_each_other() {
        // Two copies of A, interleaved: both are multiplexed even though
        // it's the "same object".
        let mut gt = GroundTruth::new();
        gt.add_range(0, 10, A, S1);
        gt.add_range(10, 20, A, S5);
        gt.add_range(20, 30, A, S1);
        gt.add_range(30, 40, A, S5);
        gt.mark_complete(S1);
        gt.mark_complete(S5);
        assert!(gt.degree_of_instance(S1).unwrap() > 0.0);
        assert!(gt.degree_of_instance(S5).unwrap() > 0.0);
        assert_eq!(gt.instances_of(A), vec![S1, S5]);
    }

    #[test]
    fn clean_retransmitted_copy_gives_min_degree_zero() {
        // Fig. 5 discussion: a success can come from "a retransmitted
        // version of the object and not the actual object". First copy
        // interleaved with B, second copy clean.
        let mut gt = GroundTruth::new();
        gt.add_range(0, 10, A, S1);
        gt.add_range(10, 20, B, S3);
        gt.add_range(20, 30, A, S1);
        gt.add_range(100, 130, A, S5); // clean second copy
        gt.mark_complete(S1);
        gt.mark_complete(S3);
        gt.mark_complete(S5);
        assert!(gt.degree_of_instance(S1).unwrap() > 0.0);
        assert_eq!(gt.degree_of_instance(S5), Some(0.0));
        assert_eq!(gt.min_degree_for(A), Some(0.0));
        assert!(gt.primary_degree_for(A).unwrap() > 0.0);
    }

    #[test]
    fn incomplete_instances_do_not_count() {
        let mut gt = GroundTruth::new();
        gt.add_range(0, 10, A, S1); // never completed
        assert_eq!(gt.min_degree_for(A), None);
        gt.mark_complete(S1);
        assert_eq!(gt.min_degree_for(A), Some(0.0));
    }

    #[test]
    fn bookkeeping_accessors() {
        let mut gt = GroundTruth::new();
        gt.add_range(0, 10, A, S1);
        gt.add_range(10, 30, A, S1);
        assert_eq!(gt.instance_bytes(S1), 30);
        assert_eq!(gt.object_of(S1), Some(A));
        assert_eq!(gt.object_of(S3), None);
        assert_eq!(gt.degree_of_instance(S3), None);
        assert!(!gt.is_complete(S1));
        // Zero-length ranges are ignored.
        gt.add_range(50, 50, B, S3);
        assert_eq!(gt.object_of(S3), None);
    }

    #[test]
    fn merge_intervals_behaviour() {
        let merged = merge_intervals(vec![(10, 20), (0, 5), (15, 30), (40, 50)]);
        assert_eq!(merged, vec![(0, 5), (10, 30), (40, 50)]);
        assert_eq!(overlap_with(0, 100, &merged), 5 + 20 + 10);
        assert_eq!(overlap_with(5, 10, &merged), 0);
    }
}
