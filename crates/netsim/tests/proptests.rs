//! Property-based tests of the simulator: conservation, ordering and
//! timing invariants of links, gateways and the event engine.
//!
//! Gated behind the `proptests` feature: the external `proptest` crate is
//! unavailable in offline builds. Re-add the dev-dependency and enable the
//! feature to run these.
#![cfg(feature = "proptests")]

use std::cell::RefCell;
use std::rc::Rc;

use h2priv_netsim::internals::{CalendarQueue, MinHeap4};
use h2priv_netsim::{
    mbps, Context, DurationDist, GatewayNode, Link, LinkConfig, MbContext, Middlebox, Node, NodeId,
    Packet, Passthrough, SimDuration, SimRng, SimTime, Simulator, Verdict,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A link's arrivals never precede its departures plus the propagation
    /// delay, never regress (order preservation), and serialization is
    /// work-conserving.
    #[test]
    fn link_timing_invariants(
        delay_us in 0u64..100_000,
        rate_mbps in 1u64..1_000,
        sizes in proptest::collection::vec(40u32..1_500, 1..50),
        send_gap_us in 0u64..2_000,
        seed: u64,
    ) {
        let cfg = LinkConfig::with_delay(SimDuration::from_micros(delay_us))
            .bandwidth(mbps(rate_mbps))
            .jitter(DurationDist::Uniform {
                lo: SimDuration::ZERO,
                hi: SimDuration::from_micros(500),
            });
        let mut link = Link::new(cfg.clone());
        let mut rng = SimRng::seed_from(seed);
        let mut last_arrival = SimTime::ZERO;
        let mut busy = SimTime::ZERO;
        for (i, &size) in sizes.iter().enumerate() {
            let now = SimTime::from_micros(i as u64 * send_gap_us);
            let arrival = link.transmit(now, size, &mut rng).unwrap();
            // Lower bound: serialization from max(now, busy) + delay.
            let start = now.max(busy);
            let min_arrival = start + cfg.serialization_time(size)
                + SimDuration::from_micros(delay_us);
            busy = start + cfg.serialization_time(size);
            prop_assert!(arrival >= min_arrival);
            // Order preserved.
            prop_assert!(arrival >= last_arrival);
            last_arrival = arrival;
        }
        prop_assert_eq!(link.stats().delivered as usize, sizes.len());
    }

    /// Lossless links deliver every packet; stats add up.
    #[test]
    fn link_conservation(
        sizes in proptest::collection::vec(40u32..1_500, 1..100),
        seed: u64,
    ) {
        let mut link = Link::new(LinkConfig::default().bandwidth(mbps(100)));
        let mut rng = SimRng::seed_from(seed);
        for &s in &sizes {
            link.transmit(SimTime::ZERO, s, &mut rng).unwrap();
        }
        let stats = link.stats();
        prop_assert_eq!(stats.delivered as usize, sizes.len());
        prop_assert_eq!(stats.delivered_bytes, sizes.iter().map(|&s| s as u64).sum::<u64>());
        prop_assert_eq!(stats.lost, 0);
        prop_assert_eq!(stats.overflowed, 0);
    }
}

/// One step of a randomized scheduler workload: push an event some delta
/// into the future (possibly a cancelled-timer tombstone — the engine pops
/// and skips those, never removes them early), or pop the minimum.
#[derive(Debug, Clone, Copy)]
enum SchedOp {
    Push { delta_ns: u64, cancelled: bool },
    Pop,
}

fn sched_op() -> impl Strategy<Value = SchedOp> {
    prop_oneof![
        // Near-future bulk: the µs-scale serialization/ACK mix.
        4 => (0u64..100_000, any::<bool>())
            .prop_map(|(delta_ns, cancelled)| SchedOp::Push { delta_ns, cancelled }),
        // Far tail: RTO- to stall-scale deadlines that cross the bucket
        // window and route through the overflow heap.
        1 => (1_000_000u64..10_000_000_000, any::<bool>())
            .prop_map(|(delta_ns, cancelled)| SchedOp::Push { delta_ns, cancelled }),
        2 => Just(SchedOp::Pop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The calendar queue pops the **exact** `(at, seq)` order of the
    /// reference min-heap it replaced, for arbitrary interleavings of
    /// near/far inserts, cancel-tombstone inserts and pops — the heavier,
    /// randomized twin of `tests/scheduler_differential.rs`.
    #[test]
    fn calendar_queue_matches_heap(ops in proptest::collection::vec(sched_op(), 1..1_500)) {
        let mut wheel = CalendarQueue::new();
        let mut heap: MinHeap4<(SimTime, u64, bool)> = MinHeap4::new();
        let mut now = SimTime::ZERO;
        let mut seq = 0u64;
        for op in ops {
            match op {
                SchedOp::Push { delta_ns, cancelled } => {
                    // Deltas are relative to the last popped instant, the
                    // only push discipline the engine (and the queue's
                    // window invariant) requires.
                    let at = now + SimDuration::from_nanos(delta_ns);
                    wheel.push(at, seq, cancelled);
                    heap.push((at, seq, cancelled));
                    seq += 1;
                }
                SchedOp::Pop => {
                    let got = wheel.pop();
                    let want = heap.pop();
                    prop_assert_eq!(got, want);
                    if let Some((at, _, _)) = got {
                        now = at;
                    }
                }
            }
        }
        loop {
            match (wheel.pop(), heap.pop()) {
                (None, None) => break,
                (got, want) => prop_assert_eq!(got, want),
            }
        }
    }
}

/// A middlebox that holds every n-th packet by a fixed amount and drops
/// every m-th.
struct PatternBox {
    n: u64,
    m: u64,
    count: u64,
    hold: SimDuration,
}

impl Middlebox<u32> for PatternBox {
    fn process(&mut self, _p: &Packet<u32>, _ctx: &mut MbContext<'_>) -> Verdict {
        self.count += 1;
        if self.m > 0 && self.count.is_multiple_of(self.m) {
            Verdict::Drop
        } else if self.n > 0 && self.count.is_multiple_of(self.n) {
            Verdict::Hold(self.hold)
        } else {
            Verdict::Forward
        }
    }
}

/// Sends `count` packets at fixed intervals; records receptions.
struct Blaster {
    peer: NodeId,
    count: u32,
    sent: u32,
}
impl Node<u32> for Blaster {
    fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
        ctx.set_timer(SimDuration::from_micros(100), 0);
    }
    fn on_packet(&mut self, _p: Packet<u32>, _ctx: &mut Context<'_, u32>) {}
    fn on_timer(&mut self, _t: u64, ctx: &mut Context<'_, u32>) {
        ctx.send(Packet::new(ctx.node_id(), self.peer, 100, self.sent));
        self.sent += 1;
        if self.sent < self.count {
            ctx.set_timer(SimDuration::from_micros(100), 0);
        }
    }
}

struct Collector {
    got: Rc<RefCell<Vec<(SimTime, u32)>>>,
}
impl Node<u32> for Collector {
    fn on_packet(&mut self, p: Packet<u32>, ctx: &mut Context<'_, u32>) {
        self.got.borrow_mut().push((ctx.now(), p.payload));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Gateway conservation: forwarded + dropped == offered; held packets
    /// arrive late but arrive.
    #[test]
    fn gateway_conserves_packets(
        count in 1u32..80,
        n in 0u64..6,
        m in 0u64..6,
        hold_ms in 1u64..50,
    ) {
        let got = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(1);
        let client = sim.reserve_node_id();
        let gw = sim.reserve_node_id();
        let server = sim.reserve_node_id();
        sim.install_node(client, Box::new(Blaster { peer: server, count, sent: 0 }));
        sim.install_node(
            gw,
            Box::new(
                GatewayNode::<u32>::new(client, server)
                    .with_middlebox(PatternBox {
                        n,
                        m,
                        count: 0,
                        hold: SimDuration::from_millis(hold_ms),
                    })
                    .with_middlebox(Passthrough),
            ),
        );
        sim.install_node(server, Box::new(Collector { got: got.clone() }));
        sim.add_link(client, gw, LinkConfig::with_delay(SimDuration::from_micros(500)));
        sim.add_link(gw, server, LinkConfig::with_delay(SimDuration::from_micros(500)));
        sim.run();
        let received = got.borrow().len() as u64;
        // Count expected drops.
        let dropped = if m > 0 { (1..=count as u64).filter(|i| i % m == 0).count() as u64 } else { 0 };
        prop_assert_eq!(received + dropped, count as u64);
        // Payloads are unique (no duplication).
        let mut payloads: Vec<u32> = got.borrow().iter().map(|&(_, p)| p).collect();
        payloads.sort_unstable();
        payloads.dedup();
        prop_assert_eq!(payloads.len() as u64, received);
    }

    /// Determinism: identical seeds and topology produce identical
    /// delivery schedules even with jitter.
    #[test]
    fn engine_is_deterministic(seed: u64, count in 1u32..40) {
        let run = |seed| {
            let got = Rc::new(RefCell::new(Vec::new()));
            let mut sim = Simulator::new(seed);
            let a = sim.reserve_node_id();
            let b = sim.reserve_node_id();
            sim.install_node(a, Box::new(Blaster { peer: b, count, sent: 0 }));
            sim.install_node(b, Box::new(Collector { got: got.clone() }));
            sim.add_link(
                a,
                b,
                LinkConfig::with_delay(SimDuration::from_micros(300))
                    .bandwidth(mbps(10))
                    .jitter(DurationDist::Exponential {
                        mean: SimDuration::from_micros(400),
                    }),
            );
            sim.run();
            let v = got.borrow().clone();
            v
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
