//! Differential tests: the calendar queue must pop the **exact** `(at,
//! seq)` order of the 4-ary min-heap it replaced, under workloads shaped
//! like the simulator's (bimodal near/far deadlines, interleaved pops,
//! cancel-style tombstones) and at pathological times near `u64::MAX`.
//!
//! These run in the default test suite; `proptests.rs` carries a heavier
//! feature-gated sweep of the same property.

use h2priv_netsim::internals::{CalendarQueue, MinHeap4};
use h2priv_netsim::{SimDuration, SimTime};

/// Deterministic xorshift64* so the workload is reproducible without any
/// external RNG crate.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Drives `ops` interleaved push/pop rounds through both queues, asserting
/// every pop matches, then drains both and asserts the tails match.
fn differential_run(seed: u64, ops: usize, pop_one_in: u64) {
    let mut rng = Rng(seed);
    let mut wheel = CalendarQueue::new();
    let mut heap: MinHeap4<(SimTime, u64, u64)> = MinHeap4::new();
    let mut now = SimTime::ZERO;
    let mut seq = 0u64;
    for _ in 0..ops {
        let r = rng.next();
        if !r.is_multiple_of(pop_one_in) {
            // Bimodal deltas mirroring the engine: mostly µs-scale
            // serialization/ACK events, a thin tail of RTO/stall deadlines.
            let delta = match r % 16 {
                0..=11 => rng.next() % 50_000,                   // ≤ 50 µs
                12 | 13 => 1_000_000 + rng.next() % 400_000_000, // ms-scale
                _ => 1_000_000_000 + rng.next() % 9_000_000_000, // s-scale
            };
            let at = now + SimDuration::from_nanos(delta);
            wheel.push(at, seq, seq);
            heap.push((at, seq, seq));
            seq += 1;
        } else if let Some(got) = wheel.pop() {
            let want = heap.pop().expect("heap tracks wheel");
            assert_eq!(got, want, "pop order diverged at seed {seed}");
            now = got.0;
        }
    }
    loop {
        match (wheel.pop(), heap.pop()) {
            (None, None) => break,
            (w, h) => assert_eq!(w, h, "drain order diverged at seed {seed}"),
        }
    }
}

#[test]
fn wheel_pops_exact_heap_order_bimodal_mix() {
    for seed in [1, 0xDEAD_BEEF, 0x1234_5678_9ABC_DEF0] {
        differential_run(seed, 20_000, 4);
    }
}

#[test]
fn wheel_pops_exact_heap_order_pop_heavy() {
    // Pop-dominated regime: the queue stays small and the window re-anchors
    // often, exercising rebase + promotion continuously.
    differential_run(7, 20_000, 2);
}

#[test]
fn wheel_matches_heap_with_cancel_style_tombstones() {
    // The engine never removes cancelled timers from the queue; it pops and
    // skips them. Model that: every key carries a "cancelled" bit decided at
    // push time, both queues must surface the tombstones identically.
    let mut rng = Rng(42);
    let mut wheel = CalendarQueue::new();
    let mut heap: MinHeap4<(SimTime, u64, bool)> = MinHeap4::new();
    let mut now = SimTime::ZERO;
    let mut fired = Vec::new();
    for seq in 0..10_000u64 {
        let delta = rng.next() % 300_000_000; // up to 300 ms: RTO-rearm churn
        let at = now + SimDuration::from_nanos(delta);
        let cancelled = rng.next().is_multiple_of(3);
        wheel.push(at, seq, cancelled);
        heap.push((at, seq, cancelled));
        if seq % 2 == 0 {
            let (at, s, c) = wheel.pop().expect("queue non-empty");
            assert_eq!(heap.pop(), Some((at, s, c)));
            now = at;
            if !c {
                fired.push(s);
            }
        }
    }
    while let Some((at, s, c)) = wheel.pop() {
        assert_eq!(heap.pop(), Some((at, s, c)));
        if !c {
            fired.push(s);
        }
    }
    assert!(heap.pop().is_none());
    assert!(fired.len() > 5_000, "most timers fire");
}

#[test]
fn rollover_near_u64_max_matches_heap() {
    // Bucket index arithmetic must not overflow at the end of time. Pile
    // keys into the last ~70 ms before u64::MAX ns (several window widths),
    // plus exact-u64::MAX keys, and require exact heap order throughout.
    let mut rng = Rng(9);
    let mut wheel = CalendarQueue::new();
    let mut heap: MinHeap4<(SimTime, u64, u64)> = MinHeap4::new();
    for seq in 0..2_000u64 {
        let back = rng.next() % 70_000_000;
        let at = SimTime::from_nanos(u64::MAX - back);
        wheel.push(at, seq, seq);
        heap.push((at, seq, seq));
    }
    for seq in 2_000..2_010u64 {
        wheel.push(SimTime::MAX, seq, seq);
        heap.push((SimTime::MAX, seq, seq));
    }
    loop {
        match (wheel.pop(), heap.pop()) {
            (None, None) => break,
            (w, h) => assert_eq!(w, h, "rollover order diverged"),
        }
    }
}

#[test]
fn saturating_push_at_exact_max_still_pops() {
    // SimTime::MAX is the engine's "infinite deadline" sentinel; keys there
    // must queue and pop like any other.
    let mut wheel = CalendarQueue::new();
    wheel.push(SimTime::from_nanos(1), 0, 'a');
    wheel.push(SimTime::MAX, 1, 'z');
    assert_eq!(wheel.pop().map(|(_, _, v)| v), Some('a'));
    assert_eq!(wheel.pop(), Some((SimTime::MAX, 1, 'z')));
    assert!(wheel.pop().is_none());
}
