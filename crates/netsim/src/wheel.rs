//! Two-tier calendar queue backing the event scheduler.
//!
//! The simulator's event mix is sharply bimodal: the bulk of events are
//! *near-future* — packet serialization at 1 Gbps is ~12 µs per MTU, ACK
//! clocking and mux refills land within a few hundred µs — while a thin
//! tail of *far-future* events (TCP RTOs at hundreds of ms, browser stall
//! timers at seconds, adversarial jitter holds at tens of ms) sits orders
//! of magnitude out. A comparison-based heap pays `O(log n)` per operation
//! with `n` inflated by that far tail; a calendar queue pays `O(1)` for
//! the dense near-future traffic and banishes the tail to an overflow heap
//! it touches only when the calendar runs dry.
//!
//! Layout:
//!
//! * **Near tier** — a ring of [`BUCKET_COUNT`] buckets, each spanning
//!   2^[`BUCKET_NANOS_SHIFT`] ns (32.768 µs), covering a window of ~67 ms
//!   from the window's `epoch` bucket. Insert is a `Vec::push` plus a
//!   bitmap bit; pop scans the occupancy bitmap to the next live bucket
//!   (word-at-a-time) and drains it in sorted order.
//! * **Far tier** — a [`MinHeap4`] of keys whose bucket lies at or beyond
//!   the window's end. When the near tier drains, the window is re-anchored
//!   at the overflow head and every overflow key now inside the new window
//!   is *promoted* into buckets.
//! * **Arena** — event payloads live in a slab ([`Arena`]) with a free
//!   list; bucket and heap entries are 24-byte `(at, seq, slot)` keys, so
//!   sorting shuffles keys, not payloads, and steady-state push/pop
//!   recycles slots without touching the allocator.
//!
//! # Determinism
//!
//! Pop order is **exactly** ascending `(at, seq)` — the same strict total
//! order the old global min-heap popped, which
//! `tests/scheduler_differential.rs` verifies against [`MinHeap4`]
//! directly. The argument:
//!
//! 1. Within a window (`epoch` fixed), every key in the buckets has a
//!    bucket index `< epoch + BUCKET_COUNT`, and every overflow key has a
//!    bucket index `>= epoch + BUCKET_COUNT` — enforced at insert and by
//!    promotion at re-anchor. Hence the near tier always holds the global
//!    minimum when it is non-empty.
//! 2. Bucket index is monotone in `at`, so scanning buckets in ring order
//!    visits keys in bucket-time order, and sorting each bucket on first
//!    drain yields full `(at, seq)` order within the bucket.
//! 3. The caller only pushes keys with `at >=` the last popped `at` (event
//!    handlers schedule at or after `now`), so a partially drained bucket
//!    only ever receives keys that sort after its drain cursor.
//!
//! The queue *requires* invariant 3: pushing a key earlier than the last
//! popped key is a caller bug (debug-asserted).

use crate::heap::MinHeap4;
use crate::time::SimTime;

/// log2 of the bucket span in nanoseconds: buckets are 32.768 µs wide —
/// a few MTU serialization quanta (12 µs at 1 Gbps), so dense bursts put
/// only a handful of keys in each bucket, while the ring still spans the
/// whole delivery/RTT scale.
pub const BUCKET_NANOS_SHIFT: u32 = 15;

/// Number of buckets in the near-future ring (must be a power of two).
/// 2048 × 32.768 µs ≈ 67 ms of look-ahead — comfortably past the
/// calibrated link delays (1 ms / 9 ms), per-packet jitter (~1.5 ms) and
/// the 20 ms RTT that paces ACK-clocked traffic, comfortably short of
/// RTO (≥ 200 ms) and stall-timer (seconds) territory.
pub const BUCKET_COUNT: usize = 2048;

const BUCKET_MASK: u64 = BUCKET_COUNT as u64 - 1;
const WORDS: usize = BUCKET_COUNT / 64;

/// Absolute bucket index of an instant.
#[inline]
fn bucket_of(at: SimTime) -> u64 {
    at.as_nanos() >> BUCKET_NANOS_SHIFT
}

/// A scheduling key: the event's instant, its tie-breaking sequence
/// number, and the arena slot holding its payload. Ordered by
/// `(at, seq)` only — `seq` is unique, so the order is strict and total.
#[derive(Debug, Clone, Copy)]
struct Key {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Slab of event payloads with a free list. Keys carry `u32` slot indices;
/// after warm-up, push/pop recycles freed slots and never allocates.
#[derive(Debug)]
struct Arena<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
}

impl<T> Arena<T> {
    const fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    fn insert(&mut self, value: T) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(value);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("more than 2^32 live events");
                self.slots.push(Some(value));
                slot
            }
        }
    }

    fn take(&mut self, slot: u32) -> T {
        let value = self.slots[slot as usize].take().expect("live arena slot");
        self.free.push(slot);
        value
    }
}

/// Counters describing how the scheduler behaved over a run; exposed via
/// [`Simulator::sched_stats`](crate::Simulator::sched_stats) and recorded
/// into `BENCH_repro.json` so baselines are self-describing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Keys inserted straight into the near-future bucket ring.
    pub near_inserts: u64,
    /// Keys inserted into the far-future overflow heap.
    pub far_inserts: u64,
    /// Overflow keys promoted into buckets at a window re-anchor.
    pub promotions: u64,
    /// Window re-anchors (near tier drained, overflow non-empty).
    pub rebases: u64,
    /// Peak number of keys resident in the bucket ring.
    pub peak_near: u64,
    /// Peak number of keys resident in the overflow heap.
    pub peak_overflow: u64,
}

impl SchedStats {
    /// Identifies the scheduler implementation these stats describe.
    pub const SCHEDULER: &'static str = "wheel";

    /// Accumulates another run's stats into `self`: counters add, peaks
    /// take the maximum. Use this when the runs are *alternative
    /// executions* of the same workload (sequential trials on one
    /// scheduler): the merged peak answers "how full did a queue ever
    /// get".
    pub fn merge(&mut self, other: &SchedStats) {
        self.near_inserts += other.near_inserts;
        self.far_inserts += other.far_inserts;
        self.promotions += other.promotions;
        self.rebases += other.rebases;
        self.peak_near = self.peak_near.max(other.peak_near);
        self.peak_overflow = self.peak_overflow.max(other.peak_overflow);
    }

    /// Accumulates stats from a *concurrently resident* scheduler into
    /// `self`: counters add, and peaks add too (saturating). Use this when
    /// the runs are shards of one partitioned workload that exist at the
    /// same instant — the fleet exhibit's per-shard wheels — where the
    /// meaningful peak is the population-wide resident total, not the
    /// fullest single shard. Without this, fleet bench JSON would report a
    /// `sched_peak_*` an order of magnitude below the single-pair
    /// exhibits' per-event-count equivalent and the numbers would not be
    /// comparable.
    pub fn merge_concurrent(&mut self, other: &SchedStats) {
        self.near_inserts += other.near_inserts;
        self.far_inserts += other.far_inserts;
        self.promotions += other.promotions;
        self.rebases += other.rebases;
        self.peak_near = self.peak_near.saturating_add(other.peak_near);
        self.peak_overflow = self.peak_overflow.saturating_add(other.peak_overflow);
    }
}

/// The two-tier calendar queue. `T` is the event payload; keys are
/// `(SimTime, u64)` pairs supplied by the caller (the simulator's global
/// sequence counter), popped in ascending order.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    /// The near-future ring; slot = absolute bucket index & `BUCKET_MASK`.
    buckets: Box<[Vec<Key>]>,
    /// One bit per ring slot: set iff the bucket is non-empty.
    occupied: [u64; WORDS],
    /// Absolute bucket index where the current window starts. Keys with
    /// bucket index in `[epoch, epoch + BUCKET_COUNT)` live in the ring.
    epoch: u64,
    /// Absolute bucket index of the bucket currently being drained
    /// (always within the window).
    cursor: u64,
    /// Drain position within the cursor bucket once sorted.
    drain_pos: usize,
    /// Whether the cursor bucket has been sorted for draining.
    sorted: bool,
    /// Total keys resident in the ring.
    near_len: usize,
    /// Far-future keys (bucket index `>= epoch + BUCKET_COUNT`).
    overflow: MinHeap4<Key>,
    arena: Arena<T>,
    stats: SchedStats,
    /// Memoized global minimum `(at, seq)`; `None` means *unknown* (not
    /// necessarily empty) and is recomputed lazily by [`Self::min_key`].
    /// Maintained O(1): push lowers it, pop refreshes it from the sorted
    /// cursor bucket when the next key is already at hand.
    cached_min: std::cell::Cell<Option<(SimTime, u64)>>,
}

impl<T> CalendarQueue<T> {
    /// Creates an empty queue anchored at time zero.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..BUCKET_COUNT).map(|_| Vec::new()).collect(),
            occupied: [0; WORDS],
            epoch: 0,
            cursor: 0,
            drain_pos: 0,
            sorted: false,
            near_len: 0,
            overflow: MinHeap4::new(),
            arena: Arena::new(),
            stats: SchedStats::default(),
            cached_min: std::cell::Cell::new(None),
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.near_len + self.overflow.len()
    }

    /// True iff no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Scheduler behaviour counters accumulated so far.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// Inserts an event. `(at, seq)` must be unique and `at` must not
    /// precede the last popped key's `at` (debug-asserted).
    pub fn push(&mut self, at: SimTime, seq: u64, value: T) {
        let slot = self.arena.insert(value);
        let key = Key { at, seq, slot };
        let b = bucket_of(at);
        // The window is never re-anchored on push: a key beyond the (possibly
        // stale) window goes to overflow, and the next pop re-anchors. That
        // keeps the window invariant safe against pushes arriving in any
        // order within one handler dispatch.
        if b < self.epoch + BUCKET_COUNT as u64 {
            debug_assert!(b >= self.cursor, "push earlier than the drain cursor");
            self.insert_near(key);
            self.stats.near_inserts += 1;
        } else {
            self.overflow.push(key);
            self.stats.far_inserts += 1;
            self.stats.peak_overflow = self.stats.peak_overflow.max(self.overflow.len() as u64);
        }
        if let Some(min) = self.cached_min.get() {
            if (at, seq) < min {
                self.cached_min.set(Some((at, seq)));
            }
        }
    }

    /// The smallest queued `(at, seq)` key, without removing it. Does not
    /// disturb the drain state, so it is safe to interleave with external
    /// work (the batched link drain peeks between deliveries).
    pub fn min_key(&self) -> Option<(SimTime, u64)> {
        if let Some(min) = self.cached_min.get() {
            return Some(min);
        }
        let min = if self.near_len > 0 {
            let abs = self
                .next_occupied_from(self.cursor)
                .expect("near_len > 0 implies an occupied bucket");
            let bucket = &self.buckets[(abs & BUCKET_MASK) as usize];
            let key = if abs == self.cursor && self.sorted {
                bucket[self.drain_pos]
            } else {
                *bucket.iter().min().expect("occupied bucket is non-empty")
            };
            Some((key.at, key.seq))
        } else {
            self.overflow.peek().map(|k| (k.at, k.seq))
        };
        // Memoize; an empty queue stays unknown (recomputing `None` is
        // as cheap as reading a cached one).
        self.cached_min.set(min);
        min
    }

    /// Removes and returns the smallest event as `(at, seq, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        if self.near_len == 0 {
            if self.overflow.is_empty() {
                return None;
            }
            self.rebase();
        }
        let abs = self
            .next_occupied_from(self.cursor)
            .expect("near_len > 0 implies an occupied bucket");
        if abs != self.cursor {
            self.cursor = abs;
            self.drain_pos = 0;
            self.sorted = false;
        }
        let ring = (self.cursor & BUCKET_MASK) as usize;
        if !self.sorted {
            self.buckets[ring].sort_unstable();
            self.sorted = true;
            self.drain_pos = 0;
        }
        let bucket = &mut self.buckets[ring];
        let key = bucket[self.drain_pos];
        self.drain_pos += 1;
        self.near_len -= 1;
        if self.drain_pos == bucket.len() {
            bucket.clear();
            self.occupied[ring / 64] &= !(1u64 << (ring % 64));
            self.drain_pos = 0;
            self.sorted = false;
            self.cached_min.set(None);
        } else {
            // The cursor bucket strictly precedes every other bucket and
            // the whole overflow tier in time, so its next sorted key IS
            // the global minimum.
            let next = bucket[self.drain_pos];
            self.cached_min.set(Some((next.at, next.seq)));
        }
        Some((key.at, key.seq, self.arena.take(key.slot)))
    }

    /// Places a key into its ring bucket, keeping the active bucket's
    /// sorted drain order intact.
    fn insert_near(&mut self, key: Key) {
        let b = bucket_of(key.at);
        let ring = (b & BUCKET_MASK) as usize;
        let bucket = &mut self.buckets[ring];
        if b == self.cursor && self.sorted {
            // The bucket is mid-drain: keep `[drain_pos..]` sorted. New
            // keys carry fresh sequence numbers, so they typically belong
            // at the very end — the binary search makes that O(1)-ish.
            let pos = self.drain_pos
                + bucket[self.drain_pos..].partition_point(|k| (k.at, k.seq) < (key.at, key.seq));
            bucket.insert(pos, key);
        } else {
            bucket.push(key);
        }
        self.occupied[ring / 64] |= 1u64 << (ring % 64);
        self.near_len += 1;
        self.stats.peak_near = self.stats.peak_near.max(self.near_len as u64);
    }

    /// Re-anchors the window at the overflow head and promotes every
    /// overflow key that now falls inside the window.
    fn rebase(&mut self) {
        let head = self.overflow.peek().expect("rebase requires overflow");
        let b = bucket_of(head.at);
        self.epoch = b;
        self.cursor = b;
        self.drain_pos = 0;
        self.sorted = false;
        let end = b + BUCKET_COUNT as u64;
        while let Some(head) = self.overflow.peek() {
            if bucket_of(head.at) >= end {
                break;
            }
            let key = self.overflow.pop().expect("peeked entry must pop");
            self.insert_near(key);
            self.stats.promotions += 1;
        }
        self.stats.rebases += 1;
    }

    /// Absolute index of the first occupied bucket at or after `from`
    /// within the current window, found by scanning the occupancy bitmap a
    /// word at a time in ring order.
    fn next_occupied_from(&self, from: u64) -> Option<u64> {
        let start = (from & BUCKET_MASK) as usize;
        let mut word_i = start / 64;
        // Mask off ring slots before `start` in the first word; they map to
        // window positions *after* the wrap and are re-scanned at the end.
        let mut word = self.occupied[word_i] & (!0u64 << (start % 64));
        for scanned in 0..=WORDS {
            if word != 0 {
                let ring = word_i * 64 + word.trailing_zeros() as usize;
                // Circular distance from `start` to `ring`.
                let dist = (ring as u64).wrapping_sub(start as u64) & BUCKET_MASK;
                return Some(from + dist);
            }
            if scanned == WORDS {
                break;
            }
            word_i = (word_i + 1) % WORDS;
            word = self.occupied[word_i];
        }
        None
    }
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<T>(q: &mut CalendarQueue<T>) -> Vec<(SimTime, u64)> {
        let mut out = Vec::new();
        while let Some((at, seq, _)) = q.pop() {
            out.push((at, seq));
        }
        out
    }

    #[test]
    fn empty_queue() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        assert_eq!(q.len(), 0);
        assert_eq!(q.min_key(), None);
        assert!(q.pop().is_none());
    }

    #[test]
    fn near_keys_pop_in_order() {
        let mut q = CalendarQueue::new();
        // All within one window; shuffled insert order.
        for (i, us) in [40u64, 12, 96, 0, 12, 52].iter().enumerate() {
            q.push(SimTime::from_micros(*us), i as u64, i);
        }
        let popped = drain(&mut q);
        assert_eq!(
            popped,
            vec![
                (SimTime::from_micros(0), 3),
                (SimTime::from_micros(12), 1),
                (SimTime::from_micros(12), 4),
                (SimTime::from_micros(40), 0),
                (SimTime::from_micros(52), 5),
                (SimTime::from_micros(96), 2),
            ]
        );
    }

    #[test]
    fn far_keys_route_through_overflow_and_promote() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_micros(5), 0, 'a');
        q.push(SimTime::from_millis(200), 1, 'b'); // RTO-scale: overflow
        q.push(SimTime::from_secs(3), 2, 'c'); // stall-scale: overflow
        q.push(SimTime::from_micros(30), 3, 'd');
        assert_eq!(q.stats().far_inserts, 2);
        assert_eq!(q.stats().near_inserts, 2);
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, _, v)| v)).collect();
        assert_eq!(order, vec!['a', 'd', 'b', 'c']);
        let stats = q.stats();
        assert_eq!(stats.promotions, 2);
        assert_eq!(stats.rebases, 2);
    }

    #[test]
    fn merge_peaks_max_but_concurrent_peaks_sum() {
        let shard = |peak_near, peak_overflow| SchedStats {
            near_inserts: 10,
            far_inserts: 2,
            promotions: 1,
            rebases: 1,
            peak_near,
            peak_overflow,
        };
        let mut sequential = SchedStats::default();
        sequential.merge(&shard(100, 5));
        sequential.merge(&shard(40, 8));
        assert_eq!(sequential.near_inserts, 20);
        assert_eq!(sequential.peak_near, 100);
        assert_eq!(sequential.peak_overflow, 8);

        let mut concurrent = SchedStats::default();
        concurrent.merge_concurrent(&shard(100, 5));
        concurrent.merge_concurrent(&shard(40, 8));
        assert_eq!(concurrent.near_inserts, 20);
        assert_eq!(concurrent.peak_near, 140);
        assert_eq!(concurrent.peak_overflow, 13);

        // Saturates rather than wrapping.
        concurrent.merge_concurrent(&shard(u64::MAX, u64::MAX));
        assert_eq!(concurrent.peak_near, u64::MAX);
        assert_eq!(concurrent.peak_overflow, u64::MAX);
    }

    #[test]
    fn min_key_matches_pop_and_is_stable() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_micros(7), 1, ());
        q.push(SimTime::from_micros(3), 2, ());
        q.push(SimTime::from_secs(9), 3, ());
        while !q.is_empty() {
            let peeked = q.min_key().unwrap();
            let again = q.min_key().unwrap();
            assert_eq!(peeked, again, "min_key must not disturb state");
            let (at, seq, _) = q.pop().unwrap();
            assert_eq!((at, seq), peeked);
        }
    }

    #[test]
    fn insert_into_partially_drained_bucket() {
        let mut q = CalendarQueue::new();
        // Three keys in the same bucket (within one bucket span).
        q.push(SimTime::from_nanos(100), 0, 0u32);
        q.push(SimTime::from_nanos(300), 1, 1);
        q.push(SimTime::from_nanos(500), 2, 2);
        assert_eq!(q.pop().unwrap().2, 0);
        // Insert into the same, now mid-drain bucket: key sorts after the
        // drain cursor (fresh seq, same-or-later time).
        q.push(SimTime::from_nanos(300), 3, 3);
        q.push(SimTime::from_nanos(2000), 4, 4);
        let rest: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, _, v)| v)).collect();
        assert_eq!(rest, vec![1, 3, 2, 4]);
    }

    #[test]
    fn push_beyond_stale_window_rebases_on_pop() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_micros(1), 0, ());
        assert!(q.pop().is_some());
        // Queue empty with the window still anchored near zero; a key far
        // beyond it routes through overflow and pops correctly.
        q.push(SimTime::from_secs(100), 1, ());
        assert_eq!(q.stats().far_inserts, 1);
        assert_eq!(q.pop().unwrap().0, SimTime::from_secs(100));
        // Mixed-order pushes at time zero (two on_start handlers arming a
        // far timer then a near one) must not corrupt the window either.
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_millis(200), 0, ());
        q.push(SimTime::from_millis(1), 1, ());
        assert_eq!(q.pop().unwrap().0, SimTime::from_millis(1));
        assert_eq!(q.pop().unwrap().0, SimTime::from_millis(200));
    }

    #[test]
    fn rollover_near_u64_max() {
        // Bucket arithmetic must not overflow near the end of time: keys at
        // and around u64::MAX nanoseconds pop in exact (at, seq) order.
        let mut q = CalendarQueue::new();
        let max = SimTime::from_nanos(u64::MAX);
        q.push(max, 3, 'd');
        q.push(SimTime::from_nanos(u64::MAX - 1), 1, 'b');
        q.push(SimTime::from_nanos(5), 0, 'a');
        q.push(max, 4, 'e');
        q.push(SimTime::from_nanos(u64::MAX - 40_000_000), 2, 'c');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, _, v)| v)).collect();
        assert_eq!(order, vec!['a', 'c', 'b', 'd', 'e']);
    }

    #[test]
    fn randomized_differential_against_heap() {
        // The wheel must pop the exact order of the reference heap under a
        // bursty, bimodal workload with interleaved pops — the in-crate
        // twin of tests/scheduler_differential.rs.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut wheel = CalendarQueue::new();
        let mut heap: MinHeap4<(SimTime, u64, u64)> = MinHeap4::new();
        let mut now = SimTime::ZERO;
        let mut seq = 0u64;
        for _ in 0..5_000 {
            let r = next();
            if r % 4 != 0 {
                // Push: mostly near (µs-scale), sometimes far (ms/s-scale).
                let delta = match r % 16 {
                    0..=11 => next() % 50_000,                   // ≤ 50 µs
                    12 | 13 => 1_000_000 + next() % 400_000_000, // ms-scale
                    _ => 1_000_000_000 + next() % 9_000_000_000, // s-scale
                };
                let at = now + crate::time::SimDuration::from_nanos(delta);
                wheel.push(at, seq, seq);
                heap.push((at, seq, seq));
                seq += 1;
            } else if let Some((at, s, v)) = wheel.pop() {
                let (hat, hs, hv) = heap.pop().expect("heap tracks wheel");
                assert_eq!((at, s, v), (hat, hs, hv));
                now = at;
            }
        }
        loop {
            match (wheel.pop(), heap.pop()) {
                (None, None) => break,
                (w, h) => assert_eq!(w, h),
            }
        }
    }

    #[test]
    fn arena_recycles_slots() {
        let mut q = CalendarQueue::new();
        for round in 0..100u64 {
            q.push(SimTime::from_micros(round), round, round);
            let (_, _, v) = q.pop().unwrap();
            assert_eq!(v, round);
        }
        // One slot serviced the whole run.
        assert_eq!(q.arena.slots.len(), 1);
    }
}
