//! Nodes and the effect context handed to their event handlers.
//!
//! A [`Node`] is anything attached to the network: an endpoint host running
//! a protocol stack, or a gateway running middleboxes. Handlers never touch
//! the simulator directly; they record *effects* (send a packet, arm or
//! cancel a timer, halt) through a [`Context`], which the simulator applies
//! after the handler returns. This keeps handlers pure state transitions and
//! makes the engine's event ordering explicit and testable.

use crate::packet::{NodeId, Packet};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Opaque handle to an armed timer, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub(crate) u64);

/// An effect requested by a node handler.
#[derive(Debug)]
pub(crate) enum Effect<P> {
    /// Transmit a packet onto the link toward its destination, now.
    Send(Packet<P>),
    /// Transmit a packet onto the link toward its destination after a delay
    /// (used by gateways to hold packets).
    SendAfter(SimDuration, Packet<P>),
    /// Arm a timer that fires `at` with the given token.
    SetTimer {
        /// Absolute fire time.
        at: SimTime,
        /// Caller-chosen discriminator returned on fire.
        token: u64,
        /// Unique id for cancellation.
        id: TimerId,
    },
    /// Cancel a previously armed timer.
    CancelTimer(TimerId),
    /// Stop the simulation after the current event.
    Halt,
}

/// The environment a [`Node`] handler runs in.
///
/// Provides the current time, a deterministic RNG, and effect constructors.
#[derive(Debug)]
pub struct Context<'a, P> {
    pub(crate) now: SimTime,
    pub(crate) node: NodeId,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) effects: &'a mut Vec<Effect<P>>,
    pub(crate) timer_seq: &'a mut u64,
}

impl<'a, P> Context<'a, P> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node whose handler is running.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// The run's deterministic RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Sends `packet` toward `packet.dst`, entering the outgoing link now.
    pub fn send(&mut self, packet: Packet<P>) {
        self.effects.push(Effect::Send(packet));
    }

    /// Sends `packet` toward `packet.dst`, entering the outgoing link after
    /// `delay`. The delay is served locally (the packet occupies no link
    /// resources while held).
    pub fn send_after(&mut self, delay: SimDuration, packet: Packet<P>) {
        if delay.is_zero() {
            self.effects.push(Effect::Send(packet));
        } else {
            self.effects.push(Effect::SendAfter(delay, packet));
        }
    }

    /// Arms a timer firing `after` from now; `token` is handed back to
    /// [`Node::on_timer`]. Returns an id usable with
    /// [`Context::cancel_timer`].
    pub fn set_timer(&mut self, after: SimDuration, token: u64) -> TimerId {
        let id = TimerId(*self.timer_seq);
        *self.timer_seq += 1;
        self.effects.push(Effect::SetTimer {
            at: self.now + after,
            token,
            id,
        });
        id
    }

    /// Cancels a timer. Cancelling an already-fired or unknown timer is a
    /// no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer(id));
    }

    /// Stops the simulation after the current event completes.
    pub fn halt(&mut self) {
        self.effects.push(Effect::Halt);
    }
}

/// A participant in the simulated network.
///
/// Implementations hold their own state; cross-component result extraction
/// is done by sharing `Rc<RefCell<…>>` handles between the node and the
/// experiment driver (the simulation is single-threaded by design).
pub trait Node<P> {
    /// Called once, at time zero, before any packet or timer events.
    fn on_start(&mut self, _ctx: &mut Context<'_, P>) {}

    /// A packet addressed to (or routed through) this node arrived.
    fn on_packet(&mut self, packet: Packet<P>, ctx: &mut Context<'_, P>);

    /// A timer armed by this node fired.
    fn on_timer(&mut self, _token: u64, _ctx: &mut Context<'_, P>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_records_effects() {
        let mut rng = SimRng::seed_from(0);
        let mut effects: Vec<Effect<u8>> = Vec::new();
        let mut timer_seq = 0u64;
        let mut ctx = Context {
            now: SimTime::from_millis(1),
            node: NodeId(0),
            rng: &mut rng,
            effects: &mut effects,
            timer_seq: &mut timer_seq,
        };
        assert_eq!(ctx.now(), SimTime::from_millis(1));
        assert_eq!(ctx.node_id(), NodeId(0));
        ctx.send(Packet::new(NodeId(0), NodeId(1), 10, 7u8));
        let id = ctx.set_timer(SimDuration::from_millis(5), 42);
        ctx.cancel_timer(id);
        ctx.halt();
        assert_eq!(effects.len(), 4);
        match &effects[1] {
            Effect::SetTimer { at, token, .. } => {
                assert_eq!(*at, SimTime::from_millis(6));
                assert_eq!(*token, 42);
            }
            other => panic!("unexpected effect {other:?}"),
        }
    }

    #[test]
    fn timer_ids_are_unique() {
        let mut rng = SimRng::seed_from(0);
        let mut effects: Vec<Effect<u8>> = Vec::new();
        let mut timer_seq = 0u64;
        let mut ctx = Context {
            now: SimTime::ZERO,
            node: NodeId(0),
            rng: &mut rng,
            effects: &mut effects,
            timer_seq: &mut timer_seq,
        };
        let a = ctx.set_timer(SimDuration::ZERO, 0);
        let b = ctx.set_timer(SimDuration::ZERO, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn send_after_zero_degenerates_to_send() {
        let mut rng = SimRng::seed_from(0);
        let mut effects: Vec<Effect<u8>> = Vec::new();
        let mut timer_seq = 0u64;
        let mut ctx = Context {
            now: SimTime::ZERO,
            node: NodeId(0),
            rng: &mut rng,
            effects: &mut effects,
            timer_seq: &mut timer_seq,
        };
        ctx.send_after(SimDuration::ZERO, Packet::new(NodeId(0), NodeId(1), 1, 0u8));
        assert!(matches!(effects[0], Effect::Send(_)));
    }
}
