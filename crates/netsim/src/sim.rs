//! The discrete-event engine.
//!
//! A [`Simulator`] owns the nodes, the links, the event queue and the run's
//! RNG. Events are totally ordered by `(time, insertion sequence)`, so
//! simultaneous events execute in a deterministic FIFO order and every run
//! with the same seed and the same construction order is bit-identical.
//!
//! The queue is a two-tier calendar queue ([`CalendarQueue`]): O(1) for the
//! dense near-future mix, an overflow heap for RTO/stall-scale deadlines.
//! Order-preserving links additionally get **batched delivery**: their
//! in-flight packets wait in a per-link FIFO with a single scheduler entry
//! for the head, and one scheduler visit drains the whole due packet-train
//! (each next packet is delivered in-line exactly while it is provably the
//! global minimum), so a serialized burst costs one queue round-trip
//! instead of one per packet.

use std::collections::VecDeque;

use h2priv_bytes::{FxHashMap, FxHashSet};

use crate::link::{Link, LinkConfig, LinkDrop, LinkStats};
use crate::node::{Context, Effect, Node, TimerId};
use crate::packet::{NodeId, Packet};
use crate::rng::SimRng;
use crate::time::SimTime;
use crate::wheel::{CalendarQueue, SchedStats};

/// Internal event kinds.
#[derive(Debug)]
enum Ev<P> {
    /// A packet arrives at a node (used by links that may reorder; ordered
    /// links batch through [`Ev::LinkHead`] instead).
    Deliver { to: NodeId, packet: Packet<P> },
    /// A node's timer fires.
    Timer {
        node: NodeId,
        token: u64,
        id: TimerId,
    },
    /// A deferred transmission enters the outbound link of `from`.
    Transmit { from: NodeId, packet: Packet<P> },
    /// The head of an order-preserving link's in-flight FIFO is due; the
    /// visit drains the link's whole due packet-train.
    LinkHead { link: u32 },
}

/// One unidirectional link plus its engine-side delivery state.
struct LinkState<P> {
    link: Link,
    /// The far-end node.
    to: usize,
    /// In-flight packets awaiting delivery, as `(arrival, seq, packet)`.
    /// Arrivals are non-decreasing (the link preserves order), and exactly
    /// one [`Ev::LinkHead`] scheduler entry — keyed by the head packet's
    /// own `(arrival, seq)` — is outstanding whenever this is non-empty.
    inflight: VecDeque<(SimTime, u64, Packet<P>)>,
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The event queue drained: nothing left to do.
    Quiescent,
    /// A node requested a halt.
    Halted,
    /// The deadline passed with events still queued.
    DeadlineReached,
    /// The configured event budget was exhausted (safety valve against
    /// livelocked protocols).
    EventBudgetExhausted,
}

/// Summary of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Why the run stopped.
    pub stop: StopReason,
    /// Simulated time when the run stopped.
    pub end_time: SimTime,
    /// Number of events processed.
    pub events: u64,
}

/// Drop counters maintained by the engine (beyond per-link stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Packets abandoned because no route existed to their destination.
    pub unroutable: u64,
    /// Packets dropped by links (loss + overflow), summed over all links.
    pub link_dropped: u64,
}

/// The discrete-event network simulator.
///
/// # Examples
///
/// ```
/// use h2priv_netsim::{
///     Context, LinkConfig, Node, NodeId, Packet, SimDuration, Simulator,
/// };
///
/// struct Pinger { peer: NodeId, got: u32 }
/// impl Node<u32> for Pinger {
///     fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
///         ctx.send(Packet::new(ctx.node_id(), self.peer, 100, 7));
///     }
///     fn on_packet(&mut self, p: Packet<u32>, _ctx: &mut Context<'_, u32>) {
///         self.got = p.payload;
///     }
/// }
///
/// let mut sim = Simulator::new(42);
/// let a = sim.reserve_node_id();
/// let b = sim.reserve_node_id();
/// sim.install_node(a, Box::new(Pinger { peer: b, got: 0 }));
/// sim.install_node(b, Box::new(Pinger { peer: a, got: 0 }));
/// sim.add_link(a, b, LinkConfig::with_delay(SimDuration::from_millis(5)));
/// let summary = sim.run();
/// // Both pings were sent at t=0 and arrived after the 5 ms link delay.
/// assert_eq!(summary.end_time.as_millis(), 5);
/// ```
pub struct Simulator<P> {
    now: SimTime,
    seq: u64,
    queue: CalendarQueue<Ev<P>>,
    nodes: Vec<Option<Box<dyn Node<P>>>>,
    /// Edge → index into `link_states`. The dense vector keeps the hot
    /// delivery path on an index instead of a hash probe.
    links: FxHashMap<(usize, usize), u32>,
    link_states: Vec<LinkState<P>>,
    /// Sorted out-neighbors per node, maintained incrementally by
    /// [`Simulator::add_link_oneway`] so route misses never rebuild the
    /// graph from `links.keys()`.
    adjacency: Vec<Vec<usize>>,
    /// Next-hop cache: dense `from * nodes + dst` → computed next hop
    /// (outer `None` = not computed yet). Node counts are tiny, so a flat
    /// table keeps the per-transmit lookup to one indexed load instead of
    /// a hash probe. Invalidated (cleared / resized) on topology change.
    route_cache: Vec<Option<Option<(usize, u32)>>>,
    /// Timers scheduled but not yet fired or cancelled. An id is removed
    /// when its event pops (fired or skipped-as-cancelled), so the set is
    /// bounded by the number of live timers.
    pending_timers: FxHashSet<u64>,
    /// Scratch effects buffer reused across event dispatches.
    scratch: Vec<Effect<P>>,
    rng: SimRng,
    timer_seq: u64,
    packet_seq: u64,
    started: bool,
    halted: bool,
    max_events: u64,
    events_processed: u64,
    stats: EngineStats,
}

impl<P: 'static> Simulator<P> {
    /// Creates a simulator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Simulator {
            now: SimTime::ZERO,
            seq: 0,
            queue: CalendarQueue::new(),
            nodes: Vec::new(),
            links: FxHashMap::default(),
            link_states: Vec::new(),
            adjacency: Vec::new(),
            route_cache: Vec::new(),
            pending_timers: FxHashSet::default(),
            scratch: Vec::new(),
            rng: SimRng::seed_from(seed),
            timer_seq: 0,
            packet_seq: 0,
            started: false,
            halted: false,
            max_events: 200_000_000,
            events_processed: 0,
            stats: EngineStats::default(),
        }
    }

    /// Caps the number of events a run may process (safety valve).
    pub fn set_event_budget(&mut self, max_events: u64) {
        self.max_events = max_events;
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, node: Box<dyn Node<P>>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Some(node));
        self.adjacency.push(Vec::new());
        id
    }

    /// Reserves a node id without installing the node yet. Useful when nodes
    /// need to know each other's ids at construction time.
    ///
    /// # Panics
    ///
    /// The run panics (at [`Simulator::run`]) if a reserved id was never
    /// filled with [`Simulator::install_node`].
    pub fn reserve_node_id(&mut self) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(None);
        self.adjacency.push(Vec::new());
        id
    }

    /// Installs a node into a reserved id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not reserved or is already installed.
    pub fn install_node(&mut self, id: NodeId, node: Box<dyn Node<P>>) {
        let slot = self
            .nodes
            .get_mut(id.0)
            .unwrap_or_else(|| panic!("install_node: unknown node id {id}"));
        assert!(slot.is_none(), "install_node: node {id} already installed");
        *slot = Some(node);
    }

    /// Connects `a` and `b` with symmetric links (one per direction).
    ///
    /// # Panics
    ///
    /// Panics if either node id does not exist.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, config: LinkConfig) {
        self.add_link_oneway(a, b, config.clone());
        self.add_link_oneway(b, a, config);
    }

    /// Connects `from` → `to` with a single unidirectional link.
    ///
    /// # Panics
    ///
    /// Panics if either node id does not exist.
    pub fn add_link_oneway(&mut self, from: NodeId, to: NodeId, config: LinkConfig) {
        assert!(from.0 < self.nodes.len(), "add_link: unknown node {from}");
        assert!(to.0 < self.nodes.len(), "add_link: unknown node {to}");
        match self.links.get(&(from.0, to.0)) {
            Some(&idx) => {
                // Re-adding an existing edge replaces the link (fresh stats
                // and queue state); packets already in flight still arrive.
                self.link_states[idx as usize].link = Link::new(config);
            }
            None => {
                let idx = u32::try_from(self.link_states.len()).expect("more than 2^32 links");
                self.link_states.push(LinkState {
                    link: Link::new(config),
                    to: to.0,
                    inflight: VecDeque::new(),
                });
                self.links.insert((from.0, to.0), idx);
                // New edge: keep the neighbor list sorted for deterministic BFS.
                let neighbors = &mut self.adjacency[from.0];
                if let Err(pos) = neighbors.binary_search(&to.0) {
                    neighbors.insert(pos, to.0);
                }
            }
        }
        self.route_cache.clear();
    }

    /// Replaces the configuration of the `from` → `to` link.
    ///
    /// # Panics
    ///
    /// Panics if the link does not exist.
    pub fn set_link_config(&mut self, from: NodeId, to: NodeId, config: LinkConfig) {
        let idx = *self
            .links
            .get(&(from.0, to.0))
            .unwrap_or_else(|| panic!("set_link_config: no link {from}→{to}"));
        self.link_states[idx as usize].link.set_config(config);
    }

    /// Stats of the `from` → `to` link, if it exists.
    pub fn link_stats(&self, from: NodeId, to: NodeId) -> Option<LinkStats> {
        self.links
            .get(&(from.0, to.0))
            .map(|&idx| self.link_states[idx as usize].link.stats())
    }

    /// Engine-level drop counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Scheduler behaviour counters for the run so far (tier split, window
    /// re-anchors, peak occupancy).
    pub fn sched_stats(&self) -> SchedStats {
        self.queue.stats()
    }

    /// Number of timers currently armed (scheduled, neither fired nor
    /// cancelled). Bounded bookkeeping: fired and cancelled ids are purged.
    pub fn live_timers(&self) -> usize {
        self.pending_timers.len()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Runs until quiescent or halted.
    pub fn run(&mut self) -> RunSummary {
        self.run_until(SimTime::MAX)
    }

    /// Runs until quiescent, halted, or `deadline` is reached (events at
    /// exactly `deadline` still execute).
    pub fn run_until(&mut self, deadline: SimTime) -> RunSummary {
        if !self.started {
            self.started = true;
            for i in 0..self.nodes.len() {
                assert!(
                    self.nodes[i].is_some(),
                    "node n{i} was reserved but never installed"
                );
                self.dispatch_start(NodeId(i));
                if self.halted {
                    break;
                }
            }
        }
        while !self.halted {
            if self.events_processed >= self.max_events {
                return self.summary(StopReason::EventBudgetExhausted);
            }
            let Some((head_at, _)) = self.queue.min_key() else {
                return self.summary(StopReason::Quiescent);
            };
            if head_at > deadline {
                return self.summary(StopReason::DeadlineReached);
            }
            let (at, _seq, ev) = self.queue.pop().expect("peeked entry must pop");
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            self.events_processed += 1;
            match ev {
                Ev::Deliver { to, packet } => self.dispatch_packet(to, packet),
                Ev::Timer { node, token, id } => {
                    // A timer fires only while still pending; removing the
                    // id here keeps the set bounded by live timers.
                    if !self.pending_timers.remove(&id.0) {
                        continue;
                    }
                    self.dispatch_timer(node, token);
                }
                Ev::Transmit { from, packet } => self.transmit(from, packet),
                Ev::LinkHead { link } => self.deliver_link_head(link, deadline),
            }
        }
        self.summary(StopReason::Halted)
    }

    /// Drains the due packet-train of link `link`: called when the link's
    /// [`Ev::LinkHead`] entry pops (the popped key is the head packet's
    /// own `(arrival, seq)`). Each following packet is delivered in-line
    /// only while its key is strictly below the queue minimum — i.e.
    /// exactly while per-packet scheduling would have popped it next — so
    /// the global dispatch order, the event count, and the sequence-number
    /// stream are all identical to the unbatched engine.
    fn deliver_link_head(&mut self, link: u32, deadline: SimTime) {
        loop {
            let state = &mut self.link_states[link as usize];
            let (at, _seq, packet) = state
                .inflight
                .pop_front()
                .expect("LinkHead implies an in-flight head");
            let to = NodeId(state.to);
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            self.dispatch_packet(to, packet);
            let Some(&(next_at, next_seq, _)) = self.link_states[link as usize].inflight.front()
            else {
                return;
            };
            let due_now = !self.halted
                && self.events_processed < self.max_events
                && next_at <= deadline
                && self
                    .queue
                    .min_key()
                    .is_none_or(|min| (next_at, next_seq) < min);
            if due_now {
                self.events_processed += 1;
            } else {
                // Suspend the batch: re-key the single LinkHead entry at the
                // next packet's own (arrival, seq) — no new seq consumed.
                self.queue.push(next_at, next_seq, Ev::LinkHead { link });
                return;
            }
        }
    }

    fn summary(&self, stop: StopReason) -> RunSummary {
        RunSummary {
            stop,
            end_time: self.now,
            events: self.events_processed,
        }
    }

    fn schedule(&mut self, at: SimTime, ev: Ev<P>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(at, seq, ev);
    }

    fn dispatch_start(&mut self, node: NodeId) {
        let mut boxed = self.nodes[node.0].take().expect("node present");
        let mut effects = std::mem::take(&mut self.scratch);
        {
            let mut ctx = Context {
                now: self.now,
                node,
                rng: &mut self.rng,
                effects: &mut effects,
                timer_seq: &mut self.timer_seq,
            };
            boxed.on_start(&mut ctx);
        }
        self.nodes[node.0] = Some(boxed);
        self.apply_effects(node, &mut effects);
        self.scratch = effects;
    }

    fn dispatch_packet(&mut self, node: NodeId, packet: Packet<P>) {
        let mut boxed = self.nodes[node.0].take().expect("node present");
        let mut effects = std::mem::take(&mut self.scratch);
        {
            let mut ctx = Context {
                now: self.now,
                node,
                rng: &mut self.rng,
                effects: &mut effects,
                timer_seq: &mut self.timer_seq,
            };
            boxed.on_packet(packet, &mut ctx);
        }
        self.nodes[node.0] = Some(boxed);
        self.apply_effects(node, &mut effects);
        self.scratch = effects;
    }

    fn dispatch_timer(&mut self, node: NodeId, token: u64) {
        let mut boxed = self.nodes[node.0].take().expect("node present");
        let mut effects = std::mem::take(&mut self.scratch);
        {
            let mut ctx = Context {
                now: self.now,
                node,
                rng: &mut self.rng,
                effects: &mut effects,
                timer_seq: &mut self.timer_seq,
            };
            boxed.on_timer(token, &mut ctx);
        }
        self.nodes[node.0] = Some(boxed);
        self.apply_effects(node, &mut effects);
        self.scratch = effects;
    }

    /// Applies and drains `effects`, leaving the buffer empty for reuse.
    fn apply_effects(&mut self, node: NodeId, effects: &mut Vec<Effect<P>>) {
        for effect in effects.drain(..) {
            match effect {
                Effect::Send(packet) => self.transmit(node, packet),
                Effect::SendAfter(delay, packet) => {
                    let at = self.now + delay;
                    self.schedule(at, Ev::Transmit { from: node, packet });
                }
                Effect::SetTimer { at, token, id } => {
                    self.pending_timers.insert(id.0);
                    self.schedule(at, Ev::Timer { node, token, id });
                }
                Effect::CancelTimer(id) => {
                    // Already-fired or unknown ids are no-ops, so the set
                    // never accumulates dead entries.
                    self.pending_timers.remove(&id.0);
                }
                Effect::Halt => {
                    self.halted = true;
                }
            }
        }
    }

    /// Sends `packet` from `from` onto the link toward the next hop for
    /// `packet.dst`.
    fn transmit(&mut self, from: NodeId, mut packet: Packet<P>) {
        if packet.id == 0 {
            self.packet_seq += 1;
            packet.id = self.packet_seq;
        }
        let Some((next, link)) = self.next_hop(from.0, packet.dst.0) else {
            self.stats.unroutable += 1;
            return;
        };
        let state = &mut self.link_states[link as usize];
        match state
            .link
            .transmit(self.now, packet.wire_bytes, &mut self.rng)
        {
            Ok(arrival) => {
                if state.link.config().preserve_order {
                    // Batched path: the packet joins the link's in-flight
                    // FIFO under its own (arrival, seq) key; one LinkHead
                    // scheduler entry — keyed by the head packet — stands
                    // for the whole FIFO, so a serialized train costs one
                    // queue round-trip instead of one per packet.
                    let seq = self.seq;
                    self.seq += 1;
                    let was_empty = state.inflight.is_empty();
                    state.inflight.push_back((arrival, seq, packet));
                    if was_empty {
                        self.queue.push(arrival, seq, Ev::LinkHead { link });
                    }
                } else {
                    // A link that may reorder gets per-packet events: FIFO
                    // batching would impose order the link does not promise.
                    self.schedule(
                        arrival,
                        Ev::Deliver {
                            to: NodeId(next),
                            packet,
                        },
                    );
                }
            }
            Err(LinkDrop::RandomLoss) | Err(LinkDrop::QueueOverflow) => {
                self.stats.link_dropped += 1;
            }
        }
    }

    /// BFS next-hop routing over the maintained adjacency lists, memoized.
    /// Returns the neighbor node and the index of the `from` → neighbor
    /// link.
    fn next_hop(&mut self, from: usize, dst: usize) -> Option<(usize, u32)> {
        if from == dst {
            return None;
        }
        let n = self.nodes.len();
        // (Re)size lazily: a clear() after topology change leaves the table
        // empty until the next miss.
        if self.route_cache.len() != n * n {
            // A node added since the table was built changes the stride, so
            // stale entries must go, not just be extended over.
            self.route_cache.clear();
            self.route_cache.resize(n * n, None);
        }
        if let Some(hit) = self.route_cache[from * n + dst] {
            return hit;
        }
        // BFS from `from` over the incrementally-maintained (and sorted,
        // for determinism) adjacency, recording each node's parent in a
        // dense table — node ids are vector indices.
        let mut parent: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut frontier = std::collections::VecDeque::new();
        frontier.push_back(from);
        parent[from] = Some(from);
        while let Some(u) = frontier.pop_front() {
            if u == dst {
                break;
            }
            for &v in &self.adjacency[u] {
                if parent[v].is_none() {
                    parent[v] = Some(u);
                    frontier.push_back(v);
                }
            }
        }
        let hop = parent[dst].map(|_| {
            // Walk back from dst to the neighbor of `from`.
            let mut cur = dst;
            while parent[cur] != Some(from) {
                cur = parent[cur].expect("parent chain reaches from");
            }
            let link = *self
                .links
                .get(&(from, cur))
                .expect("adjacency implies link exists");
            (cur, link)
        });
        self.route_cache[from * n + dst] = Some(hop);
        hop
    }
}

impl<P> std::fmt::Debug for Simulator<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("links", &self.links.len())
            .field("queued", &self.queue.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::mbps;
    use crate::middlebox::{GatewayNode, Passthrough};
    use crate::rng::DurationDist;
    use crate::time::SimDuration;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Echoes every packet back to its source, once.
    struct Echo;
    impl Node<u32> for Echo {
        fn on_packet(&mut self, p: Packet<u32>, ctx: &mut Context<'_, u32>) {
            if p.payload < 100 {
                ctx.send(Packet::new(p.dst, p.src, p.wire_bytes, p.payload + 100));
            }
        }
    }

    /// Sends one packet at start and records replies + times.
    struct Probe {
        peer: NodeId,
        log: Rc<RefCell<Vec<(SimTime, u32)>>>,
    }
    impl Node<u32> for Probe {
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            ctx.send(Packet::new(ctx.node_id(), self.peer, 1000, 1));
        }
        fn on_packet(&mut self, p: Packet<u32>, ctx: &mut Context<'_, u32>) {
            self.log.borrow_mut().push((ctx.now(), p.payload));
        }
    }

    #[test]
    fn two_node_round_trip() {
        let mut sim = Simulator::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        let a = sim.reserve_node_id();
        let b = sim.reserve_node_id();
        sim.install_node(
            a,
            Box::new(Probe {
                peer: b,
                log: log.clone(),
            }),
        );
        sim.install_node(b, Box::new(Echo));
        sim.add_link(a, b, LinkConfig::with_delay(SimDuration::from_millis(25)));
        let summary = sim.run();
        assert_eq!(summary.stop, StopReason::Quiescent);
        let log = log.borrow();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0], (SimTime::from_millis(50), 101));
    }

    #[test]
    fn three_node_chain_routes_through_gateway() {
        let mut sim = Simulator::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        let a = sim.reserve_node_id();
        let gw = sim.reserve_node_id();
        let b = sim.reserve_node_id();
        sim.install_node(
            a,
            Box::new(Probe {
                peer: b,
                log: log.clone(),
            }),
        );
        sim.install_node(
            gw,
            Box::new(GatewayNode::<u32>::new(a, b).with_middlebox(Passthrough)),
        );
        sim.install_node(b, Box::new(Echo));
        sim.add_link(a, gw, LinkConfig::with_delay(SimDuration::from_millis(10)));
        sim.add_link(gw, b, LinkConfig::with_delay(SimDuration::from_millis(15)));
        sim.run();
        let log = log.borrow();
        assert_eq!(log.len(), 1);
        // 10 + 15 out, 15 + 10 back = 50 ms.
        assert_eq!(log[0].0, SimTime::from_millis(50));
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerNode {
            fired: Rc<RefCell<Vec<u64>>>,
        }
        impl Node<u32> for TimerNode {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.set_timer(SimDuration::from_millis(30), 3);
                ctx.set_timer(SimDuration::from_millis(10), 1);
                ctx.set_timer(SimDuration::from_millis(20), 2);
            }
            fn on_packet(&mut self, _p: Packet<u32>, _ctx: &mut Context<'_, u32>) {}
            fn on_timer(&mut self, token: u64, _ctx: &mut Context<'_, u32>) {
                self.fired.borrow_mut().push(token);
            }
        }
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(1);
        sim.add_node(Box::new(TimerNode {
            fired: fired.clone(),
        }));
        sim.run();
        assert_eq!(*fired.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        struct CancelNode {
            fired: Rc<RefCell<Vec<u64>>>,
        }
        impl Node<u32> for CancelNode {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                let id = ctx.set_timer(SimDuration::from_millis(10), 1);
                ctx.set_timer(SimDuration::from_millis(20), 2);
                ctx.cancel_timer(id);
            }
            fn on_packet(&mut self, _p: Packet<u32>, _ctx: &mut Context<'_, u32>) {}
            fn on_timer(&mut self, token: u64, _ctx: &mut Context<'_, u32>) {
                self.fired.borrow_mut().push(token);
            }
        }
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(1);
        sim.add_node(Box::new(CancelNode {
            fired: fired.clone(),
        }));
        sim.run();
        assert_eq!(*fired.borrow(), vec![2]);
        assert_eq!(sim.live_timers(), 0, "timer bookkeeping must not leak");
    }

    #[test]
    fn timer_bookkeeping_never_leaks() {
        // Arms a timer each round and cancels the *previous* (already
        // fired) one — the pattern that used to grow the cancelled set
        // unboundedly.
        struct CancelFired {
            last: Option<crate::node::TimerId>,
            rounds: u32,
        }
        impl Node<u32> for CancelFired {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                self.last = Some(ctx.set_timer(SimDuration::from_millis(1), 0));
            }
            fn on_packet(&mut self, _p: Packet<u32>, _ctx: &mut Context<'_, u32>) {}
            fn on_timer(&mut self, _token: u64, ctx: &mut Context<'_, u32>) {
                if let Some(id) = self.last.take() {
                    ctx.cancel_timer(id); // no-op: it just fired
                }
                if self.rounds > 0 {
                    self.rounds -= 1;
                    self.last = Some(ctx.set_timer(SimDuration::from_millis(1), 0));
                }
            }
        }
        let mut sim = Simulator::new(1);
        sim.add_node(Box::new(CancelFired {
            last: None,
            rounds: 1_000,
        }));
        let summary = sim.run();
        assert_eq!(summary.stop, StopReason::Quiescent);
        assert_eq!(sim.live_timers(), 0, "fired/cancelled ids must be purged");
    }

    #[test]
    fn links_added_after_traffic_are_routable() {
        // The adjacency is maintained incrementally; a link added between
        // runs must invalidate the cache and route correctly.
        let mut sim = Simulator::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        let a = sim.reserve_node_id();
        let b = sim.reserve_node_id();
        let c = sim.add_node(Box::new(Echo));
        sim.install_node(
            a,
            Box::new(Probe {
                peer: b,
                log: log.clone(),
            }),
        );
        sim.install_node(b, Box::new(Echo));
        sim.add_link(a, b, LinkConfig::with_delay(SimDuration::from_millis(5)));
        sim.run();
        assert_eq!(log.borrow().len(), 1);
        // No path a→c yet: transmitting toward c is unroutable.
        // Now connect b→c and verify a→c routes through b.
        sim.add_link(b, c, LinkConfig::with_delay(SimDuration::from_millis(5)));
        let hop = sim.next_hop(a.0, c.0).map(|(node, _link)| node);
        assert_eq!(hop, Some(b.0));
    }

    #[test]
    fn halt_stops_the_run() {
        struct Halter;
        impl Node<u32> for Halter {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.set_timer(SimDuration::from_millis(10), 1);
                ctx.set_timer(SimDuration::from_millis(20), 2);
            }
            fn on_packet(&mut self, _p: Packet<u32>, _ctx: &mut Context<'_, u32>) {}
            fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, u32>) {
                if token == 1 {
                    ctx.halt();
                }
            }
        }
        let mut sim = Simulator::new(1);
        sim.add_node(Box::new(Halter));
        let summary = sim.run();
        assert_eq!(summary.stop, StopReason::Halted);
        assert_eq!(summary.end_time, SimTime::from_millis(10));
    }

    #[test]
    fn run_until_deadline() {
        struct Ticker;
        impl Node<u32> for Ticker {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.set_timer(SimDuration::from_millis(10), 0);
            }
            fn on_packet(&mut self, _p: Packet<u32>, _ctx: &mut Context<'_, u32>) {}
            fn on_timer(&mut self, _token: u64, ctx: &mut Context<'_, u32>) {
                ctx.set_timer(SimDuration::from_millis(10), 0);
            }
        }
        let mut sim = Simulator::new(1);
        sim.add_node(Box::new(Ticker));
        let summary = sim.run_until(SimTime::from_millis(55));
        assert_eq!(summary.stop, StopReason::DeadlineReached);
        assert_eq!(summary.end_time, SimTime::from_millis(50));
        // Resume and stop later.
        let summary = sim.run_until(SimTime::from_millis(95));
        assert_eq!(summary.end_time, SimTime::from_millis(90));
    }

    #[test]
    fn event_budget_is_a_safety_valve() {
        struct Ticker;
        impl Node<u32> for Ticker {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
            fn on_packet(&mut self, _p: Packet<u32>, _ctx: &mut Context<'_, u32>) {}
            fn on_timer(&mut self, _token: u64, ctx: &mut Context<'_, u32>) {
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
        }
        let mut sim = Simulator::new(1);
        sim.add_node(Box::new(Ticker));
        sim.set_event_budget(100);
        let summary = sim.run();
        assert_eq!(summary.stop, StopReason::EventBudgetExhausted);
        assert_eq!(summary.events, 100);
    }

    #[test]
    fn unroutable_packets_are_counted() {
        struct Lost;
        impl Node<u32> for Lost {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                // Node 1 exists but has no links at all.
                ctx.send(Packet::new(ctx.node_id(), NodeId(1), 10, 0));
            }
            fn on_packet(&mut self, _p: Packet<u32>, _ctx: &mut Context<'_, u32>) {}
        }
        let mut sim = Simulator::new(1);
        sim.add_node(Box::new(Lost));
        sim.add_node(Box::new(Echo));
        sim.run();
        assert_eq!(sim.stats().unroutable, 1);
    }

    #[test]
    fn lossy_link_counts_drops() {
        let mut sim = Simulator::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        let a = sim.reserve_node_id();
        let b = sim.reserve_node_id();
        sim.install_node(
            a,
            Box::new(Probe {
                peer: b,
                log: log.clone(),
            }),
        );
        sim.install_node(b, Box::new(Echo));
        sim.add_link(a, b, LinkConfig::default().loss(1.0));
        sim.run();
        assert!(log.borrow().is_empty());
        assert_eq!(sim.stats().link_dropped, 1);
        assert_eq!(sim.link_stats(a, b).unwrap().lost, 1);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run_once(seed: u64) -> Vec<(SimTime, u32)> {
            let mut sim = Simulator::new(seed);
            let log = Rc::new(RefCell::new(Vec::new()));
            let a = sim.reserve_node_id();
            let b = sim.reserve_node_id();
            sim.install_node(
                a,
                Box::new(Probe {
                    peer: b,
                    log: log.clone(),
                }),
            );
            sim.install_node(b, Box::new(Echo));
            sim.add_link(
                a,
                b,
                LinkConfig::with_delay(SimDuration::from_millis(5))
                    .jitter(DurationDist::Uniform {
                        lo: SimDuration::ZERO,
                        hi: SimDuration::from_millis(20),
                    })
                    .bandwidth(mbps(100)),
            );
            sim.run();
            let out = log.borrow().clone();
            out
        }
        assert_eq!(run_once(77), run_once(77));
        // Sanity: different seeds give different jitter.
        assert_ne!(run_once(77), run_once(78));
    }

    #[test]
    #[should_panic(expected = "never installed")]
    fn reserved_but_uninstalled_node_panics() {
        let mut sim: Simulator<u32> = Simulator::new(1);
        let _ = sim.reserve_node_id();
        sim.run();
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn add_link_unknown_node_panics() {
        let mut sim: Simulator<u32> = Simulator::new(1);
        let a = sim.add_node(Box::new(Echo));
        sim.add_link(a, NodeId(9), LinkConfig::default());
    }

    #[test]
    fn simultaneous_events_fifo() {
        // Two timers at the same instant fire in arming order.
        struct Same {
            fired: Rc<RefCell<Vec<u64>>>,
        }
        impl Node<u32> for Same {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.set_timer(SimDuration::from_millis(5), 10);
                ctx.set_timer(SimDuration::from_millis(5), 20);
            }
            fn on_packet(&mut self, _p: Packet<u32>, _ctx: &mut Context<'_, u32>) {}
            fn on_timer(&mut self, token: u64, _ctx: &mut Context<'_, u32>) {
                self.fired.borrow_mut().push(token);
            }
        }
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(1);
        sim.add_node(Box::new(Same {
            fired: fired.clone(),
        }));
        sim.run();
        assert_eq!(*fired.borrow(), vec![10, 20]);
    }
}
