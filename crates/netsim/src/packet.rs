//! Packets and addressing.
//!
//! The simulator is generic over the payload type `P`; the h2priv stack
//! instantiates it with a TCP segment. A [`Packet`] records its endpoints
//! (final source and destination, not next hops), the number of bytes it
//! occupies on the wire, and a unique id used for tracing.

use std::fmt;

/// Identifies a node within one [`Simulator`](crate::Simulator).
///
/// Node ids are dense indices assigned in creation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Direction of travel through a gateway sitting between a "left" (client)
/// and a "right" (server) side.
///
/// In the canonical h2priv topology, [`Dir::LeftToRight`] is
/// client→server (requests) and [`Dir::RightToLeft`] is server→client
/// (responses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// From the left (client) side toward the right (server) side.
    LeftToRight,
    /// From the right (server) side toward the left (client) side.
    RightToLeft,
}

impl Dir {
    /// The opposite direction.
    pub fn flip(self) -> Dir {
        match self {
            Dir::LeftToRight => Dir::RightToLeft,
            Dir::RightToLeft => Dir::LeftToRight,
        }
    }

    /// Index (0 or 1) for direction-keyed arrays.
    pub fn index(self) -> usize {
        match self {
            Dir::LeftToRight => 0,
            Dir::RightToLeft => 1,
        }
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dir::LeftToRight => write!(f, "c→s"),
            Dir::RightToLeft => write!(f, "s→c"),
        }
    }
}

/// A packet in flight.
///
/// `wire_bytes` is the full on-the-wire size including all headers below the
/// payload's own framing (for the h2priv stack: payload bytes + 40 bytes of
/// modeled IP+TCP header). It drives link serialization delay and is the
/// quantity an eavesdropper observes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet<P> {
    /// Originating endpoint.
    pub src: NodeId,
    /// Final destination endpoint.
    pub dst: NodeId,
    /// Total size on the wire, in bytes.
    pub wire_bytes: u32,
    /// Unique id, assigned by the simulator at send time (0 until sent).
    pub id: u64,
    /// The carried payload.
    pub payload: P,
}

impl<P> Packet<P> {
    /// Creates a packet. The id is assigned by the simulator when the packet
    /// is first sent.
    pub fn new(src: NodeId, dst: NodeId, wire_bytes: u32, payload: P) -> Self {
        Packet {
            src,
            dst,
            wire_bytes,
            id: 0,
            payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_flip_roundtrip() {
        assert_eq!(Dir::LeftToRight.flip(), Dir::RightToLeft);
        assert_eq!(Dir::RightToLeft.flip(), Dir::LeftToRight);
        assert_eq!(Dir::LeftToRight.flip().flip(), Dir::LeftToRight);
    }

    #[test]
    fn dir_index_distinct() {
        assert_ne!(Dir::LeftToRight.index(), Dir::RightToLeft.index());
        assert!(Dir::LeftToRight.index() < 2 && Dir::RightToLeft.index() < 2);
    }

    #[test]
    fn packet_new_has_unassigned_id() {
        let p = Packet::new(NodeId(0), NodeId(2), 1500, ());
        assert_eq!(p.id, 0);
        assert_eq!(p.wire_bytes, 1500);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", NodeId(3)), "n3");
        assert_eq!(format!("{}", Dir::LeftToRight), "c→s");
        assert_eq!(format!("{}", Dir::RightToLeft), "s→c");
    }
}
