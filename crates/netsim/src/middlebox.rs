//! Middleboxes and the gateway node that hosts them.
//!
//! The paper's adversary is "a compromised network device on the
//! client–server path" (§III) that can inspect headers, measure encrypted
//! packet sizes, delay packets, throttle bandwidth, and drop packets. All
//! five capabilities map onto this module:
//!
//! * inspect / measure — [`Middlebox::process`] receives each transiting
//!   packet by reference;
//! * delay — return [`Verdict::Hold`];
//! * drop — return [`Verdict::Drop`];
//! * throttle — mutate [`ShapingState`] through the [`MbContext`], which the
//!   gateway applies as an egress rate limiter per direction.
//!
//! A [`GatewayNode`] bridges two endpoints and runs an ordered chain of
//! middleboxes over every transiting packet. The passive wire tap used by
//! the analysis crate and the active adversary of `h2priv-core` are both
//! just middleboxes, which mirrors reality: the attack needs no privilege
//! beyond what a traffic-shaping gateway already has.

use std::cell::RefCell;
use std::rc::Rc;

use crate::link::{BitsPerSec, LinkConfig};
use crate::node::{Context, Node};
use crate::packet::{Dir, NodeId, Packet};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// What a middlebox decided to do with one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Pass the packet along unchanged.
    Forward,
    /// Delay the packet by the given amount before forwarding. Holds from
    /// multiple middleboxes in a chain accumulate.
    Hold(SimDuration),
    /// Discard the packet.
    Drop,
}

/// Mutable egress shaping state of a gateway, adjustable by middleboxes at
/// any packet. `rate[dir]` of `None` means "no cap" (wire speed).
#[derive(Debug, Clone, Default)]
pub struct ShapingState {
    rate: [Option<BitsPerSec>; 2],
}

impl ShapingState {
    /// Current cap for a direction.
    pub fn rate(&self, dir: Dir) -> Option<BitsPerSec> {
        self.rate[dir.index()]
    }

    /// Caps egress bandwidth for a direction.
    pub fn set_rate(&mut self, dir: Dir, rate: Option<BitsPerSec>) {
        self.rate[dir.index()] = rate;
    }

    /// Caps both directions at once (the paper's experiments throttle the
    /// medium symmetrically: "bandwidth limits are applied for both incoming
    /// and outgoing packets", §IV-C).
    pub fn set_rate_both(&mut self, rate: Option<BitsPerSec>) {
        self.rate = [rate, rate];
    }
}

/// Environment for [`Middlebox::process`].
#[derive(Debug)]
pub struct MbContext<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// Which way the packet is heading through the gateway.
    pub dir: Dir,
    /// The run's deterministic RNG.
    pub rng: &'a mut SimRng,
    /// The gateway's egress shaping state, mutable by the middlebox.
    pub shaping: &'a mut ShapingState,
}

/// A packet-processing element installed on a gateway.
pub trait Middlebox<P> {
    /// Inspects one transiting packet and decides its fate.
    fn process(&mut self, packet: &Packet<P>, ctx: &mut MbContext<'_>) -> Verdict;
}

/// Blanket impl so shared-handle middleboxes (`Rc<RefCell<T>>`) can be
/// installed directly; the experiment driver keeps a clone to interrogate
/// the middlebox after the run.
impl<P, T: Middlebox<P>> Middlebox<P> for Rc<RefCell<T>> {
    fn process(&mut self, packet: &Packet<P>, ctx: &mut MbContext<'_>) -> Verdict {
        self.borrow_mut().process(packet, ctx)
    }
}

/// Blanket impl so boxed middleboxes (including trait objects) can be
/// installed and composed.
impl<P, T: Middlebox<P> + ?Sized> Middlebox<P> for Box<T> {
    fn process(&mut self, packet: &Packet<P>, ctx: &mut MbContext<'_>) -> Verdict {
        (**self).process(packet, ctx)
    }
}

/// A middlebox that forwards everything untouched.
#[derive(Debug, Clone, Copy, Default)]
pub struct Passthrough;

impl<P> Middlebox<P> for Passthrough {
    fn process(&mut self, _packet: &Packet<P>, _ctx: &mut MbContext<'_>) -> Verdict {
        Verdict::Forward
    }
}

/// Counters kept by a [`GatewayNode`], indexed by [`Dir`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Packets forwarded (after any hold/shaping), per direction.
    pub forwarded: [u64; 2],
    /// Packets dropped by a middlebox verdict, per direction.
    pub dropped: [u64; 2],
    /// Packets that were held before forwarding, per direction.
    pub held: [u64; 2],
}

impl GatewayStats {
    /// Total packets forwarded in both directions.
    pub fn total_forwarded(&self) -> u64 {
        self.forwarded[0] + self.forwarded[1]
    }

    /// Total packets dropped in both directions.
    pub fn total_dropped(&self) -> u64 {
        self.dropped[0] + self.dropped[1]
    }
}

/// A node bridging a "left" endpoint and a "right" endpoint, running a
/// middlebox chain over transiting traffic and applying egress shaping.
///
/// The gateway classifies direction by the packet's original source: packets
/// whose `src` equals the left endpoint travel [`Dir::LeftToRight`]. It is
/// therefore intended for the canonical three-node chain
/// `client — gateway — server` (the paper's topology: the lab gateway,
/// §V "Adversary Setup").
pub struct GatewayNode<P> {
    left: NodeId,
    right: NodeId,
    chain: Vec<Box<dyn Middlebox<P>>>,
    shaping: ShapingState,
    /// Egress serializer cursor per direction (rate limiting).
    shaper_busy: [SimTime; 2],
    stats: GatewayStats,
}

impl<P> std::fmt::Debug for GatewayNode<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GatewayNode")
            .field("left", &self.left)
            .field("right", &self.right)
            .field("chain_len", &self.chain.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl<P> GatewayNode<P> {
    /// Creates a gateway bridging `left` and `right`.
    pub fn new(left: NodeId, right: NodeId) -> Self {
        GatewayNode {
            left,
            right,
            chain: Vec::new(),
            shaping: ShapingState::default(),
            shaper_busy: [SimTime::ZERO; 2],
            stats: GatewayStats::default(),
        }
    }

    /// Appends a middlebox to the chain (builder style). Chain order is
    /// processing order; install taps before active elements to observe
    /// traffic exactly as it arrives.
    pub fn with_middlebox(mut self, mb: impl Middlebox<P> + 'static) -> Self {
        self.chain.push(Box::new(mb));
        self
    }

    /// Appends a middlebox to the chain.
    pub fn push_middlebox(&mut self, mb: impl Middlebox<P> + 'static) {
        self.chain.push(Box::new(mb));
    }

    /// Accumulated counters.
    pub fn stats(&self) -> GatewayStats {
        self.stats
    }

    /// Current shaping state (for inspection in tests).
    pub fn shaping(&self) -> &ShapingState {
        &self.shaping
    }

    fn classify(&self, packet: &Packet<P>) -> Dir {
        if packet.src == self.left {
            Dir::LeftToRight
        } else {
            Dir::RightToLeft
        }
    }

    /// Advances the egress shaper for a packet entering it at `enter`;
    /// returns how long the shaper delays the packet beyond `enter`.
    fn shaping_delay(&mut self, dir: Dir, bytes: u32, enter: SimTime) -> SimDuration {
        let Some(rate) = self.shaping.rate(dir) else {
            return SimDuration::ZERO;
        };
        let cfg = LinkConfig::default().bandwidth(rate);
        let start = enter.max(self.shaper_busy[dir.index()]);
        let departure = start + cfg.serialization_time(bytes);
        self.shaper_busy[dir.index()] = departure;
        departure - enter
    }
}

impl<P> Node<P> for GatewayNode<P> {
    fn on_packet(&mut self, packet: Packet<P>, ctx: &mut Context<'_, P>) {
        let dir = self.classify(&packet);
        let mut hold = SimDuration::ZERO;
        let mut dropped = false;
        {
            let mut mb_ctx = MbContext {
                now: ctx.now(),
                dir,
                rng: ctx.rng,
                shaping: &mut self.shaping,
            };
            for mb in &mut self.chain {
                match mb.process(&packet, &mut mb_ctx) {
                    Verdict::Forward => {}
                    Verdict::Hold(d) => hold += d,
                    Verdict::Drop => {
                        dropped = true;
                        break;
                    }
                }
            }
        }
        if dropped {
            self.stats.dropped[dir.index()] += 1;
            return;
        }
        if !hold.is_zero() {
            self.stats.held[dir.index()] += 1;
        }
        // The shaper serializes un-held packets in verdict order at the
        // capped rate. Held packets are already paced by their hold and
        // bypass the shared cursor: advancing it to a far-future release
        // would wrongly queue every later packet behind them.
        let now = ctx.now();
        let enter = now + hold;
        let shaping = if hold.is_zero() {
            self.shaping_delay(dir, packet.wire_bytes, enter)
        } else {
            SimDuration::ZERO
        };
        self.stats.forwarded[dir.index()] += 1;
        ctx.send_after(hold + shaping, packet);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::mbps;

    fn ctx_parts() -> (SimRng, Vec<crate::node::Effect<u8>>, u64) {
        (SimRng::seed_from(0), Vec::new(), 0)
    }

    fn make_ctx<'a>(
        now: SimTime,
        rng: &'a mut SimRng,
        effects: &'a mut Vec<crate::node::Effect<u8>>,
        timer_seq: &'a mut u64,
    ) -> Context<'a, u8> {
        Context {
            now,
            node: NodeId(1),
            rng,
            effects,
            timer_seq,
        }
    }

    struct DropAll;
    impl Middlebox<u8> for DropAll {
        fn process(&mut self, _p: &Packet<u8>, _c: &mut MbContext<'_>) -> Verdict {
            Verdict::Drop
        }
    }

    struct HoldBy(SimDuration);
    impl Middlebox<u8> for HoldBy {
        fn process(&mut self, _p: &Packet<u8>, _c: &mut MbContext<'_>) -> Verdict {
            Verdict::Hold(self.0)
        }
    }

    #[test]
    fn passthrough_forwards() {
        let mut gw: GatewayNode<u8> =
            GatewayNode::new(NodeId(0), NodeId(2)).with_middlebox(Passthrough);
        let (mut rng, mut fx, mut seq) = ctx_parts();
        let mut ctx = make_ctx(SimTime::ZERO, &mut rng, &mut fx, &mut seq);
        gw.on_packet(Packet::new(NodeId(0), NodeId(2), 100, 1u8), &mut ctx);
        assert_eq!(fx.len(), 1);
        assert_eq!(gw.stats().forwarded, [1, 0]);
    }

    #[test]
    fn direction_classification() {
        let mut gw: GatewayNode<u8> = GatewayNode::new(NodeId(0), NodeId(2));
        let (mut rng, mut fx, mut seq) = ctx_parts();
        {
            let mut ctx = make_ctx(SimTime::ZERO, &mut rng, &mut fx, &mut seq);
            gw.on_packet(Packet::new(NodeId(0), NodeId(2), 100, 1u8), &mut ctx);
            gw.on_packet(Packet::new(NodeId(2), NodeId(0), 100, 1u8), &mut ctx);
        }
        assert_eq!(gw.stats().forwarded, [1, 1]);
    }

    #[test]
    fn drop_verdict_discards() {
        let mut gw: GatewayNode<u8> =
            GatewayNode::new(NodeId(0), NodeId(2)).with_middlebox(DropAll);
        let (mut rng, mut fx, mut seq) = ctx_parts();
        let mut ctx = make_ctx(SimTime::ZERO, &mut rng, &mut fx, &mut seq);
        gw.on_packet(Packet::new(NodeId(0), NodeId(2), 100, 1u8), &mut ctx);
        assert!(fx.is_empty());
        assert_eq!(gw.stats().dropped, [1, 0]);
        assert_eq!(gw.stats().total_dropped(), 1);
    }

    #[test]
    fn holds_accumulate_across_chain() {
        let mut gw: GatewayNode<u8> = GatewayNode::new(NodeId(0), NodeId(2))
            .with_middlebox(HoldBy(SimDuration::from_millis(10)))
            .with_middlebox(HoldBy(SimDuration::from_millis(5)));
        let (mut rng, mut fx, mut seq) = ctx_parts();
        let mut ctx = make_ctx(SimTime::ZERO, &mut rng, &mut fx, &mut seq);
        gw.on_packet(Packet::new(NodeId(0), NodeId(2), 100, 1u8), &mut ctx);
        match &fx[0] {
            crate::node::Effect::SendAfter(d, _) => {
                assert_eq!(*d, SimDuration::from_millis(15));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(gw.stats().held, [1, 0]);
    }

    #[test]
    fn drop_short_circuits_chain() {
        struct Counter(Rc<RefCell<u64>>);
        impl Middlebox<u8> for Counter {
            fn process(&mut self, _p: &Packet<u8>, _c: &mut MbContext<'_>) -> Verdict {
                *self.0.borrow_mut() += 1;
                Verdict::Forward
            }
        }
        let count = Rc::new(RefCell::new(0));
        let mut gw: GatewayNode<u8> = GatewayNode::new(NodeId(0), NodeId(2))
            .with_middlebox(DropAll)
            .with_middlebox(Counter(count.clone()));
        let (mut rng, mut fx, mut seq) = ctx_parts();
        let mut ctx = make_ctx(SimTime::ZERO, &mut rng, &mut fx, &mut seq);
        gw.on_packet(Packet::new(NodeId(0), NodeId(2), 100, 1u8), &mut ctx);
        assert_eq!(*count.borrow(), 0);
    }

    #[test]
    fn shaping_serializes_packets() {
        struct Throttle;
        impl Middlebox<u8> for Throttle {
            fn process(&mut self, _p: &Packet<u8>, c: &mut MbContext<'_>) -> Verdict {
                c.shaping.set_rate_both(Some(mbps(1)));
                Verdict::Forward
            }
        }
        let mut gw: GatewayNode<u8> =
            GatewayNode::new(NodeId(0), NodeId(2)).with_middlebox(Throttle);
        let (mut rng, mut fx, mut seq) = ctx_parts();
        let mut ctx = make_ctx(SimTime::ZERO, &mut rng, &mut fx, &mut seq);
        // Two 1500 B packets at 1 Mbps: 12 ms each, so the second departs
        // 24 ms after arrival.
        gw.on_packet(Packet::new(NodeId(0), NodeId(2), 1500, 1u8), &mut ctx);
        gw.on_packet(Packet::new(NodeId(0), NodeId(2), 1500, 2u8), &mut ctx);
        let delays: Vec<SimDuration> = fx
            .iter()
            .map(|e| match e {
                crate::node::Effect::SendAfter(d, _) => *d,
                crate::node::Effect::Send(_) => SimDuration::ZERO,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(
            delays,
            vec![SimDuration::from_millis(12), SimDuration::from_millis(24)]
        );
    }

    #[test]
    fn shaping_is_per_direction() {
        struct ThrottleC2s;
        impl Middlebox<u8> for ThrottleC2s {
            fn process(&mut self, _p: &Packet<u8>, c: &mut MbContext<'_>) -> Verdict {
                c.shaping.set_rate(Dir::LeftToRight, Some(mbps(1)));
                Verdict::Forward
            }
        }
        let mut gw: GatewayNode<u8> =
            GatewayNode::new(NodeId(0), NodeId(2)).with_middlebox(ThrottleC2s);
        let (mut rng, mut fx, mut seq) = ctx_parts();
        let mut ctx = make_ctx(SimTime::ZERO, &mut rng, &mut fx, &mut seq);
        gw.on_packet(Packet::new(NodeId(2), NodeId(0), 1500, 1u8), &mut ctx);
        // Server→client is uncapped: forwarded immediately.
        assert!(matches!(fx[0], crate::node::Effect::Send(_)));
    }

    #[test]
    fn rc_refcell_middlebox_shares_state() {
        #[derive(Default)]
        struct Tap {
            seen: Vec<u32>,
        }
        impl Middlebox<u8> for Tap {
            fn process(&mut self, p: &Packet<u8>, _c: &mut MbContext<'_>) -> Verdict {
                self.seen.push(p.wire_bytes);
                Verdict::Forward
            }
        }
        let tap = Rc::new(RefCell::new(Tap::default()));
        let mut gw: GatewayNode<u8> =
            GatewayNode::new(NodeId(0), NodeId(2)).with_middlebox(tap.clone());
        let (mut rng, mut fx, mut seq) = ctx_parts();
        let mut ctx = make_ctx(SimTime::ZERO, &mut rng, &mut fx, &mut seq);
        gw.on_packet(Packet::new(NodeId(0), NodeId(2), 111, 1u8), &mut ctx);
        assert_eq!(tap.borrow().seen, vec![111]);
    }
}
