//! # h2priv-netsim — deterministic discrete-event network simulator
//!
//! The substrate under every experiment in the `h2priv` workspace, the
//! reproduction of *"Depending on HTTP/2 for Privacy? Good Luck!"*
//! (DSN 2020). The paper's adversary manipulates four network parameters —
//! delay, jitter, bandwidth and packet drops (§II "Network Parameters") —
//! from a compromised gateway; this crate models exactly those degrees of
//! freedom:
//!
//! * [`Simulator`] — the event engine: nodes, links, timers, deterministic
//!   `(time, sequence)` event ordering, seeded randomness ([`SimRng`]).
//! * [`Link`]/[`LinkConfig`] — propagation delay, per-packet jitter
//!   ([`DurationDist`]), bandwidth serialization, drop-tail queueing and
//!   random loss.
//! * [`GatewayNode`] + [`Middlebox`] — the compromised on-path device: an
//!   ordered chain of packet processors that can observe, hold, drop, and
//!   throttle ([`ShapingState`]) transiting traffic.
//!
//! The crate is generic over the packet payload type; `h2priv-tcp`
//! instantiates it with TCP segments.
//!
//! # Examples
//!
//! ```
//! use h2priv_netsim::{
//!     Context, LinkConfig, Node, NodeId, Packet, SimDuration, Simulator,
//! };
//!
//! struct Sink(u32);
//! impl Node<u32> for Sink {
//!     fn on_packet(&mut self, p: Packet<u32>, _ctx: &mut Context<'_, u32>) {
//!         self.0 += p.payload;
//!     }
//! }
//! struct Source(NodeId);
//! impl Node<u32> for Source {
//!     fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
//!         ctx.send(Packet::new(ctx.node_id(), self.0, 64, 41));
//!     }
//!     fn on_packet(&mut self, _p: Packet<u32>, _ctx: &mut Context<'_, u32>) {}
//! }
//!
//! let mut sim = Simulator::new(7);
//! let src = sim.reserve_node_id();
//! let dst = sim.reserve_node_id();
//! sim.install_node(dst, Box::new(Sink(0)));
//! sim.install_node(src, Box::new(Source(dst)));
//! sim.add_link(src, dst, LinkConfig::with_delay(SimDuration::from_millis(1)));
//! let summary = sim.run();
//! assert_eq!(summary.end_time, h2priv_netsim::SimTime::from_millis(1));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod heap;
mod link;
mod middlebox;
mod node;
mod packet;
mod rng;
mod sim;
mod time;
mod wheel;

pub use link::{mbps, BitsPerSec, Link, LinkConfig, LinkDrop, LinkStats};
pub use middlebox::{
    GatewayNode, GatewayStats, MbContext, Middlebox, Passthrough, ShapingState, Verdict,
};
pub use node::{Context, Node, TimerId};
pub use packet::{Dir, NodeId, Packet};
pub use rng::{DurationDist, SimRng};
pub use sim::{EngineStats, RunSummary, Simulator, StopReason};
pub use time::{SimDuration, SimTime};
pub use wheel::{SchedStats, BUCKET_COUNT, BUCKET_NANOS_SHIFT};

/// Scheduler internals re-exported for the crate's differential tests and
/// the scheduler microbenchmark. Not a stable API.
#[doc(hidden)]
pub mod internals {
    pub use crate::heap::MinHeap4;
    pub use crate::wheel::CalendarQueue;
}
