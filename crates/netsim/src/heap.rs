//! A 4-ary min-heap: formerly the global event queue, now the far-future
//! overflow tier of the calendar queue (`wheel`) and the reference
//! implementation the scheduler differential tests compare against.
//!
//! A d=4 heap halves the tree depth of the binary
//! `std::collections::BinaryHeap` (log4 vs log2), trading a slightly wider
//! per-level scan (up to four child comparisons, all within one cache line
//! for small entries) for fewer levels touched per sift — a well-known win
//! for heaps whose entries are small and whose operations are
//! pop-push-dominated, as event queues are.
//!
//! Pop order is **identical** to the `BinaryHeap` it replaced: entries are
//! ordered by `(time, sequence)`, which is a strict total order (the
//! sequence number is unique), so no tie ever reaches the heap's
//! tie-breaking behavior and replacing the container cannot reorder
//! events.

/// A d=4 min-heap: `pop` yields the smallest element by `T`'s `Ord`.
///
/// Exposed (via the hidden `internals` module) only so the scheduler
/// differential tests and microbenchmarks can drive the old queue and the
/// calendar queue side by side.
#[derive(Debug)]
pub struct MinHeap4<T> {
    items: Vec<T>,
}

impl<T: Ord> MinHeap4<T> {
    /// Creates an empty heap.
    pub const fn new() -> Self {
        MinHeap4 { items: Vec::new() }
    }

    /// Number of queued elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True iff the heap holds no elements.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The smallest element, if any.
    pub fn peek(&self) -> Option<&T> {
        self.items.first()
    }

    /// Inserts an element.
    pub fn push(&mut self, item: T) {
        self.items.push(item);
        self.sift_up(self.items.len() - 1);
    }

    /// Removes and returns the smallest element.
    pub fn pop(&mut self) -> Option<T> {
        if self.items.is_empty() {
            return None;
        }
        let last = self.items.len() - 1;
        self.items.swap(0, last);
        let top = self.items.pop();
        if !self.items.is_empty() {
            self.sift_down(0);
        }
        top
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 4;
            if self.items[i] >= self.items[parent] {
                break;
            }
            self.items.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.items.len();
        loop {
            let first_child = 4 * i + 1;
            if first_child >= len {
                break;
            }
            let last_child = (first_child + 4).min(len);
            let mut min = first_child;
            for c in first_child + 1..last_child {
                if self.items[c] < self.items[min] {
                    min = c;
                }
            }
            if self.items[min] >= self.items[i] {
                break;
            }
            self.items.swap(i, min);
            i = min;
        }
    }
}

impl<T: Ord> Default for MinHeap4<T> {
    fn default() -> Self {
        MinHeap4::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_heap() {
        let mut h: MinHeap4<u64> = MinHeap4::new();
        assert_eq!(h.len(), 0);
        assert_eq!(h.peek(), None);
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn pops_in_sorted_order() {
        let mut h = MinHeap4::new();
        for v in [5u64, 1, 9, 3, 7, 2, 8, 4, 6, 0] {
            h.push(v);
        }
        let mut out = Vec::new();
        while let Some(v) = h.pop() {
            out.push(v);
        }
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_tracks_minimum() {
        let mut h = MinHeap4::new();
        h.push(10u64);
        assert_eq!(h.peek(), Some(&10));
        h.push(3);
        assert_eq!(h.peek(), Some(&3));
        h.push(7);
        assert_eq!(h.peek(), Some(&3));
        assert_eq!(h.pop(), Some(3));
        assert_eq!(h.peek(), Some(&7));
    }

    /// Interleaved pushes and pops on pseudorandom keys must match a sorted
    /// reference — the equivalence that lets the simulator swap this in for
    /// `BinaryHeap` without changing event order.
    #[test]
    fn randomized_matches_sorted_reference() {
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut h = MinHeap4::new();
        let mut reference = Vec::new();
        let mut popped = Vec::new();
        for round in 0..2000u64 {
            let v = next() % 10_000;
            h.push((v, round));
            reference.push((v, round));
            if round % 3 == 0 {
                popped.push(h.pop().expect("non-empty"));
            }
        }
        while let Some(v) = h.pop() {
            popped.push(v);
        }
        assert_eq!(popped.len(), reference.len());
        // Drained fully, every pop was the minimum of what remained at the
        // time; a cheap global check: the final full drain is sorted.
        let tail = &popped[popped.len() - 1000..];
        assert!(tail.windows(2).all(|w| w[0] <= w[1]));
        let mut sorted_ref = reference;
        sorted_ref.sort_unstable();
        let mut sorted_popped = popped;
        sorted_popped.sort_unstable();
        assert_eq!(sorted_popped, sorted_ref);
    }
}
