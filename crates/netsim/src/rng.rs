//! Deterministic randomness for the simulator.
//!
//! Every stochastic decision in a run — link jitter draws, loss coin flips,
//! browser think times, the modeled user's survey outcome — is drawn from a
//! single [`SimRng`] seeded once per trial. Re-running with the same seed
//! reproduces the run bit-for-bit, which is what makes the paper's
//! "repeat the download 100 times" experiments meaningful here: trial *i*
//! uses `base_seed + i`.

use crate::time::SimDuration;

/// Deterministic random number generator used throughout a simulation run.
///
/// Internally a xoshiro256\*\* generator seeded through SplitMix64, so the
/// whole workspace is free of external RNG dependencies while keeping the
/// statistical quality the simulator needs (jitter draws, loss coin flips,
/// permutations).
///
/// # Examples
///
/// ```
/// use h2priv_netsim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.gen_range_u64(0..100), b.gen_range_u64(0..100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The xoshiro256\*\* next step: uniform over all of `u64`.
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Derives an independent child generator. Useful for giving a component
    /// its own stream so that adding draws in one component does not perturb
    /// another component's sequence.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.next_u64())
    }

    /// Uniform draw from a `u64` range.
    pub fn gen_range_u64(&mut self, range: std::ops::Range<u64>) -> u64 {
        if range.is_empty() {
            return range.start;
        }
        let span = range.end - range.start;
        range.start + self.bounded(span)
    }

    /// Uniform draw from `[0, bound)` (`bound` = 0 means the full `u64`
    /// range). Debiased with Lemire-style rejection sampling.
    fn bounded(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return self.next_u64();
        }
        // Rejection threshold: the largest multiple of `bound` ≤ 2^64.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let wide = (x as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Uniform draw from `[0, 1)`.
    pub fn gen_unit_f64(&mut self) -> f64 {
        // 53 mantissa bits of a uniform u64 → [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.gen_unit_f64() < p
    }

    /// Samples a duration from `dist`.
    pub fn sample_duration(&mut self, dist: &DurationDist) -> SimDuration {
        dist.sample(self)
    }

    /// Draws a uniformly random permutation of `0..n` (Fisher–Yates).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.bounded(i as u64 + 1) as usize;
            v.swap(i, j);
        }
        v
    }

    /// Uniform draw from `(0, 1)` — never exactly zero, safe to `ln()`.
    fn gen_open_unit_f64(&mut self) -> f64 {
        loop {
            let u = self.gen_unit_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Standard normal draw via Box–Muller (we avoid an external
    /// distributions dependency; the simulator only needs a handful).
    fn standard_normal(&mut self) -> f64 {
        let u1 = self.gen_open_unit_f64();
        let u2 = self.gen_unit_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Exponential draw with the given mean, via inverse transform.
    fn exponential(&mut self, mean: f64) -> f64 {
        let u = self.gen_open_unit_f64();
        -mean * u.ln()
    }
}

/// A distribution over non-negative durations.
///
/// Used for link jitter, browser think-time noise and server worker latency.
/// Negative samples (possible under [`DurationDist::Normal`]) are clamped to
/// zero, which matches the physical constraint that delays cannot be
/// negative.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum DurationDist {
    /// Always zero.
    #[default]
    None,
    /// Always exactly this long.
    Constant(SimDuration),
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Inclusive lower bound.
        lo: SimDuration,
        /// Inclusive upper bound.
        hi: SimDuration,
    },
    /// Normal with the given mean and standard deviation, clamped at zero.
    Normal {
        /// Mean of the distribution.
        mean: SimDuration,
        /// Standard deviation of the distribution.
        std_dev: SimDuration,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean of the distribution.
        mean: SimDuration,
    },
}

impl DurationDist {
    /// Samples one duration.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match *self {
            DurationDist::None => SimDuration::ZERO,
            DurationDist::Constant(d) => d,
            DurationDist::Uniform { lo, hi } => {
                if hi <= lo {
                    return lo;
                }
                SimDuration::from_nanos(
                    rng.gen_range_u64(lo.as_nanos()..hi.as_nanos().saturating_add(1)),
                )
            }
            DurationDist::Normal { mean, std_dev } => {
                let x = mean.as_nanos() as f64 + rng.standard_normal() * std_dev.as_nanos() as f64;
                if x <= 0.0 {
                    SimDuration::ZERO
                } else {
                    SimDuration::from_nanos(x as u64)
                }
            }
            DurationDist::Exponential { mean } => {
                SimDuration::from_nanos(rng.exponential(mean.as_nanos() as f64) as u64)
            }
        }
    }

    /// The distribution's mean, used by components that need an expectation
    /// (e.g. RTT budgeting in tests).
    pub fn mean(&self) -> SimDuration {
        match *self {
            DurationDist::None => SimDuration::ZERO,
            DurationDist::Constant(d) => d,
            DurationDist::Uniform { lo, hi } => {
                SimDuration::from_nanos((lo.as_nanos() / 2).saturating_add(hi.as_nanos() / 2))
            }
            DurationDist::Normal { mean, .. } => mean,
            DurationDist::Exponential { mean } => mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range_u64(0..1_000_000), b.gen_range_u64(0..1_000_000));
        }
    }

    #[test]
    fn different_seed_differs() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(8);
        let draws_a: Vec<u64> = (0..16).map(|_| a.gen_range_u64(0..u64::MAX)).collect();
        let draws_b: Vec<u64> = (0..16).map(|_| b.gen_range_u64(0..u64::MAX)).collect();
        assert_ne!(draws_a, draws_b);
    }

    #[test]
    fn fork_is_independent() {
        let mut parent = SimRng::seed_from(1);
        let mut child = parent.fork();
        // Drawing from the child must not affect the parent's stream.
        let mut parent_clone = parent.clone();
        let _ = child.gen_range_u64(0..100);
        assert_eq!(
            parent.gen_range_u64(0..u64::MAX),
            parent_clone.gen_range_u64(0..u64::MAX)
        );
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_frequency_close_to_p() {
        let mut rng = SimRng::seed_from(11);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.chance(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.02, "freq = {freq}");
    }

    #[test]
    fn uniform_dist_bounds() {
        let mut rng = SimRng::seed_from(5);
        let dist = DurationDist::Uniform {
            lo: SimDuration::from_millis(2),
            hi: SimDuration::from_millis(4),
        };
        for _ in 0..1000 {
            let d = dist.sample(&mut rng);
            assert!(d >= SimDuration::from_millis(2) && d <= SimDuration::from_millis(4));
        }
    }

    #[test]
    fn degenerate_uniform_is_constant() {
        let mut rng = SimRng::seed_from(5);
        let d = SimDuration::from_millis(3);
        let dist = DurationDist::Uniform { lo: d, hi: d };
        assert_eq!(dist.sample(&mut rng), d);
    }

    #[test]
    fn normal_dist_clamps_at_zero() {
        let mut rng = SimRng::seed_from(5);
        let dist = DurationDist::Normal {
            mean: SimDuration::from_nanos(10),
            std_dev: SimDuration::from_millis(10),
        };
        // With a mean near zero and huge deviation roughly half the draws
        // would be negative; all must clamp to a valid duration.
        let mut zeros = 0;
        for _ in 0..500 {
            if dist.sample(&mut rng).is_zero() {
                zeros += 1;
            }
        }
        assert!(zeros > 100);
    }

    #[test]
    fn normal_dist_mean_close() {
        let mut rng = SimRng::seed_from(9);
        let dist = DurationDist::Normal {
            mean: SimDuration::from_millis(50),
            std_dev: SimDuration::from_millis(5),
        };
        let n = 5_000u64;
        let total: u128 = (0..n)
            .map(|_| dist.sample(&mut rng).as_nanos() as u128)
            .sum();
        let mean_ms = (total / n as u128) as f64 / 1e6;
        assert!((mean_ms - 50.0).abs() < 1.0, "mean = {mean_ms}ms");
    }

    #[test]
    fn exponential_dist_mean_close() {
        let mut rng = SimRng::seed_from(13);
        let dist = DurationDist::Exponential {
            mean: SimDuration::from_millis(10),
        };
        let n = 20_000u64;
        let total: u128 = (0..n)
            .map(|_| dist.sample(&mut rng).as_nanos() as u128)
            .sum();
        let mean_ms = (total / n as u128) as f64 / 1e6;
        assert!((mean_ms - 10.0).abs() < 0.5, "mean = {mean_ms}ms");
    }

    #[test]
    fn permutation_is_valid() {
        let mut rng = SimRng::seed_from(21);
        let p = rng.permutation(8);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn permutation_varies_across_draws() {
        let mut rng = SimRng::seed_from(21);
        let a = rng.permutation(8);
        let b = rng.permutation(8);
        // Overwhelmingly likely to differ (probability 1/8! otherwise).
        assert_ne!(a, b);
    }

    #[test]
    fn dist_means() {
        assert_eq!(DurationDist::None.mean(), SimDuration::ZERO);
        assert_eq!(
            DurationDist::Constant(SimDuration::from_millis(4)).mean(),
            SimDuration::from_millis(4)
        );
        assert_eq!(
            DurationDist::Uniform {
                lo: SimDuration::from_millis(2),
                hi: SimDuration::from_millis(4),
            }
            .mean(),
            SimDuration::from_millis(3)
        );
    }
}
