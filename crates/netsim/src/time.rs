//! Simulated time.
//!
//! The simulator measures time as a monotonically non-decreasing count of
//! nanoseconds since the start of the run. Nanosecond resolution is needed
//! because the experiments mix effects at very different scales: serializing
//! a 1500-byte packet at 1 Gbps takes 12 µs, while the paper's injected
//! jitter is tens of milliseconds and browser stall timeouts are seconds.
//!
//! [`SimTime`] is an absolute instant; [`SimDuration`] is a span. Both are
//! thin newtypes over `u64` with saturating arithmetic, so a pathological
//! configuration can never wrap time backwards.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant of simulated time (nanoseconds since run start).
///
/// # Examples
///
/// ```
/// use h2priv_netsim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_nanos(), 5_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
///
/// # Examples
///
/// ```
/// use h2priv_netsim::SimDuration;
///
/// let d = SimDuration::from_micros(250) * 4;
/// assert_eq!(d.as_millis_f64(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after run start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after run start
    /// (saturating at [`SimTime::MAX`]).
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros.saturating_mul(1_000))
    }

    /// Creates an instant `millis` milliseconds after run start
    /// (saturating at [`SimTime::MAX`]).
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis.saturating_mul(1_000_000))
    }

    /// Creates an instant `secs` seconds after run start (saturating at
    /// [`SimTime::MAX`]).
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs.saturating_mul(1_000_000_000))
    }

    /// Nanoseconds since run start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since run start (truncated).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since run start (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Milliseconds since run start, as a float (no truncation).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// Seconds since run start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// The span from `earlier` to `self`, or [`SimDuration::ZERO`] if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Sums two instants as if they were spans, saturating at
    /// [`SimTime::MAX`]. Adding absolute times is normally meaningless —
    /// the one legitimate use is *merging per-shard clocks* into an
    /// aggregate "simulated host-seconds" figure (fleet shard merge),
    /// where each shard contributes its own end time and a shard parked
    /// at an "infinite" deadline must not wrap the total negative.
    pub const fn saturating_merge(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(other.0))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span; used as an "infinite" timeout.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds (saturating at
    /// [`SimDuration::MAX`]).
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros.saturating_mul(1_000))
    }

    /// Creates a span of `millis` milliseconds (saturating at
    /// [`SimDuration::MAX`]).
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis.saturating_mul(1_000_000))
    }

    /// Creates a span of `secs` seconds (saturating at
    /// [`SimDuration::MAX`]).
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs.saturating_mul(1_000_000_000))
    }

    /// Creates a span from a float count of seconds (saturating at zero for
    /// negative or non-finite input).
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1.0e9).round().min(u64::MAX as f64) as u64)
    }

    /// Creates a span from a float count of milliseconds (saturating as for
    /// [`SimDuration::from_secs_f64`]).
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1.0e3)
    }

    /// The span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in microseconds (truncated).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The span in milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The span in milliseconds, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// The span in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// True iff the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by a float factor, saturating (negative or
    /// non-finite factors yield zero).
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        if !factor.is_finite() || factor <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((self.0 as f64 * factor).min(u64::MAX as f64) as u64)
    }

    /// Returns the larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Saturating: if `rhs` is later than `self`, the result is zero.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// Saturating subtraction.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_secs(3).as_millis(), 3_000);
        assert_eq!(SimDuration::from_millis(7).as_micros(), 7_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
    }

    #[test]
    fn float_constructors_round() {
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
        assert_eq!(SimDuration::from_millis_f64(0.1).as_micros(), 100);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic_saturates() {
        let near_max = SimTime::from_nanos(u64::MAX - 1);
        assert_eq!(near_max + SimDuration::from_secs(10), SimTime::MAX);
        assert_eq!(SimTime::ZERO - SimDuration::from_secs(1), SimTime::ZERO);
        assert_eq!(
            SimDuration::from_millis(1) - SimDuration::from_millis(2),
            SimDuration::ZERO
        );
    }

    #[test]
    fn constructors_saturate() {
        // The doc promise is "saturating arithmetic, so a pathological
        // configuration can never wrap time backwards" — that must include
        // the unit-conversion constructors, not just the operators.
        assert_eq!(SimTime::from_micros(u64::MAX), SimTime::MAX);
        assert_eq!(SimTime::from_millis(u64::MAX), SimTime::MAX);
        assert_eq!(SimTime::from_secs(u64::MAX), SimTime::MAX);
        assert_eq!(SimDuration::from_micros(u64::MAX), SimDuration::MAX);
        assert_eq!(SimDuration::from_millis(u64::MAX), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs(u64::MAX), SimDuration::MAX);
        // Just past the overflow boundary, still saturates.
        assert_eq!(
            SimTime::from_secs(u64::MAX / 1_000_000_000 + 1),
            SimTime::MAX
        );
    }

    #[test]
    fn saturating_merge_boundary() {
        // Shard-clock merge: ordinary clocks add, and a shard parked at an
        // "infinite" deadline saturates instead of wrapping the aggregate.
        let a = SimTime::from_secs(90);
        let b = SimTime::from_secs(30);
        assert_eq!(a.saturating_merge(b), SimTime::from_secs(120));
        assert_eq!(SimTime::ZERO.saturating_merge(a), a);
        assert_eq!(SimTime::MAX.saturating_merge(b), SimTime::MAX);
        assert_eq!(
            SimTime::from_nanos(u64::MAX - 1).saturating_merge(SimTime::from_nanos(2)),
            SimTime::MAX
        );
    }

    #[test]
    fn instant_difference() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(4);
        assert_eq!(a - b, SimDuration::from_millis(6));
        assert_eq!(b.saturating_since(a), SimDuration::ZERO);
    }

    #[test]
    fn scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(5));
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            SimDuration::from_millis(1).max(SimDuration::from_millis(2)),
            SimDuration::from_millis(2)
        );
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", SimTime::from_millis(1)), "1.000ms");
        assert_eq!(format!("{}", SimDuration::from_micros(1500)), "1.500ms");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }
}
