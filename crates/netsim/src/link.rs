//! Point-to-point link model.
//!
//! A link is unidirectional (the simulator installs one per direction) and
//! models the four network parameters the paper manipulates (§II):
//!
//! * **Delay** — fixed propagation latency.
//! * **Jitter** — a per-packet random extra delay drawn from a
//!   [`DurationDist`]; with `preserve_order` (the default) jitter can stretch
//!   inter-arrival gaps but never reorder packets, matching FIFO queueing on
//!   real paths.
//! * **Bandwidth** — serialization delay `bytes / rate`, with a busy-until
//!   cursor so back-to-back packets queue behind one another.
//! * **Loss** — i.i.d. random drops, plus drop-tail queue overflow when more
//!   than `queue_limit` bytes are waiting for transmission.

use crate::rng::{DurationDist, SimRng};
use crate::time::{SimDuration, SimTime};

/// Bits per second. A plain alias: rates appear in user-facing configs, so we
/// keep them ergonomic rather than newtyped.
pub type BitsPerSec = u64;

/// Helper: megabits per second to [`BitsPerSec`].
pub const fn mbps(m: u64) -> BitsPerSec {
    m * 1_000_000
}

/// Configuration of one unidirectional link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkConfig {
    /// Fixed propagation delay.
    pub delay: SimDuration,
    /// Random per-packet extra delay.
    pub jitter: DurationDist,
    /// Transmission rate. `None` models an effectively infinite-speed link
    /// (zero serialization delay).
    pub bandwidth: Option<BitsPerSec>,
    /// Independent per-packet loss probability in `[0, 1]`.
    pub loss: f64,
    /// Maximum bytes that may be queued awaiting serialization before
    /// drop-tail discards kick in. `None` means unbounded.
    pub queue_limit: Option<u64>,
    /// If true (default), a packet never arrives before a packet sent
    /// earlier on the same link — [`Link::transmit`] returns non-decreasing
    /// arrival times. The engine's batched link delivery depends on this
    /// contract: ordered links keep their in-flight packets in a plain FIFO
    /// with a single scheduler entry for the head.
    pub preserve_order: bool,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            delay: SimDuration::ZERO,
            jitter: DurationDist::None,
            bandwidth: None,
            loss: 0.0,
            queue_limit: None,
            preserve_order: true,
        }
    }
}

impl LinkConfig {
    /// A link with only a fixed propagation delay.
    pub fn with_delay(delay: SimDuration) -> Self {
        LinkConfig {
            delay,
            ..LinkConfig::default()
        }
    }

    /// Sets the bandwidth (builder style).
    pub fn bandwidth(mut self, rate: BitsPerSec) -> Self {
        self.bandwidth = Some(rate);
        self
    }

    /// Sets the jitter distribution (builder style).
    pub fn jitter(mut self, jitter: DurationDist) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets the loss probability (builder style).
    pub fn loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Sets the queue limit in bytes (builder style).
    pub fn queue_limit(mut self, bytes: u64) -> Self {
        self.queue_limit = Some(bytes);
        self
    }

    /// Serialization time of `bytes` at the configured bandwidth.
    pub fn serialization_time(&self, bytes: u32) -> SimDuration {
        match self.bandwidth {
            None => SimDuration::ZERO,
            Some(rate) => {
                debug_assert!(rate > 0, "bandwidth must be positive");
                let bits = bytes as u64 * 8;
                // Any frame under ~2 GB keeps `bits * 1e9` inside u64, so
                // the division stays 64-bit (the 128-bit fallback compiles
                // to a libcall several times slower, and this runs once per
                // transmitted packet). Identical floor-division result.
                if let Some(scaled) = bits.checked_mul(1_000_000_000) {
                    return SimDuration::from_nanos(scaled / rate.max(1));
                }
                let nanos = bits as u128 * 1_000_000_000 / rate.max(1) as u128;
                SimDuration::from_nanos(nanos.min(u64::MAX as u128) as u64)
            }
        }
    }
}

/// Why a link discarded a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDrop {
    /// Random loss fired.
    RandomLoss,
    /// The transmit queue was full.
    QueueOverflow,
}

/// Counters for one link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets accepted and delivered (scheduled for arrival).
    pub delivered: u64,
    /// Bytes accepted and delivered.
    pub delivered_bytes: u64,
    /// Packets dropped by random loss.
    pub lost: u64,
    /// Packets dropped due to queue overflow.
    pub overflowed: u64,
}

/// Runtime state of one unidirectional link.
#[derive(Debug, Clone)]
pub struct Link {
    config: LinkConfig,
    /// Time at which the transmitter becomes idle.
    busy_until: SimTime,
    /// Latest scheduled arrival, for order preservation.
    last_arrival: SimTime,
    stats: LinkStats,
}

impl Link {
    /// Creates a link from its configuration.
    pub fn new(config: LinkConfig) -> Self {
        Link {
            config,
            busy_until: SimTime::ZERO,
            last_arrival: SimTime::ZERO,
            stats: LinkStats::default(),
        }
    }

    /// The link's configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Replaces the configuration (e.g. an experiment changing bandwidth
    /// mid-run). In-flight packets keep their already-computed arrival times.
    pub fn set_config(&mut self, config: LinkConfig) {
        self.config = config;
    }

    /// Accumulated counters.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Offers a packet of `bytes` to the link at time `now`.
    ///
    /// Returns the scheduled arrival time at the far end, or the reason the
    /// packet was dropped. With `preserve_order` the returned arrivals are
    /// non-decreasing across calls (enforced by clamping to the latest
    /// scheduled arrival), which is what lets the simulator queue this
    /// link's in-flight packets as a FIFO.
    pub fn transmit(
        &mut self,
        now: SimTime,
        bytes: u32,
        rng: &mut SimRng,
    ) -> Result<SimTime, LinkDrop> {
        if rng.chance(self.config.loss) {
            self.stats.lost += 1;
            return Err(LinkDrop::RandomLoss);
        }
        // Bytes currently waiting = what the transmitter still has to clock
        // out. With rate r, backlog ≈ (busy_until - now) * r.
        if let (Some(limit), Some(rate)) = (self.config.queue_limit, self.config.bandwidth) {
            let backlog_ns = self.busy_until.saturating_since(now).as_nanos() as u128;
            let backlog_bytes = backlog_ns * rate as u128 / 8 / 1_000_000_000;
            if backlog_bytes + bytes as u128 > limit as u128 {
                self.stats.overflowed += 1;
                return Err(LinkDrop::QueueOverflow);
            }
        }
        let start = now.max(self.busy_until);
        let departure = start + self.config.serialization_time(bytes);
        self.busy_until = departure;
        let mut arrival = departure + self.config.delay + rng.sample_duration(&self.config.jitter);
        if self.config.preserve_order {
            arrival = arrival.max(self.last_arrival);
        }
        self.last_arrival = arrival;
        self.stats.delivered += 1;
        self.stats.delivered_bytes += bytes as u64;
        Ok(arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(1)
    }

    #[test]
    fn zero_config_is_instant() {
        let mut link = Link::new(LinkConfig::default());
        let t = link
            .transmit(SimTime::from_millis(5), 1500, &mut rng())
            .unwrap();
        assert_eq!(t, SimTime::from_millis(5));
    }

    #[test]
    fn propagation_delay_applies() {
        let mut link = Link::new(LinkConfig::with_delay(SimDuration::from_millis(10)));
        let t = link.transmit(SimTime::ZERO, 100, &mut rng()).unwrap();
        assert_eq!(t, SimTime::from_millis(10));
    }

    #[test]
    fn serialization_time_math() {
        // 1500 bytes at 1 Gbps = 12 µs.
        let cfg = LinkConfig::default().bandwidth(mbps(1000));
        assert_eq!(cfg.serialization_time(1500), SimDuration::from_micros(12));
        // 1500 bytes at 1 Mbps = 12 ms.
        let cfg = LinkConfig::default().bandwidth(mbps(1));
        assert_eq!(cfg.serialization_time(1500), SimDuration::from_millis(12));
        // Infinite bandwidth.
        assert_eq!(
            LinkConfig::default().serialization_time(u32::MAX),
            SimDuration::ZERO
        );
    }

    #[test]
    fn back_to_back_packets_queue() {
        let mut link = Link::new(LinkConfig::default().bandwidth(mbps(1000)));
        let mut r = rng();
        let a = link.transmit(SimTime::ZERO, 1500, &mut r).unwrap();
        let b = link.transmit(SimTime::ZERO, 1500, &mut r).unwrap();
        assert_eq!(a, SimTime::from_micros(12));
        assert_eq!(b, SimTime::from_micros(24));
    }

    #[test]
    fn transmitter_idles_between_sends() {
        let mut link = Link::new(LinkConfig::default().bandwidth(mbps(1000)));
        let mut r = rng();
        let _ = link.transmit(SimTime::ZERO, 1500, &mut r).unwrap();
        // Much later, the link is idle again: no queueing delay.
        let b = link
            .transmit(SimTime::from_millis(100), 1500, &mut r)
            .unwrap();
        assert_eq!(b, SimTime::from_millis(100) + SimDuration::from_micros(12));
    }

    #[test]
    fn loss_drops_packets() {
        let mut link = Link::new(LinkConfig::default().loss(1.0));
        let res = link.transmit(SimTime::ZERO, 100, &mut rng());
        assert_eq!(res, Err(LinkDrop::RandomLoss));
        assert_eq!(link.stats().lost, 1);
        assert_eq!(link.stats().delivered, 0);
    }

    #[test]
    fn loss_rate_statistical() {
        let mut link = Link::new(LinkConfig::default().loss(0.25));
        let mut r = rng();
        let n = 10_000;
        let mut dropped = 0;
        for _ in 0..n {
            if link.transmit(SimTime::ZERO, 100, &mut r).is_err() {
                dropped += 1;
            }
        }
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn queue_overflow_drops() {
        // 1 Mbps with a 3000-byte queue: the third back-to-back 1500 B packet
        // sees a 3000-byte backlog and is dropped.
        let mut link = Link::new(LinkConfig::default().bandwidth(mbps(1)).queue_limit(3000));
        let mut r = rng();
        assert!(link.transmit(SimTime::ZERO, 1500, &mut r).is_ok());
        assert!(link.transmit(SimTime::ZERO, 1500, &mut r).is_ok());
        let res = link.transmit(SimTime::ZERO, 1500, &mut r);
        assert_eq!(res, Err(LinkDrop::QueueOverflow));
        assert_eq!(link.stats().overflowed, 1);
    }

    #[test]
    fn queue_drains_over_time() {
        let mut link = Link::new(LinkConfig::default().bandwidth(mbps(1)).queue_limit(3000));
        let mut r = rng();
        assert!(link.transmit(SimTime::ZERO, 1500, &mut r).is_ok());
        assert!(link.transmit(SimTime::ZERO, 1500, &mut r).is_ok());
        // 12 ms later the first packet has fully serialized; room again.
        assert!(link
            .transmit(SimTime::from_millis(13), 1500, &mut r)
            .is_ok());
    }

    #[test]
    fn jitter_preserves_order_by_default() {
        let cfg =
            LinkConfig::with_delay(SimDuration::from_millis(1)).jitter(DurationDist::Uniform {
                lo: SimDuration::ZERO,
                hi: SimDuration::from_millis(50),
            });
        let mut link = Link::new(cfg);
        let mut r = rng();
        let mut last = SimTime::ZERO;
        for i in 0..200 {
            let t = link
                .transmit(SimTime::from_micros(i * 10), 100, &mut r)
                .unwrap();
            assert!(t >= last, "reordered: {t} < {last}");
            last = t;
        }
    }

    #[test]
    fn jitter_can_reorder_when_allowed() {
        let mut cfg =
            LinkConfig::with_delay(SimDuration::from_millis(1)).jitter(DurationDist::Uniform {
                lo: SimDuration::ZERO,
                hi: SimDuration::from_millis(50),
            });
        cfg.preserve_order = false;
        let mut link = Link::new(cfg);
        let mut r = rng();
        let mut reordered = false;
        let mut last = SimTime::ZERO;
        for i in 0..200 {
            let t = link
                .transmit(SimTime::from_micros(i * 10), 100, &mut r)
                .unwrap();
            if t < last {
                reordered = true;
            }
            last = t;
        }
        assert!(reordered);
    }

    #[test]
    fn set_config_changes_future_behaviour() {
        let mut link = Link::new(LinkConfig::default().bandwidth(mbps(1000)));
        let mut r = rng();
        let a = link.transmit(SimTime::ZERO, 1500, &mut r).unwrap();
        assert_eq!(a, SimTime::from_micros(12));
        link.set_config(LinkConfig::default().bandwidth(mbps(1)));
        let b = link
            .transmit(SimTime::from_millis(1), 1500, &mut r)
            .unwrap();
        assert_eq!(b, SimTime::from_millis(13));
    }

    #[test]
    fn stats_accumulate() {
        let mut link = Link::new(LinkConfig::default());
        let mut r = rng();
        for _ in 0..5 {
            let _ = link.transmit(SimTime::ZERO, 100, &mut r);
        }
        assert_eq!(link.stats().delivered, 5);
        assert_eq!(link.stats().delivered_bytes, 500);
    }
}
