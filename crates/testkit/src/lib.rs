//! # h2priv-testkit — canonical end-to-end scenarios
//!
//! Part of the `h2priv` reproduction of *"Depending on HTTP/2 for Privacy?
//! Good Luck!"* (DSN 2020). Glue between the substrates: a [`Host`] stacks
//! TCP + TLS + HTTP/2 + application on one simulator node; a
//! [`build_scenario`]/[`run_scenario`] pair assembles and executes the
//! paper's topology (browser — lab gateway — website server) with
//! calibrated defaults ([`calib`]). Tests, benches and examples all build
//! their worlds through this crate so that every experiment shares one
//! vetted wiring.

#![warn(missing_docs)]

pub mod calib;
pub mod dos;
pub mod fleet;
mod host;
mod scenario;
mod tap;

pub use dos::{run_dos_trial, DosRunResult, DosScenarioConfig};
pub use fleet::{
    merge_shards, run_fleet, run_fleet_shard, shard_of_pair, victim_golden_order, victim_shard,
    FleetConfig, FleetConformance, FleetDosConfig, FleetResult, FleetSegment, ShardResult,
    VictimCapture, VICTIM_PAIR,
};
pub use host::{App, Host, HostCore, HostOracle};
pub use scenario::{build_scenario, run_scenario, run_trial, RunResult, Scenario, ScenarioConfig};
pub use tap::WireTap;
