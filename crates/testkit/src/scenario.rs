//! Canonical end-to-end scenario: client — gateway — server.
//!
//! Builds the paper's topology (§V "Adversary Setup"): a browser host, the
//! lab gateway (optionally carrying an adversary middlebox, always carrying
//! a wire tap), and the website server, wired over calibrated links. One
//! [`run_scenario`] call is one "download of the webpage" — one trial of
//! the paper's repeat-100-times experiments.

use std::cell::RefCell;
use std::rc::Rc;

use h2priv_analysis::{GroundTruth, WireTrace};
use h2priv_defense::{
    constrained_pad_set, AdaptivePacer, ConstantRatePacer, DefenseSpec, TlsShaper,
};
use h2priv_dos::{Alert, DetectorConfig, DosDetector, GuardConfig, GuardStats, ServerGuard};
use h2priv_http2::{H2Config, SendPolicy, Settings};
use h2priv_netsim::{
    Dir, GatewayNode, LinkConfig, Middlebox, NodeId, SimDuration, SimRng, Simulator, StopReason,
};
use h2priv_tcp::{AbortReason, TcpConfig, TcpSegment, TcpStats};
use h2priv_web::{
    BrowsePlan, Browser, BrowserConfig, RequestOutcome, SiteServer, SiteServerConfig, Website,
};

use h2priv_conformance::{ConformanceTap, Violation, ViolationSink};

use crate::calib;
use crate::host::{Host, HostCore, HostOracle};
use crate::tap::WireTap;

/// Everything configurable about one trial.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Trial seed (drives all randomness).
    pub seed: u64,
    /// Browser knobs.
    pub browser: BrowserConfig,
    /// Server application knobs.
    pub server: SiteServerConfig,
    /// Client HTTP/2 configuration.
    pub client_h2: H2Config,
    /// Server HTTP/2 configuration (the mux policy lives here).
    pub server_h2: H2Config,
    /// TCP configuration (both endpoints).
    pub tcp: TcpConfig,
    /// Client ↔ gateway link.
    pub client_link: LinkConfig,
    /// Gateway ↔ server link.
    pub server_link: LinkConfig,
    /// Hard cap on simulated trial duration.
    pub deadline: h2priv_netsim::SimDuration,
    /// Modeled kernel socket send-buffer size per endpoint (backpressure
    /// that keeps several responses pending in the mux at once).
    pub socket_buffer: usize,
    /// Countermeasure to deploy against the observer. Body padding rewrites
    /// the server config, frame quantization rewrites the server's HTTP/2
    /// config, and shaping defenses add a CDN-edge pacing node between the
    /// server and the adversary's gateway plus a dummy-record schedule on
    /// the server host.
    pub defense: DefenseSpec,
    /// Run the cross-layer conformance oracle alongside the trial: endpoint
    /// checkers on both hosts plus a wire tap at the gateway, all reporting
    /// into [`RunResult::violations`]. On by default; benches turn it off
    /// unless `--check` is given.
    pub conformance: bool,
    /// Slow-DoS resource guard on the server host. `None` (the default)
    /// keeps every pre-existing exhibit's schedule bit-identical; the DoS
    /// false-positive suite sets it on *benign* trials to pin zero sheds.
    pub dos_guard: Option<GuardConfig>,
    /// Online DoS detector on the server host, fed the decrypted inbound
    /// byte stream. `None` by default; benign trials with one attached
    /// must raise zero alerts.
    pub dos_detector: Option<DetectorConfig>,
    /// Worker-pool budget on the server. `None` (the default) keeps the
    /// legacy unbounded thread-per-request behavior.
    pub pool: Option<h2priv_web::PoolConfig>,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 0,
            browser: BrowserConfig {
                stall_timeout: calib::STALL_TIMEOUT,
                reissue_on_stall: true,
                max_attempts: 3,
                request_noise: h2priv_netsim::DurationDist::None,
                gap_noise_frac: calib::GAP_NOISE_FRAC,
                progress_quantum: 512 * 1024,
            },
            server: SiteServerConfig {
                worker_latency: calib::worker_latency(),
                pad_bucket: None,
                pad_sizes: None,
            },
            client_h2: H2Config {
                settings: Settings {
                    initial_window_size: calib::CLIENT_STREAM_WINDOW,
                    ..Settings::default()
                },
                send_policy: SendPolicy::RoundRobin,
                data_chunk_size: calib::DATA_CHUNK_SIZE,
                connection_window_bonus: calib::CLIENT_CONN_WINDOW_BONUS,
                data_pad_quantum: 0,
                headers_pad_quantum: 0,
                // Harness apps consume body *lengths*, never contents (the
                // browser records sizes and timing; the conformance oracle
                // taps TLS plaintext upstream of the h2 decoder), so DATA
                // payloads skip the per-frame copy on receive.
                opaque_data_payloads: true,
                // The host pump seals split frames with the TLS gather
                // path, so sent bodies also skip the frame-buffer copy.
                split_data_frames: true,
            },
            server_h2: H2Config {
                settings: Settings::default(),
                send_policy: SendPolicy::RoundRobin,
                data_chunk_size: calib::DATA_CHUNK_SIZE,
                connection_window_bonus: 0,
                data_pad_quantum: 0,
                headers_pad_quantum: 0,
                opaque_data_payloads: true,
                split_data_frames: true,
            },
            tcp: TcpConfig::default(),
            // Links preserve order: real path jitter is shared queueing
            // delay, which stretches gaps but does not reorder; per-packet
            // independent reordering would trigger spurious dup-ACK storms.
            client_link: LinkConfig::with_delay(calib::CLIENT_GW_DELAY)
                .bandwidth(calib::LINK_BANDWIDTH),
            server_link: LinkConfig::with_delay(calib::GW_SERVER_DELAY)
                .bandwidth(calib::WAN_BANDWIDTH)
                .queue_limit(calib::WAN_QUEUE_BYTES)
                .loss(calib::WAN_LOSS)
                .jitter(calib::natural_jitter()),
            deadline: calib::TRIAL_DEADLINE,
            socket_buffer: calib::SOCKET_BUFFER,
            defense: DefenseSpec::None,
            conformance: true,
            dos_guard: None,
            dos_detector: None,
            pool: None,
        }
    }
}

/// A built, not-yet-run trial.
pub struct Scenario {
    /// The simulator, ready to run.
    pub sim: Simulator<TcpSegment>,
    /// Client host handle (browser, TCP stats).
    pub client: Rc<RefCell<HostCore>>,
    /// Server host handle.
    pub server: Rc<RefCell<HostCore>>,
    /// The gateway's capture.
    pub trace: Rc<RefCell<WireTrace>>,
    /// Seal-time annotations.
    pub truth: Rc<RefCell<GroundTruth>>,
    /// Node ids (client, gateway, server).
    pub nodes: (NodeId, NodeId, NodeId),
    /// The conformance oracle's sink, when the oracle is enabled.
    pub violations: Option<ViolationSink>,
    deadline: h2priv_netsim::SimDuration,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("nodes", &self.nodes)
            .finish()
    }
}

/// The outcome of one trial.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Why and when the run stopped.
    pub stop: StopReason,
    /// Per-request browser outcomes (plan order).
    pub outcomes: Vec<RequestOutcome>,
    /// Ground-truth annotations (degree of multiplexing).
    pub truth: GroundTruth,
    /// The gateway capture.
    pub trace: WireTrace,
    /// Client TCP counters.
    pub client_tcp: TcpStats,
    /// Server TCP counters.
    pub server_tcp: TcpStats,
    /// True if either endpoint's connection died (the paper's "broken
    /// connection").
    pub broken: bool,
    /// The client-side abort reason, if any.
    pub client_abort: Option<AbortReason>,
    /// Simulator events the trial processed (throughput accounting).
    pub events: u64,
    /// Event-scheduler behaviour counters (tier split, promotions, peak
    /// occupancy) for the trial.
    pub sched: h2priv_netsim::SchedStats,
    /// Conformance violations the oracle detected (empty when the oracle
    /// was disabled; capped at the sink's storage limit).
    pub violations: Vec<Violation>,
    /// Total violations reported, including any past the storage cap.
    pub violations_total: u64,
    /// Dummy records the server's shaping schedule sealed (0 without a
    /// shaping defense) — the defense's byte-overhead numerator.
    pub defense_dummies: u64,
    /// Alerts the server-side DoS detector raised (empty without one; must
    /// stay empty on benign traffic).
    pub dos_alerts: Vec<Alert>,
    /// Shedding counters of the server-side DoS guard, when one was
    /// attached.
    pub guard: Option<GuardStats>,
    /// Worker-pool threads (request workers + captured parsers) still held
    /// when the run ended. Zero without a pool — and zero *with* one
    /// whenever the connection ended, because both teardown paths (guard
    /// GOAWAY and transport death) cancel the server's in-flight workers.
    pub pool_in_use: usize,
}

impl RunResult {
    /// Combined client+server TCP retransmission count (Table I / Fig. 5's
    /// "number of retransmissions").
    pub fn total_retransmissions(&self) -> u64 {
        self.client_tcp.retransmissions
            + self.server_tcp.retransmissions
            + self.client_tcp.syn_retransmissions
            + self.server_tcp.syn_retransmissions
    }

    /// Panics if the conformance oracle recorded any violation, listing
    /// the stored ones. No-op when the oracle was disabled.
    pub fn assert_conformant(&self) {
        if self.violations_total == 0 {
            return;
        }
        let listing: Vec<String> = self.violations.iter().map(|v| format!("  {v}")).collect();
        panic!(
            "{} conformance violation(s):\n{}",
            self.violations_total,
            listing.join("\n")
        );
    }
}

/// Builds a trial for `site`/`plan` with an optional adversary middlebox
/// installed on the gateway (ahead of the tap, so the capture shows what
/// the adversary let through).
pub fn build_scenario(
    site: &Website,
    plan: &BrowsePlan,
    config: &ScenarioConfig,
    adversary: Option<Box<dyn Middlebox<TcpSegment>>>,
) -> Scenario {
    let mut sim = Simulator::new(config.seed);
    let mut seed_rng = SimRng::seed_from(config.seed ^ 0xD1CE_BA5E);
    let client_id = sim.reserve_node_id();
    let gateway_id = sim.reserve_node_id();
    let server_id = sim.reserve_node_id();
    // Shaping defenses pace at a CDN edge *between* the server and the
    // adversary's vantage point: a Hold issued inside the gateway's own
    // middlebox chain would not move the tap's arrival timestamps, so the
    // pacer must finish its work one hop upstream of the observer.
    let edge_id = config.defense.is_shaping().then(|| sim.reserve_node_id());

    // Padding defenses rewrite the server-side configs before the hosts
    // are built; `DefenseSpec::None` leaves both untouched byte for byte.
    let mut server_config = config.server.clone();
    let mut server_h2 = config.server_h2.clone();
    match config.defense {
        DefenseSpec::ConstrainedPadding { overhead_per_mille } => {
            let sizes: Vec<usize> = site.objects().iter().map(|o| o.size).collect();
            server_config.pad_sizes = Some(
                constrained_pad_set(&sizes, overhead_per_mille)
                    .sizes()
                    .to_vec(),
            );
        }
        DefenseSpec::FrameQuantize { quantum } => {
            server_h2.data_pad_quantum = quantum as usize;
            server_h2.headers_pad_quantum = quantum as usize;
        }
        _ => {}
    }

    let trace = Rc::new(RefCell::new(WireTrace::new()));
    let truth = Rc::new(RefCell::new(GroundTruth::new()));
    let session_key = 0x5EC0_0D5E ^ config.seed;

    let browser = Browser::new(site, plan.clone(), config.browser.clone(), seed_rng.fork());
    let (client_host, client) = Host::client(
        server_id,
        browser,
        config.tcp.clone(),
        config.client_h2.clone(),
        session_key,
        "www.isidewith.com",
        truth.clone(),
        config.socket_buffer,
    );

    let server_app = SiteServer::new(site.clone(), server_config, seed_rng.fork());
    let mut server_tcp = config.tcp.clone();
    server_tcp.iss = h2priv_tcp::Seq(700_000);
    let (server_host, server) = Host::server(
        client_id,
        server_app,
        server_tcp,
        server_h2,
        session_key,
        truth.clone(),
        config.socket_buffer,
    );
    // DoS hardening attachments, all default-off so undefended trials keep
    // their exact byte schedules.
    if let Some(pool_cfg) = config.pool {
        let pool = Rc::new(RefCell::new(h2priv_web::WorkerPool::new(pool_cfg)));
        match &mut server.borrow_mut().app {
            crate::host::App::Server(s) => s.set_pool(pool),
            _ => unreachable!("server host runs a SiteServer"),
        }
    }
    if let Some(guard_cfg) = config.dos_guard {
        server.borrow_mut().set_guard(ServerGuard::new(guard_cfg));
    }
    if let Some(det_cfg) = config.dos_detector {
        server.borrow_mut().set_detector(DosDetector::new(det_cfg));
    }
    // Shaping: the server additionally seals dummy records on the defense's
    // schedule, from a dedicated RNG fork (drawn only for shaping runs, so
    // undefended trials keep their exact seed sequence).
    match config.defense {
        DefenseSpec::ConstantRate { interval_us } => {
            server.borrow_mut().set_shaper(
                TlsShaper::constant_rate(SimDuration::from_micros(interval_us as u64)),
                seed_rng.fork(),
            );
        }
        DefenseSpec::AdaptivePadding {
            min_gap_us,
            spread_us,
        } => {
            server.borrow_mut().set_shaper(
                TlsShaper::adaptive(
                    SimDuration::from_micros(min_gap_us as u64),
                    SimDuration::from_micros(spread_us as u64),
                ),
                seed_rng.fork(),
            );
        }
        _ => {}
    }

    let mut gateway = GatewayNode::new(client_id, server_id);
    if let Some(adv) = adversary {
        gateway.push_middlebox(adv);
    }
    gateway.push_middlebox(WireTap::new(trace.clone()));

    // The oracle: wire checks at the gateway (after the adversary, so it
    // validates exactly the traffic that survives) plus endpoint checkers
    // on both hosts, all reporting into one sink.
    let violations = config.conformance.then(ViolationSink::new);
    if let Some(sink) = &violations {
        client
            .borrow_mut()
            .set_oracle(HostOracle::new("client", true, sink.clone()));
        server
            .borrow_mut()
            .set_oracle(HostOracle::new("server", false, sink.clone()));
        gateway.push_middlebox(Box::new(ConformanceTap::new(sink.clone())));
    }

    sim.install_node(client_id, Box::new(client_host));
    sim.install_node(gateway_id, Box::new(gateway));
    sim.install_node(server_id, Box::new(server_host));
    sim.add_link(client_id, gateway_id, config.client_link.clone());
    match edge_id {
        // Pacing edge: client — gateway — edge — server. The WAN link (and
        // the adversary's gateway) stays downstream of the pacer, so the
        // tap observes post-shaping timing; the edge—server hop models an
        // intra-datacenter LAN: fast, clean, order-preserving.
        Some(edge_id) => {
            let mut edge = GatewayNode::new(client_id, server_id);
            let pace = config
                .defense
                .pacing()
                .expect("shaping defense always has a pacing bound");
            match config.defense {
                DefenseSpec::ConstantRate { .. } => {
                    edge.push_middlebox(ConstantRatePacer::new(Dir::RightToLeft, pace));
                }
                _ => {
                    edge.push_middlebox(AdaptivePacer::new(Dir::RightToLeft, pace));
                }
            }
            sim.install_node(edge_id, Box::new(edge));
            sim.add_link(gateway_id, edge_id, config.server_link.clone());
            let lan = LinkConfig::with_delay(SimDuration::from_micros(50))
                .bandwidth(calib::LINK_BANDWIDTH);
            sim.add_link(edge_id, server_id, lan);
        }
        None => {
            sim.add_link(gateway_id, server_id, config.server_link.clone());
        }
    }

    Scenario {
        sim,
        client,
        server,
        trace,
        truth,
        nodes: (client_id, gateway_id, server_id),
        violations,
        deadline: config.deadline,
    }
}

/// Runs a built scenario to completion (or its deadline) and collects the
/// result.
pub fn run_scenario(mut scenario: Scenario) -> RunResult {
    let deadline = h2priv_netsim::SimTime::ZERO + scenario.deadline;
    let summary = scenario.sim.run_until(deadline);
    let sched = scenario.sim.sched_stats();
    // The run is over, so nothing will write to the capture again: move
    // the trace and ground truth out of their shared cells instead of
    // deep-cloning them per trial.
    let trace = std::mem::replace(&mut *scenario.trace.borrow_mut(), WireTrace::new());
    let truth = std::mem::replace(&mut *scenario.truth.borrow_mut(), GroundTruth::new());
    let client = scenario.client.borrow();
    let server = scenario.server.borrow();
    let (violations, violations_total) = match &scenario.violations {
        Some(sink) => {
            let total = sink.total();
            (sink.take(), total)
        }
        None => (Vec::new(), 0),
    };
    RunResult {
        stop: summary.stop,
        outcomes: client.browser().outcomes(),
        truth,
        trace,
        client_tcp: client.tcp_stats(),
        server_tcp: server.tcp_stats(),
        broken: client.dead || server.dead,
        client_abort: client.abort_reason(),
        events: summary.events,
        sched,
        violations,
        violations_total,
        defense_dummies: server.shaper_dummies(),
        dos_alerts: server.dos_alerts(),
        guard: server.guard_stats(),
        pool_in_use: match &server.app {
            crate::host::App::Server(s) => s
                .pool()
                .map(|p| {
                    let p = p.borrow();
                    p.in_use() + p.parser_held()
                })
                .unwrap_or(0),
            _ => 0,
        },
    }
}

/// Convenience: build and run in one step.
pub fn run_trial(
    site: &Website,
    plan: &BrowsePlan,
    config: &ScenarioConfig,
    adversary: Option<Box<dyn Middlebox<TcpSegment>>>,
) -> RunResult {
    run_scenario(build_scenario(site, plan, config, adversary))
}
