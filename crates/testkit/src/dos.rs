//! Standalone slow-DoS trial: one attacker against one server over the
//! calibrated topology.
//!
//! The honest-client scenario swaps its browser for a [`DosClient`]
//! mounting one of the slow-rate workloads from arXiv:2203.16796
//! (Tripathi's slow-HTTP/2 study, ROADMAP item 5): trickled
//! HEADERS/CONTINUATION sequences, one-byte `WINDOW_UPDATE` drips against
//! a zero receive window, `SETTINGS` floods, and zero-window stream
//! hoarding. The server optionally carries the hardening stack under test
//! — a [`WorkerPool`] budget, a [`ServerGuard`] shedding policy and an
//! online [`DosDetector`] — so one [`run_dos_trial`] call measures, for a
//! single connection, what the attack pins down and how fast the defenses
//! put a stop to it. Fleet-scale contention (attackers starving bystander
//! pairs through the shared pool) lives in [`crate::fleet`].

use std::cell::RefCell;
use std::rc::Rc;

use h2priv_conformance::{ConformanceTap, Violation, ViolationSink};
use h2priv_dos::{
    Alert, DetectorConfig, DosClient, DosClientStats, DosConfig, DosDetector, GuardConfig,
    GuardStats, ServerGuard,
};
use h2priv_netsim::{GatewayNode, SimDuration, SimRng, SimTime, Simulator, StopReason};
use h2priv_tcp::TcpConfig;
use h2priv_web::{isidewith, PoolConfig, PoolStats, SiteServer, WorkerPool};

use crate::host::{App, Host, HostCore, HostOracle};
use crate::scenario::ScenarioConfig;

/// Everything configurable about one attacker-vs-server trial.
#[derive(Debug, Clone)]
pub struct DosScenarioConfig {
    /// Trial seed (drives TCP/TLS and server-worker randomness; the
    /// attacker itself is deterministic).
    pub seed: u64,
    /// The workload the attacker mounts.
    pub attack: DosConfig,
    /// Server-side shedding policy (`None` = undefended).
    pub guard: Option<GuardConfig>,
    /// Online detector on the server host (`None` = no monitoring).
    pub detector: Option<DetectorConfig>,
    /// Worker-pool budget on the server (`None` = unbounded workers).
    pub pool: Option<PoolConfig>,
    /// Hard cap on simulated trial duration.
    pub deadline: SimDuration,
    /// Run the conformance oracle alongside the trial. The attacks are
    /// RFC-legal by construction, so the oracle must stay green.
    pub conformance: bool,
}

impl Default for DosScenarioConfig {
    fn default() -> Self {
        DosScenarioConfig {
            seed: 0,
            attack: DosConfig::default(),
            guard: None,
            detector: None,
            pool: None,
            deadline: SimDuration::from_secs(30),
            conformance: true,
        }
    }
}

/// The outcome of one attacker-vs-server trial.
#[derive(Debug, Clone)]
pub struct DosRunResult {
    /// Why and when the run stopped.
    pub stop: StopReason,
    /// When the attacker issued its first malicious frame.
    pub attack_started: Option<SimTime>,
    /// When the server shed the attacker (`ENHANCE_YOUR_CALM` reset or
    /// GOAWAY observed by the attacker); `None` means the attack ran to
    /// the deadline unopposed.
    pub shed_at: Option<SimTime>,
    /// Alerts the detector raised.
    pub alerts: Vec<Alert>,
    /// First-alert latency relative to the start of the attack.
    pub detection_latency: Option<SimDuration>,
    /// Attacker-side counters.
    pub attacker: DosClientStats,
    /// Guard shedding counters, when a guard ran.
    pub guard: Option<GuardStats>,
    /// Pool counters, when a pool ran.
    pub pool: Option<PoolStats>,
    /// Request workers still held by the attacker's connection at the end.
    pub pool_in_use: usize,
    /// Parser threads still captured at the end.
    pub parser_held: usize,
    /// Control-plane busy horizon at the end (SETTINGS backlog).
    pub pool_busy_until: SimTime,
    /// Requests the server accepted.
    pub requests_seen: u64,
    /// Simulator events processed.
    pub events: u64,
    /// Conformance violations (must be empty: the workloads are RFC-legal).
    pub violations: Vec<Violation>,
    /// Total violations reported, including any past the storage cap.
    pub violations_total: u64,
}

/// Builds and runs one attacker-vs-server trial.
pub fn run_dos_trial(config: &DosScenarioConfig) -> DosRunResult {
    // Topology and stack knobs come from the canonical scenario so the
    // attacker faces exactly the server the honest exhibits measure.
    let base = ScenarioConfig {
        seed: config.seed,
        ..ScenarioConfig::default()
    };
    let mut sim = Simulator::new(config.seed);
    let mut seed_rng = SimRng::seed_from(config.seed ^ 0xD1CE_BA5E);
    let attacker_id = sim.reserve_node_id();
    let gateway_id = sim.reserve_node_id();
    let server_id = sim.reserve_node_id();
    let session_key = 0x5EC0_0D5E ^ config.seed;

    let attacker_core = Rc::new(RefCell::new(HostCore::new_attacker(
        server_id,
        DosClient::new(config.attack.clone()),
        base.tcp.clone(),
        session_key,
        base.socket_buffer,
    )));
    // Burn the browser's RNG fork so the server worker stream matches the
    // honest scenario draw-for-draw.
    let _ = seed_rng.fork();

    let site = isidewith::build(&[0, 1, 2, 3, 4, 5, 6, 7]).site;
    let mut server_app = SiteServer::new(site, base.server.clone(), seed_rng.fork());
    let pool = config
        .pool
        .map(|p| Rc::new(RefCell::new(WorkerPool::new(p))));
    if let Some(pool) = &pool {
        server_app.set_pool(Rc::clone(pool));
    }
    let mut server_tcp: TcpConfig = base.tcp.clone();
    server_tcp.iss = h2priv_tcp::Seq(700_000);
    let server_core = Rc::new(RefCell::new(HostCore::new_server(
        attacker_id,
        server_app,
        server_tcp,
        base.server_h2.clone(),
        session_key,
        None,
        base.socket_buffer,
    )));
    if let Some(guard_cfg) = config.guard {
        server_core
            .borrow_mut()
            .set_guard(ServerGuard::new(guard_cfg));
    }
    if let Some(det_cfg) = config.detector {
        server_core
            .borrow_mut()
            .set_detector(DosDetector::new(det_cfg));
    }

    let mut gateway = GatewayNode::new(attacker_id, server_id);
    let violations = config.conformance.then(ViolationSink::new);
    if let Some(sink) = &violations {
        attacker_core
            .borrow_mut()
            .set_oracle(HostOracle::new("attacker", true, sink.clone()));
        server_core
            .borrow_mut()
            .set_oracle(HostOracle::new("server", false, sink.clone()));
        gateway.push_middlebox(Box::new(ConformanceTap::new(sink.clone())));
    }

    sim.install_node(
        attacker_id,
        Box::new(Host::from_core(attacker_core.clone())),
    );
    sim.install_node(gateway_id, Box::new(gateway));
    sim.install_node(server_id, Box::new(Host::from_core(server_core.clone())));
    sim.add_link(attacker_id, gateway_id, base.client_link.clone());
    sim.add_link(gateway_id, server_id, base.server_link.clone());

    let summary = sim.run_until(SimTime::ZERO + config.deadline);

    let attacker = attacker_core.borrow();
    let server = server_core.borrow();
    let dos = attacker.attacker();
    let alerts = server.dos_alerts();
    let attack_started = dos.attack_started();
    let detection_latency = match (alerts.first(), attack_started) {
        (Some(alert), Some(start)) => Some(alert.at.saturating_since(start)),
        _ => None,
    };
    let (violations, violations_total) = match &violations {
        Some(sink) => {
            let total = sink.total();
            (sink.take(), total)
        }
        None => (Vec::new(), 0),
    };
    let (pool_stats, pool_in_use, parser_held, pool_busy_until) = match &pool {
        Some(pool) => {
            let pool = pool.borrow();
            (
                Some(pool.stats()),
                pool.in_use(),
                pool.parser_held(),
                pool.busy_until(),
            )
        }
        None => (None, 0, 0, SimTime::ZERO),
    };
    let requests_seen = match &server.app {
        App::Server(s) => s.requests_seen(),
        _ => 0,
    };
    DosRunResult {
        stop: summary.stop,
        attack_started,
        shed_at: dos.shed_at(),
        alerts,
        detection_latency,
        attacker: dos.stats(),
        guard: server.guard_stats(),
        pool: pool_stats,
        pool_in_use,
        parser_held,
        pool_busy_until,
        requests_seen,
        events: summary.events,
        violations,
        violations_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_dos::DosAttack;

    fn trial(attack: DosAttack, defended: bool) -> DosRunResult {
        run_dos_trial(&DosScenarioConfig {
            seed: 7,
            attack: DosConfig::for_attack(attack),
            guard: defended.then(GuardConfig::default),
            detector: Some(DetectorConfig::default()),
            pool: Some(PoolConfig::default()),
            deadline: SimDuration::from_secs(30),
            conformance: true,
        })
    }

    #[test]
    fn undefended_zero_window_hoard_pins_the_pool() {
        let r = run_dos_trial(&DosScenarioConfig {
            seed: 7,
            attack: DosConfig::for_attack(DosAttack::ZeroWindowHoard),
            pool: Some(PoolConfig::default()),
            ..DosScenarioConfig::default()
        });
        assert_eq!(r.shed_at, None, "no guard, nothing sheds");
        assert!(r.requests_seen > 0);
        assert_eq!(
            r.pool_in_use,
            PoolConfig::default().capacity,
            "hoarded streams hold every worker to the deadline"
        );
        assert_eq!(r.violations_total, 0, "{:?}", r.violations);
    }

    #[test]
    fn guarded_attacks_are_shed_and_detected() {
        for attack in DosAttack::all() {
            let r = trial(attack, true);
            assert!(
                r.shed_at.is_some(),
                "{}: guard never shed the attacker",
                attack.name()
            );
            assert!(
                r.alerts.iter().any(|a| a.kind.name() == attack.name()),
                "{}: detector missed it (alerts: {:?})",
                attack.name(),
                r.alerts
            );
            assert!(r.detection_latency.is_some());
            assert_eq!(
                (r.pool_in_use, r.parser_held),
                (0, 0),
                "{}: shedding must return all pool capacity",
                attack.name()
            );
            assert_eq!(
                r.violations_total,
                0,
                "{}: {:?}",
                attack.name(),
                r.violations
            );
        }
    }
}
