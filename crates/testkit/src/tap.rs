//! The passive wire tap installed on the gateway.

use std::cell::RefCell;
use std::rc::Rc;

use h2priv_analysis::{ObservedPacket, WireTrace};
use h2priv_netsim::{MbContext, Middlebox, Packet, Verdict};
use h2priv_tcp::TcpSegment;

/// Records every transiting packet into a shared [`WireTrace`] and forwards
/// it untouched. Install it *after* any active middlebox to capture egress
/// traffic (what actually reaches the endpoints), or before for ingress.
#[derive(Debug, Clone)]
pub struct WireTap {
    trace: Rc<RefCell<WireTrace>>,
}

impl WireTap {
    /// Creates a tap writing into `trace`.
    pub fn new(trace: Rc<RefCell<WireTrace>>) -> Self {
        WireTap { trace }
    }
}

impl Middlebox<TcpSegment> for WireTap {
    fn process(&mut self, packet: &Packet<TcpSegment>, ctx: &mut MbContext<'_>) -> Verdict {
        self.trace
            .borrow_mut()
            .push(ObservedPacket::capture(ctx.now, ctx.dir, &packet.payload));
        Verdict::Forward
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_netsim::{Dir, NodeId, ShapingState, SimRng, SimTime};
    use h2priv_tcp::{Seq, TcpFlags};

    #[test]
    fn tap_records_and_forwards() {
        let trace = Rc::new(RefCell::new(WireTrace::new()));
        let mut tap = WireTap::new(trace.clone());
        let seg = TcpSegment {
            seq: Seq(1),
            ack: Seq(0),
            flags: TcpFlags::ACK,
            window: 100,
            payload: vec![1, 2, 3].into(),
        };
        let packet = Packet::new(NodeId(0), NodeId(2), seg.wire_bytes(), seg);
        let mut rng = SimRng::seed_from(0);
        let mut shaping = ShapingState::default();
        let mut ctx = MbContext {
            now: SimTime::from_millis(9),
            dir: Dir::LeftToRight,
            rng: &mut rng,
            shaping: &mut shaping,
        };
        assert_eq!(tap.process(&packet, &mut ctx), Verdict::Forward);
        let trace = trace.borrow();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.packets[0].time, SimTime::from_millis(9));
        assert_eq!(trace.packets[0].payload, vec![1, 2, 3]);
    }
}
