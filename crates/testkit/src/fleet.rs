//! Fleet-scale population scenario: N client–server pairs per run.
//!
//! The single-pair scenario ([`crate::run_trial`]) models one volunteer
//! loading one page through the lab gateway. This module scales that to a
//! *population*: `N` independent client–server pairs (thousands to
//! hundreds of thousands) sharing a bottleneck gateway link, partitioned
//! into shards by a deterministic hash of the pair id. Each shard is its
//! own [`Simulator`] — sharding is what lets a driver run shards on
//! separate OS threads — and shard construction depends only on
//! `(seed, shard)`, so results are byte-identical however many threads
//! execute them. Merging is seed-ordered: [`merge_shards`] sorts by shard
//! id before folding stats.
//!
//! Within a shard, hosts do not get one netsim node each. A [`HostArena`]
//! holds every [`HostCore`] of one side (all clients, or all servers) in a
//! slab behind a *single* node, routes packets to cores by the pair id
//! carried in [`FleetSegment`], and batches the pump: packet deliveries
//! only mark a core dirty, and one zero-delay timer per burst drains every
//! dirty core with the arena's one shared [`PumpScratch`] — the ISSUE's
//! amortized host path. Protocol deadlines (TCP RTO, browser stalls,
//! server workers) go through one binary heap with lazy deletion and a
//! single armed netsim timer, instead of two timers per host.
//!
//! The paper's attack drops into this unchanged: pair 0 is the *victim*,
//! and the [`FleetGateway`] runs an ordinary [`Middlebox`] chain
//! (adversary, wire tap, conformance tap) over the victim's packets only,
//! with per-pair shaping state replicating [`GatewayNode`]'s egress
//! serializer. Bystander pairs contend on the shared links but are not
//! captured — recording per-byte ground truth for 100k pairs would dwarf
//! the simulation, so only the victim carries a [`GroundTruth`].
//!
//! [`GatewayNode`]: h2priv_netsim::GatewayNode

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

use h2priv_analysis::{GroundTruth, WireTrace};
use h2priv_conformance::{ConformanceTap, Violation, ViolationSink};
use h2priv_defense::{constrained_pad_set, DefenseSpec, TlsShaper};
use h2priv_dos::{
    DetectorConfig, DosAttack, DosClient, DosConfig, DosDetector, GuardConfig, ServerGuard,
};
use h2priv_netsim::{
    Context, Dir, GatewayStats, LinkConfig, MbContext, Middlebox, Node, NodeId, Packet, SchedStats,
    SimDuration, SimRng, SimTime, Simulator, StopReason, TimerId, Verdict,
};
use h2priv_tcp::{Seq, TcpSegment};
use h2priv_web::{
    isidewith, Browser, PoolConfig, PoolStats, RequestOutcome, SiteServer, WorkerPool,
};

use crate::host::{App, BufPool, HostCore, HostOracle, PumpScratch};
use crate::scenario::ScenarioConfig;
use crate::tap::WireTap;

/// The pair carrying the paper's attack instrumentation.
pub const VICTIM_PAIR: u32 = 0;

/// One TCP segment of one population pair. The pair id is the connection
/// identity: arenas demux on it, the gateway selects per-pair middlebox
/// chains on it.
#[derive(Debug, Clone)]
pub struct FleetSegment {
    /// Which client–server pair this segment belongs to.
    pub pair: u32,
    /// The segment itself.
    pub seg: TcpSegment,
}

/// How much of the fleet the conformance oracle watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetConformance {
    /// No checking (benchmark mode).
    Off,
    /// The victim plus every 97th pair get endpoint checkers and a wire
    /// tap — constant-fraction coverage that stays affordable at 100k
    /// pairs.
    Spot,
    /// Every pair is checked. Meant for small populations.
    Full,
}

impl FleetConformance {
    /// The mode the acceptance criteria ask for at a given population:
    /// full checking up to 100 pairs, spot checks beyond.
    pub fn for_population(population: u32) -> FleetConformance {
        if population <= 100 {
            FleetConformance::Full
        } else {
            FleetConformance::Spot
        }
    }

    fn checks(self, pair: u32) -> bool {
        match self {
            FleetConformance::Off => false,
            FleetConformance::Spot => pair == VICTIM_PAIR || pair.is_multiple_of(97),
            FleetConformance::Full => true,
        }
    }
}

/// Hostile-traffic injection for a fleet run: the top `attackers` pair
/// ids (never the victim) swap their browser for a [`DosClient`], so the
/// attack contends with honest bystanders on the shared links — and, when
/// a worker pool is configured, on the shard's shared thread budget.
#[derive(Debug, Clone)]
pub struct FleetDosConfig {
    /// The workload each hostile pair mounts.
    pub attack: DosAttack,
    /// How many pairs are hostile, taken from the top of the pair-id
    /// range.
    pub attackers: u32,
    /// Server-side shedding policy, installed on every server of the
    /// population (`None` = undefended).
    pub guard: Option<GuardConfig>,
    /// Online detector on every server (`None` = no monitoring). Benign
    /// pairs double as the false-positive corpus.
    pub detector: Option<DetectorConfig>,
    /// One worker pool per shard, shared by all of the shard's servers —
    /// the resource coupling that lets a hostile connection starve
    /// bystanders (`None` = unbounded workers).
    pub pool: Option<PoolConfig>,
}

/// Everything configurable about one fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Run seed; drives every per-pair RNG and the per-shard engines.
    pub seed: u64,
    /// Number of client–server pairs.
    pub population: u32,
    /// Number of shards (independent simulators). Fixed by configuration,
    /// *not* by the executing thread count — that is what keeps output
    /// byte-identical at any `--threads`.
    pub shards: u32,
    /// Conformance coverage.
    pub conformance: FleetConformance,
    /// Client start times are staggered uniformly over this window, so a
    /// population does not fire 100k simultaneous handshakes.
    pub start_spread: SimDuration,
    /// Hard cap on simulated time per shard.
    pub deadline: SimDuration,
    /// Countermeasure deployed by the site. Padding defenses apply to every
    /// server in the population (the site deploys them fleet-wide); the
    /// shaping defenses' dummy-record schedule runs on the victim server
    /// only — bystander traffic is load, not measurement target, and the
    /// arena topology has no per-pair pacing hop, so fleet shaping models
    /// the endpoint half of the defense.
    pub defense: DefenseSpec,
    /// Hostile-traffic injection (`None` — the default — keeps every
    /// pre-existing fleet schedule bit-identical).
    pub dos: Option<FleetDosConfig>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 0,
            population: 1_000,
            shards: 8,
            conformance: FleetConformance::Off,
            start_spread: SimDuration::from_secs(5),
            deadline: crate::calib::TRIAL_DEADLINE,
            defense: DefenseSpec::None,
            dos: None,
        }
    }
}

/// Whether `pair` is hostile under `dos` (the victim never is: it stays
/// the attack-measurement pair).
fn is_hostile(pair: u32, population: u32, dos: Option<&FleetDosConfig>) -> bool {
    let Some(dos) = dos else {
        return false;
    };
    pair != VICTIM_PAIR && pair >= population.saturating_sub(dos.attackers)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn mix(seed: u64, salt: u64) -> u64 {
    splitmix64(seed ^ splitmix64(salt))
}

/// Deterministic pair → shard assignment (independent of thread count).
pub fn shard_of_pair(pair: u32, shards: u32) -> u32 {
    (splitmix64(pair as u64) % shards.max(1) as u64) as u32
}

/// The shard holding the victim pair.
pub fn victim_shard(config: &FleetConfig) -> u32 {
    shard_of_pair(VICTIM_PAIR, config.shards)
}

/// The victim's survey outcome — the permutation the adversary tries to
/// recover. Deterministic in the seed so the driver can rebuild the same
/// [`isidewith`] site for scoring.
pub fn victim_golden_order(seed: u64) -> Vec<usize> {
    SimRng::seed_from(mix(seed, 0x601D)).permutation(8)
}

fn bystander_golden_order(seed: u64) -> Vec<usize> {
    SimRng::seed_from(mix(seed, 0xB5D7)).permutation(8)
}

// ---------------------------------------------------------------------------
// Host arena
// ---------------------------------------------------------------------------

const TOKEN_BATCH: u64 = 0;
const TOKEN_DUE: u64 = 1;

/// Sentinel for "pair not in this shard" in the dense pair-indexed maps.
const NO_SLOT: u32 = u32::MAX;

/// Per-slot lifecycle bits, one byte per pair (hot: the pump reads and
/// writes these every batch, so they pack cache-line-dense instead of
/// riding inside a fat per-pair struct).
const FLAG_STARTED: u8 = 1 << 0;
/// Page load finished (client: browser done and send buffer drained, or
/// the connection died).
const FLAG_FINISHED: u8 = 1 << 1;
const FLAG_DIRTY: u8 = 1 << 2;

/// A slab of [`HostCore`]s of one side (all clients or all servers) behind
/// a single netsim node.
///
/// Per-pair state is struct-of-arrays: the hot pump fields (`flags`,
/// `pairs`, the cores themselves) are parallel vectors indexed by slot,
/// and pair-id lookup is a dense `Vec` (pair ids are contiguous from 0)
/// instead of a hash map — the demux on every delivered packet is one
/// bounds-checked load.
pub struct HostArena {
    is_client: bool,
    /// The opposite arena's node id (packet destination).
    peer: NodeId,
    /// The protocol cores, slot-indexed (SoA with `pairs`/`flags`).
    cores: Vec<HostCore>,
    /// Slot → pair id.
    pairs: Vec<u32>,
    /// Slot → when this (client) core opens its connection.
    start_at: Vec<SimTime>,
    /// Slot → lifecycle bits (`FLAG_*`).
    flags: Vec<u8>,
    /// Dense pair id → slot index ([`NO_SLOT`] for other shards' pairs).
    slot_of_pair: Vec<u32>,
    /// Slots touched since the last batch pump, in touch order.
    dirty: Vec<u32>,
    /// Pending per-core deadlines, lazily deleted: a popped entry whose
    /// core has since moved its deadline is just a cheap no-op pump.
    due: BinaryHeap<Reverse<(SimTime, u32)>>,
    due_timer: Option<(TimerId, SimTime)>,
    batch_armed: bool,
    /// The shared scratch: one decrypt/seal workspace for every core in
    /// the shard's arena, instead of per-host buffers.
    scratch: PumpScratch,
    /// Free-list of recycled buffers: cores shed their big allocations
    /// here when their page load completes, and later-starting cores
    /// adopt them instead of growing the heap.
    pool: BufPool,
    finished_count: usize,
}

impl std::fmt::Debug for HostArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostArena")
            .field("is_client", &self.is_client)
            .field("slots", &self.cores.len())
            .finish_non_exhaustive()
    }
}

impl HostArena {
    fn new(is_client: bool, peer: NodeId, population: u32) -> Self {
        HostArena {
            is_client,
            peer,
            cores: Vec::new(),
            pairs: Vec::new(),
            start_at: Vec::new(),
            flags: Vec::new(),
            slot_of_pair: vec![NO_SLOT; population as usize],
            dirty: Vec::new(),
            due: BinaryHeap::new(),
            due_timer: None,
            batch_armed: false,
            scratch: PumpScratch::default(),
            pool: BufPool::default(),
            finished_count: 0,
        }
    }

    fn add(&mut self, pair: u32, core: HostCore, start_at: SimTime) {
        let idx = self.cores.len() as u32;
        self.slot_of_pair[pair as usize] = idx;
        self.cores.push(core);
        self.pairs.push(pair);
        self.start_at.push(start_at);
        self.flags.push(0);
    }

    fn mark_dirty(&mut self, idx: u32) {
        if self.flags[idx as usize] & FLAG_DIRTY == 0 {
            self.flags[idx as usize] |= FLAG_DIRTY;
            self.dirty.push(idx);
        }
    }

    fn arm_batch(&mut self, ctx: &mut Context<'_, FleetSegment>) {
        if !self.batch_armed {
            self.batch_armed = true;
            ctx.set_timer(SimDuration::ZERO, TOKEN_BATCH);
        }
    }

    /// Drains every dirty core: stage passes with the shared scratch, then
    /// the TCP flush routed to the peer arena, then deadline bookkeeping.
    fn pump_dirty(&mut self, ctx: &mut Context<'_, FleetSegment>) {
        let now = ctx.now();
        let self_id = ctx.node_id();
        let peer = self.peer;
        for i in 0..self.dirty.len() {
            let idx = self.dirty[i];
            self.flags[idx as usize] &= !FLAG_DIRTY;
            let core = &mut self.cores[idx as usize];
            core.pump_stages(now, &mut self.scratch);
            let pair = self.pairs[idx as usize];
            core.flush_transmit(now, |seg| {
                let wire_bytes = seg.wire_bytes();
                ctx.send(Packet::new(
                    self_id,
                    peer,
                    wire_bytes,
                    FleetSegment { pair, seg },
                ));
            });
            if self.flags[idx as usize] & FLAG_FINISHED == 0 {
                // "Done" for an attacker core means the server shed it —
                // an unopposed attack keeps its shard running to the
                // deadline, which is the point.
                let app_done = match &core.app {
                    App::Client(b) => b.is_done(),
                    App::Attacker(a) => a.is_done(),
                    App::Server(_) => false,
                };
                let done = core.dead || (self.is_client && app_done && core.tcp.send_drained());
                if done {
                    self.flags[idx as usize] |= FLAG_FINISHED;
                    self.finished_count += 1;
                    // The page load is over: return this core's big buffers
                    // to the shard pool for cores still to start.
                    core.shed_buffers(&mut self.pool);
                } else if !self.is_client && core.tcp.send_drained() && core.app_wakeup().is_none()
                {
                    // A server never "finishes" — it can't know the client
                    // is done — but fully quiescent (everything acked, no
                    // worker pending) it sheds opportunistically: only
                    // empty capacity moves, so a new request wave merely
                    // reallocates, and in a one-load-per-pair fleet this
                    // is what returns the server side's memory.
                    core.shed_buffers(&mut self.pool);
                }
            }
            if !core.dead {
                let next = match (core.tcp.poll_timeout(), core.app_wakeup()) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                if let Some(at) = next {
                    self.due.push(Reverse((at, idx)));
                }
            }
        }
        self.dirty.clear();
        // The whole fleet is done when every client finished; the clients'
        // arena halts the shard (mirroring the single-pair host's
        // halt-when-done), which also releases idle-connection timers.
        if self.is_client && !self.cores.is_empty() && self.finished_count == self.cores.len() {
            ctx.halt();
        }
        self.rearm_due(ctx);
    }

    fn rearm_due(&mut self, ctx: &mut Context<'_, FleetSegment>) {
        let target = self.due.peek().map(|Reverse((at, _))| *at);
        match (target, self.due_timer) {
            (Some(at), Some((_, armed))) if at == armed => {}
            (Some(at), prev) => {
                if let Some((id, _)) = prev {
                    ctx.cancel_timer(id);
                }
                let id = ctx.set_timer(at.saturating_since(ctx.now()), TOKEN_DUE);
                self.due_timer = Some((id, at));
            }
            (None, Some((id, _))) => {
                ctx.cancel_timer(id);
                self.due_timer = None;
            }
            (None, None) => {}
        }
    }

    fn on_start(&mut self, ctx: &mut Context<'_, FleetSegment>) {
        if self.is_client {
            for (idx, &at) in self.start_at.iter().enumerate() {
                self.due.push(Reverse((at, idx as u32)));
            }
        }
        self.rearm_due(ctx);
    }

    fn on_packet(&mut self, packet: Packet<FleetSegment>, ctx: &mut Context<'_, FleetSegment>) {
        let idx = match self.slot_of_pair.get(packet.payload.pair as usize) {
            Some(&idx) if idx != NO_SLOT => idx,
            _ => return,
        };
        self.cores[idx as usize]
            .tcp
            .on_segment(packet.payload.seg, ctx.now());
        self.mark_dirty(idx);
        self.arm_batch(ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, FleetSegment>) {
        let now = ctx.now();
        if token == TOKEN_BATCH {
            self.batch_armed = false;
        } else {
            self.due_timer = None;
            while let Some(&Reverse((at, idx))) = self.due.peek() {
                if at > now {
                    break;
                }
                self.due.pop();
                let core = &mut self.cores[idx as usize];
                if self.flags[idx as usize] & FLAG_STARTED == 0
                    && self.start_at[idx as usize] <= now
                {
                    self.flags[idx as usize] |= FLAG_STARTED;
                    // Reuse buffers earlier page loads returned to the pool.
                    core.adopt_buffers(&mut self.pool);
                    core.begin();
                }
                // The RTO check the single-pair host runs on its TCP timer;
                // a no-op when no deadline actually expired (lazy entries).
                core.tcp.on_tick(now);
                self.mark_dirty(idx);
            }
        }
        self.pump_dirty(ctx);
    }
}

/// Thin node shell so the driver keeps an `Rc` handle for post-run
/// extraction while the simulator owns the node slot.
struct ArenaNode(Rc<RefCell<HostArena>>);

impl Node<FleetSegment> for ArenaNode {
    fn on_start(&mut self, ctx: &mut Context<'_, FleetSegment>) {
        self.0.borrow_mut().on_start(ctx);
    }

    fn on_packet(&mut self, packet: Packet<FleetSegment>, ctx: &mut Context<'_, FleetSegment>) {
        self.0.borrow_mut().on_packet(packet, ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, FleetSegment>) {
        self.0.borrow_mut().on_timer(token, ctx);
    }
}

// ---------------------------------------------------------------------------
// Gateway
// ---------------------------------------------------------------------------

struct PairChain {
    chain: Vec<Box<dyn Middlebox<TcpSegment>>>,
    shaping: h2priv_netsim::ShapingState,
    busy: [SimTime; 2],
}

/// The shared gateway: bridges the two arenas, forwards every pair's
/// traffic, and runs a per-pair middlebox chain (adversary, taps) for the
/// instrumented pairs with [`GatewayNode`]-equivalent hold/shape/drop
/// semantics.
///
/// Chain lookup is a dense pair-indexed `Vec` — the uninstrumented common
/// case (every bystander packet) is a single load hitting [`NO_SLOT`],
/// not a hash probe.
///
/// [`GatewayNode`]: h2priv_netsim::GatewayNode
pub struct FleetGateway {
    left: NodeId,
    /// Dense pair id → index into `chains` ([`NO_SLOT`] = uninstrumented).
    chain_of_pair: Vec<u32>,
    chains: Vec<PairChain>,
    stats: GatewayStats,
}

impl std::fmt::Debug for FleetGateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetGateway")
            .field("chains", &self.chains.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl FleetGateway {
    fn new(left: NodeId, population: u32) -> Self {
        FleetGateway {
            left,
            chain_of_pair: vec![NO_SLOT; population as usize],
            chains: Vec::new(),
            stats: GatewayStats::default(),
        }
    }

    fn add_chain(&mut self, pair: u32, chain: Vec<Box<dyn Middlebox<TcpSegment>>>) {
        self.chain_of_pair[pair as usize] = self.chains.len() as u32;
        self.chains.push(PairChain {
            chain,
            shaping: h2priv_netsim::ShapingState::default(),
            busy: [SimTime::ZERO; 2],
        });
    }
}

impl Node<FleetSegment> for FleetGateway {
    fn on_packet(&mut self, packet: Packet<FleetSegment>, ctx: &mut Context<'_, FleetSegment>) {
        let dir = if packet.src == self.left {
            Dir::LeftToRight
        } else {
            Dir::RightToLeft
        };
        let mut hold = SimDuration::ZERO;
        let mut shaping = SimDuration::ZERO;
        let chain_idx = match self.chain_of_pair.get(packet.payload.pair as usize) {
            Some(&i) if i != NO_SLOT => Some(i as usize),
            _ => None,
        };
        if let Some(pc) = chain_idx.map(|i| &mut self.chains[i]) {
            // Middleboxes are written against Packet<TcpSegment>; give them
            // a view of this packet (the segment's payload is shared bytes,
            // so the clone is a refcount bump, not a copy).
            let view = Packet {
                src: packet.src,
                dst: packet.dst,
                wire_bytes: packet.wire_bytes,
                id: packet.id,
                payload: packet.payload.seg.clone(),
            };
            let now = ctx.now();
            let mut dropped = false;
            {
                let mut mb_ctx = MbContext {
                    now,
                    dir,
                    rng: ctx.rng(),
                    shaping: &mut pc.shaping,
                };
                for mb in &mut pc.chain {
                    match mb.process(&view, &mut mb_ctx) {
                        Verdict::Forward => {}
                        Verdict::Hold(d) => hold += d,
                        Verdict::Drop => {
                            dropped = true;
                            break;
                        }
                    }
                }
            }
            if dropped {
                self.stats.dropped[dir.index()] += 1;
                return;
            }
            if !hold.is_zero() {
                self.stats.held[dir.index()] += 1;
            }
            // Same rule as GatewayNode: held packets are already paced by
            // their hold and bypass the per-pair egress serializer.
            if hold.is_zero() {
                if let Some(rate) = pc.shaping.rate(dir) {
                    let cfg = LinkConfig::default().bandwidth(rate);
                    let start = now.max(pc.busy[dir.index()]);
                    let departure = start + cfg.serialization_time(packet.wire_bytes);
                    pc.busy[dir.index()] = departure;
                    shaping = departure - now;
                }
            }
        }
        self.stats.forwarded[dir.index()] += 1;
        ctx.send_after(hold + shaping, packet);
    }
}

// ---------------------------------------------------------------------------
// Shard driver
// ---------------------------------------------------------------------------

/// The victim pair's attack-relevant capture, present in exactly one
/// shard's result.
#[derive(Debug, Clone)]
pub struct VictimCapture {
    /// The preference order the site was built for (what the adversary
    /// tries to recover).
    pub golden_order: Vec<usize>,
    /// The gateway tap's capture of the victim's traffic.
    pub trace: WireTrace,
    /// Seal-time ground truth from the victim's server.
    pub truth: GroundTruth,
    /// Per-request browser outcomes.
    pub outcomes: Vec<RequestOutcome>,
    /// The victim's connection died.
    pub broken: bool,
}

/// One shard's merged outcome.
#[derive(Debug, Clone)]
pub struct ShardResult {
    /// Which shard this is.
    pub shard: u32,
    /// Pairs simulated in this shard.
    pub pairs: u32,
    /// Why the shard's run stopped.
    pub stop: StopReason,
    /// Events the shard's engine processed.
    pub events: u64,
    /// Simulated end time of the shard.
    pub end_time: SimTime,
    /// The shard engine's scheduler counters.
    pub sched: SchedStats,
    /// Pairs whose page load completed (browser done, connection alive).
    pub completed: u32,
    /// Pairs whose connection died on either side.
    pub broken: u32,
    /// Total page-object requests issued across the shard's clients.
    pub requests: u64,
    /// Requests that completed.
    pub requests_complete: u64,
    /// Victim capture, when the victim pair lives in this shard.
    pub victim: Option<VictimCapture>,
    /// Stored conformance violations (empty when checking is off).
    pub violations: Vec<Violation>,
    /// Total violations reported, including past the storage cap.
    pub violations_total: u64,
    /// Hostile pairs simulated in this shard.
    pub attackers: u32,
    /// Hostile pairs the server shed (guard `RST_STREAM`/GOAWAY observed
    /// by the attacker).
    pub attackers_shed: u32,
    /// Hostile pairs whose server detector raised at least one alert.
    pub detected: u32,
    /// Summed first-alert latency over detected hostile pairs, µs.
    pub detection_latency_us: u64,
    /// Detector alerts on *benign* pairs — the fleet false-positive count.
    pub benign_alerts: u64,
    /// Final worker-pool counters, when the shard ran a pool.
    pub pool: Option<PoolStats>,
}

/// Seed-ordered merge of all shards.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Pairs simulated.
    pub population: u32,
    /// Shards merged.
    pub shards: u32,
    /// Total events across shards.
    pub events: u64,
    /// Per-shard event counts, shard order (occupancy reporting).
    pub shard_events: Vec<u64>,
    /// Scheduler counters summed as concurrently-resident shards
    /// ([`SchedStats::merge_concurrent`]: peaks add, they don't max).
    pub sched: SchedStats,
    /// Summed simulated end times (saturating — the overflow guard for
    /// very large fleets).
    pub sim_time_total: SimTime,
    /// Latest shard end time.
    pub end_time_max: SimTime,
    /// Pairs whose page load completed.
    pub completed: u32,
    /// Pairs whose connection died.
    pub broken: u32,
    /// Requests issued across the population.
    pub requests: u64,
    /// Requests completed.
    pub requests_complete: u64,
    /// The victim capture (exactly one shard produces it).
    pub victim: Option<VictimCapture>,
    /// Stored violations across shards.
    pub violations: Vec<Violation>,
    /// Total violations across shards.
    pub violations_total: u64,
    /// Hostile pairs across the population.
    pub attackers: u32,
    /// Hostile pairs shed by their server.
    pub attackers_shed: u32,
    /// Hostile pairs with at least one detector alert.
    pub detected: u32,
    /// Summed first-alert latency over detected hostile pairs, µs.
    pub detection_latency_us: u64,
    /// Detector alerts on benign pairs (fleet false positives).
    pub benign_alerts: u64,
    /// Pool counters summed across shards, when pools ran.
    pub pool: Option<PoolStats>,
}

/// Runs one shard of the fleet. `adversary` (if any) is installed on the
/// victim pair's gateway chain; pass it only to [`victim_shard`]'s call.
///
/// Deterministic in `(config, shard)` — a shard neither knows nor cares
/// which thread runs it.
pub fn run_fleet_shard(
    config: &FleetConfig,
    shard: u32,
    mut adversary: Option<Box<dyn Middlebox<TcpSegment>>>,
) -> ShardResult {
    let shards = config.shards.max(1);
    let pairs: Vec<u32> = (0..config.population)
        .filter(|&p| shard_of_pair(p, shards) == shard)
        .collect();
    let scen = ScenarioConfig::default();

    let mut sim: Simulator<FleetSegment> = Simulator::new(mix(config.seed, 0xE6E1 ^ shard as u64));
    let client_arena_id = sim.reserve_node_id();
    let gateway_id = sim.reserve_node_id();
    let server_arena_id = sim.reserve_node_id();

    let victim_here = pairs.contains(&VICTIM_PAIR);
    let victim_golden = victim_golden_order(config.seed);
    let victim_site = victim_here.then(|| isidewith::build(&victim_golden));
    let bystander_site = isidewith::build(&bystander_golden_order(config.seed));
    // One shared server-side site per variant for the whole shard, bodies
    // generated exactly once: every `SiteServer` holds an `Rc` into it, so
    // object tables and body buffers don't multiply with the population.
    let shared_site = |iside: &isidewith::Isidewith| {
        let mut site = iside.site.clone();
        site.materialize_bodies();
        Rc::new(site)
    };
    let victim_shared = victim_site.as_ref().map(&shared_site);
    let bystander_shared = shared_site(&bystander_site);
    let authority: Rc<str> = Rc::from("www.isidewith.com");

    // Defense-derived server-side configs, computed once per shard. Both
    // site variants are permutations of the same survey, so one pad set
    // covers every server in the population.
    let mut server_config = scen.server.clone();
    let mut server_h2 = scen.server_h2.clone();
    match config.defense {
        DefenseSpec::ConstrainedPadding { overhead_per_mille } => {
            let sizes: Vec<usize> = bystander_site
                .site
                .objects()
                .iter()
                .map(|o| o.size)
                .collect();
            server_config.pad_sizes = Some(
                constrained_pad_set(&sizes, overhead_per_mille)
                    .sizes()
                    .to_vec(),
            );
        }
        DefenseSpec::FrameQuantize { quantum } => {
            server_h2.data_pad_quantum = quantum as usize;
            server_h2.headers_pad_quantum = quantum as usize;
        }
        _ => {}
    }

    let trace = Rc::new(RefCell::new(WireTrace::new()));
    let truth = Rc::new(RefCell::new(GroundTruth::new()));
    let sink = (config.conformance != FleetConformance::Off).then(ViolationSink::new);

    // One worker pool per shard, shared across every server: pool pressure
    // from a hostile connection is visible to all of the shard's pairs.
    let dos = config.dos.as_ref();
    let shard_pool = dos
        .and_then(|d| d.pool)
        .map(|p| Rc::new(RefCell::new(WorkerPool::new(p))));

    let mut clients = HostArena::new(true, server_arena_id, config.population);
    let mut servers = HostArena::new(false, client_arena_id, config.population);
    let mut gateway = FleetGateway::new(client_arena_id, config.population);

    let spread_us = config.start_spread.as_micros();
    for &pair in &pairs {
        let mut pair_rng = SimRng::seed_from(mix(config.seed, 0xFA11 ^ pair as u64));
        let is_victim = pair == VICTIM_PAIR;
        let (iside, server_site) = if is_victim {
            (
                victim_site
                    .as_ref()
                    .expect("victim site built for its shard"),
                victim_shared
                    .as_ref()
                    .expect("victim shared site built for its shard"),
            )
        } else {
            (&bystander_site, &bystander_shared)
        };
        let hostile = is_hostile(pair, config.population, dos);
        let session_key = 0x5EC0_0D5E ^ mix(config.seed, pair as u64);
        let mut client_core = if hostile {
            let attack = dos.expect("hostile implies dos config").attack;
            // Burn the browser fork so benign pairs keep their exact RNG
            // streams whether or not their neighbors turned hostile.
            let _ = pair_rng.fork();
            HostCore::new_attacker(
                server_arena_id,
                DosClient::new(DosConfig::for_attack(attack)),
                scen.tcp.clone(),
                session_key,
                scen.socket_buffer,
            )
        } else {
            let browser = Browser::new(
                &iside.site,
                iside.plan.clone(),
                scen.browser.clone(),
                pair_rng.fork(),
            );
            HostCore::new_client(
                server_arena_id,
                browser,
                scen.tcp.clone(),
                scen.client_h2.clone(),
                session_key,
                authority.clone(),
                None,
                scen.socket_buffer,
            )
        };
        // Fleet completion is tracked per slot; no single client may halt
        // the whole shard.
        client_core.halt_when_done = false;

        let mut server_app =
            SiteServer::new(server_site.clone(), server_config.clone(), pair_rng.fork());
        if let Some(pool) = &shard_pool {
            server_app.set_pool(Rc::clone(pool));
        }
        let mut server_tcp = scen.tcp.clone();
        server_tcp.iss = Seq(700_000);
        let mut server_core = HostCore::new_server(
            client_arena_id,
            server_app,
            server_tcp,
            server_h2.clone(),
            session_key,
            is_victim.then(|| truth.clone()),
            scen.socket_buffer,
        );
        // The hardening stack installs fleet-wide (the site deploys it on
        // every server); benign pairs double as the false-positive corpus.
        if let Some(dos) = dos {
            if let Some(guard_cfg) = dos.guard {
                server_core.set_guard(ServerGuard::new(guard_cfg));
            }
            if let Some(det_cfg) = dos.detector {
                server_core.set_detector(DosDetector::new(det_cfg));
            }
        }
        // Shaping runs on the victim server only, from a dedicated RNG
        // stream so the defense never perturbs the pair's app randomness.
        if is_victim {
            let shaper_rng = SimRng::seed_from(mix(config.seed, 0xDEF5 ^ pair as u64));
            match config.defense {
                DefenseSpec::ConstantRate { interval_us } => server_core.set_shaper(
                    TlsShaper::constant_rate(SimDuration::from_micros(interval_us as u64)),
                    shaper_rng,
                ),
                DefenseSpec::AdaptivePadding {
                    min_gap_us,
                    spread_us,
                } => server_core.set_shaper(
                    TlsShaper::adaptive(
                        SimDuration::from_micros(min_gap_us as u64),
                        SimDuration::from_micros(spread_us as u64),
                    ),
                    shaper_rng,
                ),
                _ => {}
            }
        }

        let mut chain: Vec<Box<dyn Middlebox<TcpSegment>>> = Vec::new();
        if is_victim {
            if let Some(adv) = adversary.take() {
                chain.push(adv);
            }
            chain.push(Box::new(WireTap::new(trace.clone())));
        }
        if let Some(sink) = &sink {
            if config.conformance.checks(pair) {
                client_core.set_oracle(HostOracle::new("client", true, sink.clone()));
                server_core.set_oracle(HostOracle::new("server", false, sink.clone()));
                chain.push(Box::new(ConformanceTap::new(sink.clone())));
            }
        }
        if !chain.is_empty() {
            gateway.add_chain(pair, chain);
        }

        let start_at = SimTime::ZERO
            + SimDuration::from_micros(if spread_us == 0 {
                0
            } else {
                pair_rng.gen_range_u64(0..spread_us)
            });
        clients.add(pair, client_core, start_at);
        servers.add(pair, server_core, SimTime::ZERO);
    }

    // Shared links: capacity scales with the pairs sharing them, so the
    // per-pair share matches the single-pair calibration on average while
    // FIFO serialization still couples the flows (the contention the
    // population exists to model).
    let n = pairs.len().max(1) as u64;
    let access = LinkConfig::with_delay(crate::calib::CLIENT_GW_DELAY)
        .bandwidth(crate::calib::LINK_BANDWIDTH * n);
    let wan = LinkConfig::with_delay(crate::calib::GW_SERVER_DELAY)
        .bandwidth(crate::calib::WAN_BANDWIDTH * n)
        .queue_limit(crate::calib::WAN_QUEUE_BYTES * n)
        .loss(crate::calib::WAN_LOSS)
        .jitter(crate::calib::natural_jitter());

    let clients = Rc::new(RefCell::new(clients));
    let servers = Rc::new(RefCell::new(servers));
    sim.install_node(client_arena_id, Box::new(ArenaNode(clients.clone())));
    sim.install_node(gateway_id, Box::new(gateway));
    sim.install_node(server_arena_id, Box::new(ArenaNode(servers.clone())));
    sim.add_link(client_arena_id, gateway_id, access);
    sim.add_link(gateway_id, server_arena_id, wan);
    // Scale the livelock safety valve with the population: one page load
    // is ~60k events, so this only trips on a genuinely stuck protocol.
    sim.set_event_budget((pairs.len() as u64) * 2_000_000 + 10_000_000);

    let summary = sim.run_until(SimTime::ZERO + config.deadline);
    let sched = sim.sched_stats();

    let clients = clients.borrow();
    let servers = servers.borrow();
    let mut completed = 0u32;
    let mut broken = 0u32;
    let mut requests = 0u64;
    let mut requests_complete = 0u64;
    let mut victim = None;
    let mut attackers = 0u32;
    let mut attackers_shed = 0u32;
    let mut detected = 0u32;
    let mut detection_latency_us = 0u64;
    let mut benign_alerts = 0u64;
    for idx in 0..clients.cores.len() {
        let pair = clients.pairs[idx];
        let server_slot = servers.slot_of_pair[pair as usize];
        let server_dead = match server_slot {
            NO_SLOT => false,
            i => servers.cores[i as usize].dead,
        };
        let server_alerts = match server_slot {
            NO_SLOT => Vec::new(),
            i => servers.cores[i as usize].dos_alerts(),
        };
        if let App::Attacker(dos_client) = &clients.cores[idx].app {
            // Hostile pairs report attack outcomes, not page metrics:
            // folding them into completed/broken would skew the bystander
            // completion rate the exhibit quantifies.
            attackers += 1;
            if dos_client.shed_at().is_some() {
                attackers_shed += 1;
            }
            if let Some(alert) = server_alerts.first() {
                detected += 1;
                let start = dos_client.attack_started().unwrap_or(SimTime::ZERO);
                detection_latency_us += alert.at.saturating_since(start).as_micros();
            }
            continue;
        }
        benign_alerts += server_alerts.len() as u64;
        let dead = clients.cores[idx].dead || server_dead;
        if dead {
            broken += 1;
        } else if clients.flags[idx] & FLAG_FINISHED != 0 {
            completed += 1;
        }
        let outcomes = clients.cores[idx].browser().outcomes();
        requests += outcomes.len() as u64;
        requests_complete += outcomes.iter().filter(|o| o.completed_at.is_some()).count() as u64;
        if pair == VICTIM_PAIR {
            victim = Some(VictimCapture {
                golden_order: victim_golden.clone(),
                trace: std::mem::replace(&mut *trace.borrow_mut(), WireTrace::new()),
                truth: std::mem::replace(&mut *truth.borrow_mut(), GroundTruth::new()),
                outcomes,
                broken: dead,
            });
        }
    }
    let (violations, violations_total) = match &sink {
        Some(sink) => (sink.take(), sink.total()),
        None => (Vec::new(), 0),
    };
    ShardResult {
        shard,
        pairs: pairs.len() as u32,
        stop: summary.stop,
        events: summary.events,
        end_time: summary.end_time,
        sched,
        completed,
        broken,
        requests,
        requests_complete,
        victim,
        violations,
        violations_total,
        attackers,
        attackers_shed,
        detected,
        detection_latency_us,
        benign_alerts,
        pool: shard_pool.map(|p| p.borrow().stats()),
    }
}

/// Merges shard results in shard order (seed order), independent of the
/// order the shards actually finished in — the other half of the
/// any-thread-count determinism guarantee.
pub fn merge_shards(population: u32, shards: u32, mut results: Vec<ShardResult>) -> FleetResult {
    results.sort_by_key(|s| s.shard);
    let mut out = FleetResult {
        population,
        shards,
        events: 0,
        shard_events: Vec::with_capacity(results.len()),
        sched: SchedStats::default(),
        sim_time_total: SimTime::ZERO,
        end_time_max: SimTime::ZERO,
        completed: 0,
        broken: 0,
        requests: 0,
        requests_complete: 0,
        victim: None,
        violations: Vec::new(),
        violations_total: 0,
        attackers: 0,
        attackers_shed: 0,
        detected: 0,
        detection_latency_us: 0,
        benign_alerts: 0,
        pool: None,
    };
    for s in results {
        out.events += s.events;
        out.shard_events.push(s.events);
        out.sched.merge_concurrent(&s.sched);
        out.sim_time_total = out.sim_time_total.saturating_merge(s.end_time);
        out.end_time_max = out.end_time_max.max(s.end_time);
        out.completed += s.completed;
        out.broken += s.broken;
        out.requests += s.requests;
        out.requests_complete += s.requests_complete;
        if s.victim.is_some() {
            out.victim = s.victim;
        }
        out.violations.extend(s.violations);
        out.violations_total += s.violations_total;
        out.attackers += s.attackers;
        out.attackers_shed += s.attackers_shed;
        out.detected += s.detected;
        out.detection_latency_us += s.detection_latency_us;
        out.benign_alerts += s.benign_alerts;
        if let Some(p) = s.pool {
            let merged = out.pool.get_or_insert_with(PoolStats::default);
            merged.admitted += p.admitted;
            merged.parked += p.parked;
            merged.settings_processed += p.settings_processed;
            merged.parser_holds += p.parser_holds;
        }
    }
    out
}

/// Convenience: runs every shard sequentially on the calling thread.
/// `make_adversary` is called once with the victim shard's id.
pub fn run_fleet(
    config: &FleetConfig,
    make_adversary: impl FnOnce() -> Option<Box<dyn Middlebox<TcpSegment>>>,
) -> FleetResult {
    let shards = config.shards.max(1);
    let vs = victim_shard(config);
    let mut make_adversary = Some(make_adversary);
    let mut results = Vec::with_capacity(shards as usize);
    for shard in 0..shards {
        let adversary = if shard == vs {
            make_adversary.take().and_then(|f| f())
        } else {
            None
        };
        results.push(run_fleet_shard(config, shard, adversary));
    }
    merge_shards(config.population, shards, results)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> FleetConfig {
        FleetConfig {
            seed: 11,
            population: 8,
            shards: 2,
            conformance: FleetConformance::Full,
            start_spread: SimDuration::from_millis(200),
            ..FleetConfig::default()
        }
    }

    #[test]
    fn small_fleet_completes_clean() {
        let result = run_fleet(&small_config(), || None);
        assert_eq!(result.completed + result.broken, 8);
        assert_eq!(result.broken, 0, "no connection should die unperturbed");
        assert_eq!(result.violations_total, 0, "{:?}", result.violations);
        let victim = result.victim.expect("victim capture present");
        assert!(!victim.trace.packets.is_empty());
        assert!(!victim.outcomes.is_empty());
        assert!(victim.outcomes.iter().all(|o| o.completed_at.is_some()));
        assert!(!victim.broken);
        assert!(result.requests_complete == result.requests && result.requests >= 8 * 9);
    }

    #[test]
    fn shard_runs_are_deterministic() {
        let config = small_config();
        let a = run_fleet_shard(&config, 0, None);
        let b = run_fleet_shard(&config, 0, None);
        assert_eq!(a.events, b.events);
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.sched, b.sched);
        assert_eq!(
            (a.completed, a.broken, a.requests, a.requests_complete),
            (b.completed, b.broken, b.requests, b.requests_complete)
        );
    }

    #[test]
    fn merge_order_is_shard_order_not_finish_order() {
        let config = small_config();
        let fwd = merge_shards(
            config.population,
            config.shards,
            (0..config.shards)
                .map(|s| run_fleet_shard(&config, s, None))
                .collect(),
        );
        let rev = merge_shards(
            config.population,
            config.shards,
            (0..config.shards)
                .rev()
                .map(|s| run_fleet_shard(&config, s, None))
                .collect(),
        );
        assert_eq!(fwd.events, rev.events);
        assert_eq!(fwd.shard_events, rev.shard_events);
        assert_eq!(fwd.sched, rev.sched);
        assert_eq!(fwd.sim_time_total, rev.sim_time_total);
        assert_eq!(fwd.completed, rev.completed);
    }

    #[test]
    fn hostile_pairs_starve_the_pool_until_the_guard_sheds_them() {
        use h2priv_dos::{DetectorConfig, DosAttack, GuardConfig};
        use h2priv_web::PoolConfig;
        let dos = |guarded: bool| FleetDosConfig {
            attack: DosAttack::ZeroWindowHoard,
            attackers: 3,
            guard: guarded.then(GuardConfig::default),
            detector: Some(DetectorConfig::default()),
            pool: Some(PoolConfig {
                capacity: 4,
                ..PoolConfig::default()
            }),
        };
        let config = |guarded: bool| FleetConfig {
            seed: 11,
            population: 10,
            shards: 2,
            conformance: FleetConformance::Full,
            start_spread: SimDuration::from_millis(200),
            deadline: SimDuration::from_secs(40),
            dos: Some(dos(guarded)),
            ..FleetConfig::default()
        };

        let undefended = run_fleet(&config(false), || None);
        assert_eq!(undefended.attackers, 3);
        assert_eq!(undefended.attackers_shed, 0, "nothing sheds undefended");
        let pool = undefended.pool.expect("pool stats present");
        assert!(pool.parked > 0, "hoarded workers must park bystanders");
        assert!(
            undefended.completed < 7,
            "starvation should break bystander page loads ({} completed)",
            undefended.completed
        );
        assert_eq!(undefended.violations_total, 0, "attacks are RFC-legal");

        let guarded = run_fleet(&config(true), || None);
        assert_eq!(guarded.attackers_shed, 3, "guard sheds every attacker");
        assert_eq!(guarded.detected, 3, "detector flags every attacker");
        assert_eq!(guarded.benign_alerts, 0, "no false positives");
        assert!(
            guarded.completed >= 6,
            "bystanders should finish once attackers are shed ({} completed)",
            guarded.completed
        );
        assert_eq!(guarded.violations_total, 0, "{:?}", guarded.violations);
    }

    #[test]
    fn pairs_spread_over_shards() {
        let shards = 8;
        let mut counts = vec![0u32; shards as usize];
        for pair in 0..10_000 {
            counts[shard_of_pair(pair, shards) as usize] += 1;
        }
        for &c in &counts {
            assert!((1_000..1_600).contains(&c), "lopsided shard: {counts:?}");
        }
    }
}
