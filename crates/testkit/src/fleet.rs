//! Fleet-scale population scenario: N client–server pairs per run.
//!
//! The single-pair scenario ([`crate::run_trial`]) models one volunteer
//! loading one page through the lab gateway. This module scales that to a
//! *population*: `N` independent client–server pairs (thousands to
//! hundreds of thousands) sharing a bottleneck gateway link, partitioned
//! into shards by a deterministic hash of the pair id. Each shard is its
//! own [`Simulator`] — sharding is what lets a driver run shards on
//! separate OS threads — and shard construction depends only on
//! `(seed, shard)`, so results are byte-identical however many threads
//! execute them. Merging is seed-ordered: [`merge_shards`] sorts by shard
//! id before folding stats.
//!
//! Within a shard, hosts do not get one netsim node each. A [`HostArena`]
//! holds every [`HostCore`] of one side (all clients, or all servers) in a
//! slab behind a *single* node, routes packets to cores by the pair id
//! carried in [`FleetSegment`], and batches the pump: packet deliveries
//! only mark a core dirty, and one zero-delay timer per burst drains every
//! dirty core with the arena's one shared [`PumpScratch`] — the ISSUE's
//! amortized host path. Protocol deadlines (TCP RTO, browser stalls,
//! server workers) go through one binary heap with lazy deletion and a
//! single armed netsim timer, instead of two timers per host.
//!
//! The paper's attack drops into this unchanged: pair 0 is the *victim*,
//! and the [`FleetGateway`] runs an ordinary [`Middlebox`] chain
//! (adversary, wire tap, conformance tap) over the victim's packets only,
//! with per-pair shaping state replicating [`GatewayNode`]'s egress
//! serializer. Bystander pairs contend on the shared links but are not
//! captured — recording per-byte ground truth for 100k pairs would dwarf
//! the simulation, so only the victim carries a [`GroundTruth`].
//!
//! [`GatewayNode`]: h2priv_netsim::GatewayNode

use h2priv_netsim::internals::MinHeap4;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use h2priv_analysis::{GroundTruth, WireTrace};
use h2priv_conformance::{ConformanceTap, Violation, ViolationSink};
use h2priv_defense::{constrained_pad_set, DefenseSpec, TlsShaper};
use h2priv_dos::{
    Alert, DetectorConfig, DosAttack, DosClient, DosConfig, DosDetector, GuardConfig, ServerGuard,
};
use h2priv_http2::H2Config;
use h2priv_netsim::{
    Context, Dir, GatewayStats, LinkConfig, MbContext, Middlebox, Node, NodeId, Packet, SchedStats,
    SimDuration, SimRng, SimTime, Simulator, StopReason, TimerId, Verdict,
};
use h2priv_tcp::{Seq, TcpSegment};
use h2priv_web::{
    isidewith, Browser, PoolConfig, PoolStats, RequestOutcome, SiteServer, SiteServerConfig,
    Website, WorkerPool,
};

use crate::host::{App, BufPool, HostCore, HostOracle, PumpScratch};
use crate::scenario::ScenarioConfig;
use crate::tap::WireTap;

/// The pair carrying the paper's attack instrumentation.
pub const VICTIM_PAIR: u32 = 0;

/// One TCP segment of one population pair. The pair id is the connection
/// identity: arenas demux on it, the gateway selects per-pair middlebox
/// chains on it.
#[derive(Debug, Clone)]
pub struct FleetSegment {
    /// Which client–server pair this segment belongs to.
    pub pair: u32,
    /// The segment itself.
    pub seg: TcpSegment,
}

/// How much of the fleet the conformance oracle watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetConformance {
    /// No checking (benchmark mode).
    Off,
    /// The victim plus every 97th pair get endpoint checkers and a wire
    /// tap — constant-fraction coverage that stays affordable at 100k
    /// pairs.
    Spot,
    /// Every pair is checked. Meant for small populations.
    Full,
}

impl FleetConformance {
    /// The mode the acceptance criteria ask for at a given population:
    /// full checking up to 100 pairs, spot checks beyond.
    pub fn for_population(population: u32) -> FleetConformance {
        if population <= 100 {
            FleetConformance::Full
        } else {
            FleetConformance::Spot
        }
    }

    fn checks(self, pair: u32) -> bool {
        match self {
            FleetConformance::Off => false,
            FleetConformance::Spot => pair == VICTIM_PAIR || pair.is_multiple_of(97),
            FleetConformance::Full => true,
        }
    }
}

/// Hostile-traffic injection for a fleet run: the top `attackers` pair
/// ids (never the victim) swap their browser for a [`DosClient`], so the
/// attack contends with honest bystanders on the shared links — and, when
/// a worker pool is configured, on the shard's shared thread budget.
#[derive(Debug, Clone)]
pub struct FleetDosConfig {
    /// The workload each hostile pair mounts.
    pub attack: DosAttack,
    /// How many pairs are hostile, taken from the top of the pair-id
    /// range.
    pub attackers: u32,
    /// Server-side shedding policy, installed on every server of the
    /// population (`None` = undefended).
    pub guard: Option<GuardConfig>,
    /// Online detector on every server (`None` = no monitoring). Benign
    /// pairs double as the false-positive corpus.
    pub detector: Option<DetectorConfig>,
    /// One worker pool per shard, shared by all of the shard's servers —
    /// the resource coupling that lets a hostile connection starve
    /// bystanders (`None` = unbounded workers).
    pub pool: Option<PoolConfig>,
}

/// Live counters a fleet run updates while shards execute, for drivers
/// that report progress (the `repro fleet --progress` stderr heartbeat).
/// All plain relaxed atomics: shard threads bump them, a reporter thread
/// reads them; they never feed back into the simulation, so attaching a
/// progress sink cannot perturb results.
#[derive(Default)]
pub struct FleetProgress {
    /// Client pairs whose page load has finished (across all shards).
    pub pairs_done: AtomicU64,
    /// Simulator events processed so far (across all shards; shards
    /// running with a progress sink report in deadline slices).
    pub events: AtomicU64,
    /// Shards that have completed.
    pub shards_done: AtomicU64,
}

impl std::fmt::Debug for FleetProgress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetProgress")
            .field("pairs_done", &self.pairs_done.load(Ordering::Relaxed))
            .field("events", &self.events.load(Ordering::Relaxed))
            .field("shards_done", &self.shards_done.load(Ordering::Relaxed))
            .finish()
    }
}

/// Everything configurable about one fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Run seed; drives every per-pair RNG and the per-shard engines.
    pub seed: u64,
    /// Number of client–server pairs.
    pub population: u32,
    /// Number of shards (independent simulators). Fixed by configuration,
    /// *not* by the executing thread count — that is what keeps output
    /// byte-identical at any `--threads`.
    pub shards: u32,
    /// Conformance coverage.
    pub conformance: FleetConformance,
    /// Client start times are staggered uniformly over this window, so a
    /// population does not fire 100k simultaneous handshakes.
    pub start_spread: SimDuration,
    /// Hard cap on simulated time per shard.
    pub deadline: SimDuration,
    /// Countermeasure deployed by the site. Padding defenses apply to every
    /// server in the population (the site deploys them fleet-wide); the
    /// shaping defenses' dummy-record schedule runs on the victim server
    /// only — bystander traffic is load, not measurement target, and the
    /// arena topology has no per-pair pacing hop, so fleet shaping models
    /// the endpoint half of the defense.
    pub defense: DefenseSpec,
    /// Hostile-traffic injection (`None` — the default — keeps every
    /// pre-existing fleet schedule bit-identical).
    pub dos: Option<FleetDosConfig>,
    /// Cohort streaming: when `Some(n)`, pair state is materialized
    /// lazily — a pair's client and server cores are built when its
    /// staggered start time arrives and torn down (buffers recycled into
    /// the shard pool, outcome folded) as soon as its page load finishes —
    /// so peak memory follows the number of pairs *in flight*, not the
    /// population. `n` sizes the expected co-resident set (slab and pool
    /// pre-allocation); it does not alter scheduling, which is why
    /// outcome rows are identical for every cohort size. `None` (the
    /// default) materializes the whole shard up front, byte-identical to
    /// the pre-streaming fleet.
    pub cohort: Option<u32>,
    /// One worker pool per shard shared by all of the shard's servers,
    /// independent of any DoS injection (`None` = the pre-existing
    /// behavior: unbounded workers unless `dos` carries a pool).
    pub pool: Option<PoolConfig>,
    /// Live progress counters (`None` = no reporting; attaching one does
    /// not change simulation results, only stderr-side visibility).
    pub progress: Option<Arc<FleetProgress>>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 0,
            population: 1_000,
            shards: 8,
            conformance: FleetConformance::Off,
            start_spread: SimDuration::from_secs(5),
            deadline: crate::calib::TRIAL_DEADLINE,
            defense: DefenseSpec::None,
            dos: None,
            cohort: None,
            pool: None,
            progress: None,
        }
    }
}

/// Whether `pair` is hostile under `dos` (the victim never is: it stays
/// the attack-measurement pair).
fn is_hostile(pair: u32, population: u32, dos: Option<&FleetDosConfig>) -> bool {
    let Some(dos) = dos else {
        return false;
    };
    pair != VICTIM_PAIR && pair >= population.saturating_sub(dos.attackers)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn mix(seed: u64, salt: u64) -> u64 {
    splitmix64(seed ^ splitmix64(salt))
}

/// Deterministic pair → shard assignment (independent of thread count).
pub fn shard_of_pair(pair: u32, shards: u32) -> u32 {
    (splitmix64(pair as u64) % shards.max(1) as u64) as u32
}

/// The shard holding the victim pair.
pub fn victim_shard(config: &FleetConfig) -> u32 {
    shard_of_pair(VICTIM_PAIR, config.shards)
}

/// The victim's survey outcome — the permutation the adversary tries to
/// recover. Deterministic in the seed so the driver can rebuild the same
/// [`isidewith`] site for scoring.
pub fn victim_golden_order(seed: u64) -> Vec<usize> {
    SimRng::seed_from(mix(seed, 0x601D)).permutation(8)
}

fn bystander_golden_order(seed: u64) -> Vec<usize> {
    SimRng::seed_from(mix(seed, 0xB5D7)).permutation(8)
}

// ---------------------------------------------------------------------------
// Host arena
// ---------------------------------------------------------------------------

const TOKEN_BATCH: u64 = 0;
const TOKEN_DUE: u64 = 1;
/// Cohort-streaming admission deadline (client arena only).
const TOKEN_ADMIT: u64 = 2;

/// Sentinel for "pair not in this shard" in the dense pair-indexed maps.
const NO_SLOT: u32 = u32::MAX;

/// Per-slot lifecycle bits, one byte per pair (hot: the pump reads and
/// writes these every batch, so they pack cache-line-dense instead of
/// riding inside a fat per-pair struct).
const FLAG_STARTED: u8 = 1 << 0;
/// Page load finished (client: browser done and send buffer drained, or
/// the connection died).
const FLAG_FINISHED: u8 = 1 << 1;
const FLAG_DIRTY: u8 = 1 << 2;
/// Streaming mode, server side: this pair's client has retired; tear the
/// server core down as soon as it goes quiescent.
const FLAG_RETIRE: u8 = 1 << 3;

/// A slab of [`HostCore`]s of one side (all clients or all servers) behind
/// a single netsim node.
///
/// Per-pair state is struct-of-arrays: the hot pump fields (`flags`,
/// `pairs`, the cores themselves) are parallel vectors indexed by slot,
/// and pair-id lookup is a dense `Vec` (pair ids are contiguous from 0)
/// instead of a hash map — the demux on every delivered packet is one
/// bounds-checked load.
pub struct HostArena {
    is_client: bool,
    /// The opposite arena's node id (packet destination).
    peer: NodeId,
    /// The protocol cores, slot-indexed (SoA with `pairs`/`flags`).
    /// `None` = a streamed-out slot: its pair retired and the slot waits
    /// on the free list for a later admission to reuse it.
    cores: Vec<Option<HostCore>>,
    /// Retired slot indices available for reuse (streaming mode).
    free: Vec<u32>,
    /// Slot → pair id.
    pairs: Vec<u32>,
    /// Slot → when this (client) core opens its connection.
    start_at: Vec<SimTime>,
    /// Slot → lifecycle bits (`FLAG_*`).
    flags: Vec<u8>,
    /// Dense pair id → slot index ([`NO_SLOT`] for other shards' pairs).
    slot_of_pair: Vec<u32>,
    /// Slots touched since the last batch pump, in touch order.
    dirty: Vec<u32>,
    /// Pending per-core deadlines, lazily deleted: a popped entry whose
    /// core has since moved its deadline is just a cheap no-op pump.
    /// A 4-ary heap for the same reason the scheduler uses one: entries
    /// are small and the workload is pop-push-dominated. Pop order is
    /// identical to `BinaryHeap` because `(time, slot)` entries are unique
    /// (the `due_at` filter only re-pushes a slot at a strictly earlier
    /// time).
    due: MinHeap4<(SimTime, u32)>,
    /// Slot → earliest deadline currently in `due` for that slot
    /// ([`SimTime::MAX`] = none). The dedup filter: a core re-pumped on
    /// every packet burst recomputes the same deadline each time, and
    /// without this the heap accumulates one stale copy per pump — at 10k
    /// pairs the heap churn was ~10% of the shard's whole CPU budget.
    due_at: Vec<SimTime>,
    due_timer: Option<(TimerId, SimTime)>,
    batch_armed: bool,
    /// The shared scratch: one decrypt/seal workspace for every core in
    /// the shard's arena, instead of per-host buffers.
    scratch: PumpScratch,
    /// Free-list of recycled buffers: cores shed their big allocations
    /// here when their page load completes, and later-starting cores
    /// adopt them instead of growing the heap.
    pool: BufPool,
    finished_count: usize,
    /// Cohort streaming on: cores are admitted lazily and retired at
    /// finish instead of living for the whole run.
    streaming: bool,
    /// Pairs this shard will simulate in total.
    total_pairs: u32,
    /// Live cores right now / the run's high-water mark (the memory
    /// telemetry cohort streaming exists to bound).
    resident: u32,
    peak_resident: u32,
    /// Client arena, streaming mode: the admission schedule, sorted by
    /// `(start_at, pair)` *descending* so the next admission pops off the
    /// end, plus the builder that materializes a pair on demand and the
    /// server arena admissions are pushed into.
    admit: Vec<(SimTime, u32)>,
    builder: Option<Rc<PairBuilder>>,
    servers: Option<Rc<RefCell<HostArena>>>,
    /// Pairs fully torn down (client side).
    retired: u32,
    /// Outcome rows folded at retirement (streaming) or at end-of-run
    /// (eager) — same fold either way, so the rows cannot depend on when
    /// a pair was torn down.
    fold: FleetFold,
    progress: Option<Arc<FleetProgress>>,
}

/// The per-shard outcome accumulator: everything [`ShardResult`] needs
/// that is folded per pair, so streamed-out pairs can contribute their
/// row before their state is dropped.
#[derive(Default)]
struct FleetFold {
    completed: u32,
    broken: u32,
    requests: u64,
    requests_complete: u64,
    attackers: u32,
    attackers_shed: u32,
    detected: u32,
    detection_latency_us: u64,
    benign_alerts: u64,
    victim: Option<VictimCapture>,
    /// Victim-capture context, installed on the client arena's fold only.
    victim_golden: Vec<usize>,
    trace: Option<Rc<RefCell<WireTrace>>>,
    truth: Option<Rc<RefCell<GroundTruth>>>,
}

impl FleetFold {
    /// Folds one pair's outcome row. Called either at retirement
    /// (streaming) or in the end-of-run sweep (eager, plus whatever is
    /// still resident at a deadline) — every counter is a commutative sum
    /// and at most one pair is the victim, so fold order cannot change the
    /// shard result.
    fn fold_pair(
        &mut self,
        pair: u32,
        client: &HostCore,
        finished: bool,
        server_dead: bool,
        server_alerts: &[Alert],
    ) {
        if let App::Attacker(dos_client) = &client.app {
            // Hostile pairs report attack outcomes, not page metrics:
            // folding them into completed/broken would skew the bystander
            // completion rate the exhibit quantifies.
            self.attackers += 1;
            if dos_client.shed_at().is_some() {
                self.attackers_shed += 1;
            }
            if let Some(alert) = server_alerts.first() {
                self.detected += 1;
                let start = dos_client.attack_started().unwrap_or(SimTime::ZERO);
                self.detection_latency_us += alert.at.saturating_since(start).as_micros();
            }
            return;
        }
        self.benign_alerts += server_alerts.len() as u64;
        let dead = client.dead || server_dead;
        if dead {
            self.broken += 1;
        } else if finished {
            self.completed += 1;
        }
        let outcomes = client.browser().outcomes();
        self.requests += outcomes.len() as u64;
        self.requests_complete +=
            outcomes.iter().filter(|o| o.completed_at.is_some()).count() as u64;
        if pair == VICTIM_PAIR {
            let trace = self
                .trace
                .as_ref()
                .expect("victim shard folds with a trace");
            let truth = self.truth.as_ref().expect("victim shard folds with truth");
            self.victim = Some(VictimCapture {
                golden_order: self.victim_golden.clone(),
                trace: std::mem::replace(&mut *trace.borrow_mut(), WireTrace::new()),
                truth: std::mem::replace(&mut *truth.borrow_mut(), GroundTruth::new()),
                outcomes,
                broken: dead,
            });
        }
    }
}

impl std::fmt::Debug for HostArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostArena")
            .field("is_client", &self.is_client)
            .field("slots", &self.cores.len())
            .finish_non_exhaustive()
    }
}

impl HostArena {
    fn new(is_client: bool, peer: NodeId, population: u32) -> Self {
        HostArena {
            is_client,
            peer,
            cores: Vec::new(),
            free: Vec::new(),
            pairs: Vec::new(),
            start_at: Vec::new(),
            flags: Vec::new(),
            slot_of_pair: vec![NO_SLOT; population as usize],
            dirty: Vec::new(),
            due: MinHeap4::new(),
            due_at: Vec::new(),
            due_timer: None,
            batch_armed: false,
            scratch: PumpScratch::default(),
            pool: BufPool::default(),
            finished_count: 0,
            streaming: false,
            total_pairs: 0,
            resident: 0,
            peak_resident: 0,
            admit: Vec::new(),
            builder: None,
            servers: None,
            retired: 0,
            fold: FleetFold::default(),
            progress: None,
        }
    }

    /// Installs `core` for `pair`, reusing a retired slot when one is
    /// free. Used both by eager setup (where the free list is always
    /// empty, so slots append in pair order exactly as before) and by
    /// streaming admission.
    fn add(&mut self, pair: u32, core: HostCore, start_at: SimTime) -> u32 {
        let idx = match self.free.pop() {
            Some(idx) => {
                self.cores[idx as usize] = Some(core);
                self.pairs[idx as usize] = pair;
                self.start_at[idx as usize] = start_at;
                self.flags[idx as usize] = 0;
                self.due_at[idx as usize] = SimTime::MAX;
                idx
            }
            None => {
                let idx = self.cores.len() as u32;
                self.cores.push(Some(core));
                self.pairs.push(pair);
                self.start_at.push(start_at);
                self.flags.push(0);
                self.due_at.push(SimTime::MAX);
                idx
            }
        };
        self.slot_of_pair[pair as usize] = idx;
        self.resident += 1;
        self.peak_resident = self.peak_resident.max(self.resident);
        idx
    }

    /// Arms slot `idx`'s deadline `at`, deduplicating against the entry
    /// already in the heap: pushing is only needed when `at` is earlier
    /// than the armed one — a later deadline will be recomputed (and then
    /// armed) by the no-op pump the earlier entry triggers.
    fn arm_slot_deadline(&mut self, idx: u32, at: SimTime) {
        if at < self.due_at[idx as usize] {
            self.due_at[idx as usize] = at;
            self.due.push((at, idx));
        }
    }

    fn mark_dirty(&mut self, idx: u32) {
        if self.flags[idx as usize] & FLAG_DIRTY == 0 {
            self.flags[idx as usize] |= FLAG_DIRTY;
            self.dirty.push(idx);
        }
    }

    fn arm_batch(&mut self, ctx: &mut Context<'_, FleetSegment>) {
        if !self.batch_armed {
            self.batch_armed = true;
            ctx.set_timer(SimDuration::ZERO, TOKEN_BATCH);
        }
    }

    /// Drains every dirty core: stage passes with the shared scratch, then
    /// the TCP flush routed to the peer arena, then deadline bookkeeping.
    fn pump_dirty(&mut self, ctx: &mut Context<'_, FleetSegment>) {
        let now = ctx.now();
        let self_id = ctx.node_id();
        let peer = self.peer;
        for i in 0..self.dirty.len() {
            let idx = self.dirty[i];
            self.flags[idx as usize] &= !FLAG_DIRTY;
            // A retired slot can linger in `dirty` for one batch; skip it.
            let Some(core) = self.cores[idx as usize].as_mut() else {
                continue;
            };
            core.pump_stages(now, &mut self.scratch);
            let pair = self.pairs[idx as usize];
            core.flush_transmit(now, |seg| {
                let wire_bytes = seg.wire_bytes();
                ctx.send(Packet::new(
                    self_id,
                    peer,
                    wire_bytes,
                    FleetSegment { pair, seg },
                ));
            });
            let mut retire_client_now = false;
            if self.flags[idx as usize] & FLAG_FINISHED == 0 {
                // "Done" for an attacker core means the server shed it —
                // an unopposed attack keeps its shard running to the
                // deadline, which is the point.
                let app_done = match &core.app {
                    App::Client(b) => b.is_done(),
                    App::Attacker(a) => a.is_done(),
                    App::Server(_) => false,
                };
                let done = core.dead || (self.is_client && app_done && core.tcp.send_drained());
                if done {
                    self.flags[idx as usize] |= FLAG_FINISHED;
                    self.finished_count += 1;
                    if self.is_client {
                        if let Some(p) = &self.progress {
                            p.pairs_done.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    if self.streaming && self.is_client {
                        // Streaming: the whole pair retires now; the fold
                        // and buffer recycling happen in retire_client.
                        retire_client_now = true;
                    } else {
                        // The page load is over: return this core's big
                        // buffers to the shard pool for cores still to
                        // start.
                        core.shed_buffers(&mut self.pool);
                    }
                } else if !self.is_client && core.tcp.send_drained() && core.app_wakeup().is_none()
                {
                    // A server never "finishes" — it can't know the client
                    // is done — but fully quiescent (everything acked, no
                    // worker pending) it sheds opportunistically: only
                    // empty capacity moves, so a new request wave merely
                    // reallocates, and in a one-load-per-pair fleet this
                    // is what returns the server side's memory.
                    core.shed_buffers(&mut self.pool);
                }
            }
            if retire_client_now {
                self.retire_client(idx);
                continue;
            }
            // Streaming, server side: once the pair's client retired and
            // this core has gone quiescent (or died), tear it down too.
            if self.streaming && !self.is_client && self.flags[idx as usize] & FLAG_RETIRE != 0 {
                let core = self.cores[idx as usize]
                    .as_ref()
                    .expect("core pumped above");
                if core.dead || (core.tcp.send_drained() && core.app_wakeup().is_none()) {
                    self.retire_slot(idx);
                    continue;
                }
            }
            let core = self.cores[idx as usize]
                .as_ref()
                .expect("core pumped above");
            let next = if core.dead {
                None
            } else {
                match (core.tcp.poll_timeout(), core.app_wakeup()) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                }
            };
            if let Some(at) = next {
                self.arm_slot_deadline(idx, at);
            }
        }
        self.dirty.clear();
        // The whole fleet is done when every client finished (streaming:
        // every pair admitted *and* retired); the clients' arena halts the
        // shard (mirroring the single-pair host's halt-when-done), which
        // also releases idle-connection timers.
        let all_done = if self.streaming {
            self.retired == self.total_pairs
        } else {
            self.finished_count == self.total_pairs as usize
        };
        if self.is_client && self.total_pairs > 0 && all_done {
            ctx.halt();
        }
        self.rearm_due(ctx);
    }

    /// Streaming teardown of slot `idx`: recycle the core's buffers into
    /// the shard pool and put the slot on the free list for the next
    /// admission.
    fn retire_slot(&mut self, idx: u32) {
        let pair = self.pairs[idx as usize];
        if let Some(mut core) = self.cores[idx as usize].take() {
            core.shed_buffers(&mut self.pool);
        }
        self.slot_of_pair[pair as usize] = NO_SLOT;
        // Entries for this slot still in `due` become stale no-ops: the
        // pop loop filters on due_at, and MAX never matches a popped time.
        self.due_at[idx as usize] = SimTime::MAX;
        self.free.push(idx);
        self.resident -= 1;
        self.retired += 1;
    }

    /// Streaming, client side: folds the finished pair's outcome row
    /// (reading its server's state across the arena link), then tears both
    /// sides down — the server immediately if quiescent, else deferred via
    /// [`FLAG_RETIRE`] to its own pump.
    fn retire_client(&mut self, idx: u32) {
        let pair = self.pairs[idx as usize];
        let servers = self
            .servers
            .clone()
            .expect("client arena links its servers");
        let (server_dead, server_alerts) = {
            let mut sv = servers.borrow_mut();
            let info = sv.server_info(pair);
            sv.note_client_done(pair);
            info
        };
        let finished = self.flags[idx as usize] & FLAG_FINISHED != 0;
        let core = self.cores[idx as usize]
            .as_ref()
            .expect("retiring a live core");
        self.fold
            .fold_pair(pair, core, finished, server_dead, &server_alerts);
        self.retire_slot(idx);
    }

    /// The pair's server-side state the client fold needs.
    fn server_info(&self, pair: u32) -> (bool, Vec<Alert>) {
        match self.slot_of_pair.get(pair as usize) {
            Some(&i) if i != NO_SLOT => match &self.cores[i as usize] {
                Some(c) => (c.dead, c.dos_alerts()),
                None => (false, Vec::new()),
            },
            _ => (false, Vec::new()),
        }
    }

    /// Server arena: the pair's client retired. Tear the server core down
    /// now if it has nothing left to do, otherwise flag it so its own pump
    /// retires it at quiescence.
    fn note_client_done(&mut self, pair: u32) {
        let idx = match self.slot_of_pair.get(pair as usize) {
            Some(&i) if i != NO_SLOT => i,
            _ => return,
        };
        let quiescent = match &self.cores[idx as usize] {
            Some(c) => c.dead || (c.tcp.send_drained() && c.app_wakeup().is_none()),
            None => return,
        };
        if quiescent {
            self.retire_slot(idx);
        } else {
            self.flags[idx as usize] |= FLAG_RETIRE;
        }
    }

    /// Streaming admission: materializes every pair whose start time has
    /// arrived (client core into this arena, server core into the peer's)
    /// and re-arms the admission timer for the next one.
    fn pump_admissions(&mut self, ctx: &mut Context<'_, FleetSegment>) {
        let now = ctx.now();
        while let Some(&(at, pair)) = self.admit.last() {
            if at > now {
                break;
            }
            self.admit.pop();
            let builder = self.builder.clone().expect("streaming arena has a builder");
            let (client_core, server_core, start_at) = builder.build(pair);
            let idx = self.add(pair, client_core, start_at);
            self.arm_slot_deadline(idx, start_at);
            let servers = self
                .servers
                .clone()
                .expect("client arena links its servers");
            servers.borrow_mut().add(pair, server_core, SimTime::ZERO);
        }
        if let Some(&(at, _)) = self.admit.last() {
            ctx.set_timer(at.saturating_since(now), TOKEN_ADMIT);
        }
    }

    fn rearm_due(&mut self, ctx: &mut Context<'_, FleetSegment>) {
        let target = self.due.peek().map(|(at, _)| *at);
        match (target, self.due_timer) {
            (Some(at), Some((_, armed))) if at == armed => {}
            (Some(at), prev) => {
                if let Some((id, _)) = prev {
                    ctx.cancel_timer(id);
                }
                let id = ctx.set_timer(at.saturating_since(ctx.now()), TOKEN_DUE);
                self.due_timer = Some((id, at));
            }
            (None, Some((id, _))) => {
                ctx.cancel_timer(id);
                self.due_timer = None;
            }
            (None, None) => {}
        }
    }

    fn on_start(&mut self, ctx: &mut Context<'_, FleetSegment>) {
        if self.is_client {
            if self.streaming {
                // Admit every pair whose start time is now (t = 0) and arm
                // the admission timer for the rest of the schedule.
                self.pump_admissions(ctx);
            } else {
                for idx in 0..self.start_at.len() {
                    self.arm_slot_deadline(idx as u32, self.start_at[idx]);
                }
            }
        }
        self.rearm_due(ctx);
    }

    fn on_packet(&mut self, packet: Packet<FleetSegment>, ctx: &mut Context<'_, FleetSegment>) {
        let idx = match self.slot_of_pair.get(packet.payload.pair as usize) {
            Some(&idx) if idx != NO_SLOT => idx,
            // Other shards' pairs, and (streaming) stragglers — e.g. a
            // retransmission in flight to a pair that already retired.
            _ => return,
        };
        let Some(core) = self.cores[idx as usize].as_mut() else {
            return;
        };
        core.tcp.on_segment(packet.payload.seg, ctx.now());
        self.mark_dirty(idx);
        self.arm_batch(ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, FleetSegment>) {
        let now = ctx.now();
        if token == TOKEN_BATCH {
            self.batch_armed = false;
        } else if token == TOKEN_ADMIT {
            self.pump_admissions(ctx);
        } else {
            self.due_timer = None;
            while let Some(&(at, idx)) = self.due.peek() {
                if at > now {
                    break;
                }
                self.due.pop();
                // Stale lazy-deleted entry: a fresher (earlier) deadline was
                // already consumed and this copy carries no new obligation.
                if self.due_at[idx as usize] != at {
                    continue;
                }
                self.due_at[idx as usize] = SimTime::MAX;
                let Some(core) = self.cores[idx as usize].as_mut() else {
                    continue;
                };
                if self.flags[idx as usize] & FLAG_STARTED == 0
                    && self.start_at[idx as usize] <= now
                {
                    self.flags[idx as usize] |= FLAG_STARTED;
                    // Reuse buffers earlier page loads returned to the pool.
                    core.adopt_buffers(&mut self.pool);
                    core.begin();
                }
                // The RTO check the single-pair host runs on its TCP timer;
                // a no-op when no deadline actually expired (lazy entries).
                core.tcp.on_tick(now);
                self.mark_dirty(idx);
            }
        }
        self.pump_dirty(ctx);
    }
}

/// Materializes one pair's client and server cores on demand.
///
/// This is the eager setup loop's body, factored so cohort streaming can
/// defer it to the pair's start time. Each pair's state is a pure function
/// of `(seed, pair)` — the per-pair RNG is re-seeded from scratch and both
/// construction paths consume forks in the same order — so a pair built
/// lazily is bit-identical to one built up front, which is what makes the
/// outcome rows independent of cohort size.
struct PairBuilder {
    seed: u64,
    population: u32,
    /// Client start stagger window, µs.
    spread_us: u64,
    scen: ScenarioConfig,
    /// Defense-derived server-side configs, computed once per shard.
    server_config: SiteServerConfig,
    server_h2: H2Config,
    authority: Rc<str>,
    victim_site: Option<isidewith::Isidewith>,
    victim_shared: Option<Rc<Website>>,
    bystander_site: isidewith::Isidewith,
    bystander_shared: Rc<Website>,
    defense: DefenseSpec,
    dos: Option<FleetDosConfig>,
    shard_pool: Option<Rc<RefCell<WorkerPool>>>,
    truth: Rc<RefCell<GroundTruth>>,
    sink: Option<ViolationSink>,
    conformance: FleetConformance,
    client_arena_id: NodeId,
    server_arena_id: NodeId,
}

impl PairBuilder {
    /// The pair's staggered start time, derivable without building its
    /// cores: both construction paths consume exactly two RNG forks
    /// (browser-or-burned, then server) before the start draw.
    fn start_at(&self, pair: u32) -> SimTime {
        let mut pair_rng = SimRng::seed_from(mix(self.seed, 0xFA11 ^ pair as u64));
        let _ = pair_rng.fork();
        let _ = pair_rng.fork();
        SimTime::ZERO
            + SimDuration::from_micros(if self.spread_us == 0 {
                0
            } else {
                pair_rng.gen_range_u64(0..self.spread_us)
            })
    }

    /// Builds the pair's two cores (gateway chains are installed
    /// separately — they are per-run wiring, not per-pair state).
    fn build(&self, pair: u32) -> (HostCore, HostCore, SimTime) {
        let mut pair_rng = SimRng::seed_from(mix(self.seed, 0xFA11 ^ pair as u64));
        let is_victim = pair == VICTIM_PAIR;
        let (iside, server_site) = if is_victim {
            (
                self.victim_site
                    .as_ref()
                    .expect("victim site built for its shard"),
                self.victim_shared
                    .as_ref()
                    .expect("victim shared site built for its shard"),
            )
        } else {
            (&self.bystander_site, &self.bystander_shared)
        };
        let dos = self.dos.as_ref();
        let hostile = is_hostile(pair, self.population, dos);
        let session_key = 0x5EC0_0D5E ^ mix(self.seed, pair as u64);
        let mut client_core = if hostile {
            let attack = dos.expect("hostile implies dos config").attack;
            // Burn the browser fork so benign pairs keep their exact RNG
            // streams whether or not their neighbors turned hostile.
            let _ = pair_rng.fork();
            HostCore::new_attacker(
                self.server_arena_id,
                DosClient::new(DosConfig::for_attack(attack)),
                self.scen.tcp.clone(),
                session_key,
                self.scen.socket_buffer,
            )
        } else {
            let browser = Browser::new(
                &iside.site,
                iside.plan.clone(),
                self.scen.browser.clone(),
                pair_rng.fork(),
            );
            HostCore::new_client(
                self.server_arena_id,
                browser,
                self.scen.tcp.clone(),
                self.scen.client_h2.clone(),
                session_key,
                self.authority.clone(),
                None,
                self.scen.socket_buffer,
            )
        };
        // Fleet completion is tracked per slot; no single client may halt
        // the whole shard.
        client_core.halt_when_done = false;

        let mut server_app = SiteServer::new(
            server_site.clone(),
            self.server_config.clone(),
            pair_rng.fork(),
        );
        if let Some(pool) = &self.shard_pool {
            server_app.set_pool(Rc::clone(pool));
        }
        let mut server_tcp = self.scen.tcp.clone();
        server_tcp.iss = Seq(700_000);
        let mut server_core = HostCore::new_server(
            self.client_arena_id,
            server_app,
            server_tcp,
            self.server_h2.clone(),
            session_key,
            is_victim.then(|| self.truth.clone()),
            self.scen.socket_buffer,
        );
        // The hardening stack installs fleet-wide (the site deploys it on
        // every server); benign pairs double as the false-positive corpus.
        if let Some(dos) = dos {
            if let Some(guard_cfg) = dos.guard {
                server_core.set_guard(ServerGuard::new(guard_cfg));
            }
            if let Some(det_cfg) = dos.detector {
                server_core.set_detector(DosDetector::new(det_cfg));
            }
        }
        // Shaping runs on the victim server only, from a dedicated RNG
        // stream so the defense never perturbs the pair's app randomness.
        if is_victim {
            let shaper_rng = SimRng::seed_from(mix(self.seed, 0xDEF5 ^ pair as u64));
            match self.defense {
                DefenseSpec::ConstantRate { interval_us } => server_core.set_shaper(
                    TlsShaper::constant_rate(SimDuration::from_micros(interval_us as u64)),
                    shaper_rng,
                ),
                DefenseSpec::AdaptivePadding {
                    min_gap_us,
                    spread_us,
                } => server_core.set_shaper(
                    TlsShaper::adaptive(
                        SimDuration::from_micros(min_gap_us as u64),
                        SimDuration::from_micros(spread_us as u64),
                    ),
                    shaper_rng,
                ),
                _ => {}
            }
        }
        if let Some(sink) = &self.sink {
            if self.conformance.checks(pair) {
                client_core.set_oracle(HostOracle::new("client", true, sink.clone()));
                server_core.set_oracle(HostOracle::new("server", false, sink.clone()));
            }
        }

        let start_at = SimTime::ZERO
            + SimDuration::from_micros(if self.spread_us == 0 {
                0
            } else {
                pair_rng.gen_range_u64(0..self.spread_us)
            });
        (client_core, server_core, start_at)
    }
}

/// Thin node shell so the driver keeps an `Rc` handle for post-run
/// extraction while the simulator owns the node slot.
struct ArenaNode(Rc<RefCell<HostArena>>);

impl Node<FleetSegment> for ArenaNode {
    fn on_start(&mut self, ctx: &mut Context<'_, FleetSegment>) {
        self.0.borrow_mut().on_start(ctx);
    }

    fn on_packet(&mut self, packet: Packet<FleetSegment>, ctx: &mut Context<'_, FleetSegment>) {
        self.0.borrow_mut().on_packet(packet, ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, FleetSegment>) {
        self.0.borrow_mut().on_timer(token, ctx);
    }
}

// ---------------------------------------------------------------------------
// Gateway
// ---------------------------------------------------------------------------

struct PairChain {
    chain: Vec<Box<dyn Middlebox<TcpSegment>>>,
    shaping: h2priv_netsim::ShapingState,
    busy: [SimTime; 2],
}

/// The shared gateway: bridges the two arenas, forwards every pair's
/// traffic, and runs a per-pair middlebox chain (adversary, taps) for the
/// instrumented pairs with [`GatewayNode`]-equivalent hold/shape/drop
/// semantics.
///
/// Chain lookup is a dense pair-indexed `Vec` — the uninstrumented common
/// case (every bystander packet) is a single load hitting [`NO_SLOT`],
/// not a hash probe.
///
/// [`GatewayNode`]: h2priv_netsim::GatewayNode
pub struct FleetGateway {
    left: NodeId,
    /// Dense pair id → index into `chains` ([`NO_SLOT`] = uninstrumented).
    chain_of_pair: Vec<u32>,
    chains: Vec<PairChain>,
    stats: GatewayStats,
}

impl std::fmt::Debug for FleetGateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetGateway")
            .field("chains", &self.chains.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl FleetGateway {
    fn new(left: NodeId, population: u32) -> Self {
        FleetGateway {
            left,
            chain_of_pair: vec![NO_SLOT; population as usize],
            chains: Vec::new(),
            stats: GatewayStats::default(),
        }
    }

    fn add_chain(&mut self, pair: u32, chain: Vec<Box<dyn Middlebox<TcpSegment>>>) {
        self.chain_of_pair[pair as usize] = self.chains.len() as u32;
        self.chains.push(PairChain {
            chain,
            shaping: h2priv_netsim::ShapingState::default(),
            busy: [SimTime::ZERO; 2],
        });
    }
}

impl Node<FleetSegment> for FleetGateway {
    fn on_packet(&mut self, packet: Packet<FleetSegment>, ctx: &mut Context<'_, FleetSegment>) {
        let dir = if packet.src == self.left {
            Dir::LeftToRight
        } else {
            Dir::RightToLeft
        };
        let mut hold = SimDuration::ZERO;
        let mut shaping = SimDuration::ZERO;
        let chain_idx = match self.chain_of_pair.get(packet.payload.pair as usize) {
            Some(&i) if i != NO_SLOT => Some(i as usize),
            _ => None,
        };
        if let Some(pc) = chain_idx.map(|i| &mut self.chains[i]) {
            // Middleboxes are written against Packet<TcpSegment>; give them
            // a view of this packet (the segment's payload is shared bytes,
            // so the clone is a refcount bump, not a copy).
            let view = Packet {
                src: packet.src,
                dst: packet.dst,
                wire_bytes: packet.wire_bytes,
                id: packet.id,
                payload: packet.payload.seg.clone(),
            };
            let now = ctx.now();
            let mut dropped = false;
            {
                let mut mb_ctx = MbContext {
                    now,
                    dir,
                    rng: ctx.rng(),
                    shaping: &mut pc.shaping,
                };
                for mb in &mut pc.chain {
                    match mb.process(&view, &mut mb_ctx) {
                        Verdict::Forward => {}
                        Verdict::Hold(d) => hold += d,
                        Verdict::Drop => {
                            dropped = true;
                            break;
                        }
                    }
                }
            }
            if dropped {
                self.stats.dropped[dir.index()] += 1;
                return;
            }
            if !hold.is_zero() {
                self.stats.held[dir.index()] += 1;
            }
            // Same rule as GatewayNode: held packets are already paced by
            // their hold and bypass the per-pair egress serializer.
            if hold.is_zero() {
                if let Some(rate) = pc.shaping.rate(dir) {
                    let cfg = LinkConfig::default().bandwidth(rate);
                    let start = now.max(pc.busy[dir.index()]);
                    let departure = start + cfg.serialization_time(packet.wire_bytes);
                    pc.busy[dir.index()] = departure;
                    shaping = departure - now;
                }
            }
        }
        self.stats.forwarded[dir.index()] += 1;
        ctx.send_after(hold + shaping, packet);
    }
}

// ---------------------------------------------------------------------------
// Shard driver
// ---------------------------------------------------------------------------

/// The victim pair's attack-relevant capture, present in exactly one
/// shard's result.
#[derive(Debug, Clone)]
pub struct VictimCapture {
    /// The preference order the site was built for (what the adversary
    /// tries to recover).
    pub golden_order: Vec<usize>,
    /// The gateway tap's capture of the victim's traffic.
    pub trace: WireTrace,
    /// Seal-time ground truth from the victim's server.
    pub truth: GroundTruth,
    /// Per-request browser outcomes.
    pub outcomes: Vec<RequestOutcome>,
    /// The victim's connection died.
    pub broken: bool,
}

/// One shard's merged outcome.
#[derive(Debug, Clone)]
pub struct ShardResult {
    /// Which shard this is.
    pub shard: u32,
    /// Pairs simulated in this shard.
    pub pairs: u32,
    /// Why the shard's run stopped.
    pub stop: StopReason,
    /// Events the shard's engine processed.
    pub events: u64,
    /// Simulated end time of the shard.
    pub end_time: SimTime,
    /// The shard engine's scheduler counters.
    pub sched: SchedStats,
    /// Pairs whose page load completed (browser done, connection alive).
    pub completed: u32,
    /// Pairs whose connection died on either side.
    pub broken: u32,
    /// Total page-object requests issued across the shard's clients.
    pub requests: u64,
    /// Requests that completed.
    pub requests_complete: u64,
    /// Victim capture, when the victim pair lives in this shard.
    pub victim: Option<VictimCapture>,
    /// Stored conformance violations (empty when checking is off).
    pub violations: Vec<Violation>,
    /// Total violations reported, including past the storage cap.
    pub violations_total: u64,
    /// Hostile pairs simulated in this shard.
    pub attackers: u32,
    /// Hostile pairs the server shed (guard `RST_STREAM`/GOAWAY observed
    /// by the attacker).
    pub attackers_shed: u32,
    /// Hostile pairs whose server detector raised at least one alert.
    pub detected: u32,
    /// Summed first-alert latency over detected hostile pairs, µs.
    pub detection_latency_us: u64,
    /// Detector alerts on *benign* pairs — the fleet false-positive count.
    pub benign_alerts: u64,
    /// High-water mark of co-resident pairs (max over the two arenas).
    /// Eager mode: the shard's whole pair count. Cohort streaming: the
    /// in-flight set the memory bound follows.
    pub peak_resident: u32,
    /// Final worker-pool counters, when the shard ran a pool.
    pub pool: Option<PoolStats>,
}

/// Seed-ordered merge of all shards.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Pairs simulated.
    pub population: u32,
    /// Shards merged.
    pub shards: u32,
    /// Total events across shards.
    pub events: u64,
    /// Per-shard event counts, shard order (occupancy reporting).
    pub shard_events: Vec<u64>,
    /// Scheduler counters summed as concurrently-resident shards
    /// ([`SchedStats::merge_concurrent`]: peaks add, they don't max).
    pub sched: SchedStats,
    /// Summed simulated end times (saturating — the overflow guard for
    /// very large fleets).
    pub sim_time_total: SimTime,
    /// Latest shard end time.
    pub end_time_max: SimTime,
    /// Pairs whose page load completed.
    pub completed: u32,
    /// Pairs whose connection died.
    pub broken: u32,
    /// Requests issued across the population.
    pub requests: u64,
    /// Requests completed.
    pub requests_complete: u64,
    /// The victim capture (exactly one shard produces it).
    pub victim: Option<VictimCapture>,
    /// Stored violations across shards.
    pub violations: Vec<Violation>,
    /// Total violations across shards.
    pub violations_total: u64,
    /// Hostile pairs across the population.
    pub attackers: u32,
    /// Hostile pairs shed by their server.
    pub attackers_shed: u32,
    /// Hostile pairs with at least one detector alert.
    pub detected: u32,
    /// Summed first-alert latency over detected hostile pairs, µs.
    pub detection_latency_us: u64,
    /// Detector alerts on benign pairs (fleet false positives).
    pub benign_alerts: u64,
    /// Peak co-resident pairs summed across shards — an upper bound on
    /// simultaneous pair-state when every shard runs concurrently.
    pub peak_resident: u32,
    /// Pool counters summed across shards, when pools ran.
    pub pool: Option<PoolStats>,
}

/// Runs one shard of the fleet. `adversary` (if any) is installed on the
/// victim pair's gateway chain; pass it only to [`victim_shard`]'s call.
///
/// Deterministic in `(config, shard)` — a shard neither knows nor cares
/// which thread runs it.
pub fn run_fleet_shard(
    config: &FleetConfig,
    shard: u32,
    mut adversary: Option<Box<dyn Middlebox<TcpSegment>>>,
) -> ShardResult {
    let shards = config.shards.max(1);
    let pairs: Vec<u32> = (0..config.population)
        .filter(|&p| shard_of_pair(p, shards) == shard)
        .collect();
    let scen = ScenarioConfig::default();

    let mut sim: Simulator<FleetSegment> = Simulator::new(mix(config.seed, 0xE6E1 ^ shard as u64));
    let client_arena_id = sim.reserve_node_id();
    let gateway_id = sim.reserve_node_id();
    let server_arena_id = sim.reserve_node_id();

    let victim_here = pairs.contains(&VICTIM_PAIR);
    let victim_golden = victim_golden_order(config.seed);
    let victim_site = victim_here.then(|| isidewith::build(&victim_golden));
    let bystander_site = isidewith::build(&bystander_golden_order(config.seed));
    // One shared server-side site per variant for the whole shard, bodies
    // generated exactly once: every `SiteServer` holds an `Rc` into it, so
    // object tables and body buffers don't multiply with the population.
    let shared_site = |iside: &isidewith::Isidewith| {
        let mut site = iside.site.clone();
        site.materialize_bodies();
        Rc::new(site)
    };
    let victim_shared = victim_site.as_ref().map(&shared_site);
    let bystander_shared = shared_site(&bystander_site);
    let authority: Rc<str> = Rc::from("www.isidewith.com");

    // Defense-derived server-side configs, computed once per shard. Both
    // site variants are permutations of the same survey, so one pad set
    // covers every server in the population.
    let mut server_config = scen.server.clone();
    let mut server_h2 = scen.server_h2.clone();
    match config.defense {
        DefenseSpec::ConstrainedPadding { overhead_per_mille } => {
            let sizes: Vec<usize> = bystander_site
                .site
                .objects()
                .iter()
                .map(|o| o.size)
                .collect();
            server_config.pad_sizes = Some(
                constrained_pad_set(&sizes, overhead_per_mille)
                    .sizes()
                    .to_vec(),
            );
        }
        DefenseSpec::FrameQuantize { quantum } => {
            server_h2.data_pad_quantum = quantum as usize;
            server_h2.headers_pad_quantum = quantum as usize;
        }
        _ => {}
    }

    let trace = Rc::new(RefCell::new(WireTrace::new()));
    let truth = Rc::new(RefCell::new(GroundTruth::new()));
    let sink = (config.conformance != FleetConformance::Off).then(ViolationSink::new);

    // One worker pool per shard, shared across every server: pool pressure
    // from a hostile connection is visible to all of the shard's pairs.
    // `config.pool` shares it independently of any DoS injection; a
    // DoS-carried pool is the fallback so the hardening exhibits keep
    // their exact configuration.
    let dos = config.dos.as_ref();
    let shard_pool = config
        .pool
        .or_else(|| dos.and_then(|d| d.pool))
        .map(|p| Rc::new(RefCell::new(WorkerPool::new(p))));

    let builder = Rc::new(PairBuilder {
        seed: config.seed,
        population: config.population,
        spread_us: config.start_spread.as_micros(),
        scen,
        server_config,
        server_h2,
        authority,
        victim_site,
        victim_shared,
        bystander_site,
        bystander_shared,
        defense: config.defense,
        dos: config.dos.clone(),
        shard_pool: shard_pool.clone(),
        truth: truth.clone(),
        sink: sink.clone(),
        conformance: config.conformance,
        client_arena_id,
        server_arena_id,
    });

    // Gateway chains are per-run wiring over pair *ids*, independent of
    // when (or whether) the pair's cores get materialized.
    let mut gateway = FleetGateway::new(client_arena_id, config.population);
    for &pair in &pairs {
        let mut chain: Vec<Box<dyn Middlebox<TcpSegment>>> = Vec::new();
        if pair == VICTIM_PAIR {
            if let Some(adv) = adversary.take() {
                chain.push(adv);
            }
            chain.push(Box::new(WireTap::new(trace.clone())));
        }
        if let Some(sink) = &sink {
            if config.conformance.checks(pair) {
                chain.push(Box::new(ConformanceTap::new(sink.clone())));
            }
        }
        if !chain.is_empty() {
            gateway.add_chain(pair, chain);
        }
    }

    let clients = Rc::new(RefCell::new(HostArena::new(
        true,
        server_arena_id,
        config.population,
    )));
    let servers = Rc::new(RefCell::new(HostArena::new(
        false,
        client_arena_id,
        config.population,
    )));
    {
        let mut c = clients.borrow_mut();
        let mut s = servers.borrow_mut();
        c.total_pairs = pairs.len() as u32;
        s.total_pairs = pairs.len() as u32;
        c.progress = config.progress.clone();
        c.fold.victim_golden = victim_golden.clone();
        c.fold.trace = Some(trace.clone());
        c.fold.truth = Some(truth.clone());
        match config.cohort {
            Some(cohort) if !pairs.is_empty() => {
                c.streaming = true;
                s.streaming = true;
                // `cohort` pre-sizes the slabs for the expected co-resident
                // set; it has no effect on scheduling, so any value yields
                // the same outcome rows.
                let cap = cohort.min(pairs.len() as u32).max(1) as usize;
                for a in [&mut *c, &mut *s] {
                    a.cores.reserve(cap);
                    a.pairs.reserve(cap);
                    a.start_at.reserve(cap);
                    a.flags.reserve(cap);
                    a.due_at.reserve(cap);
                }
                c.builder = Some(builder.clone());
                c.servers = Some(servers.clone());
                let mut admit: Vec<(SimTime, u32)> =
                    pairs.iter().map(|&p| (builder.start_at(p), p)).collect();
                // Descending, so the next admission pops off the end.
                admit.sort_unstable_by(|a, b| b.cmp(a));
                c.admit = admit;
            }
            _ => {
                // Eager (pre-streaming) mode: the whole shard materializes
                // up front, byte-identical to the previous fleet.
                for &pair in &pairs {
                    let (client_core, server_core, start_at) = builder.build(pair);
                    c.add(pair, client_core, start_at);
                    s.add(pair, server_core, SimTime::ZERO);
                }
            }
        }
    }

    // Shared links: capacity scales with the pairs sharing them, so the
    // per-pair share matches the single-pair calibration on average while
    // FIFO serialization still couples the flows (the contention the
    // population exists to model).
    let n = pairs.len().max(1) as u64;
    let access = LinkConfig::with_delay(crate::calib::CLIENT_GW_DELAY)
        .bandwidth(crate::calib::LINK_BANDWIDTH * n);
    let wan = LinkConfig::with_delay(crate::calib::GW_SERVER_DELAY)
        .bandwidth(crate::calib::WAN_BANDWIDTH * n)
        .queue_limit(crate::calib::WAN_QUEUE_BYTES * n)
        .loss(crate::calib::WAN_LOSS)
        .jitter(crate::calib::natural_jitter());

    sim.install_node(client_arena_id, Box::new(ArenaNode(clients.clone())));
    sim.install_node(gateway_id, Box::new(gateway));
    sim.install_node(server_arena_id, Box::new(ArenaNode(servers.clone())));
    sim.add_link(client_arena_id, gateway_id, access);
    sim.add_link(gateway_id, server_arena_id, wan);
    // Scale the livelock safety valve with the population: one page load
    // is ~60k events, so this only trips on a genuinely stuck protocol.
    sim.set_event_budget((pairs.len() as u64) * 2_000_000 + 10_000_000);

    let deadline_at = SimTime::ZERO + config.deadline;
    let summary = match &config.progress {
        None => sim.run_until(deadline_at),
        Some(progress) => {
            // Run in simulated-time slices so the heartbeat sees events
            // move mid-shard. Slicing is behavior-invariant: `events` is
            // cumulative across calls and the final summary equals what
            // one `run_until(deadline)` call would have returned.
            let step = SimDuration::from_millis(500);
            let mut reported = 0u64;
            let mut next = SimTime::ZERO + step;
            loop {
                let target = next.min(deadline_at);
                let s = sim.run_until(target);
                progress
                    .events
                    .fetch_add(s.events - reported, Ordering::Relaxed);
                reported = s.events;
                if s.stop != StopReason::DeadlineReached || target == deadline_at {
                    break s;
                }
                next = target + step;
            }
        }
    };
    let sched = sim.sched_stats();

    let mut clients_ref = clients.borrow_mut();
    let servers_ref = servers.borrow();
    let arena = &mut *clients_ref;
    // Fold whatever is still resident at the stop: in eager mode that is
    // every pair; in streaming mode only stragglers a deadline cut off
    // (retired pairs already contributed their rows).
    for idx in 0..arena.cores.len() {
        let Some(core) = arena.cores[idx].as_ref() else {
            continue;
        };
        let pair = arena.pairs[idx];
        let (server_dead, server_alerts) = servers_ref.server_info(pair);
        let finished = arena.flags[idx] & FLAG_FINISHED != 0;
        arena
            .fold
            .fold_pair(pair, core, finished, server_dead, &server_alerts);
    }
    let peak_resident = arena.peak_resident.max(servers_ref.peak_resident);
    let fold = std::mem::take(&mut arena.fold);
    let (violations, violations_total) = match &sink {
        Some(sink) => (sink.take(), sink.total()),
        None => (Vec::new(), 0),
    };
    if let Some(progress) = &config.progress {
        progress.shards_done.fetch_add(1, Ordering::Relaxed);
    }
    ShardResult {
        shard,
        pairs: pairs.len() as u32,
        stop: summary.stop,
        events: summary.events,
        end_time: summary.end_time,
        sched,
        completed: fold.completed,
        broken: fold.broken,
        requests: fold.requests,
        requests_complete: fold.requests_complete,
        victim: fold.victim,
        violations,
        violations_total,
        attackers: fold.attackers,
        attackers_shed: fold.attackers_shed,
        detected: fold.detected,
        detection_latency_us: fold.detection_latency_us,
        benign_alerts: fold.benign_alerts,
        peak_resident,
        pool: shard_pool.map(|p| p.borrow().stats()),
    }
}

/// Merges shard results in shard order (seed order), independent of the
/// order the shards actually finished in — the other half of the
/// any-thread-count determinism guarantee.
pub fn merge_shards(population: u32, shards: u32, mut results: Vec<ShardResult>) -> FleetResult {
    results.sort_by_key(|s| s.shard);
    let mut out = FleetResult {
        population,
        shards,
        events: 0,
        shard_events: Vec::with_capacity(results.len()),
        sched: SchedStats::default(),
        sim_time_total: SimTime::ZERO,
        end_time_max: SimTime::ZERO,
        completed: 0,
        broken: 0,
        requests: 0,
        requests_complete: 0,
        victim: None,
        violations: Vec::new(),
        violations_total: 0,
        attackers: 0,
        attackers_shed: 0,
        detected: 0,
        detection_latency_us: 0,
        benign_alerts: 0,
        peak_resident: 0,
        pool: None,
    };
    for s in results {
        out.events += s.events;
        out.shard_events.push(s.events);
        out.sched.merge_concurrent(&s.sched);
        out.sim_time_total = out.sim_time_total.saturating_merge(s.end_time);
        out.end_time_max = out.end_time_max.max(s.end_time);
        out.completed += s.completed;
        out.broken += s.broken;
        out.requests += s.requests;
        out.requests_complete += s.requests_complete;
        if s.victim.is_some() {
            out.victim = s.victim;
        }
        out.violations.extend(s.violations);
        out.violations_total += s.violations_total;
        out.attackers += s.attackers;
        out.attackers_shed += s.attackers_shed;
        out.detected += s.detected;
        out.detection_latency_us += s.detection_latency_us;
        out.benign_alerts += s.benign_alerts;
        out.peak_resident += s.peak_resident;
        if let Some(p) = s.pool {
            let merged = out.pool.get_or_insert_with(PoolStats::default);
            merged.admitted += p.admitted;
            merged.parked += p.parked;
            merged.settings_processed += p.settings_processed;
            merged.parser_holds += p.parser_holds;
        }
    }
    out
}

/// Convenience: runs every shard sequentially on the calling thread.
/// `make_adversary` is called once with the victim shard's id.
pub fn run_fleet(
    config: &FleetConfig,
    make_adversary: impl FnOnce() -> Option<Box<dyn Middlebox<TcpSegment>>>,
) -> FleetResult {
    let shards = config.shards.max(1);
    let vs = victim_shard(config);
    let mut make_adversary = Some(make_adversary);
    let mut results = Vec::with_capacity(shards as usize);
    for shard in 0..shards {
        let adversary = if shard == vs {
            make_adversary.take().and_then(|f| f())
        } else {
            None
        };
        results.push(run_fleet_shard(config, shard, adversary));
    }
    merge_shards(config.population, shards, results)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> FleetConfig {
        FleetConfig {
            seed: 11,
            population: 8,
            shards: 2,
            conformance: FleetConformance::Full,
            start_spread: SimDuration::from_millis(200),
            ..FleetConfig::default()
        }
    }

    #[test]
    fn small_fleet_completes_clean() {
        let result = run_fleet(&small_config(), || None);
        assert_eq!(result.completed + result.broken, 8);
        assert_eq!(result.broken, 0, "no connection should die unperturbed");
        assert_eq!(result.violations_total, 0, "{:?}", result.violations);
        let victim = result.victim.expect("victim capture present");
        assert!(!victim.trace.packets.is_empty());
        assert!(!victim.outcomes.is_empty());
        assert!(victim.outcomes.iter().all(|o| o.completed_at.is_some()));
        assert!(!victim.broken);
        assert!(result.requests_complete == result.requests && result.requests >= 8 * 9);
    }

    #[test]
    fn shard_runs_are_deterministic() {
        let config = small_config();
        let a = run_fleet_shard(&config, 0, None);
        let b = run_fleet_shard(&config, 0, None);
        assert_eq!(a.events, b.events);
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.sched, b.sched);
        assert_eq!(
            (a.completed, a.broken, a.requests, a.requests_complete),
            (b.completed, b.broken, b.requests, b.requests_complete)
        );
    }

    #[test]
    fn merge_order_is_shard_order_not_finish_order() {
        let config = small_config();
        let fwd = merge_shards(
            config.population,
            config.shards,
            (0..config.shards)
                .map(|s| run_fleet_shard(&config, s, None))
                .collect(),
        );
        let rev = merge_shards(
            config.population,
            config.shards,
            (0..config.shards)
                .rev()
                .map(|s| run_fleet_shard(&config, s, None))
                .collect(),
        );
        assert_eq!(fwd.events, rev.events);
        assert_eq!(fwd.shard_events, rev.shard_events);
        assert_eq!(fwd.sched, rev.sched);
        assert_eq!(fwd.sim_time_total, rev.sim_time_total);
        assert_eq!(fwd.completed, rev.completed);
    }

    #[test]
    fn hostile_pairs_starve_the_pool_until_the_guard_sheds_them() {
        use h2priv_dos::{DetectorConfig, DosAttack, GuardConfig};
        use h2priv_web::PoolConfig;
        let dos = |guarded: bool| FleetDosConfig {
            attack: DosAttack::ZeroWindowHoard,
            attackers: 3,
            guard: guarded.then(GuardConfig::default),
            detector: Some(DetectorConfig::default()),
            pool: Some(PoolConfig {
                capacity: 4,
                ..PoolConfig::default()
            }),
        };
        let config = |guarded: bool| FleetConfig {
            seed: 11,
            population: 10,
            shards: 2,
            conformance: FleetConformance::Full,
            start_spread: SimDuration::from_millis(200),
            deadline: SimDuration::from_secs(40),
            dos: Some(dos(guarded)),
            ..FleetConfig::default()
        };

        let undefended = run_fleet(&config(false), || None);
        assert_eq!(undefended.attackers, 3);
        assert_eq!(undefended.attackers_shed, 0, "nothing sheds undefended");
        let pool = undefended.pool.expect("pool stats present");
        assert!(pool.parked > 0, "hoarded workers must park bystanders");
        assert!(
            undefended.completed < 7,
            "starvation should break bystander page loads ({} completed)",
            undefended.completed
        );
        assert_eq!(undefended.violations_total, 0, "attacks are RFC-legal");

        let guarded = run_fleet(&config(true), || None);
        assert_eq!(guarded.attackers_shed, 3, "guard sheds every attacker");
        assert_eq!(guarded.detected, 3, "detector flags every attacker");
        assert_eq!(guarded.benign_alerts, 0, "no false positives");
        assert!(
            guarded.completed >= 6,
            "bystanders should finish once attackers are shed ({} completed)",
            guarded.completed
        );
        assert_eq!(guarded.violations_total, 0, "{:?}", guarded.violations);
    }

    #[test]
    fn cohort_sizes_do_not_change_outcomes() {
        // The cohort value pre-sizes slabs; scheduling is untouched. Every
        // cohort size must therefore produce the *same shard execution* —
        // not just the same outcome rows but the same event count, end
        // time and scheduler counters.
        let eager = run_fleet_shard(&small_config(), 0, None);
        let mut prev: Option<ShardResult> = None;
        for cohort in [1u32, 3, 8] {
            let config = FleetConfig {
                cohort: Some(cohort),
                ..small_config()
            };
            let r = run_fleet_shard(&config, 0, None);
            assert_eq!(r.completed, eager.completed, "cohort {cohort}");
            assert_eq!(r.broken, 0, "cohort {cohort}");
            assert_eq!(
                (r.requests, r.requests_complete),
                (eager.requests, eager.requests_complete),
                "cohort {cohort}"
            );
            if let Some(p) = &prev {
                assert_eq!(r.events, p.events, "cohort {cohort}");
                assert_eq!(r.end_time, p.end_time, "cohort {cohort}");
                assert_eq!(r.sched, p.sched, "cohort {cohort}");
                assert_eq!(r.peak_resident, p.peak_resident, "cohort {cohort}");
            }
            prev = Some(r);
        }
        // The victim's capture survives fold-at-retirement: the full fleet
        // run under streaming still produces an attack-scoreable trace.
        let streamed = run_fleet(
            &FleetConfig {
                cohort: Some(3),
                ..small_config()
            },
            || None,
        );
        let victim = streamed.victim.expect("victim capture present");
        assert!(!victim.trace.packets.is_empty());
        assert!(victim.outcomes.iter().all(|o| o.completed_at.is_some()));
        assert!(!victim.broken);
        assert_eq!(streamed.violations_total, 0, "{:?}", streamed.violations);
    }

    #[test]
    fn streaming_bounds_resident_pairs() {
        // Starts spread far enough apart that loads don't overlap: the
        // streamed shard's high-water mark must sit well under the
        // population, while the eager shard keeps everything resident.
        let config = FleetConfig {
            seed: 7,
            population: 8,
            shards: 1,
            conformance: FleetConformance::Off,
            start_spread: SimDuration::from_secs(40),
            deadline: SimDuration::from_secs(80),
            cohort: Some(2),
            ..FleetConfig::default()
        };
        let streamed = run_fleet_shard(&config, 0, None);
        assert_eq!(streamed.completed, 8);
        assert!(
            streamed.peak_resident < 8,
            "peak_resident {} should be bounded by overlap, not population",
            streamed.peak_resident
        );
        let eager = run_fleet_shard(
            &FleetConfig {
                cohort: None,
                ..config
            },
            0,
            None,
        );
        assert_eq!(eager.completed, 8);
        assert_eq!(eager.peak_resident, 8);
    }

    #[test]
    fn progress_reporting_does_not_perturb_results() {
        let config = small_config();
        let base = run_fleet_shard(&config, 1, None);
        let progress = Arc::new(FleetProgress::default());
        let with = run_fleet_shard(
            &FleetConfig {
                progress: Some(progress.clone()),
                ..config
            },
            1,
            None,
        );
        assert_eq!(base.events, with.events);
        assert_eq!(base.end_time, with.end_time);
        assert_eq!(base.sched, with.sched);
        assert_eq!(base.completed, with.completed);
        assert_eq!(progress.events.load(Ordering::Relaxed), with.events);
        assert!(progress.pairs_done.load(Ordering::Relaxed) > 0);
        assert_eq!(progress.shards_done.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pairs_spread_over_shards() {
        let shards = 8;
        let mut counts = vec![0u32; shards as usize];
        for pair in 0..10_000 {
            counts[shard_of_pair(pair, shards) as usize] += 1;
        }
        for &c in &counts {
            assert!((1_000..1_600).contains(&c), "lopsided shard: {counts:?}");
        }
    }
}
