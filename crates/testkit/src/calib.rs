//! Calibration constants mapping the simulator onto the paper's testbed.
//!
//! Each constant cites the paper sentence (or the physical reasoning) that
//! pins it. They are *defaults*; every experiment can override them, and
//! the ablation benches sweep several on purpose.

use h2priv_netsim::{mbps, BitsPerSec, DurationDist, SimDuration};

/// Lab client ↔ gateway propagation delay. The volunteers' machines and
/// the gateway are on the same 1 Gbps LAN (§V "Adversary Setup").
pub const CLIENT_GW_DELAY: SimDuration = SimDuration::from_millis(1);

/// Gateway ↔ isidewith server propagation delay. The paper gives no RTT,
/// but its attack arithmetic pins the scale: a 5–16 KB emblem image must
/// be fully served (response HEADERS round trip + one congestion-window
/// burst) inside the 80 ms post-reset request spacing, or a service
/// backlog builds and re-multiplexes the tail. That requires an RTT around
/// 20 ms — a CDN-edge-served site, which isidewith.com was.
pub const GW_SERVER_DELAY: SimDuration = SimDuration::from_millis(9);

/// Access-link rate on the lab hop (§V: "our lab's gateway (with 1 Gbps
/// link)").
pub const LINK_BANDWIDTH: BitsPerSec = mbps(1_000);

/// Bottleneck rate of the WAN hop to the server — the per-connection
/// goodput the paper's measurements imply: with requests ~500 ms apart,
/// the preceding few-hundred-KB objects must still be streaming when the
/// HTML is served (its baseline degree is ≈ 98 %), so page assets take
/// hundreds of milliseconds each.
pub const WAN_BANDWIDTH: BitsPerSec = mbps(16);

/// Drop-tail queue at the WAN bottleneck. Overflow losses are what cap the
/// congestion window in steady state (Reno sawtooth around BDP + queue).
pub const WAN_QUEUE_BYTES: u64 = 64 * 1024;

/// Independent random loss on the WAN hop. Real paths lose the occasional
/// packet; this is what gives Table I its nonzero retransmission baseline.
pub const WAN_LOSS: f64 = 0.0005;

/// Natural network jitter on the WAN hop. Produces the paper's baseline
/// spread (Table I row 0: even unattacked, the HTML is un-multiplexed in
/// ~32 % of loads).
pub fn natural_jitter() -> DurationDist {
    DurationDist::Normal {
        mean: SimDuration::from_micros(1_500),
        std_dev: SimDuration::from_micros(800),
    }
}

/// Server worker latency: time from request arrival to the worker handing
/// bytes to the mux (application/cache service time).
pub fn worker_latency() -> DurationDist {
    DurationDist::Exponential {
        mean: SimDuration::from_millis(5),
    }
}

/// Multiplicative noise on browser think-time gaps (volunteers' natural
/// variation; micro-gaps between scripted image requests stay microscopic
/// because the noise is proportional).
pub const GAP_NOISE_FRAC: f64 = 0.12;

/// Browser stall timeout before it resets a silent stream and re-requests.
/// §IV-D: the adversary drops packets "for 6 seconds until the client
/// sends stream reset" — the reset fires a little before the drop window
/// ends.
pub const STALL_TIMEOUT: SimDuration = SimDuration::from_secs(5);

/// Per-stream flow-control window advertised by the modeled Firefox.
/// Firefox keeps per-stream credit far ahead of delivery (aggressive
/// WINDOW_UPDATE cadence); modeled as a large initial window so stream
/// flow control never throttles a transfer. This matters under attack:
/// stream WINDOW_UPDATE bytes queue behind adversary-held GETs in TCP
/// order, and a binding stream window would couple the held requests to
/// ongoing transfers.
pub const CLIENT_STREAM_WINDOW: u32 = 2 * 1024 * 1024;

/// Connection-level window bonus announced by the client at startup.
/// Firefox raises the 64 KiB RFC default to ~12 MiB immediately; with
/// this, HTTP/2 flow control never throttles a page load — crucial under
/// attack, where the client's own WINDOW_UPDATE bytes would otherwise
/// queue behind its adversary-held GETs in TCP order and starve the
/// server of credit.
pub const CLIENT_CONN_WINDOW_BONUS: u32 = 12 * 1024 * 1024;

/// Mux write granularity: bytes of one stream per DATA frame. Matches
/// real servers writing ~2–4 KiB buffers; small enough that 5–16 KB
/// emblem images span several frames and can visibly interleave.
pub const DATA_CHUNK_SIZE: usize = 2_048;

/// Modeled kernel socket send-buffer size (bytes). Real servers write
/// responses through a bounded socket buffer; the resulting backpressure
/// keeps several streams pending in the HTTP/2 mux at once, which is the
/// precondition for multiplexed transmission.
pub const SOCKET_BUFFER: usize = 40 * 1024;

/// Hard wall-clock cap for one page-load trial (simulated time).
pub const TRIAL_DEADLINE: SimDuration = SimDuration::from_secs(120);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtt_fits_the_attack_arithmetic() {
        // Service time ≈ 2–3 RTT for a 5–16 KB emblem must fit inside the
        // paper's 80 ms post-reset spacing.
        let rtt = (CLIENT_GW_DELAY + GW_SERVER_DELAY) * 2;
        assert!(rtt.as_millis() * 3 <= 80, "rtt = {rtt}");
    }

    #[test]
    fn stall_timeout_below_drop_window() {
        // §IV-D drops for 6 s; the reset must fire within that window.
        assert!(STALL_TIMEOUT < SimDuration::from_secs(6));
    }

    #[test]
    fn chunk_smaller_than_emblems() {
        const { assert!(DATA_CHUNK_SIZE * 2 < 5_200) }
    }
}
