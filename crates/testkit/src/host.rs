//! The simulated host: a full protocol stack on one netsim node.
//!
//! A [`Host`] owns a [`TcpConnection`], a [`TlsSession`], an
//! [`H2Connection`] and an application (the [`Browser`] on the client, the
//! [`SiteServer`] on the server), and pumps bytes between the layers on
//! every packet and timer event. The server host additionally annotates,
//! at TLS-seal time, which TCP byte ranges carry which response's frames —
//! the [`GroundTruth`] used to score the attack.
//!
//! The pump itself lives on [`HostCore`] and is split into two stages —
//! [`HostCore::pump_stages`] (inbound → app → outbound) and
//! [`HostCore::flush_transmit`] (drain TCP segments) — so the fleet
//! scenario's [`HostArena`](crate::fleet) can batch-pump thousands of
//! cores with one shared [`PumpScratch`] per shard while the single-pair
//! [`Host`] node keeps its own.

use std::cell::RefCell;
use std::rc::Rc;

use h2priv_analysis::GroundTruth;
use h2priv_bytes::SharedBytes;
use h2priv_conformance::{H2LedgerChecker, TcpEndpointChecker, ViolationSink};
use h2priv_defense::{dummy_record_plaintext, TlsShaper};
use h2priv_dos::{Alert, DosClient, DosDetector, GuardAction, GuardStats, ServerGuard};
use h2priv_http2::{
    ErrorCode, H2Config, H2Connection, H2Event, HeaderField, OutgoingMeta, StreamId, StreamState,
};
use h2priv_netsim::{Context, Node, NodeId, Packet, SimRng, SimTime, TimerId};
use h2priv_tcp::{AbortReason, TcpConfig, TcpConnection, TcpSegment, TcpStats};
use h2priv_tls::{Role, TlsSession};
use h2priv_web::{Browser, BrowserCmd, ObjectId, SiteServer};

const TOKEN_TCP: u64 = 0;
const TOKEN_APP: u64 = 1;

/// Reusable scratch buffers threaded through one pump pass.
///
/// One instance serves arbitrarily many [`HostCore`]s: the single-pair
/// [`Host`] owns one, and the fleet arena owns one *per shard*, shared
/// across every host in the shard. Draining N hosts therefore costs zero
/// steady-state allocations instead of N per-host buffers.
#[derive(Debug, Default)]
pub(crate) struct PumpScratch {
    /// Ciphertext drained from TCP reassembly (inbound).
    wire: Vec<u8>,
    /// Decrypted application plaintext handed to HTTP/2 (inbound).
    app: Vec<u8>,
    /// Coalesced-run buffer parked here between passes that queue nothing,
    /// so an idle pump does not leak the recycled capacity it claimed.
    run: Vec<u8>,
    /// Frame metadata plus run-relative sealed byte ranges (outbound); the
    /// ground-truth annotation replays these after the single bulk write.
    spans: Vec<(OutgoingMeta, usize, usize)>,
    /// Contiguous-frame staging for the conformance oracle's send tap:
    /// split DATA frames arrive as header + shared body parts, and only
    /// checked runs pay to flatten them here.
    oracle_frame: Vec<u8>,
}

/// A free-list of recycled byte buffers shared by every host of one
/// arena (one pool per shard side).
///
/// Cores shed their idle buffers here when their page load completes
/// ([`HostCore::shed_buffers`]) and cores about to start adopt them
/// ([`HostCore::adopt_buffers`]), so a staggered fleet's heap tracks the
/// *concurrently active* page loads instead of growing with every pair
/// that ever ran. Bounded: beyond [`BufPool::MAX_BUFS`] buffers are
/// dropped (actually freed) rather than hoarded.
#[derive(Debug, Default)]
pub(crate) struct BufPool {
    bufs: Vec<Vec<u8>>,
}

impl BufPool {
    /// Enough to warm a burst of simultaneously-starting page loads;
    /// beyond this, shedding really frees.
    const MAX_BUFS: usize = 64;

    pub(crate) fn put(&mut self, mut buf: Vec<u8>) {
        if buf.capacity() > 0 && self.bufs.len() < Self::MAX_BUFS {
            buf.clear();
            self.bufs.push(buf);
        }
    }

    pub(crate) fn get(&mut self) -> Option<Vec<u8>> {
        self.bufs.pop()
    }
}

/// Endpoint-side conformance checkers attached to one host: an HTTP/2
/// flow-control/HPACK ledger fed the exact bytes this endpoint sends and
/// receives, plus a TCP checker watching every transmitted segment against
/// the connection's own state.
pub struct HostOracle {
    h2: H2LedgerChecker,
    tcp: TcpEndpointChecker,
}

impl HostOracle {
    /// Creates the checkers for one endpoint, reporting into `sink`.
    pub fn new(label: &'static str, is_client: bool, sink: ViolationSink) -> Self {
        HostOracle {
            h2: H2LedgerChecker::new(label, is_client, sink.clone()),
            tcp: TcpEndpointChecker::new(label, sink),
        }
    }
}

impl std::fmt::Debug for HostOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostOracle").finish_non_exhaustive()
    }
}

/// Endpoint shaping state attached to a host: the dummy-record schedule,
/// its private RNG stream (forked from the scenario seed, so shaping never
/// perturbs app-level randomness), and the pre-encoded dummy plaintext.
#[derive(Debug)]
struct HostShaper {
    shaper: TlsShaper,
    rng: SimRng,
    dummy: Vec<u8>,
}

/// The application running on a host.
#[derive(Debug)]
pub enum App {
    /// A browser (client role).
    Client(Browser),
    /// A website server.
    Server(SiteServer),
    /// A slow-HTTP/2 DoS client (client role, hand-rolled frames).
    Attacker(DosClient),
}

/// Shared, inspectable state of one host.
#[derive(Debug)]
pub struct HostCore {
    /// Protocol stack.
    pub tcp: TcpConnection,
    tls: TlsSession,
    /// HTTP/2 connection (public for post-run stats inspection).
    pub h2: H2Connection,
    /// The application.
    pub app: App,
    /// Ground truth collected at seal time (server writes; client ignores).
    /// `None` for fleet bystander pairs, which are load, not measurement
    /// targets — recording per-byte truth for 100k pairs would dwarf the
    /// simulation itself.
    truth: Option<Rc<RefCell<GroundTruth>>>,
    /// stream → object being served (server side). A small ordered list,
    /// not a map — a page load serves a handful of streams — and filled
    /// only when `truth` is present (it exists solely to label sealed
    /// byte ranges), so bystander pairs keep it empty.
    stream_objects: Vec<(StreamId, ObjectId)>,
    /// True once the TLS handshake completed.
    tls_established: bool,
    /// The peer's node id.
    peer: NodeId,
    /// Set when the connection failed at any layer.
    pub dead: bool,
    /// Halt the whole simulation when this host is finished (client).
    pub(crate) halt_when_done: bool,
    /// The `:authority` every request carries; shared (`Rc<str>`) so a
    /// fleet shard's clients all point at one allocation.
    authority: Rc<str>,
    /// Modeled kernel socket send-buffer size: the HTTP/2 mux is pulled
    /// only while TCP's unacknowledged backlog is below this. This
    /// backpressure is what keeps several response streams pending in the
    /// mux simultaneously — i.e. what makes multiplexing happen at all.
    socket_buffer: usize,
    /// Conformance checkers, when the scenario enables the oracle. Boxed:
    /// the checkers' ledgers are by far the fattest fields a host can
    /// carry, and fleet bystanders don't carry them — `None` costs a
    /// pointer, not the full struct.
    oracle: Option<Box<HostOracle>>,
    /// Dummy-record shaping schedule (shaping defenses, server side).
    /// Boxed for the same reason as the oracle: almost every host runs
    /// without one.
    shaper: Option<Box<HostShaper>>,
    /// Slow-DoS resource guard (server side), scanned after every pump.
    /// Boxed like the oracle: almost every host runs undefended.
    guard: Option<Box<ServerGuard>>,
    /// Online DoS detector fed the decrypted client→server byte stream
    /// at the same tap point as the conformance ledger.
    detector: Option<Box<DosDetector>>,
    /// Non-ACK SETTINGS frames already billed to the pool's control plane.
    settings_billed: u64,
    /// True while this server's pool holds a parser thread for an
    /// unfinished inbound header sequence.
    parser_held: bool,
}

impl HostCore {
    /// Builds a client core (browser + client-side stack).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new_client(
        peer: NodeId,
        browser: Browser,
        tcp: TcpConfig,
        h2: H2Config,
        session_key: u64,
        authority: Rc<str>,
        truth: Option<Rc<RefCell<GroundTruth>>>,
        socket_buffer: usize,
    ) -> HostCore {
        HostCore {
            tcp: TcpConnection::client(tcp),
            tls: TlsSession::new(Role::Client, session_key),
            h2: H2Connection::new_client(h2),
            app: App::Client(browser),
            truth,
            stream_objects: Vec::new(),
            tls_established: false,
            peer,
            dead: false,
            halt_when_done: true,
            authority,
            socket_buffer,
            oracle: None,
            shaper: None,
            guard: None,
            detector: None,
            settings_billed: 0,
            parser_held: false,
        }
    }

    /// Builds an attacker core (DoS client + client-side TCP/TLS stack).
    /// The attacker speaks raw frames, so the `h2` field is an unused
    /// placeholder; everything below TLS is the honest client stack.
    pub(crate) fn new_attacker(
        peer: NodeId,
        attacker: DosClient,
        tcp: TcpConfig,
        session_key: u64,
        socket_buffer: usize,
    ) -> HostCore {
        HostCore {
            tcp: TcpConnection::client(tcp),
            tls: TlsSession::new(Role::Client, session_key),
            h2: H2Connection::new_client(H2Config::default()),
            app: App::Attacker(attacker),
            truth: None,
            stream_objects: Vec::new(),
            tls_established: false,
            peer,
            dead: false,
            halt_when_done: false,
            authority: Rc::from(""),
            socket_buffer,
            oracle: None,
            shaper: None,
            guard: None,
            detector: None,
            settings_billed: 0,
            parser_held: false,
        }
    }

    /// Builds a server core (site server + server-side stack).
    pub(crate) fn new_server(
        peer: NodeId,
        server: SiteServer,
        tcp: TcpConfig,
        h2: H2Config,
        session_key: u64,
        truth: Option<Rc<RefCell<GroundTruth>>>,
        socket_buffer: usize,
    ) -> HostCore {
        HostCore {
            tcp: TcpConnection::server(tcp),
            tls: TlsSession::new(Role::Server, session_key),
            h2: H2Connection::new_server(h2),
            app: App::Server(server),
            truth,
            stream_objects: Vec::new(),
            tls_established: false,
            peer,
            dead: false,
            halt_when_done: false,
            authority: Rc::from(""),
            socket_buffer,
            oracle: None,
            shaper: None,
            guard: None,
            detector: None,
            settings_billed: 0,
            parser_held: false,
        }
    }

    /// Client/server TCP statistics.
    pub fn tcp_stats(&self) -> TcpStats {
        *self.tcp.stats()
    }

    /// Why TCP aborted, if it did.
    pub fn abort_reason(&self) -> Option<AbortReason> {
        self.tcp.abort_reason()
    }

    /// The browser, if this is a client host.
    ///
    /// # Panics
    ///
    /// Panics when called on a server host.
    pub fn browser(&self) -> &Browser {
        match &self.app {
            App::Client(b) => b,
            _ => panic!("not a client host"),
        }
    }

    /// The server application, if this is a server host.
    ///
    /// # Panics
    ///
    /// Panics when called on a client host.
    pub fn server(&self) -> &SiteServer {
        match &self.app {
            App::Server(s) => s,
            _ => panic!("not a server host"),
        }
    }

    /// The DoS client, if this is an attacker host.
    ///
    /// # Panics
    ///
    /// Panics when called on a non-attacker host.
    pub fn attacker(&self) -> &DosClient {
        match &self.app {
            App::Attacker(a) => a,
            _ => panic!("not an attacker host"),
        }
    }

    /// True when this host plays the TCP/TLS client role (honest browser
    /// or DoS attacker).
    fn is_client(&self) -> bool {
        matches!(self.app, App::Client(_) | App::Attacker(_))
    }

    /// Attaches conformance checkers; every byte pumped from here on is
    /// validated.
    pub fn set_oracle(&mut self, oracle: HostOracle) {
        self.oracle = Some(Box::new(oracle));
    }

    /// Attaches a dummy-record shaping schedule. `rng` must be a dedicated
    /// fork of the scenario seed so the schedule's draws never perturb the
    /// application's randomness.
    pub fn set_shaper(&mut self, shaper: TlsShaper, rng: SimRng) {
        self.shaper = Some(Box::new(HostShaper {
            shaper,
            rng,
            dummy: dummy_record_plaintext(),
        }));
    }

    /// Dummy records this host's shaper has sealed so far (0 without one).
    pub fn shaper_dummies(&self) -> u64 {
        self.shaper.as_ref().map_or(0, |s| s.shaper.dummies_sent)
    }

    /// Attaches a slow-DoS resource guard (server side). The guard scans
    /// the connection after every pump and its shedding decisions —
    /// `RST_STREAM`/`GOAWAY` with `ENHANCE_YOUR_CALM` — are applied by the
    /// host. Without one the server runs exactly as before, bit for bit.
    pub fn set_guard(&mut self, guard: ServerGuard) {
        self.guard = Some(Box::new(guard));
    }

    /// Attaches an online DoS detector (server side). It is fed the same
    /// decrypted inbound bytes as the conformance ledger, so it sees what
    /// a gateway-side tap would.
    pub fn set_detector(&mut self, detector: DosDetector) {
        self.detector = Some(Box::new(detector));
    }

    /// The guard's shedding counters, when one is attached.
    pub fn guard_stats(&self) -> Option<GuardStats> {
        self.guard.as_ref().map(|g| g.stats())
    }

    /// Alerts the attached detector has raised (empty without one).
    pub fn dos_alerts(&self) -> Vec<Alert> {
        self.detector
            .as_ref()
            .map(|d| d.alerts().to_vec())
            .unwrap_or_default()
    }

    /// Queues the TLS first flight on a client core. Call once before the
    /// first pump; a no-op on servers.
    pub(crate) fn begin(&mut self) {
        if self.is_client() {
            if let Some(flight) = self.tls.initial_flight() {
                self.tcp.write(&flight);
            }
        }
    }

    /// The application's next scheduled wakeup, if any; the shaping
    /// schedule folds in here so an otherwise-idle host still wakes to
    /// seal dummy records.
    pub(crate) fn app_wakeup(&self) -> Option<SimTime> {
        let app = match &self.app {
            App::Client(b) => b.next_wakeup(),
            App::Server(s) => s.next_wakeup(),
            App::Attacker(a) => a.next_wakeup(),
        };
        let pad = self.shaper.as_ref().and_then(|s| s.shaper.next_wakeup());
        // Guard and detector deadlines wake an otherwise-idle server: the
        // attacks they watch for are precisely the ones that go quiet.
        let dos = [
            self.guard.as_ref().and_then(|g| g.next_wakeup()),
            self.detector.as_ref().and_then(|d| d.next_wakeup()),
        ]
        .into_iter()
        .flatten()
        .min();
        [app, pad, dos].into_iter().flatten().min()
    }

    /// Returns every idle buffer across the stack to `pool` — the TCP send
    /// rope's recycled chunk and drained reassembly buffer, the TLS record
    /// reader's stash, and the HTTP/2 frame-buffer pool. Called when this
    /// core's page load completes; sheds only empty capacity, so a core
    /// that receives again afterwards just reallocates small.
    pub(crate) fn shed_buffers(&mut self, pool: &mut BufPool) {
        let mut sink = |buf: Vec<u8>| pool.put(buf);
        self.tcp.shed_spare_capacity(&mut sink);
        self.tls.shed_spare_capacity(&mut sink);
        self.h2.shed_spare_capacity(&mut sink);
        self.stream_objects.shrink_to_fit();
    }

    /// Warms this core's buffers from `pool` before its first pump, so a
    /// page load starting after others finished reuses their capacity
    /// instead of growing the heap. The HTTP/2 frame pool takes at most
    /// two (frames are small; the big wins are the TCP/TLS buffers).
    pub(crate) fn adopt_buffers(&mut self, pool: &mut BufPool) {
        self.tcp.adopt_spare_capacity(&mut || pool.get());
        self.tls.adopt_spare_capacity(&mut || pool.get());
        let mut h2_budget = 2usize;
        self.h2.adopt_spare_capacity(&mut || {
            if h2_budget == 0 {
                return None;
            }
            h2_budget -= 1;
            pool.get()
        });
    }
}

/// The netsim node wrapping a [`HostCore`].
pub struct Host {
    core: Rc<RefCell<HostCore>>,
    scratch: PumpScratch,
    tcp_timer: Option<(TimerId, SimTime)>,
    app_timer: Option<(TimerId, SimTime)>,
}

/// Re-arms one of the host's two deadline timers, skipping the
/// cancel+set round trip through the scheduler when the armed deadline
/// is already the wanted one — between most pump pairs the app wakeup
/// (and often the TCP timeout) is unchanged, and the scheduler churn of
/// re-inserting it every pump shows up in profiles.
fn rearm(
    ctx: &mut Context<'_, TcpSegment>,
    slot: &mut Option<(TimerId, SimTime)>,
    want: Option<SimTime>,
    token: u64,
) {
    match (want, *slot) {
        (Some(at), Some((_, armed))) if at == armed => {}
        (Some(at), prev) => {
            if let Some((id, _)) = prev {
                ctx.cancel_timer(id);
            }
            let id = ctx.set_timer(at.saturating_since(ctx.now()), token);
            *slot = Some((id, at));
        }
        (None, Some((id, _))) => {
            ctx.cancel_timer(id);
            *slot = None;
        }
        (None, None) => {}
    }
}

impl std::fmt::Debug for Host {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Host").finish_non_exhaustive()
    }
}

impl Host {
    /// Creates a client host running `browser`.
    #[allow(clippy::too_many_arguments)]
    pub fn client(
        peer: NodeId,
        browser: Browser,
        tcp: TcpConfig,
        h2: H2Config,
        session_key: u64,
        authority: impl Into<String>,
        truth: Rc<RefCell<GroundTruth>>,
        socket_buffer: usize,
    ) -> (Self, Rc<RefCell<HostCore>>) {
        let core = Rc::new(RefCell::new(HostCore::new_client(
            peer,
            browser,
            tcp,
            h2,
            session_key,
            Rc::from(authority.into()),
            Some(truth),
            socket_buffer,
        )));
        (
            Host {
                core: core.clone(),
                scratch: PumpScratch::default(),
                tcp_timer: None,
                app_timer: None,
            },
            core,
        )
    }

    /// Creates a server host running `server`.
    pub fn server(
        peer: NodeId,
        server: SiteServer,
        tcp: TcpConfig,
        h2: H2Config,
        session_key: u64,
        truth: Rc<RefCell<GroundTruth>>,
        socket_buffer: usize,
    ) -> (Self, Rc<RefCell<HostCore>>) {
        let core = Rc::new(RefCell::new(HostCore::new_server(
            peer,
            server,
            tcp,
            h2,
            session_key,
            Some(truth),
            socket_buffer,
        )));
        (
            Host {
                core: core.clone(),
                scratch: PumpScratch::default(),
                tcp_timer: None,
                app_timer: None,
            },
            core,
        )
    }

    /// Wraps an existing core as a netsim node (used by the DoS scenario
    /// builder, whose attacker cores are constructed directly).
    pub(crate) fn from_core(core: Rc<RefCell<HostCore>>) -> Host {
        Host {
            core,
            scratch: PumpScratch::default(),
            tcp_timer: None,
            app_timer: None,
        }
    }

    fn pump(&mut self, ctx: &mut Context<'_, TcpSegment>) {
        let core = self.core.clone();
        let mut core = core.borrow_mut();
        core.pump(ctx, &mut self.scratch);
        // Re-arm timers from the post-pump state.
        let (tcp_at, app_at) = if core.dead {
            (None, None)
        } else {
            (core.tcp.poll_timeout(), core.app_wakeup())
        };
        rearm(ctx, &mut self.tcp_timer, tcp_at, TOKEN_TCP);
        rearm(ctx, &mut self.app_timer, app_at, TOKEN_APP);
    }
}

impl Node<TcpSegment> for Host {
    fn on_start(&mut self, ctx: &mut Context<'_, TcpSegment>) {
        self.core.borrow_mut().begin();
        self.pump(ctx);
    }

    fn on_packet(&mut self, packet: Packet<TcpSegment>, ctx: &mut Context<'_, TcpSegment>) {
        self.core
            .borrow_mut()
            .tcp
            .on_segment(packet.payload, ctx.now());
        self.pump(ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, TcpSegment>) {
        // The fired timer no longer exists in the scheduler: forget it so
        // `rearm` can't skip re-setting (or cancel) its stale id.
        if token == TOKEN_TCP {
            self.tcp_timer = None;
            self.core.borrow_mut().tcp.on_tick(ctx.now());
        } else {
            self.app_timer = None;
        }
        // TOKEN_APP needs no pre-step: the pump polls the app with `now`.
        self.pump(ctx);
    }
}

impl HostCore {
    fn pump(&mut self, ctx: &mut Context<'_, TcpSegment>, scratch: &mut PumpScratch) {
        let now = ctx.now();
        self.pump_stages(now, scratch);
        let self_id = ctx.node_id();
        let peer = self.peer;
        self.flush_transmit(now, |seg| {
            let wire_bytes = seg.wire_bytes();
            ctx.send(Packet::new(self_id, peer, wire_bytes, seg));
        });
        if self.halt_when_done {
            let done = match &self.app {
                App::Client(b) => b.is_done(),
                App::Server(_) => false,
                App::Attacker(a) => a.is_done(),
            };
            if done && (self.tcp.send_drained() || self.dead) {
                ctx.halt();
            }
            if self.dead {
                ctx.halt();
            }
        }
    }

    /// One ordered pass settling the stack: inbound → app → outbound.
    ///
    /// Inbound bytes only arrive between pumps (a packet or timer precedes
    /// every call), so inbound progresses at most once; the app stage
    /// reacts to what inbound just delivered (and to `now`); the outbound
    /// stage then drains everything the first two queued, looping
    /// internally until the send buffer fills or the mux runs dry. Neither
    /// later stage can create same-instant inbound or app work — the
    /// browser issues every due command in one `poll_cmds` call and the
    /// server drains every due response — so cycling to quiescence (as an
    /// earlier revision did) only ever bought no-progress passes.
    ///
    /// [`flush_transmit`](Self::flush_transmit) completes the pump by
    /// draining TCP's segment queue; it is separate so the fleet arena can
    /// batch the stage passes and route the segments itself.
    pub(crate) fn pump_stages(&mut self, now: SimTime, scratch: &mut PumpScratch) {
        if !self.dead && self.tcp.is_aborted() {
            self.on_transport_death(now);
        }
        self.pump_inbound(now, scratch);
        self.pump_app(now);
        self.pump_dos(now);
        self.pump_outbound(now, scratch);
    }

    /// Drains every transmittable TCP segment through `emit`, running the
    /// endpoint conformance checker on each.
    pub(crate) fn flush_transmit(&mut self, now: SimTime, mut emit: impl FnMut(TcpSegment)) {
        while let Some(seg) = self.tcp.poll_transmit(now) {
            if let Some(oracle) = self.oracle.as_mut() {
                oracle.tcp.on_transmit(&self.tcp, &seg, now);
            }
            emit(seg);
        }
        if self.tcp.is_aborted() && !self.dead {
            self.on_transport_death(now);
        }
    }

    fn on_transport_death(&mut self, now: SimTime) {
        self.dead = true;
        match &mut self.app {
            App::Client(b) => b.on_connection_dead(now),
            App::Server(s) => {
                // Teardown cancels every pending worker and returns all
                // held pool capacity (workers and any captured parser
                // thread) to the shard.
                if self.parser_held {
                    if let Some(pool) = s.pool() {
                        pool.borrow_mut().release_parser();
                    }
                    self.parser_held = false;
                }
                s.shutdown();
            }
            App::Attacker(_) => {}
        }
    }

    /// TCP → TLS → HTTP/2 → events.
    fn pump_inbound(&mut self, now: SimTime, scratch: &mut PumpScratch) -> bool {
        if self.dead {
            return false;
        }
        let PumpScratch { wire, app, .. } = scratch;
        wire.clear();
        self.tcp.read_into(wire);
        if wire.is_empty() {
            return false;
        }
        app.clear();
        let output = match self.tls.receive_into(wire, app) {
            Ok(o) => o,
            Err(_) => {
                self.fail_connection(now);
                return true;
            }
        };
        if !output.reply.is_empty() {
            self.tcp.write(&output.reply);
        }
        if output.established_now {
            self.tls_established = true;
            match &mut self.app {
                App::Client(b) => b.start(now),
                App::Attacker(a) => a.start(now),
                App::Server(_) => {}
            }
        }
        if !app.is_empty() {
            if let Some(oracle) = self.oracle.as_mut() {
                oracle.h2.on_received(app, now);
            }
            if let Some(detector) = self.detector.as_mut() {
                detector.on_bytes(app, now);
            }
            if let App::Attacker(attacker) = &mut self.app {
                // The attacker parses the server's frames itself; the
                // placeholder H2Connection never sees a byte.
                attacker.on_plaintext(app, now);
            } else if self.h2.recv(app).is_err() {
                self.fail_connection(now);
                return true;
            }
        }
        self.dispatch_h2_events(now);
        true
    }

    fn fail_connection(&mut self, now: SimTime) {
        self.tcp.abort();
        self.on_transport_death(now);
    }

    fn dispatch_h2_events(&mut self, now: SimTime) {
        while let Some(event) = self.h2.poll_event() {
            match (&mut self.app, event) {
                (App::Client(b), H2Event::Headers { stream_id, .. }) => {
                    b.on_headers(stream_id, now);
                }
                (
                    App::Client(b),
                    H2Event::Data {
                        stream_id,
                        data,
                        end_stream,
                    },
                ) => {
                    b.on_data(stream_id, data.len(), end_stream, now);
                }
                (App::Client(b), H2Event::Reset { stream_id, .. }) => {
                    b.on_reset(stream_id, now);
                }
                (App::Client(b), H2Event::GoAway { .. }) => {
                    b.on_connection_dead(now);
                }
                (
                    App::Server(s),
                    H2Event::Headers {
                        stream_id, headers, ..
                    },
                ) => {
                    let path = headers
                        .iter()
                        .find(|h| h.name == ":path")
                        .map(|h| h.value.clone())
                        .unwrap_or_default();
                    s.on_request(stream_id, &path, now);
                }
                (App::Server(s), H2Event::Reset { stream_id, .. }) => {
                    s.on_stream_reset(stream_id);
                    // A reset stream gives its pool worker back at once.
                    s.release_stream(stream_id, now);
                }
                _ => {}
            }
        }
    }

    /// Application commands → HTTP/2 calls.
    fn pump_app(&mut self, now: SimTime) -> bool {
        if self.dead || !self.tls_established {
            return false;
        }
        let mut progressed = false;
        match &mut self.app {
            App::Client(browser) => {
                let authority = &self.authority;
                for cmd in browser.poll_cmds(now) {
                    progressed = true;
                    match cmd {
                        BrowserCmd::SendRequest { req, path, .. } => {
                            let headers = vec![
                                HeaderField::new(":method", "GET"),
                                HeaderField::new(":scheme", "https"),
                                HeaderField::new(":authority", &**authority),
                                HeaderField::new(":path", path),
                                HeaderField::new("user-agent", "h2priv-firefox/74.0"),
                                HeaderField::new("accept", "*/*"),
                            ];
                            match self.h2.open_stream(&headers, true) {
                                Ok(stream) => browser.note_stream(req, stream),
                                Err(_) => { /* connection closing */ }
                            }
                        }
                        BrowserCmd::ResetStream { stream } => {
                            self.h2.send_rst(stream, ErrorCode::Cancel);
                        }
                    }
                }
            }
            App::Server(server) => {
                let record_truth = self.truth.is_some();
                for response in server.due_responses(now) {
                    progressed = true;
                    // The stream → object ledger exists only to label the
                    // ground truth's sealed ranges; without a truth sink
                    // (fleet bystanders) recording it would be dead weight.
                    if record_truth {
                        if let Some(object) = response.object {
                            self.stream_objects.push((response.stream, object));
                        }
                    }
                    // A reset may have raced the worker: ignore errors.
                    if self
                        .h2
                        .send_headers(response.stream, &response.headers, false)
                        .is_ok()
                    {
                        let _ = self
                            .h2
                            .send_data_shared(response.stream, response.body, true);
                    }
                }
            }
            // The attacker's output is pulled in pump_outbound.
            App::Attacker(_) => {}
        }
        progressed
    }

    /// Server-side DoS machinery, one pass per pump: bill inbound SETTINGS
    /// to the pool's control plane, track the parser-thread hold for an
    /// unfinished header sequence, return workers of fully-drained
    /// streams, re-try admission of parked requests (capacity may have
    /// been freed by another connection sharing the pool), run the
    /// detector's timers, and apply the guard's shedding decisions. A
    /// no-op unless a pool, guard or detector is attached.
    fn pump_dos(&mut self, now: SimTime) {
        if let Some(detector) = self.detector.as_mut() {
            detector.on_wakeup(now);
        }
        let App::Server(server) = &mut self.app else {
            return;
        };
        if let Some(pool) = server.pool().cloned() {
            let seen = self.h2.stats().settings_received;
            while self.settings_billed < seen {
                pool.borrow_mut().note_settings(now);
                self.settings_billed += 1;
            }
            // A guard-closed connection no longer parses: its blocked
            // thread was reclaimed at close and must not be re-captured
            // by the still-unfinished header sequence.
            let guard_closed = self.guard.as_ref().is_some_and(|g| g.is_closed());
            let parser_blocked = !guard_closed && self.h2.in_progress_header_stream().is_some();
            if parser_blocked && !self.parser_held {
                pool.borrow_mut().hold_parser();
                self.parser_held = true;
            } else if !parser_blocked && self.parser_held {
                pool.borrow_mut().release_parser();
                self.parser_held = false;
            }
            // Fully-served streams give their worker back: the mux closed
            // the stream when the last DATA frame drained into the wire.
            for stream in server.serving().to_vec() {
                let gone = matches!(
                    self.h2.stream_state(stream),
                    None | Some(StreamState::Closed)
                );
                if gone && self.h2.pending_data(stream) == 0 {
                    server.release_stream(stream, now);
                }
            }
            server.admit_parked(now);
        }
        if let Some(guard) = self.guard.as_mut() {
            let mut actions = Vec::new();
            guard.scan(&self.h2, now, &mut actions);
            for action in actions {
                match action {
                    GuardAction::ResetStream(stream) => {
                        self.h2.send_rst(stream, ErrorCode::EnhanceYourCalm);
                        server.on_stream_reset(stream);
                        server.release_stream(stream, now);
                    }
                    GuardAction::CloseConnection => {
                        self.h2.send_goaway(ErrorCode::EnhanceYourCalm);
                        if self.parser_held {
                            if let Some(pool) = server.pool() {
                                pool.borrow_mut().release_parser();
                            }
                            self.parser_held = false;
                        }
                        server.shutdown();
                    }
                }
            }
        }
    }

    /// HTTP/2 → TLS → TCP, with ground-truth annotation on the server.
    ///
    /// Batched: every frame the send-buffer budget admits is sealed into
    /// one coalesced run (a single keystream pass per frame, appended to
    /// one buffer), then handed to TCP as a single shared chunk. TCP
    /// segmentation slices by absolute stream offset, so coalescing is
    /// invisible on the wire; what changes is the cost model — one
    /// buffer + one `Arc` per pump pass instead of one per record, with
    /// the run buffer recycled from the rope's fully-acked chunks and the
    /// frame buffers returned to the HTTP/2 encoder pool.
    fn pump_outbound(&mut self, now: SimTime, scratch: &mut PumpScratch) -> bool {
        if self.dead || !self.tls_established {
            return false;
        }
        if let App::Attacker(attacker) = &mut self.app {
            // The attacker emits hand-rolled frame bytes, not mux output:
            // seal whatever is due as one record and hand it to TCP. Its
            // traffic is a trickle by design, so no send-buffer budgeting.
            let bytes = attacker.poll_wire(now);
            if bytes.is_empty() {
                return false;
            }
            if let Some(oracle) = self.oracle.as_mut() {
                oracle.h2.on_sent(&bytes, now);
            }
            let mut run = std::mem::take(&mut scratch.run);
            run.clear();
            if self.tls.seal_app_data_into(&bytes, &mut run).is_err() {
                scratch.run = run;
                return false;
            }
            self.tcp.write_shared(SharedBytes::from_vec(run));
            return true;
        }
        let mut progressed = false;
        // Kernel-style autotuned send buffer: roughly twice the congestion
        // window, capped by the configured maximum. Backpressure onto the
        // HTTP/2 mux is what makes concurrent responses interleave.
        let limit = self.socket_buffer.min(2 * self.tcp.cwnd());
        // Prefer a recycled buffer: last pass's run once fully acked, or
        // the one parked in scratch by a pass that sealed nothing.
        let mut run = std::mem::take(&mut scratch.run);
        if run.capacity() == 0 {
            run = self.tcp.take_send_spare().unwrap_or(run);
        }
        run.clear();
        scratch.spans.clear();
        while self.tcp.buffered() + run.len() < limit {
            let Some(out) = self.h2.poll_send() else {
                break;
            };
            progressed = true;
            if let Some(oracle) = self.oracle.as_mut() {
                // The oracle wants the frame contiguous; split DATA frames
                // are flattened into scratch, whole frames tap directly.
                if out.body.is_empty() && out.tail_pad == 0 {
                    oracle.h2.on_sent(out.frame_bytes(), now);
                } else {
                    scratch.oracle_frame.clear();
                    out.write_wire_into(&mut scratch.oracle_frame);
                    oracle.h2.on_sent(&scratch.oracle_frame, now);
                }
            }
            let meta = out.meta;
            let start = run.len();
            // Gather seal: header, shared body chunk, and tail padding go
            // through the keystream as one message — the body is read
            // exactly once, never copied into a frame buffer first.
            if self
                .tls
                .seal_app_data_parts_into(&out.wire_parts(), &mut run)
                .is_err()
            {
                run.truncate(start);
                break;
            }
            scratch.spans.push((meta, start, run.len()));
            self.h2.recycle_outgoing(out.bytes);
        }
        // Shaping: a pass that sealed real traffic re-arms the dummy
        // schedule; a pass that sealed nothing asks the schedule whether
        // dummy records are due and seals them in-stream — through the same
        // record writer as real data, so nonce continuity (and thus the
        // oracle's `record-seq` rule) holds. Dummies go out only when the
        // real mux is silent: they fill gaps, never displace data.
        if let Some(hs) = self.shaper.as_mut() {
            if run.is_empty() {
                let due = hs.shaper.dummies_due(now, &mut hs.rng);
                for _ in 0..due {
                    if self.tcp.buffered() + run.len() >= limit {
                        break;
                    }
                    if let Some(oracle) = self.oracle.as_mut() {
                        oracle.h2.on_sent(&hs.dummy, now);
                    }
                    if self.tls.seal_app_data_into(&hs.dummy, &mut run).is_err() {
                        break;
                    }
                    progressed = true;
                }
            } else {
                hs.shaper.on_real_send(now, &mut hs.rng);
            }
        }
        if run.is_empty() {
            scratch.run = run;
            return progressed;
        }
        let base = self.tcp.total_written();
        self.tcp.write_shared(SharedBytes::from_vec(run));
        if !self.is_client() {
            if let Some(truth) = self.truth.as_ref() {
                let mut truth = truth.borrow_mut();
                for &(meta, start, end) in &scratch.spans {
                    if let OutgoingMeta::Frame {
                        stream_id,
                        end_stream,
                        frame_type,
                        ..
                    } = meta
                    {
                        use h2priv_http2::FrameType;
                        if matches!(frame_type, FrameType::Data | FrameType::Headers) {
                            let served = self
                                .stream_objects
                                .iter()
                                .rev()
                                .find(|&&(s, _)| s == stream_id)
                                .map(|&(_, o)| o);
                            if let Some(object) = served {
                                truth.add_range(
                                    base + start as u64,
                                    base + end as u64,
                                    object,
                                    stream_id,
                                );
                                if end_stream {
                                    truth.mark_complete(stream_id);
                                }
                            }
                        }
                    }
                }
            }
        }
        progressed
    }
}
