//! Tests of the host wiring: full stacks over the simulated network,
//! without any site/attack logic on top.

use h2priv_netsim::{Dir, SimDuration};
use h2priv_testkit::{build_scenario, run_scenario, ScenarioConfig};
use h2priv_web::{BrowsePlan, ObjectKind, Phase, PlanStep, Trigger, Website};

fn tiny_site(sizes: &[usize]) -> (Website, BrowsePlan) {
    let mut site = Website::new();
    let mut steps = Vec::new();
    for (i, &size) in sizes.iter().enumerate() {
        let id = site.add(format!("/obj{i}"), ObjectKind::Other, size);
        steps.push(PlanStep {
            object: id,
            gap: SimDuration::from_millis(5),
        });
    }
    let plan = BrowsePlan::new().with_phase(Phase {
        trigger: Trigger::Start,
        delay: SimDuration::ZERO,
        steps,
        reissue: true,
    });
    (site, plan)
}

fn quiet_config(seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig {
        seed,
        ..ScenarioConfig::default()
    };
    cfg.browser.gap_noise_frac = 0.0;
    cfg
}

#[test]
fn single_object_fetch_works() {
    let (site, plan) = tiny_site(&[12_345]);
    let result = h2priv_testkit::run_trial(&site, &plan, &quiet_config(1), None);
    assert!(!result.broken);
    assert_eq!(result.outcomes.len(), 1);
    assert_eq!(result.outcomes[0].bytes, 12_345);
    assert!(result.outcomes[0].completed_at.is_some());
}

#[test]
fn empty_body_objects_complete() {
    // Zero-length responses must still carry END_STREAM and complete.
    let (site, plan) = tiny_site(&[0, 10, 0]);
    let result = h2priv_testkit::run_trial(&site, &plan, &quiet_config(2), None);
    assert!(result.outcomes.iter().all(|o| o.completed_at.is_some()));
    assert_eq!(result.outcomes[0].bytes, 0);
    assert_eq!(result.outcomes[1].bytes, 10);
}

#[test]
fn large_object_survives_the_wan() {
    let (site, plan) = tiny_site(&[3_000_000]);
    let result = h2priv_testkit::run_trial(&site, &plan, &quiet_config(3), None);
    assert!(!result.broken);
    assert_eq!(result.outcomes[0].bytes, 3_000_000);
    // At the 16 Mbps bottleneck this takes over a second of simulated time.
    let done = result.outcomes[0].completed_at.unwrap();
    assert!(done.as_millis() > 1_000, "done at {done}");
}

#[test]
fn handshake_records_precede_data_on_the_wire() {
    let (site, plan) = tiny_site(&[5_000]);
    let result = h2priv_testkit::run_trial(&site, &plan, &quiet_config(4), None);
    let records = h2priv_analysis::extract_records(&result.trace);
    let kinds: Vec<_> = records.iter().map(|r| r.content_type).collect();
    let first_app = kinds
        .iter()
        .position(|&k| k == h2priv_tls::ContentType::ApplicationData)
        .unwrap();
    assert!(
        kinds[..first_app]
            .iter()
            .all(|&k| k == h2priv_tls::ContentType::Handshake),
        "non-handshake records before first app data: {kinds:?}"
    );
}

#[test]
fn truth_ranges_are_disjoint_and_ordered() {
    let (site, plan) = tiny_site(&[40_000, 60_000, 20_000]);
    let result = h2priv_testkit::run_trial(&site, &plan, &quiet_config(5), None);
    let mut ranges: Vec<_> = result.truth.ranges().to_vec();
    ranges.sort_by_key(|r| r.start);
    for w in ranges.windows(2) {
        assert!(
            w[0].end <= w[1].start,
            "overlapping ground-truth ranges: {:?} vs {:?}",
            w[0],
            w[1]
        );
    }
}

#[test]
fn gateway_tap_sees_both_directions() {
    let (site, plan) = tiny_site(&[10_000]);
    let result = h2priv_testkit::run_trial(&site, &plan, &quiet_config(6), None);
    assert!(result.trace.in_dir(Dir::LeftToRight).count() > 5);
    assert!(result.trace.in_dir(Dir::RightToLeft).count() > 5);
}

#[test]
fn scenario_is_reusable_across_seeds() {
    let (site, plan) = tiny_site(&[30_000, 30_000]);
    let a = run_scenario(build_scenario(&site, &plan, &quiet_config(7), None));
    let b = run_scenario(build_scenario(&site, &plan, &quiet_config(8), None));
    // Different seeds: different jitter draws, different finish times.
    assert_ne!(
        a.outcomes[1].completed_at, b.outcomes[1].completed_at,
        "seeds must decorrelate runs"
    );
}

#[test]
fn socket_buffer_backpressure_controls_interleaving() {
    // Two equal objects requested together: with a tiny socket buffer the
    // mux interleaves them; with a huge one the first is written out
    // before the second worker fires.
    let mut site = Website::new();
    let a = site.add("/a", ObjectKind::Other, 30_000);
    let b = site.add("/b", ObjectKind::Other, 30_000);
    let plan = BrowsePlan::new().with_phase(Phase {
        trigger: Trigger::Start,
        delay: SimDuration::ZERO,
        steps: vec![
            PlanStep {
                object: a,
                gap: SimDuration::ZERO,
            },
            PlanStep {
                object: b,
                gap: SimDuration::from_micros(200),
            },
        ],
        reissue: true,
    });
    let degree_with = |socket: usize| {
        let mut cfg = quiet_config(9);
        cfg.socket_buffer = socket;
        let result = h2priv_testkit::run_trial(&site, &plan, &cfg, None);
        let inst = result.truth.instances_of(a)[0];
        result.truth.degree_of_instance(inst).unwrap()
    };
    let tight = degree_with(8 * 1024);
    let loose = degree_with(4 * 1024 * 1024);
    assert!(
        tight > loose,
        "backpressure should increase interleaving: tight {tight} vs loose {loose}"
    );
    assert!(tight > 0.5, "tight buffer should interleave: {tight}");
}
