//! End-to-end countermeasure smoke tests: every arena defense completes
//! the paper's page load conformance-clean, and each mechanism leaves its
//! expected fingerprint on the wire.

use h2priv_defense::DefenseSpec;
use h2priv_netsim::Dir;
use h2priv_testkit::{build_scenario, run_scenario, RunResult, ScenarioConfig};
use h2priv_web::isidewith;

fn run_with(defense: DefenseSpec) -> RunResult {
    let golden: Vec<usize> = (0..8).collect();
    let iw = isidewith::build(&golden);
    let cfg = ScenarioConfig {
        seed: 0xDEF,
        defense,
        ..ScenarioConfig::default()
    };
    run_scenario(build_scenario(&iw.site, &iw.plan, &cfg, None))
}

fn assert_page_loaded(result: &RunResult, defense: DefenseSpec) {
    assert!(!result.broken, "{defense}: connection broke");
    assert!(
        result
            .outcomes
            .iter()
            .all(|o| o.completed_at.is_some() && !o.failed),
        "{defense}: page load incomplete"
    );
}

/// Every defense in the arena — including both shaping topologies (the
/// extra CDN-edge pacing hop) — finishes the page load with zero
/// conformance violations: padded frames balance the flow-control ledger,
/// dummy records keep TLS nonce continuity, and the pacers reorder
/// nothing.
#[test]
fn every_defense_is_conformant_and_completes() {
    for defense in DefenseSpec::arena() {
        let result = run_with(defense);
        assert_page_loaded(&result, defense);
        result.assert_conformant();
    }
}

/// Size-padding defenses inflate the response direction; the undefended
/// baseline is the floor.
#[test]
fn padding_defenses_add_response_bytes() {
    let base = run_with(DefenseSpec::None);
    let base_bytes = base.trace.bytes_in_dir(Dir::RightToLeft);
    for defense in [
        DefenseSpec::ConstrainedPadding {
            overhead_per_mille: 250,
        },
        DefenseSpec::FrameQuantize { quantum: 1024 },
    ] {
        let defended = run_with(defense);
        let bytes = defended.trace.bytes_in_dir(Dir::RightToLeft);
        assert!(
            bytes > base_bytes,
            "{defense}: {bytes} B response traffic, expected more than the \
             undefended {base_bytes} B"
        );
    }
}

/// Shaping defenses seal dummy records on the server and report the count
/// through the run result.
#[test]
fn shaping_defenses_emit_dummy_records() {
    assert_eq!(run_with(DefenseSpec::None).defense_dummies, 0);
    for defense in [
        DefenseSpec::ConstantRate { interval_us: 2_000 },
        DefenseSpec::AdaptivePadding {
            min_gap_us: 5_000,
            spread_us: 3_000,
        },
    ] {
        let defended = run_with(defense);
        assert!(
            defended.defense_dummies > 0,
            "{defense}: no dummy records sealed"
        );
    }
}

/// Same seed, same defense → byte-identical captures: the defense layers
/// draw only from their dedicated seeded RNG forks.
#[test]
fn defended_trials_are_deterministic() {
    for defense in DefenseSpec::arena() {
        let a = run_with(defense);
        let b = run_with(defense);
        assert_eq!(a.trace.len(), b.trace.len(), "{defense}: trace diverged");
        assert_eq!(a.events, b.events, "{defense}: event count diverged");
        assert_eq!(
            a.trace.bytes_in_dir(Dir::RightToLeft),
            b.trace.bytes_in_dir(Dir::RightToLeft),
            "{defense}: response bytes diverged"
        );
    }
}
