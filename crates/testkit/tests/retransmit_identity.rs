//! Retransmitted bytes must be identical to the dropped originals.
//!
//! With the chunked shared-slice send buffer, a retransmission re-slices
//! the same queued chunks the original segment was cut from — nothing is
//! regenerated. This test drops one server→client data segment at the
//! gateway, records its payload, and verifies that the segment later
//! reappears (the retransmission) carrying exactly the same bytes, and
//! that the client still reassembles the full object.

use std::cell::RefCell;
use std::rc::Rc;

use h2priv_netsim::{Dir, MbContext, Middlebox, Packet, SimDuration, Verdict};
use h2priv_tcp::{Seq, TcpSegment};
use h2priv_testkit::ScenarioConfig;
use h2priv_web::{BrowsePlan, ObjectKind, Phase, PlanStep, Trigger, Website};

/// Drops the Nth server→client data segment once, remembers its bytes,
/// and watches for the same sequence range to come back.
struct DropNthDataSegment {
    /// Data segments still to let through before the drop.
    remaining: u32,
    /// `(seq, payload)` of the dropped segment.
    dropped: Option<(Seq, Vec<u8>)>,
    /// The dropped range was seen again with identical bytes.
    rematched: bool,
    /// The dropped range was seen again with *different* bytes.
    corrupted: bool,
}

impl DropNthDataSegment {
    fn new(nth: u32) -> Self {
        DropNthDataSegment {
            remaining: nth,
            dropped: None,
            rematched: false,
            corrupted: false,
        }
    }
}

impl Middlebox<TcpSegment> for DropNthDataSegment {
    fn process(&mut self, packet: &Packet<TcpSegment>, ctx: &mut MbContext<'_>) -> Verdict {
        if ctx.dir != Dir::RightToLeft {
            return Verdict::Forward;
        }
        let seg = &packet.payload;
        if seg.payload.is_empty() {
            return Verdict::Forward;
        }
        match &self.dropped {
            None => {
                if self.remaining > 0 {
                    self.remaining -= 1;
                    return Verdict::Forward;
                }
                self.dropped = Some((seg.seq, seg.payload.to_vec()));
                Verdict::Drop
            }
            Some((seq, original)) => {
                if seg.seq == *seq {
                    // The retransmission may be cut longer or shorter than
                    // the original; the bytes of the overlapping range must
                    // match exactly.
                    let overlap = original.len().min(seg.payload.len());
                    if seg.payload.as_slice()[..overlap] == original[..overlap] {
                        self.rematched = true;
                    } else {
                        self.corrupted = true;
                    }
                }
                Verdict::Forward
            }
        }
    }
}

#[test]
fn retransmission_is_byte_identical() {
    let mut site = Website::new();
    let id = site.add("/big", ObjectKind::Other, 200_000);
    let plan = BrowsePlan::new().with_phase(Phase {
        trigger: Trigger::Start,
        delay: SimDuration::ZERO,
        steps: vec![PlanStep {
            object: id,
            gap: SimDuration::ZERO,
        }],
        reissue: true,
    });
    let mut cfg = ScenarioConfig {
        seed: 42,
        ..ScenarioConfig::default()
    };
    cfg.browser.gap_noise_frac = 0.0;

    let mb = Rc::new(RefCell::new(DropNthDataSegment::new(10)));
    let result = h2priv_testkit::run_trial(&site, &plan, &cfg, Some(Box::new(mb.clone())));

    let mb = mb.borrow();
    assert!(mb.dropped.is_some(), "no data segment was ever dropped");
    assert!(
        mb.rematched,
        "dropped segment was never retransmitted with identical bytes"
    );
    assert!(!mb.corrupted, "retransmission differed from the original");
    // The stream survived the loss end-to-end: the object completed with
    // every byte accounted for, so the reassembled (and decrypted) stream
    // was identical to the unbroken run's.
    assert!(!result.broken, "trial broke after a single segment loss");
    assert_eq!(result.outcomes.len(), 1);
    assert_eq!(result.outcomes[0].bytes, 200_000);
    assert!(result.outcomes[0].completed_at.is_some());
}
