//! Batched host-pump allocation regression test.
//!
//! The fleet arena amortizes host work by pumping every dirty host per
//! scheduler step with one shared scratch buffer. The cost model that
//! makes that cheap lives in the outbound stage: each pass drains the
//! HTTP/2 mux, seals every frame into **one** run buffer
//! (`TlsSession::seal_app_data_into`), and hands TCP a single shared
//! chunk — one buffer and one `Arc` per pass instead of one `Vec` per
//! record, with the run buffer recycled from the rope's fully-acked
//! chunks. This binary rebuilds that exact pass from the public
//! tcp/tls/http2 APIs, installs the allocation-counting global
//! allocator, and proves steady-state allocations scale with pump
//! *passes*, not with sealed *records*.

use h2priv_bytes::count_alloc::{measure, CountingAlloc};
use h2priv_bytes::SharedBytes;
use h2priv_http2::{H2Config, H2Connection, HeaderField};
use h2priv_netsim::SimTime;
use h2priv_tcp::{TcpConfig, TcpConnection};
use h2priv_tls::{Role, TlsSession};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const KEY: u64 = 0xF1EE_7A11;
/// The testkit host's default socket-buffer cap.
const SOCKET_LIMIT: usize = 64 * 1024;

struct Endpoint {
    tcp: TcpConnection,
    tls: TlsSession,
    h2: H2Connection,
}

impl Endpoint {
    /// One outbound stage pass, mirroring the host pump: drain the mux
    /// into `run` under the send-buffer limit, one sealed record per
    /// frame, then enqueue the whole run as a single shared chunk.
    fn flush(&mut self, run: &mut Vec<u8>) {
        if run.capacity() == 0 {
            *run = self.tcp.take_send_spare().unwrap_or_default();
        }
        run.clear();
        let limit = SOCKET_LIMIT.min(2 * self.tcp.cwnd());
        while self.tcp.buffered() + run.len() < limit {
            let Some(out) = self.h2.poll_send() else {
                break;
            };
            self.tls
                .seal_app_data_into(out.frame_bytes(), run)
                .expect("established session seals");
            self.h2.recycle_outgoing(out.bytes);
        }
        if !run.is_empty() {
            self.tcp
                .write_shared(SharedBytes::from_vec(std::mem::take(run)));
        }
    }

    /// One inbound stage pass: TCP bytes → TLS records → HTTP/2 frames.
    fn inbound(&mut self, wire: &mut Vec<u8>, app: &mut Vec<u8>) {
        wire.clear();
        self.tcp.read_into(wire);
        if wire.is_empty() {
            return;
        }
        app.clear();
        let out = self.tls.receive_into(wire, app).expect("clean records");
        if !out.reply.is_empty() {
            self.tcp.write(&out.reply);
        }
        if !app.is_empty() {
            self.h2.recv(app).expect("clean frames");
        }
    }
}

fn deliver(a: &mut Endpoint, b: &mut Endpoint, now: SimTime) {
    loop {
        let mut moved = false;
        while let Some(seg) = a.tcp.poll_transmit(now) {
            b.tcp.on_segment(seg, now);
            moved = true;
        }
        while let Some(seg) = b.tcp.poll_transmit(now) {
            a.tcp.on_segment(seg, now);
            moved = true;
        }
        if !moved {
            break;
        }
    }
}

fn stack_pair() -> (Endpoint, Endpoint) {
    // TCP handshake.
    let mut c_tcp = TcpConnection::client(TcpConfig::default());
    let mut s_tcp = TcpConnection::server(TcpConfig::default());
    loop {
        let mut moved = false;
        while let Some(seg) = c_tcp.poll_transmit(SimTime::ZERO) {
            s_tcp.on_segment(seg, SimTime::ZERO);
            moved = true;
        }
        while let Some(seg) = s_tcp.poll_transmit(SimTime::ZERO) {
            c_tcp.on_segment(seg, SimTime::ZERO);
            moved = true;
        }
        if !moved {
            break;
        }
    }
    assert!(c_tcp.is_established() && s_tcp.is_established());

    // TLS handshake, out of band — the keystream only depends on the key
    // and the record sequence, not on how handshake bytes traveled.
    let mut c_tls = TlsSession::new(Role::Client, KEY);
    let mut s_tls = TlsSession::new(Role::Server, KEY);
    let hello = c_tls.initial_flight().expect("client starts");
    let out = s_tls.receive(&hello).unwrap();
    let out = c_tls.receive(&out.reply).unwrap();
    assert!(out.established_now);
    let out = s_tls.receive(&out.reply).unwrap();
    if !out.reply.is_empty() {
        c_tls.receive(&out.reply).unwrap();
    }
    assert!(c_tls.is_established() && s_tls.is_established());

    // HTTP/2: a big client receive window, so the server's body is
    // limited by the send-buffer pump, not by WINDOW_UPDATE round trips
    // this harness does not model.
    let mut client_cfg = H2Config::default();
    client_cfg.settings.initial_window_size = 4_000_000;
    client_cfg.connection_window_bonus = 16_000_000;
    let mut c = Endpoint {
        tcp: c_tcp,
        tls: c_tls,
        h2: H2Connection::new_client(client_cfg),
    };
    let mut s = Endpoint {
        tcp: s_tcp,
        tls: s_tls,
        h2: H2Connection::new_server(H2Config::default()),
    };

    // Settings exchange until both muxes are ready.
    let mut run_c = Vec::new();
    let mut run_s = Vec::new();
    let mut wire = Vec::new();
    let mut app = Vec::new();
    let mut ms = 1u64;
    while !(c.h2.is_ready() && s.h2.is_ready()) {
        let now = SimTime::from_millis(ms);
        c.flush(&mut run_c);
        deliver(&mut c, &mut s, now);
        s.inbound(&mut wire, &mut app);
        s.flush(&mut run_s);
        deliver(&mut c, &mut s, now);
        c.inbound(&mut wire, &mut app);
        ms += 1;
        assert!(ms < 100, "settings exchange did not converge");
    }
    (c, s)
}

/// Runs one request/response transfer and returns the server flush cost:
/// `(allocations, productive passes, records sealed)`.
fn transfer(c: &mut Endpoint, s: &mut Endpoint, base_ms: u64, body: usize) -> (u64, u64, u64) {
    let request = [
        HeaderField::new(":method", "GET"),
        HeaderField::new(":path", "/page"),
    ];
    let stream = c.h2.open_stream(&request, true).expect("stream opens");
    let mut run_c = Vec::new();
    let mut run_s = Vec::new();
    let mut wire = Vec::new();
    let mut app = Vec::new();
    let mut responded = false;
    let mut allocs = 0u64;
    let mut passes = 0u64;
    let records0 = s.tls.records_sealed();
    for ms in base_ms..base_ms + 5_000 {
        let now = SimTime::from_millis(ms);
        c.flush(&mut run_c);
        deliver(c, s, now);
        s.inbound(&mut wire, &mut app);
        // The request HEADERS create the stream on the server; respond as
        // soon as it exists (send_headers fails until then).
        if !responded
            && s.h2
                .send_headers(stream, &[HeaderField::new(":status", "200")], false)
                .is_ok()
        {
            s.h2.send_data_shared(stream, SharedBytes::from_vec(vec![0xC4; body]), true)
                .expect("body queues");
            responded = true;
        }
        let before = s.tls.records_sealed();
        let ((), n) = measure(|| s.flush(&mut run_s));
        let sealed_this_pass = s.tls.records_sealed() > before;
        if sealed_this_pass {
            passes += 1;
            allocs += n;
        }
        deliver(c, s, now);
        c.inbound(&mut wire, &mut app);
        // Done only when the mux had nothing left to seal AND TCP has
        // drained — the send-buffer limit spreads the body over passes.
        if responded && !sealed_this_pass && s.tcp.send_drained() {
            break;
        }
    }
    assert!(s.tcp.send_drained(), "transfer incomplete");
    (allocs, passes, s.tls.records_sealed() - records0)
}

#[test]
fn batched_outbound_flush_allocates_per_pass_not_per_record() {
    let (mut c, mut s) = stack_pair();

    // Warm-up transfer: grows the congestion window, fills the HTTP/2
    // encoder's buffer pool and the rope's recycled-chunk spare.
    transfer(&mut c, &mut s, 100, 128 * 1024);

    // Steady state: a second identical page.
    let (allocs, passes, records) = transfer(&mut c, &mut s, 10_000, 128 * 1024);

    assert!(
        records >= 64,
        "expected a chunked body, sealed {records} records"
    );
    assert!(passes >= 2, "expected multiple pump passes, got {passes}");
    assert!(
        records >= passes * 4,
        "batching collapsed: {records} records over {passes} passes"
    );
    // The whole point: the per-record `Vec` is gone. Each pass pays a
    // small constant (the `Arc` for the shared run chunk, plus occasional
    // run-buffer growth when no fully-acked chunk was reclaimable) —
    // nothing proportional to the records sealed.
    assert!(
        allocs <= passes * 4 + 16,
        "flush allocated {allocs} times over {passes} passes ({records} records)"
    );
}
