//! Slab-reuse regression test: heap usage of a fleet shard must plateau
//! as page loads complete, not grow with every pair that ever ran.
//!
//! The scenario serializes page loads (start spread much longer than one
//! load), so at any instant roughly one pair is active and every earlier
//! pair has finished. With the arena's buffer recycling
//! (`HostCore::shed_buffers` into the shard `BufPool`, adopted by
//! later-starting cores), the heap high-water mark is set by the *active*
//! working set plus small per-pair residue — quadrupling the population
//! must not remotely quadruple the peak. Without recycling, every
//! completed pair would pin its rope spare, reassembly buffer, TLS stash
//! and HTTP/2 frame pool until teardown, and the peak would scale with
//! the population.
//!
//! Uses the process-wide byte gauges of `h2priv-bytes`' counting
//! allocator, so this file holds exactly one test (parallel tests would
//! pollute the gauge).

use h2priv_bytes::count_alloc::{self, CountingAlloc};
use h2priv_netsim::SimDuration;
use h2priv_testkit::fleet::{run_fleet_shard, FleetConfig, FleetConformance};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Seconds between page-load starts — comfortably longer than one load
/// (~1.5 s simulated), so loads do not overlap.
const STAGGER_SECS: u64 = 8;

fn serialized_shard_peak(population: u32) -> u64 {
    let config = FleetConfig {
        seed: 0xA11C,
        population,
        shards: 1,
        conformance: FleetConformance::Off,
        start_spread: SimDuration::from_secs(population as u64 * STAGGER_SECS),
        deadline: SimDuration::from_secs(population as u64 * STAGGER_SECS + 60),
        ..FleetConfig::default()
    };
    let (result, peak) = count_alloc::measure_peak_bytes(|| run_fleet_shard(&config, 0, None));
    assert_eq!(
        result.completed, population,
        "every serialized page load completes (broken: {})",
        result.broken
    );
    peak
}

#[test]
fn serialized_page_loads_plateau_heap_usage() {
    let peak_small = serialized_shard_peak(8);
    let peak_large = serialized_shard_peak(32);
    // 4x the completed page loads; the peak may grow by per-pair protocol
    // state (cores, timers) but must stay far below proportional growth.
    assert!(
        peak_large < peak_small * 2,
        "heap did not plateau: peak {peak_large} B at 32 pairs vs {peak_small} B at 8 \
         (recycling should keep growth well under 2x for 4x the loads)"
    );
    // And the absolute residue per *extra completed pair* stays small: the
    // working set is dominated by the shared site + one active load, plus
    // per-pair protocol state a finished core legitimately retains (HPACK
    // dynamic tables, stream maps, browser outcomes) — measured ~61 KiB.
    // Without recycling, each pair would also pin its rope spare chunk,
    // reassembly buffer and HTTP/2 frame pool (100s of KiB), tripping this.
    let residue_per_pair = peak_large.saturating_sub(peak_small) / 24;
    assert!(
        residue_per_pair < 96 * 1024,
        "per-completed-pair residue {residue_per_pair} B exceeds 96 KiB"
    );
}
