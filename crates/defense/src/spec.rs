//! Named defense configurations for scenarios and the CLI.

use h2priv_netsim::SimDuration;

/// One countermeasure configuration, selectable per scenario and via
/// `repro defend --defense <name>`. Integer knobs throughout so specs are
/// `Eq`, hashable and bit-for-bit deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefenseSpec {
    /// Undefended baseline.
    None,
    /// Server pads object bodies to a constrained-padding size set derived
    /// from the site's object sizes (Reed & Reiter).
    ConstrainedPadding {
        /// Per-object overhead bound, in per-mille (250 = at most +25 %).
        overhead_per_mille: u32,
    },
    /// Server emits RFC 7540 PADDED frames quantizing payload sizes.
    FrameQuantize {
        /// DATA/HEADERS total-payload quantum in bytes.
        quantum: u32,
    },
    /// Middlebox pacing to a fixed grid plus endpoint dummy records at the
    /// same cadence: the wire ticks like a metronome.
    ConstantRate {
        /// Departure slot width in microseconds.
        interval_us: u32,
    },
    /// Randomized gap-filling: middlebox departure jitter plus endpoint
    /// dummy records that fire when the stream goes quiet.
    AdaptivePadding {
        /// Base quiet gap before a dummy fires, in microseconds.
        min_gap_us: u32,
        /// Uniform extra spread on the gap, in microseconds.
        spread_us: u32,
    },
}

impl DefenseSpec {
    /// Stable CLI/exhibit name.
    pub fn name(&self) -> &'static str {
        match self {
            DefenseSpec::None => "none",
            DefenseSpec::ConstrainedPadding { .. } => "constrained-padding",
            DefenseSpec::FrameQuantize { .. } => "frame-quantize",
            DefenseSpec::ConstantRate { .. } => "constant-rate",
            DefenseSpec::AdaptivePadding { .. } => "adaptive-padding",
        }
    }

    /// Parses a CLI name into the defense's canonical arena configuration.
    pub fn parse(name: &str) -> Option<DefenseSpec> {
        DefenseSpec::arena().into_iter().find(|d| d.name() == name)
    }

    /// The canonical arena: every defense at its evaluated setting, the
    /// undefended baseline first.
    pub fn arena() -> [DefenseSpec; 5] {
        [
            DefenseSpec::None,
            // +25% body overhead bound: the regime Reed & Reiter show
            // already collapses most size classes.
            DefenseSpec::ConstrainedPadding {
                overhead_per_mille: 250,
            },
            // 1 KiB frame quantum: hides sub-KiB chunk-length variation.
            DefenseSpec::FrameQuantize { quantum: 1024 },
            // 2 ms slots ≈ 500 records/s ceiling on the response path.
            DefenseSpec::ConstantRate { interval_us: 2_000 },
            // Gaps of 5–8 ms get filled: just under the attack's 30 ms
            // burst-segmentation threshold, well above intra-burst spacing.
            DefenseSpec::AdaptivePadding {
                min_gap_us: 5_000,
                spread_us: 3_000,
            },
        ]
    }

    /// True when the defense involves the endpoint/middlebox shaping path
    /// (dummy records + pacing) rather than only size padding.
    pub fn is_shaping(&self) -> bool {
        matches!(
            self,
            DefenseSpec::ConstantRate { .. } | DefenseSpec::AdaptivePadding { .. }
        )
    }

    /// The middlebox pacing interval / jitter bound, when shaping.
    pub fn pacing(&self) -> Option<SimDuration> {
        match self {
            DefenseSpec::ConstantRate { interval_us } => {
                Some(SimDuration::from_micros(*interval_us as u64))
            }
            DefenseSpec::AdaptivePadding {
                min_gap_us,
                spread_us,
            } => Some(SimDuration::from_micros((*min_gap_us + *spread_us) as u64)),
            _ => None,
        }
    }
}

impl std::fmt::Display for DefenseSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_through_parse() {
        for spec in DefenseSpec::arena() {
            assert_eq!(DefenseSpec::parse(spec.name()), Some(spec));
        }
        assert_eq!(DefenseSpec::parse("bogus"), None);
    }

    #[test]
    fn arena_leads_with_baseline() {
        assert_eq!(DefenseSpec::arena()[0], DefenseSpec::None);
    }

    #[test]
    fn shaping_classification() {
        assert!(!DefenseSpec::None.is_shaping());
        assert!(!DefenseSpec::FrameQuantize { quantum: 512 }.is_shaping());
        assert!(DefenseSpec::ConstantRate { interval_us: 1000 }.is_shaping());
        assert!(DefenseSpec::AdaptivePadding {
            min_gap_us: 1,
            spread_us: 0
        }
        .is_shaping());
    }
}
