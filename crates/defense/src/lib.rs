//! # h2priv-defense — countermeasures against the serialization attack
//!
//! Part of the `h2priv` reproduction of *"Depending on HTTP/2 for Privacy?
//! Good Luck!"* (DSN 2020). The paper's §VII sketches defenses against its
//! traffic-analysis attack; this crate makes them concrete and pluggable so
//! the experiment driver can re-run the full adversary grid under each one
//! and chart the privacy-vs-overhead frontier:
//!
//! * [`PadSet`]/[`constrained_pad_set`] — *constrained padding* of object
//!   bodies to a small optimal size set with a bounded multiplicative
//!   overhead, after Reed & Reiter ("Optimally Hiding Object Sizes with
//!   Constrained Padding", arXiv:2108.01753). Applied at the web server.
//! * Frame-size quantization — RFC 7540 §6.1 PADDED frames on a
//!   deterministic schedule; the mechanism lives in `h2priv-http2`
//!   (`H2Config::data_pad_quantum`), this crate only selects it.
//! * [`ConstantRatePacer`] — middlebox shaping: server→client data packets
//!   depart on a fixed time grid, destroying the inter-record timing the
//!   attack's burst segmentation feeds on.
//! * [`AdaptivePacer`] — middlebox shaping: per-packet randomized
//!   (order-preserving) departure jitter, the timing half of
//!   adaptive padding.
//! * [`TlsShaper`] — endpoint-side dummy-record injection: the host seals
//!   unsolicited PING-ACK frames as ordinary `application_data` records
//!   (in-stream, so TLS nonce continuity holds) during idle gaps, polluting
//!   the monitor's record counts and burst sizes.
//!
//! [`DefenseSpec`] names each countermeasure (and its knobs) for scenario
//! configs and the `repro defend --defense <name>` CLI.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod pacer;
mod padset;
mod shaper;
mod spec;

pub use pacer::{AdaptivePacer, ConstantRatePacer};
pub use padset::{constrained_pad_set, PadSet};
pub use shaper::{dummy_record_plaintext, TlsShaper, DUMMY_RECORD_LEN};
pub use spec::DefenseSpec;
