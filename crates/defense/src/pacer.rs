//! Middlebox shapers: reshape server→client packet *timing* at a gateway
//! the site trusts (the paper's "middlebox defense" deployment, where the
//! CDN edge — not the origin — runs the countermeasure).
//!
//! Both shapers pace only payload-bearing packets but keep *every* packet
//! in the shaped direction — pure ACKs included — behind the last departure
//! they granted, so the stream transits the pacer in order. Letting ACKs
//! overtake held data would regress the observed ack sequence (a wire
//! conformance violation) and could trigger spurious dup-ACK storms,
//! confounding the measurement with TCP pathology rather than the defense
//! itself.

use h2priv_netsim::{Dir, MbContext, Middlebox, Packet, SimDuration, SimTime, Verdict};
use h2priv_tcp::TcpSegment;

/// Constant-rate shaping: payload packets in the shaped direction depart
/// on a fixed time grid, one per `interval` slot. An on-path observer sees
/// a metronome instead of the response burst structure the attack's
/// segmentation keys on.
#[derive(Debug, Clone)]
pub struct ConstantRatePacer {
    dir: Dir,
    interval: SimDuration,
    /// Earliest slot the next payload packet may occupy.
    next_slot: SimTime,
    /// Latest departure granted in the shaped direction (order
    /// preservation for non-payload packets).
    last_departure: SimTime,
    /// Packets that were actually delayed (the latency cost numerator).
    pub delayed: u64,
    /// Total delay added across all packets.
    pub added_delay: SimDuration,
}

impl ConstantRatePacer {
    /// Shapes payload packets heading `dir` to one departure per
    /// `interval`.
    pub fn new(dir: Dir, interval: SimDuration) -> Self {
        ConstantRatePacer {
            dir,
            interval,
            next_slot: SimTime::ZERO,
            last_departure: SimTime::ZERO,
            delayed: 0,
            added_delay: SimDuration::ZERO,
        }
    }

    fn depart(&mut self, departure: SimTime, now: SimTime) -> Verdict {
        self.last_departure = departure;
        let hold = departure.saturating_since(now);
        if hold.is_zero() {
            Verdict::Forward
        } else {
            self.delayed += 1;
            self.added_delay += hold;
            Verdict::Hold(hold)
        }
    }
}

impl Middlebox<TcpSegment> for ConstantRatePacer {
    fn process(&mut self, packet: &Packet<TcpSegment>, ctx: &mut MbContext<'_>) -> Verdict {
        if ctx.dir != self.dir {
            return Verdict::Forward;
        }
        if packet.payload.payload.is_empty() {
            // Pure ACKs don't consume a slot but may not overtake held
            // data: they ride along at the stream's current departure
            // front.
            let departure = self.last_departure.max(ctx.now);
            return self.depart(departure, ctx.now);
        }
        let slot = self.next_slot.max(ctx.now).max(self.last_departure);
        self.next_slot = slot + self.interval;
        self.depart(slot, ctx.now)
    }
}

/// Adaptive (randomized) pacing: each payload packet in the shaped
/// direction picks up a uniformly-sampled extra delay in
/// `[0, max_jitter]`, clamped so departures stay ordered. Gap lengths —
/// the attack's burst-segmentation signal — become noisy instead of
/// reflecting object boundaries.
#[derive(Debug, Clone)]
pub struct AdaptivePacer {
    dir: Dir,
    max_jitter: SimDuration,
    /// Latest departure handed out so far (order preservation).
    last_departure: SimTime,
    /// Packets that were actually delayed.
    pub delayed: u64,
    /// Total delay added across all packets.
    pub added_delay: SimDuration,
}

impl AdaptivePacer {
    /// Shapes payload packets heading `dir` with up to `max_jitter` of
    /// random extra delay each.
    pub fn new(dir: Dir, max_jitter: SimDuration) -> Self {
        AdaptivePacer {
            dir,
            max_jitter,
            last_departure: SimTime::ZERO,
            delayed: 0,
            added_delay: SimDuration::ZERO,
        }
    }
}

impl Middlebox<TcpSegment> for AdaptivePacer {
    fn process(&mut self, packet: &Packet<TcpSegment>, ctx: &mut MbContext<'_>) -> Verdict {
        if ctx.dir != self.dir {
            return Verdict::Forward;
        }
        let departure = if packet.payload.payload.is_empty() {
            // Pure ACKs pick up no jitter of their own but may not
            // overtake held data.
            self.last_departure.max(ctx.now)
        } else {
            let nanos = self.max_jitter.as_nanos();
            let jitter = if nanos == 0 {
                SimDuration::ZERO
            } else {
                SimDuration::from_nanos(ctx.rng.gen_range_u64(0..nanos + 1))
            };
            (ctx.now + jitter).max(self.last_departure)
        };
        self.last_departure = departure;
        let hold = departure.saturating_since(ctx.now);
        if hold.is_zero() {
            Verdict::Forward
        } else {
            self.delayed += 1;
            self.added_delay += hold;
            Verdict::Hold(hold)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_netsim::{NodeId, ShapingState, SimRng};
    use h2priv_tcp::{Seq, TcpFlags};

    fn data_packet(src: usize, dst: usize) -> Packet<TcpSegment> {
        let seg = TcpSegment {
            seq: Seq(1),
            ack: Seq(0),
            flags: TcpFlags::ACK,
            window: 0,
            payload: vec![0xAA; 500].into(),
        };
        Packet::new(NodeId(src), NodeId(dst), 540, seg)
    }

    fn ack_packet(src: usize, dst: usize) -> Packet<TcpSegment> {
        let seg = TcpSegment {
            seq: Seq(1),
            ack: Seq(2),
            flags: TcpFlags::ACK,
            window: 0,
            payload: Vec::new().into(),
        };
        Packet::new(NodeId(src), NodeId(dst), 40, seg)
    }

    fn run<M: Middlebox<TcpSegment>>(
        mb: &mut M,
        packet: &Packet<TcpSegment>,
        dir: Dir,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Verdict {
        let mut shaping = ShapingState::default();
        let mut ctx = MbContext {
            now,
            dir,
            rng,
            shaping: &mut shaping,
        };
        mb.process(packet, &mut ctx)
    }

    #[test]
    fn constant_rate_spaces_a_burst() {
        let mut pacer = ConstantRatePacer::new(Dir::RightToLeft, SimDuration::from_millis(2));
        let mut rng = SimRng::seed_from(1);
        let p = data_packet(2, 0);
        let now = SimTime::from_millis(10);
        // A 4-packet burst at the same instant departs at 0/2/4/6 ms extra.
        assert_eq!(
            run(&mut pacer, &p, Dir::RightToLeft, now, &mut rng),
            Verdict::Forward
        );
        for i in 1..4u64 {
            match run(&mut pacer, &p, Dir::RightToLeft, now, &mut rng) {
                Verdict::Hold(d) => assert_eq!(d, SimDuration::from_millis(2 * i)),
                other => panic!("expected hold, got {other:?}"),
            }
        }
        assert_eq!(pacer.delayed, 3);
    }

    #[test]
    fn constant_rate_ignores_other_direction_and_acks() {
        let mut pacer = ConstantRatePacer::new(Dir::RightToLeft, SimDuration::from_millis(2));
        let mut rng = SimRng::seed_from(1);
        let now = SimTime::ZERO;
        let d = data_packet(0, 2);
        let a = ack_packet(2, 0);
        assert_eq!(
            run(&mut pacer, &d, Dir::LeftToRight, now, &mut rng),
            Verdict::Forward
        );
        assert_eq!(
            run(&mut pacer, &a, Dir::RightToLeft, now, &mut rng),
            Verdict::Forward
        );
        assert_eq!(
            run(&mut pacer, &a, Dir::RightToLeft, now, &mut rng),
            Verdict::Forward
        );
    }

    #[test]
    fn acks_do_not_overtake_held_data() {
        let mut pacer = ConstantRatePacer::new(Dir::RightToLeft, SimDuration::from_millis(2));
        let mut rng = SimRng::seed_from(1);
        let now = SimTime::from_millis(10);
        let d = data_packet(2, 0);
        let a = ack_packet(2, 0);
        // Two data packets: the second is held to the 12 ms slot.
        assert_eq!(
            run(&mut pacer, &d, Dir::RightToLeft, now, &mut rng),
            Verdict::Forward
        );
        assert_eq!(
            run(&mut pacer, &d, Dir::RightToLeft, now, &mut rng),
            Verdict::Hold(SimDuration::from_millis(2))
        );
        // A pure ACK right behind them must not depart before 12 ms.
        assert_eq!(
            run(&mut pacer, &a, Dir::RightToLeft, now, &mut rng),
            Verdict::Hold(SimDuration::from_millis(2))
        );
        // ...but consumes no slot: the next data packet still gets 12 ms.
        assert_eq!(
            run(&mut pacer, &d, Dir::RightToLeft, now, &mut rng),
            Verdict::Hold(SimDuration::from_millis(4))
        );
    }

    #[test]
    fn adaptive_acks_do_not_overtake_held_data() {
        let mut pacer = AdaptivePacer::new(Dir::RightToLeft, SimDuration::from_millis(8));
        let mut rng = SimRng::seed_from(7);
        let now = SimTime::ZERO;
        let d = data_packet(2, 0);
        let a = ack_packet(2, 0);
        let data_departure = match run(&mut pacer, &d, Dir::RightToLeft, now, &mut rng) {
            Verdict::Forward => now,
            Verdict::Hold(h) => now + h,
            Verdict::Drop => panic!("pacer never drops"),
        };
        let ack_departure = match run(&mut pacer, &a, Dir::RightToLeft, now, &mut rng) {
            Verdict::Forward => now,
            Verdict::Hold(h) => now + h,
            Verdict::Drop => panic!("pacer never drops"),
        };
        assert!(ack_departure >= data_departure, "ACK overtook held data");
    }

    #[test]
    fn constant_rate_idle_stream_is_undelayed() {
        let mut pacer = ConstantRatePacer::new(Dir::RightToLeft, SimDuration::from_millis(2));
        let mut rng = SimRng::seed_from(1);
        let p = data_packet(2, 0);
        // Packets arriving slower than the rate pass untouched.
        for i in 0..4u64 {
            let now = SimTime::from_millis(10 * i);
            assert_eq!(
                run(&mut pacer, &p, Dir::RightToLeft, now, &mut rng),
                Verdict::Forward
            );
        }
        assert_eq!(pacer.delayed, 0);
    }

    #[test]
    fn adaptive_jitter_is_bounded_and_ordered() {
        let mut pacer = AdaptivePacer::new(Dir::RightToLeft, SimDuration::from_millis(8));
        let mut rng = SimRng::seed_from(7);
        let p = data_packet(2, 0);
        let mut last_departure = SimTime::ZERO;
        for i in 0..50u64 {
            let now = SimTime::from_millis(i);
            let v = run(&mut pacer, &p, Dir::RightToLeft, now, &mut rng);
            let departure = match v {
                Verdict::Forward => now,
                Verdict::Hold(d) => {
                    assert!(d <= SimDuration::from_millis(8 + 50));
                    now + d
                }
                Verdict::Drop => panic!("pacer never drops"),
            };
            assert!(departure >= last_departure, "reordering at packet {i}");
            last_departure = departure;
        }
        assert!(pacer.delayed > 0, "50 jittered packets, none delayed?");
    }

    #[test]
    fn adaptive_zero_jitter_is_passthrough() {
        let mut pacer = AdaptivePacer::new(Dir::RightToLeft, SimDuration::ZERO);
        let mut rng = SimRng::seed_from(7);
        let p = data_packet(2, 0);
        for i in 0..10u64 {
            let now = SimTime::from_millis(i);
            assert_eq!(
                run(&mut pacer, &p, Dir::RightToLeft, now, &mut rng),
                Verdict::Forward
            );
        }
    }
}
