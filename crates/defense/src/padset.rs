//! Constrained padding: pad object bodies to a small set of canonical
//! sizes with bounded multiplicative overhead.
//!
//! Reed & Reiter (arXiv:2108.01753) formalize the problem: choose padded
//! sizes to maximize the observer's uncertainty subject to a per-object
//! overhead bound `padded ≤ c · real`. The exact scheme solves a
//! per-distribution optimization; this model uses the classic greedy
//! cover that its bound admits — scan sizes from the largest down, emit a
//! canonical size, and let it absorb every smaller size within the
//! overhead factor. The result is the minimal canonical set such that
//! every input size pads up by at most the bound, which collapses each
//! covered group of objects into one indistinguishable wire size.

/// A sorted set of canonical padded sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PadSet {
    /// Canonical sizes, ascending, deduplicated, non-empty for any
    /// non-empty input.
    sizes: Vec<usize>,
}

impl PadSet {
    /// Builds a pad set from explicit canonical sizes (test hook; use
    /// [`constrained_pad_set`] for the derived set).
    pub fn from_sizes(mut sizes: Vec<usize>) -> Self {
        sizes.retain(|&s| s > 0);
        sizes.sort_unstable();
        sizes.dedup();
        PadSet { sizes }
    }

    /// The canonical sizes, ascending.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// The padded size for a body of `len` bytes: the smallest canonical
    /// size that fits, or — for bodies beyond the largest canonical size —
    /// the next multiple of that largest size (so unexpected large objects
    /// still land on a coarse grid instead of leaking exact sizes).
    pub fn pad_to(&self, len: usize) -> usize {
        let Some(&max) = self.sizes.last() else {
            return len;
        };
        match self.sizes.binary_search(&len) {
            Ok(_) => len,
            Err(i) if i < self.sizes.len() => self.sizes[i],
            Err(_) => len.div_ceil(max) * max,
        }
    }

    /// Bytes of padding added for a body of `len` bytes.
    pub fn overhead(&self, len: usize) -> usize {
        self.pad_to(len) - len
    }
}

/// Derives the minimal canonical size set covering `sizes` such that no
/// object grows by more than `overhead_per_mille` ‰ (e.g. `250` bounds
/// padding at +25 %). Greedy largest-first cover: the largest uncovered
/// size becomes canonical and absorbs every size within the bound below
/// it. Integer arithmetic throughout, so the set is deterministic.
pub fn constrained_pad_set(sizes: &[usize], overhead_per_mille: u32) -> PadSet {
    let mut sorted: Vec<usize> = sizes.iter().copied().filter(|&s| s > 0).collect();
    sorted.sort_unstable();
    sorted.dedup();
    let mut canon = Vec::new();
    let bound = 1000 + overhead_per_mille as usize;
    while let Some(&largest) = sorted.last() {
        canon.push(largest);
        // `largest` covers every size s with s * bound / 1000 >= largest,
        // i.e. s >= ceil(largest * 1000 / bound).
        let floor = (largest * 1000).div_ceil(bound);
        sorted.retain(|&s| s < floor);
    }
    canon.reverse();
    PadSet { sizes: canon }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_cover_respects_overhead_bound() {
        let sizes = [1_200, 1_300, 5_000, 5_500, 90_000, 100_000];
        let set = constrained_pad_set(&sizes, 250);
        for &s in &sizes {
            let padded = set.pad_to(s);
            assert!(padded >= s);
            assert!(
                padded * 1000 <= s * 1250,
                "{s} pads to {padded}, over the 25% bound"
            );
        }
    }

    #[test]
    fn cover_collapses_nearby_sizes() {
        // 1200 and 1300 are within 25% of each other: one canonical size.
        let set = constrained_pad_set(&[1_200, 1_300], 250);
        assert_eq!(set.sizes(), &[1_300]);
        assert_eq!(set.pad_to(1_200), 1_300);
        assert_eq!(set.pad_to(1_300), 1_300);
    }

    #[test]
    fn distant_sizes_stay_distinct() {
        let set = constrained_pad_set(&[1_000, 100_000], 250);
        assert_eq!(set.sizes(), &[1_000, 100_000]);
    }

    #[test]
    fn zero_overhead_keeps_every_size() {
        let sizes = [10, 20, 30];
        let set = constrained_pad_set(&sizes, 0);
        assert_eq!(set.sizes(), &sizes);
        for &s in &sizes {
            assert_eq!(set.pad_to(s), s);
        }
    }

    #[test]
    fn oversized_bodies_land_on_coarse_grid() {
        let set = PadSet::from_sizes(vec![1_000, 4_000]);
        assert_eq!(set.pad_to(4_001), 8_000);
        assert_eq!(set.pad_to(9_000), 12_000);
    }

    #[test]
    fn empty_set_is_identity() {
        let set = constrained_pad_set(&[], 500);
        assert_eq!(set.pad_to(1234), 1234);
        assert_eq!(set.overhead(1234), 0);
    }

    #[test]
    fn overhead_accessor_matches() {
        let set = PadSet::from_sizes(vec![2_048]);
        assert_eq!(set.overhead(2_000), 48);
        assert_eq!(set.overhead(2_048), 0);
    }
}
