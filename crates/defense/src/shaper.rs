//! Endpoint-side dummy-record injection.
//!
//! The paper's monitor counts `application_data` TLS records and measures
//! their burst sizes (§V). A cooperating endpoint can pollute both signals
//! by sealing *dummy* records — records carrying protocol chaff instead of
//! response bytes — interleaved with real traffic. Three design points
//! matter:
//!
//! * **Plaintext**: each dummy is an unsolicited HTTP/2 PING-ACK frame.
//!   RFC 7540 §6.7 requires a receiver to ignore unexpected PING ACKs, so
//!   the peer's stack absorbs them silently — no app-visible effect, no
//!   reply traffic.
//! * **Sealing**: dummies MUST be sealed by the sender's own record
//!   writer, in stream order. The ciphertext is then indistinguishable
//!   from real data (`content_type == 23`, nonce continuity holds) — an
//!   out-of-band injector would be both filterable and a TLS violation
//!   (see `h2priv-conformance`'s `record-seq` rule).
//! * **Schedule**: [`TlsShaper`] decides *when* dummies go out. Constant
//!   rate keeps the wire ticking at a fixed cadence whether or not real
//!   data flows; adaptive padding (after WTF-PAD's intra-burst sampling)
//!   arms a randomized timer after each real send and fires a dummy only
//!   if the stream goes quiet first — filling exactly the inter-burst
//!   gaps the attack's segmentation keys on.

use h2priv_http2::{encode_frame, Frame};
use h2priv_netsim::{SimDuration, SimRng, SimTime};

/// Plaintext length of one dummy record: a 9-byte frame header plus the
/// 8-byte PING payload.
pub const DUMMY_RECORD_LEN: usize = 17;

/// The dummy record's plaintext: an unsolicited PING-ACK with a zero
/// opaque payload, absorbed silently by any conformant peer.
pub fn dummy_record_plaintext() -> Vec<u8> {
    encode_frame(&Frame::Ping {
        ack: true,
        data: [0; 8],
    })
}

#[derive(Debug, Clone)]
enum Policy {
    /// One record per `interval`, real or dummy.
    ConstantRate { interval: SimDuration },
    /// After each real send, arm a timer at `min_gap + U[0, spread]`; if
    /// it fires before the next real send, emit a dummy and re-arm.
    Adaptive {
        min_gap: SimDuration,
        spread: SimDuration,
    },
}

/// Decides when a host should seal dummy records into its outbound
/// stream. The host pump calls [`on_real_send`](TlsShaper::on_real_send)
/// whenever it seals real traffic, polls
/// [`dummies_due`](TlsShaper::dummies_due) on every pass, and merges
/// [`next_wakeup`](TlsShaper::next_wakeup) into its timer schedule so an
/// otherwise-idle host still wakes to pad.
#[derive(Debug, Clone)]
pub struct TlsShaper {
    policy: Policy,
    /// Next scheduled dummy, if armed.
    due: Option<SimTime>,
    /// Shaping stops once the page load is over (the browser went idle);
    /// an unbounded shaper would pad forever and the trial would only end
    /// at its deadline.
    active: bool,
    /// Dummy records emitted so far (the overhead numerator).
    pub dummies_sent: u64,
}

/// At most this many dummies are released per poll: a host that slept
/// through many constant-rate slots (e.g. while TCP-blocked) emits a
/// bounded catch-up burst instead of one dummy per elapsed slot.
const MAX_DUMMIES_PER_POLL: u32 = 8;

impl TlsShaper {
    /// Constant-rate schedule: one record per `interval`.
    pub fn constant_rate(interval: SimDuration) -> Self {
        TlsShaper {
            policy: Policy::ConstantRate {
                interval: interval.max(SimDuration::from_micros(100)),
            },
            due: None,
            active: true,
            dummies_sent: 0,
        }
    }

    /// Adaptive-padding schedule: dummies fill gaps longer than
    /// `min_gap + U[0, spread]`.
    pub fn adaptive(min_gap: SimDuration, spread: SimDuration) -> Self {
        TlsShaper {
            policy: Policy::Adaptive { min_gap, spread },
            due: None,
            active: true,
            dummies_sent: 0,
        }
    }

    /// Stops the schedule (page load finished); no further dummies.
    pub fn deactivate(&mut self) {
        self.active = false;
        self.due = None;
    }

    /// True while the shaper still wants wakeups.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Notes that real traffic was sealed at `now`: the wire is busy, so
    /// the gap timer re-arms from here.
    pub fn on_real_send(&mut self, now: SimTime, rng: &mut SimRng) {
        if self.active {
            self.arm(now, rng);
        }
    }

    /// How many dummy records to seal at `now`. Advances the schedule;
    /// bounded by [`MAX_DUMMIES_PER_POLL`] per call.
    pub fn dummies_due(&mut self, now: SimTime, rng: &mut SimRng) -> u32 {
        if !self.active {
            return 0;
        }
        // First poll: start the clock without emitting.
        if self.due.is_none() {
            self.arm(now, rng);
            return 0;
        }
        let mut count = 0;
        while count < MAX_DUMMIES_PER_POLL && self.due.is_some_and(|t| t <= now) {
            count += 1;
            match &self.policy {
                // Constant rate ticks on a grid: the next slot follows the
                // previous one, so a late poll still emits per elapsed slot.
                Policy::ConstantRate { interval } => {
                    self.due = Some(self.due.expect("checked above") + *interval);
                }
                Policy::Adaptive { .. } => self.arm(now, rng),
            }
        }
        // A long sleep leaves the grid far behind even after the capped
        // catch-up: snap forward rather than burn future polls on stale
        // slots.
        if self.due.is_some_and(|t| t <= now) {
            self.arm(now, rng);
        }
        self.dummies_sent += count as u64;
        count
    }

    /// When the host should next wake to pad, if the schedule is armed.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        if self.active {
            self.due
        } else {
            None
        }
    }

    fn arm(&mut self, now: SimTime, rng: &mut SimRng) {
        let gap = match &self.policy {
            Policy::ConstantRate { interval } => *interval,
            Policy::Adaptive { min_gap, spread } => {
                let extra = match spread.as_nanos() {
                    0 => SimDuration::ZERO,
                    n => SimDuration::from_nanos(rng.gen_range_u64(0..n + 1)),
                };
                *min_gap + extra
            }
        };
        self.due = Some(now + gap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dummy_plaintext_is_a_ping_ack() {
        let bytes = dummy_record_plaintext();
        assert_eq!(bytes.len(), DUMMY_RECORD_LEN);
        // Frame header: length 8, type PING (0x6), flags ACK (0x1).
        assert_eq!(&bytes[..5], &[0, 0, 8, 0x6, 0x1]);
    }

    #[test]
    fn constant_rate_ticks_when_idle() {
        let mut rng = SimRng::seed_from(3);
        let mut shaper = TlsShaper::constant_rate(SimDuration::from_millis(2));
        // First poll arms without emitting.
        assert_eq!(shaper.dummies_due(SimTime::ZERO, &mut rng), 0);
        assert_eq!(shaper.next_wakeup(), Some(SimTime::from_millis(2)));
        // Nothing due before the tick.
        assert_eq!(shaper.dummies_due(SimTime::from_millis(1), &mut rng), 0);
        // One dummy per elapsed tick.
        assert_eq!(shaper.dummies_due(SimTime::from_millis(2), &mut rng), 1);
        assert_eq!(shaper.dummies_due(SimTime::from_millis(4), &mut rng), 1);
        assert_eq!(shaper.dummies_sent, 2);
    }

    #[test]
    fn real_traffic_resets_constant_rate_clock() {
        let mut rng = SimRng::seed_from(3);
        let mut shaper = TlsShaper::constant_rate(SimDuration::from_millis(2));
        shaper.dummies_due(SimTime::ZERO, &mut rng);
        shaper.on_real_send(SimTime::from_millis(1), &mut rng);
        // The slot moved to 3 ms: nothing due at 2 ms.
        assert_eq!(shaper.dummies_due(SimTime::from_millis(2), &mut rng), 0);
        assert_eq!(shaper.dummies_due(SimTime::from_millis(3), &mut rng), 1);
    }

    #[test]
    fn catch_up_burst_is_bounded() {
        let mut rng = SimRng::seed_from(3);
        let mut shaper = TlsShaper::constant_rate(SimDuration::from_millis(1));
        shaper.dummies_due(SimTime::ZERO, &mut rng);
        // Slept 100 slots: the catch-up is capped at the per-poll bound
        // and the schedule snaps forward (not one dummy per missed slot).
        let n = shaper.dummies_due(SimTime::from_millis(100), &mut rng);
        assert_eq!(n, 8);
        assert_eq!(shaper.next_wakeup(), Some(SimTime::from_millis(101)));
    }

    #[test]
    fn adaptive_fills_quiet_gaps_only() {
        let mut rng = SimRng::seed_from(9);
        let mut shaper =
            TlsShaper::adaptive(SimDuration::from_millis(5), SimDuration::from_millis(3));
        shaper.on_real_send(SimTime::ZERO, &mut rng);
        let armed = shaper.next_wakeup().expect("armed after real send");
        assert!(armed >= SimTime::from_millis(5) && armed <= SimTime::from_millis(8));
        // Real sends keep arriving faster than the gap: never fires.
        for i in 1..10u64 {
            let t = SimTime::from_millis(i);
            assert_eq!(shaper.dummies_due(t, &mut rng), 0);
            shaper.on_real_send(t, &mut rng);
        }
        // Then the stream goes quiet past the armed gap: one dummy.
        assert_eq!(shaper.dummies_due(SimTime::from_millis(20), &mut rng), 1);
    }

    #[test]
    fn deactivated_shaper_is_silent() {
        let mut rng = SimRng::seed_from(9);
        let mut shaper = TlsShaper::constant_rate(SimDuration::from_millis(1));
        shaper.dummies_due(SimTime::ZERO, &mut rng);
        shaper.deactivate();
        assert!(!shaper.is_active());
        assert_eq!(shaper.next_wakeup(), None);
        assert_eq!(shaper.dummies_due(SimTime::from_millis(10), &mut rng), 0);
    }
}
