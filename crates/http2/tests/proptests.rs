//! Property-based tests of the HTTP/2 substrate: codec and HPACK
//! roundtrips over arbitrary inputs, and connection-level conservation
//! laws under arbitrary interleavings.
//!
//! Gated behind the `proptests` feature: the external `proptest` crate is
//! unavailable in offline builds. Re-add the dev-dependency and enable the
//! feature to run these.
#![cfg(feature = "proptests")]

use h2priv_http2::hpack::{Decoder, Encoder, HeaderField};
use h2priv_http2::{
    encode_frame, ErrorCode, Frame, FrameDecoder, H2Config, H2Connection, H2Event, SendPolicy,
    StreamId,
};
use proptest::prelude::*;

fn arb_header() -> impl Strategy<Value = HeaderField> {
    (
        "[a-z][a-z0-9-]{0,20}",
        proptest::string::string_regex("[ -~]{0,40}").unwrap(),
    )
        .prop_map(|(n, v)| HeaderField::new(n, v))
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (
            1u32..1000,
            any::<bool>(),
            proptest::collection::vec(any::<u8>(), 0..2048)
        )
            .prop_map(|(id, end, data)| Frame::Data {
                stream_id: StreamId(id),
                end_stream: end,
                data,
            }),
        (
            1u32..1000,
            any::<bool>(),
            proptest::collection::vec(any::<u8>(), 0..256)
        )
            .prop_map(|(id, end, block)| Frame::Headers {
                stream_id: StreamId(id),
                end_stream: end,
                header_block: block,
            }),
        (1u32..1000, 0u32..14).prop_map(|(id, code)| Frame::RstStream {
            stream_id: StreamId(id),
            error_code: ErrorCode::from_u32(code),
        }),
        (any::<[u8; 8]>(), any::<bool>()).prop_map(|(data, ack)| Frame::Ping { ack, data }),
        (0u32..1000, 1u32..0x7FFF_FFFF).prop_map(|(id, inc)| Frame::WindowUpdate {
            stream_id: StreamId(id),
            increment: inc,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any frame survives encode → decode byte-exactly.
    #[test]
    fn frame_codec_roundtrips(frame in arb_frame()) {
        let wire = encode_frame(&frame);
        let mut dec = FrameDecoder::new(false);
        dec.push(&wire);
        prop_assert_eq!(dec.next_frame().unwrap(), Some(frame));
        prop_assert_eq!(dec.next_frame().unwrap(), None);
    }

    /// A frame stream survives arbitrary re-chunking.
    #[test]
    fn frame_decoder_is_chunking_invariant(
        frames in proptest::collection::vec(arb_frame(), 1..8),
        cut in any::<prop::sample::Index>(),
    ) {
        let wire: Vec<u8> = frames.iter().flat_map(encode_frame).collect();
        let mid = cut.index(wire.len().max(1));
        let mut dec = FrameDecoder::new(false);
        dec.push(&wire[..mid]);
        let mut got = Vec::new();
        while let Some(f) = dec.next_frame().unwrap() {
            got.push(f);
        }
        dec.push(&wire[mid..]);
        while let Some(f) = dec.next_frame().unwrap() {
            got.push(f);
        }
        prop_assert_eq!(got, frames);
    }

    /// HPACK roundtrips arbitrary header lists through a shared stateful
    /// encoder/decoder pair, across multiple blocks.
    #[test]
    fn hpack_roundtrips_statefully(
        blocks in proptest::collection::vec(
            proptest::collection::vec(arb_header(), 0..12), 1..6),
    ) {
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        for headers in &blocks {
            let wire = enc.encode(headers);
            let got = dec.decode(&wire).unwrap();
            prop_assert_eq!(&got, headers);
        }
    }

    /// Decoding arbitrary bytes never panics (errors are fine).
    #[test]
    fn hpack_decoder_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut dec = Decoder::new();
        let _ = dec.decode(&bytes);
    }

    /// Frame decoding of arbitrary bytes never panics.
    #[test]
    fn frame_decoder_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut dec = FrameDecoder::new(false);
        dec.push(&bytes);
        for _ in 0..16 {
            match dec.next_frame() {
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
    }
}

/// Shuttles until quiescent; panics on protocol errors.
fn shuttle(a: &mut H2Connection, b: &mut H2Connection) {
    loop {
        let mut moved = false;
        while let Some(out) = a.poll_send() {
            b.recv(&out.bytes).unwrap();
            moved = true;
        }
        while let Some(out) = b.poll_send() {
            a.recv(&out.bytes).unwrap();
            moved = true;
        }
        if !moved {
            break;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Conservation: every request gets a response; bytes sent on each
    /// stream equal bytes received; the mux policy never loses data.
    #[test]
    fn connection_conserves_bytes(
        sizes in proptest::collection::vec(1usize..30_000, 1..10),
        policy in prop_oneof![
            Just(SendPolicy::RoundRobin),
            Just(SendPolicy::Sequential),
            (0u64..1000).prop_map(|seed| SendPolicy::RandomOrder { seed }),
        ],
        chunk in 256usize..4096,
    ) {
        let mut client = H2Connection::new_client(H2Config::default());
        let mut server = H2Connection::new_server(H2Config {
            send_policy: policy,
            data_chunk_size: chunk,
            ..H2Config::default()
        });
        shuttle(&mut client, &mut server);
        let ids: Vec<StreamId> = sizes
            .iter()
            .enumerate()
            .map(|(i, _)| {
                client
                    .open_stream(
                        &[HeaderField::new(":path", format!("/{i}"))],
                        true,
                    )
                    .unwrap()
            })
            .collect();
        shuttle(&mut client, &mut server);
        while server.poll_event().is_some() {}
        for (&id, &size) in ids.iter().zip(&sizes) {
            server
                .send_headers(id, &[HeaderField::new(":status", "200")], false)
                .unwrap();
            server
                .send_data(id, &vec![id.0 as u8; size], true)
                .unwrap();
        }
        shuttle(&mut client, &mut server);
        let mut received = std::collections::HashMap::new();
        while let Some(ev) = client.poll_event() {
            if let H2Event::Data { stream_id, data, .. } = ev {
                *received.entry(stream_id).or_insert(0usize) += data.len();
            }
        }
        for (&id, &size) in ids.iter().zip(&sizes) {
            prop_assert_eq!(received.get(&id).copied().unwrap_or(0), size);
        }
        prop_assert_eq!(
            server.stats().data_bytes_sent,
            client.stats().data_bytes_received
        );
    }
}
