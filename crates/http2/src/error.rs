//! HTTP/2 error codes and protocol errors (RFC 7540 §7, §11.4).

use std::fmt;

/// Error codes carried by `RST_STREAM` and `GOAWAY` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// Graceful shutdown (0x0).
    NoError,
    /// Protocol violation detected (0x1).
    ProtocolError,
    /// Unexpected internal failure (0x2).
    InternalError,
    /// Flow-control accounting violated (0x3).
    FlowControlError,
    /// Settings not acknowledged in time (0x4).
    SettingsTimeout,
    /// Frame received on a closed stream (0x5).
    StreamClosed,
    /// Frame size invalid (0x6).
    FrameSizeError,
    /// Stream refused before processing (0x7).
    RefusedStream,
    /// Stream no longer needed (0x8) — what a browser sends when it
    /// abandons in-flight responses, the signal forced in §IV-D.
    Cancel,
    /// HPACK state ruined (0x9).
    CompressionError,
    /// Connect error (0xa).
    ConnectError,
    /// Peer is misbehaving badly enough to disconnect (0xb).
    EnhanceYourCalm,
    /// Transport security inadequate (0xc).
    InadequateSecurity,
    /// HTTP/1.1 required (0xd).
    Http11Required,
}

impl ErrorCode {
    /// Wire value.
    pub fn as_u32(self) -> u32 {
        match self {
            ErrorCode::NoError => 0x0,
            ErrorCode::ProtocolError => 0x1,
            ErrorCode::InternalError => 0x2,
            ErrorCode::FlowControlError => 0x3,
            ErrorCode::SettingsTimeout => 0x4,
            ErrorCode::StreamClosed => 0x5,
            ErrorCode::FrameSizeError => 0x6,
            ErrorCode::RefusedStream => 0x7,
            ErrorCode::Cancel => 0x8,
            ErrorCode::CompressionError => 0x9,
            ErrorCode::ConnectError => 0xa,
            ErrorCode::EnhanceYourCalm => 0xb,
            ErrorCode::InadequateSecurity => 0xc,
            ErrorCode::Http11Required => 0xd,
        }
    }

    /// Parses a wire value; unknown codes map to
    /// [`ErrorCode::InternalError`] per RFC 7540 §7.
    pub fn from_u32(v: u32) -> ErrorCode {
        match v {
            0x0 => ErrorCode::NoError,
            0x1 => ErrorCode::ProtocolError,
            0x2 => ErrorCode::InternalError,
            0x3 => ErrorCode::FlowControlError,
            0x4 => ErrorCode::SettingsTimeout,
            0x5 => ErrorCode::StreamClosed,
            0x6 => ErrorCode::FrameSizeError,
            0x7 => ErrorCode::RefusedStream,
            0x8 => ErrorCode::Cancel,
            0x9 => ErrorCode::CompressionError,
            0xa => ErrorCode::ConnectError,
            0xb => ErrorCode::EnhanceYourCalm,
            0xc => ErrorCode::InadequateSecurity,
            0xd => ErrorCode::Http11Required,
            _ => ErrorCode::InternalError,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}(0x{:x})", self.as_u32())
    }
}

/// A fatal connection-level protocol failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct H2Error {
    /// Code to report in GOAWAY.
    pub code: ErrorCode,
    /// Human-readable context.
    pub reason: &'static str,
}

impl H2Error {
    /// Creates an error.
    pub fn new(code: ErrorCode, reason: &'static str) -> Self {
        H2Error { code, reason }
    }
}

impl fmt::Display for H2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "connection error {}: {}", self.code, self.reason)
    }
}

impl std::error::Error for H2Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip() {
        for v in 0x0..=0xdu32 {
            assert_eq!(ErrorCode::from_u32(v).as_u32(), v);
        }
    }

    #[test]
    fn unknown_code_maps_to_internal() {
        assert_eq!(ErrorCode::from_u32(0x9999), ErrorCode::InternalError);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", ErrorCode::Cancel), "Cancel(0x8)");
        let err = H2Error::new(ErrorCode::ProtocolError, "bad preface");
        assert!(format!("{err}").contains("bad preface"));
    }
}
