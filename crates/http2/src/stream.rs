//! Stream identifiers and the per-stream state machine (RFC 7540 §5.1).

use std::fmt;

/// An HTTP/2 stream identifier (31 bits; 0 addresses the connection).
///
/// Client-initiated streams are odd, server-initiated even. New streams must
/// use monotonically increasing ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StreamId(pub u32);

impl StreamId {
    /// Stream 0: the connection itself (SETTINGS, PING, connection-level
    /// WINDOW_UPDATE, GOAWAY).
    pub const CONNECTION: StreamId = StreamId(0);

    /// True for client-initiated streams.
    pub fn is_client_initiated(self) -> bool {
        self.0 % 2 == 1
    }

    /// The next stream id for the same initiator.
    pub fn next_for_initiator(self) -> StreamId {
        StreamId(self.0 + 2)
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// RFC 7540 §5.1 stream states (PUSH_PROMISE "reserved" states are omitted —
/// the model never pushes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamState {
    /// Not yet used.
    Idle,
    /// Both directions open.
    Open,
    /// We sent END_STREAM; the peer may still send.
    HalfClosedLocal,
    /// The peer sent END_STREAM; we may still send.
    HalfClosedRemote,
    /// Fully closed (normally or via RST_STREAM).
    Closed,
}

impl StreamState {
    /// True if the local endpoint may still send DATA/HEADERS.
    pub fn can_send(self) -> bool {
        matches!(self, StreamState::Open | StreamState::HalfClosedRemote)
    }

    /// True if frames from the peer are still expected.
    pub fn can_receive(self) -> bool {
        matches!(self, StreamState::Open | StreamState::HalfClosedLocal)
    }

    /// Transition after the local side sends END_STREAM.
    pub fn on_local_end(self) -> StreamState {
        match self {
            StreamState::Open => StreamState::HalfClosedLocal,
            StreamState::HalfClosedRemote => StreamState::Closed,
            other => other,
        }
    }

    /// Transition after the peer sends END_STREAM.
    pub fn on_remote_end(self) -> StreamState {
        match self {
            StreamState::Open => StreamState::HalfClosedRemote,
            StreamState::HalfClosedLocal => StreamState::Closed,
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity() {
        assert!(StreamId(1).is_client_initiated());
        assert!(StreamId(3).is_client_initiated());
        assert!(!StreamId(2).is_client_initiated());
        assert!(!StreamId::CONNECTION.is_client_initiated());
    }

    #[test]
    fn next_preserves_parity() {
        assert_eq!(StreamId(1).next_for_initiator(), StreamId(3));
        assert_eq!(StreamId(2).next_for_initiator(), StreamId(4));
    }

    #[test]
    fn lifecycle_normal() {
        let s = StreamState::Open;
        let s = s.on_local_end();
        assert_eq!(s, StreamState::HalfClosedLocal);
        assert!(!s.can_send());
        assert!(s.can_receive());
        let s = s.on_remote_end();
        assert_eq!(s, StreamState::Closed);
        assert!(!s.can_receive());
    }

    #[test]
    fn lifecycle_remote_first() {
        let s = StreamState::Open.on_remote_end();
        assert_eq!(s, StreamState::HalfClosedRemote);
        assert!(s.can_send());
        assert_eq!(s.on_local_end(), StreamState::Closed);
    }

    #[test]
    fn terminal_states_absorb() {
        assert_eq!(StreamState::Closed.on_local_end(), StreamState::Closed);
        assert_eq!(StreamState::Closed.on_remote_end(), StreamState::Closed);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", StreamId(7)), "s7");
    }
}
