//! Flow-control windows (RFC 7540 §5.2, §6.9).
//!
//! Flow control is what keeps large responses *in flight* for many RTTs:
//! a sender may emit at most `window` bytes of DATA before stopping to wait
//! for `WINDOW_UPDATE` credit. In the reproduction this is a load-bearing
//! mechanism — it is why objects requested hundreds of milliseconds apart
//! still interleave at baseline (DESIGN.md §6.3), giving the paper its
//! "degree of multiplexing ≈ 98 %" starting point.

/// Default initial window size (RFC 7540 §6.9.2).
pub const DEFAULT_WINDOW: u32 = 65_535;

/// Maximum window size (2^31 − 1).
pub const MAX_WINDOW: i64 = (1 << 31) - 1;

/// One direction's flow-control window (connection- or stream-level).
///
/// The window may legitimately go negative when the peer shrinks
/// `SETTINGS_INITIAL_WINDOW_SIZE` mid-stream, so it is signed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowWindow(i64);

/// Error returned when credit would overflow the RFC limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowOverflow;

impl std::fmt::Display for WindowOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flow-control window exceeds 2^31-1")
    }
}

impl std::error::Error for WindowOverflow {}

impl FlowWindow {
    /// Creates a window with the given initial size.
    pub fn new(initial: u32) -> Self {
        FlowWindow(initial as i64)
    }

    /// Bytes currently available to send (0 if the window is negative).
    pub fn available(&self) -> usize {
        self.0.max(0) as usize
    }

    /// Raw signed window value.
    pub fn value(&self) -> i64 {
        self.0
    }

    /// Consumes `bytes` of window (sending or receiving DATA).
    ///
    /// # Panics
    ///
    /// Debug-asserts that consumption never exceeds the available window;
    /// the connection checks before sending.
    pub fn consume(&mut self, bytes: usize) {
        debug_assert!(
            bytes <= self.available(),
            "consumed {bytes} with only {} available",
            self.available()
        );
        self.0 -= bytes as i64;
    }

    /// Adds `credit` bytes of window (a WINDOW_UPDATE).
    ///
    /// # Errors
    ///
    /// Fails if the window would exceed 2^31 − 1; RFC 7540 requires the
    /// receiver to treat this as a flow-control error.
    pub fn expand(&mut self, credit: u32) -> Result<(), WindowOverflow> {
        let next = self.0 + credit as i64;
        if next > MAX_WINDOW {
            return Err(WindowOverflow);
        }
        self.0 = next;
        Ok(())
    }

    /// Applies a change of the peer's `SETTINGS_INITIAL_WINDOW_SIZE`: every
    /// stream window shifts by the delta (RFC 7540 §6.9.2).
    pub fn adjust(&mut self, delta: i64) {
        self.0 += delta;
    }
}

impl Default for FlowWindow {
    fn default() -> Self {
        FlowWindow::new(DEFAULT_WINDOW)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_initial() {
        assert_eq!(FlowWindow::new(100).available(), 100);
        assert_eq!(FlowWindow::default().available(), 65_535);
    }

    #[test]
    fn consume_and_expand() {
        let mut w = FlowWindow::new(1000);
        w.consume(400);
        assert_eq!(w.available(), 600);
        w.expand(200).unwrap();
        assert_eq!(w.available(), 800);
    }

    #[test]
    fn expand_overflow_rejected() {
        let mut w = FlowWindow::new(DEFAULT_WINDOW);
        assert!(w.expand(2_000_000_000).is_ok());
        assert_eq!(w.expand(200_000_000), Err(WindowOverflow));
    }

    #[test]
    fn settings_adjust_can_go_negative() {
        let mut w = FlowWindow::new(100);
        w.consume(100);
        w.adjust(-50);
        assert_eq!(w.value(), -50);
        assert_eq!(w.available(), 0);
        w.expand(60).unwrap();
        assert_eq!(w.available(), 10);
    }

    #[test]
    #[should_panic(expected = "consumed")]
    #[cfg(debug_assertions)]
    fn over_consumption_asserts() {
        let mut w = FlowWindow::new(10);
        w.consume(11);
    }
}
