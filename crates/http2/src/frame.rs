//! HTTP/2 frame types (RFC 7540 §4, §6).
//!
//! Multiplexing — the privacy mechanism the paper attacks — is carried
//! entirely by these frames: concurrent responses interleave as DATA frames
//! with different stream identifiers on one connection. `RST_STREAM` is the
//! frame the paper's adversary forces the client to send in §IV-D ("a packet
//! with the corresponding HTTP/2 stream number and RST_STREAM flag set").

use crate::error::ErrorCode;
use crate::stream::StreamId;

/// Length of the fixed frame header on the wire.
pub const FRAME_HEADER_LEN: usize = 9;

/// Default and minimum value of `SETTINGS_MAX_FRAME_SIZE`.
pub const DEFAULT_MAX_FRAME_SIZE: usize = 16_384;

/// Frame type registry values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameType {
    /// Carries request/response bytes (0x0).
    Data,
    /// Opens a stream / carries a header block (0x1).
    Headers,
    /// Stream dependency/weight advice (0x2).
    Priority,
    /// Abnormally terminates a stream (0x3).
    RstStream,
    /// Connection configuration (0x4).
    Settings,
    /// Server push announcement (0x5).
    PushPromise,
    /// Liveness / RTT measurement (0x6).
    Ping,
    /// Connection shutdown (0x7).
    GoAway,
    /// Flow-control credit (0x8).
    WindowUpdate,
    /// Header block continuation (0x9).
    Continuation,
}

impl FrameType {
    /// Wire value.
    pub fn as_u8(self) -> u8 {
        match self {
            FrameType::Data => 0x0,
            FrameType::Headers => 0x1,
            FrameType::Priority => 0x2,
            FrameType::RstStream => 0x3,
            FrameType::Settings => 0x4,
            FrameType::PushPromise => 0x5,
            FrameType::Ping => 0x6,
            FrameType::GoAway => 0x7,
            FrameType::WindowUpdate => 0x8,
            FrameType::Continuation => 0x9,
        }
    }

    /// Parses a wire value.
    pub fn from_u8(v: u8) -> Option<FrameType> {
        Some(match v {
            0x0 => FrameType::Data,
            0x1 => FrameType::Headers,
            0x2 => FrameType::Priority,
            0x3 => FrameType::RstStream,
            0x4 => FrameType::Settings,
            0x5 => FrameType::PushPromise,
            0x6 => FrameType::Ping,
            0x7 => FrameType::GoAway,
            0x8 => FrameType::WindowUpdate,
            0x9 => FrameType::Continuation,
            _ => return None,
        })
    }
}

/// Frame flag bits (meaning depends on the frame type).
pub mod flags {
    /// DATA / HEADERS: no further frames on this stream from this sender.
    pub const END_STREAM: u8 = 0x1;
    /// SETTINGS / PING: acknowledgment.
    pub const ACK: u8 = 0x1;
    /// HEADERS / PUSH_PROMISE / CONTINUATION: header block complete.
    pub const END_HEADERS: u8 = 0x4;
    /// DATA / HEADERS: padding present (RFC 7540 §6.1/§6.2; emitted when a
    /// padding defense sets a pad schedule, always strippable on receive).
    pub const PADDED: u8 = 0x8;
    /// HEADERS: priority fields present.
    pub const PRIORITY: u8 = 0x20;
}

/// Identifiers for the SETTINGS parameters the model supports (RFC 7540 §6.5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SettingId {
    /// HPACK dynamic table size (0x1).
    HeaderTableSize,
    /// Server push permitted (0x2).
    EnablePush,
    /// Peer's concurrent stream limit (0x3).
    MaxConcurrentStreams,
    /// Initial per-stream flow-control window (0x4).
    InitialWindowSize,
    /// Largest frame payload accepted (0x5).
    MaxFrameSize,
    /// Advisory header list size bound (0x6).
    MaxHeaderListSize,
}

impl SettingId {
    /// Wire value.
    pub fn as_u16(self) -> u16 {
        match self {
            SettingId::HeaderTableSize => 0x1,
            SettingId::EnablePush => 0x2,
            SettingId::MaxConcurrentStreams => 0x3,
            SettingId::InitialWindowSize => 0x4,
            SettingId::MaxFrameSize => 0x5,
            SettingId::MaxHeaderListSize => 0x6,
        }
    }

    /// Parses a wire value (unknown settings are skipped per RFC).
    pub fn from_u16(v: u16) -> Option<SettingId> {
        Some(match v {
            0x1 => SettingId::HeaderTableSize,
            0x2 => SettingId::EnablePush,
            0x3 => SettingId::MaxConcurrentStreams,
            0x4 => SettingId::InitialWindowSize,
            0x5 => SettingId::MaxFrameSize,
            0x6 => SettingId::MaxHeaderListSize,
            _ => return None,
        })
    }
}

/// Flow-control overhead of a PADDED frame: the pad-length byte plus the
/// padding itself. RFC 7540 §6.1/§6.9: the *entire* payload — padding
/// included — debits connection and stream flow-control windows.
pub fn pad_overhead(pad: Option<u8>) -> usize {
    pad.map_or(0, |p| 1 + p as usize)
}

/// A parsed HTTP/2 frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// DATA: response/request body bytes.
    Data {
        /// Stream carrying the data.
        stream_id: StreamId,
        /// Last frame of the stream from this sender.
        end_stream: bool,
        /// Payload bytes — a shared slice of the queued body, so muxing a
        /// body into frames does not copy it.
        data: h2priv_bytes::SharedBytes,
        /// Padding: `Some(n)` sets the PADDED flag and appends `n` zero
        /// octets after a pad-length byte (a padding defense's schedule);
        /// `None` emits the classic unpadded frame.
        pad: Option<u8>,
    },
    /// HEADERS: an HPACK-encoded header block (always END_HEADERS in this
    /// model; CONTINUATION is supported on the wire but never emitted).
    Headers {
        /// Stream being opened / responded on.
        stream_id: StreamId,
        /// Last frame of the stream from this sender.
        end_stream: bool,
        /// HPACK header block fragment.
        header_block: Vec<u8>,
        /// Padding, as for [`Frame::Data`] (HEADERS padding does not touch
        /// flow control but still widens the frame on the wire).
        pad: Option<u8>,
    },
    /// PRIORITY: stream dependency advice.
    Priority {
        /// Stream the advice applies to.
        stream_id: StreamId,
        /// Stream depended on.
        depends_on: StreamId,
        /// Exclusive dependency bit.
        exclusive: bool,
        /// Weight (wire value 0–255 ⇒ weight 1–256).
        weight: u8,
    },
    /// RST_STREAM: abnormal stream termination.
    RstStream {
        /// Stream being reset.
        stream_id: StreamId,
        /// Why.
        error_code: ErrorCode,
    },
    /// SETTINGS: configuration (empty + ACK flag acknowledges).
    Settings {
        /// True for an acknowledgment.
        ack: bool,
        /// Parameter list (empty on ACK).
        settings: Vec<(SettingId, u32)>,
    },
    /// PING: liveness probe.
    Ping {
        /// True for a reply.
        ack: bool,
        /// Opaque payload.
        data: [u8; 8],
    },
    /// GOAWAY: connection shutdown.
    GoAway {
        /// Highest stream id the sender may have processed.
        last_stream_id: StreamId,
        /// Why.
        error_code: ErrorCode,
    },
    /// WINDOW_UPDATE: flow-control credit (stream 0 = connection level).
    WindowUpdate {
        /// Target stream (0 for the connection).
        stream_id: StreamId,
        /// Credit in bytes (1 ..= 2^31-1).
        increment: u32,
    },
}

impl Frame {
    /// The frame's stream id (0 for connection-level frames).
    pub fn stream_id(&self) -> StreamId {
        match *self {
            Frame::Data { stream_id, .. }
            | Frame::Headers { stream_id, .. }
            | Frame::Priority { stream_id, .. }
            | Frame::RstStream { stream_id, .. }
            | Frame::WindowUpdate { stream_id, .. } => stream_id,
            Frame::Settings { .. } | Frame::Ping { .. } | Frame::GoAway { .. } => {
                StreamId::CONNECTION
            }
        }
    }

    /// Bytes this frame debits from flow-control windows: the DATA payload
    /// including the pad-length byte and padding when present (RFC 7540
    /// §6.9.1 — flow control accounts for the whole payload). Zero for
    /// frame types that are not flow controlled.
    pub fn flow_len(&self) -> usize {
        match self {
            Frame::Data { data, pad, .. } => data.len() + pad_overhead(*pad),
            _ => 0,
        }
    }

    /// The frame's wire type.
    pub fn frame_type(&self) -> FrameType {
        match self {
            Frame::Data { .. } => FrameType::Data,
            Frame::Headers { .. } => FrameType::Headers,
            Frame::Priority { .. } => FrameType::Priority,
            Frame::RstStream { .. } => FrameType::RstStream,
            Frame::Settings { .. } => FrameType::Settings,
            Frame::Ping { .. } => FrameType::Ping,
            Frame::GoAway { .. } => FrameType::GoAway,
            Frame::WindowUpdate { .. } => FrameType::WindowUpdate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_type_roundtrip() {
        for v in 0..=9u8 {
            let t = FrameType::from_u8(v).unwrap();
            assert_eq!(t.as_u8(), v);
        }
        assert_eq!(FrameType::from_u8(0xA), None);
    }

    #[test]
    fn setting_id_roundtrip() {
        for v in 1..=6u16 {
            let s = SettingId::from_u16(v).unwrap();
            assert_eq!(s.as_u16(), v);
        }
        assert_eq!(SettingId::from_u16(0x99), None);
    }

    #[test]
    fn stream_id_of_connection_frames_is_zero() {
        let f = Frame::Settings {
            ack: false,
            settings: vec![],
        };
        assert_eq!(f.stream_id(), StreamId::CONNECTION);
        let f = Frame::Ping {
            ack: false,
            data: [0; 8],
        };
        assert_eq!(f.stream_id(), StreamId::CONNECTION);
    }

    #[test]
    fn frame_type_accessor_matches_variant() {
        let f = Frame::Data {
            stream_id: StreamId(3),
            end_stream: true,
            data: vec![1].into(),
            pad: None,
        };
        assert_eq!(f.frame_type(), FrameType::Data);
        assert_eq!(f.stream_id(), StreamId(3));
    }

    #[test]
    fn flow_len_counts_pad_length_byte_and_padding() {
        let unpadded = Frame::Data {
            stream_id: StreamId(1),
            end_stream: false,
            data: vec![0; 10].into(),
            pad: None,
        };
        assert_eq!(unpadded.flow_len(), 10);
        let padded = Frame::Data {
            stream_id: StreamId(1),
            end_stream: false,
            data: vec![0; 10].into(),
            pad: Some(5),
        };
        assert_eq!(padded.flow_len(), 16, "10 data + 1 pad-length byte + 5 pad");
        assert_eq!(
            pad_overhead(Some(0)),
            1,
            "PADDED with zero pad still costs the length byte"
        );
        assert_eq!(pad_overhead(None), 0);
    }
}
