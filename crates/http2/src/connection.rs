//! The HTTP/2 connection: stream table, flow control, HPACK contexts, and
//! the DATA mux whose scheduling policy *is* the multiplexing behaviour the
//! paper investigates.
//!
//! Sans-IO: bytes in via [`H2Connection::recv`], wire bytes out via
//! [`H2Connection::poll_send`] (one preface or frame at a time, with
//! metadata so the host can build ground-truth annotations), application
//! events out via [`H2Connection::poll_event`].

use std::collections::VecDeque;

use h2priv_bytes::FxHashMap;

use h2priv_bytes::SharedBytes;

use crate::codec::{encode_frame_into, encode_headers_split, FrameDecoder, CLIENT_PREFACE};
use crate::error::{ErrorCode, H2Error};
use crate::flow::FlowWindow;
use crate::frame::{Frame, FrameType};
use crate::hpack::{Decoder as HpackDecoder, Encoder as HpackEncoder, HeaderField};
use crate::settings::{H2Config, SendPolicy, Settings};
use crate::stream::{StreamId, StreamState};

/// Pad schedule for frame-size quantization: the padding that rounds
/// `len + 1` (content plus the pad-length byte) up to the next multiple of
/// `quantum`, capped by the 255-octet pad field and the `max_total` payload
/// bound. `None` when quantization is off or even the pad-length byte does
/// not fit; `Some(0)` still sets the PADDED flag (the schedule stays
/// deterministic — every frame in a quantized stream carries the flag).
fn quantize_pad(len: usize, quantum: usize, max_total: usize) -> Option<u8> {
    if quantum <= 1 || len + 1 > max_total {
        return None;
    }
    let total = len + 1;
    let target = total.div_ceil(quantum) * quantum;
    let pad = (target - total).min(255).min(max_total - total);
    Some(pad as u8)
}

/// Which side of the connection this endpoint is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Peer {
    /// Request initiator.
    Client,
    /// Responder.
    Server,
}

/// Application-visible events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum H2Event {
    /// The peer's SETTINGS arrived (connection usable).
    PeerSettings(Settings),
    /// A header block arrived (request on the server, response on the
    /// client).
    Headers {
        /// Stream the block arrived on.
        stream_id: StreamId,
        /// Decoded header list.
        headers: Vec<HeaderField>,
        /// Peer will send no more frames on this stream.
        end_stream: bool,
    },
    /// Body bytes arrived.
    Data {
        /// Stream the data arrived on.
        stream_id: StreamId,
        /// The bytes (shared with the decoded frame, not copied).
        data: SharedBytes,
        /// Peer will send no more frames on this stream.
        end_stream: bool,
    },
    /// The peer reset a stream.
    Reset {
        /// Stream that was reset.
        stream_id: StreamId,
        /// Why.
        error_code: ErrorCode,
    },
    /// The peer is shutting the connection down.
    GoAway {
        /// Highest stream id the peer may have processed.
        last_stream_id: StreamId,
        /// Why.
        error_code: ErrorCode,
    },
    /// A PING we sent was acknowledged.
    PingAcked,
}

/// Metadata describing one [`Outgoing`] chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutgoingMeta {
    /// The 24-byte client preface.
    Preface,
    /// One encoded frame.
    Frame {
        /// The frame's type.
        frame_type: FrameType,
        /// The frame's stream.
        stream_id: StreamId,
        /// Payload length (DATA: body bytes carried).
        payload_len: usize,
        /// END_STREAM was set.
        end_stream: bool,
    },
}

/// One chunk of wire output: exact bytes plus what they are. The host uses
/// the metadata to annotate which TCP byte ranges carry which stream's DATA
/// — the simulation's ground truth for the degree-of-multiplexing metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outgoing {
    /// Buffer holding the wire bytes at `bytes[headroom..]`. The leading
    /// `headroom` bytes are reserved scratch the transport encryption may
    /// claim to seal the frame in place (header + nonce) without copying
    /// the payload into a fresh record buffer.
    pub bytes: Vec<u8>,
    /// Where the frame's wire bytes start within `bytes`.
    pub headroom: usize,
    /// Split sends ([`H2Config::split_data_frames`]): the DATA body bytes,
    /// which follow `bytes[headroom..]` on the wire but are *not* encoded
    /// into `bytes` — the mux hands the stream's shared chunk through
    /// untouched so a transport with a gather path never copies it. Empty
    /// for whole-frame sends and non-DATA frames.
    ///
    /// [`H2Config::split_data_frames`]: crate::settings::H2Config::split_data_frames
    pub body: SharedBytes,
    /// Split sends: count of zero padding octets that follow `body` on the
    /// wire (the pad-length byte itself is in `bytes`). Always 0 for
    /// whole-frame sends.
    pub tail_pad: usize,
    /// What the bytes are.
    pub meta: OutgoingMeta,
}

/// Zero padding octets for split DATA sends, shared so a gather path can
/// borrow the tail pad without allocating (the pad field caps at 255).
static PAD_ZEROS: [u8; 255] = [0; 255];

impl Outgoing {
    /// The frame's encoded bytes held in `bytes`: the whole frame for
    /// whole-frame sends; the frame header (plus pad-length byte) only,
    /// with the body in [`Outgoing::body`], for split DATA sends.
    pub fn frame_bytes(&self) -> &[u8] {
        &self.bytes[self.headroom..]
    }

    /// The frame's wire bytes as gather parts, in wire order:
    /// `[frame_bytes, body, tail padding]`. For whole-frame sends the last
    /// two parts are empty.
    pub fn wire_parts(&self) -> [&[u8]; 3] {
        [
            self.frame_bytes(),
            self.body.as_slice(),
            &PAD_ZEROS[..self.tail_pad],
        ]
    }

    /// Total wire length of the frame across all parts.
    pub fn wire_len(&self) -> usize {
        self.bytes.len() - self.headroom + self.body.len() + self.tail_pad
    }

    /// Appends the frame's complete wire bytes to `out` — the
    /// materializing fallback for consumers that need the frame
    /// contiguous (conformance taps, tests).
    pub fn write_wire_into(&self, out: &mut Vec<u8>) {
        for part in self.wire_parts() {
            out.extend_from_slice(part);
        }
    }
}

/// Counters for one connection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct H2Stats {
    /// DATA frames sent.
    pub data_frames_sent: u64,
    /// Body bytes sent in DATA frames.
    pub data_bytes_sent: u64,
    /// DATA frames received.
    pub data_frames_received: u64,
    /// Body bytes received.
    pub data_bytes_received: u64,
    /// HEADERS frames sent.
    pub headers_sent: u64,
    /// HEADERS frames received.
    pub headers_received: u64,
    /// RST_STREAM frames sent.
    pub resets_sent: u64,
    /// RST_STREAM frames received.
    pub resets_received: u64,
    /// Times the mux stalled on the connection-level window.
    pub conn_window_stalls: u64,
    /// Non-ACK SETTINGS frames received. A handshake contributes exactly
    /// one; a climbing count is the SETTINGS-flood signature the server
    /// guard rate-limits.
    pub settings_received: u64,
    /// Padding overhead sent (pad-length bytes + pad octets) across DATA
    /// and HEADERS frames — the wire cost of a frame-padding defense.
    pub pad_bytes_sent: u64,
}

/// Body bytes queued on one stream, as a FIFO of shared chunks. The mux
/// takes frame-sized prefixes: a take within the front chunk is an O(1)
/// sub-slice (the common case — a response body is queued as one chunk),
/// so scheduling bodies into DATA frames does not copy them.
#[derive(Debug, Default)]
struct PendingData {
    chunks: VecDeque<SharedBytes>,
    len: usize,
}

impl PendingData {
    fn len(&self) -> usize {
        self.len
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a chunk (empty chunks are ignored).
    fn push(&mut self, chunk: SharedBytes) {
        if chunk.is_empty() {
            return;
        }
        self.len += chunk.len();
        self.chunks.push_back(chunk);
    }

    /// Removes and returns the first `n` queued bytes. Zero-copy when they
    /// lie within the front chunk; a take spanning chunks merges them with
    /// one copy.
    fn take(&mut self, n: usize) -> SharedBytes {
        debug_assert!(n <= self.len);
        if n == 0 {
            return SharedBytes::new();
        }
        self.len -= n;
        let front = self.chunks.front_mut().expect("pending bytes exist");
        if n < front.len() {
            return front.split_to(n);
        }
        if n == front.len() {
            return self.chunks.pop_front().expect("front chunk exists");
        }
        let mut out = Vec::with_capacity(n);
        let mut remaining = n;
        while remaining > 0 {
            let front = self.chunks.front_mut().expect("pending bytes exist");
            if front.len() > remaining {
                out.extend_from_slice(&front.split_to(remaining));
                remaining = 0;
            } else {
                remaining -= front.len();
                out.extend_from_slice(&self.chunks.pop_front().expect("front chunk exists"));
            }
        }
        SharedBytes::from_vec(out)
    }

    fn clear(&mut self) {
        self.chunks.clear();
        self.len = 0;
    }
}

#[derive(Debug)]
struct StreamEntry {
    state: StreamState,
    send_window: FlowWindow,
    recv_window: FlowWindow,
    /// Bytes consumed from the recv window since the last WINDOW_UPDATE.
    recv_consumed: u32,
    /// Body bytes the application queued, awaiting mux scheduling.
    pending: PendingData,
    /// Send END_STREAM once `pending` drains.
    pending_end: bool,
    /// RFC 7540 priority weight (1–256; default 16). Only the
    /// [`SendPolicy::WeightedFair`] mux consults it.
    weight: u16,
    /// Deficit counter for weighted-fair scheduling.
    credit: i64,
}

impl StreamEntry {
    fn new(state: StreamState, send_window: u32, recv_window: u32) -> Self {
        StreamEntry {
            state,
            send_window: FlowWindow::new(send_window),
            recv_window: FlowWindow::new(recv_window),
            recv_consumed: 0,
            pending: PendingData::default(),
            pending_end: false,
            weight: 16,
            credit: 0,
        }
    }

    fn sendable(&self) -> usize {
        if !self.state.can_send() {
            return 0;
        }
        self.pending.len().min(self.send_window.available())
    }
}

/// One endpoint of an HTTP/2 connection.
///
/// # Examples
///
/// ```
/// use h2priv_http2::{H2Config, H2Connection, H2Event, HeaderField};
///
/// let mut client = H2Connection::new_client(H2Config::default());
/// let mut server = H2Connection::new_server(H2Config::default());
///
/// let stream = client
///     .open_stream(&[HeaderField::new(":method", "GET"),
///                    HeaderField::new(":path", "/")], true)
///     .unwrap();
///
/// // Shuttle bytes until quiescent.
/// loop {
///     let mut moved = false;
///     while let Some(out) = client.poll_send() {
///         server.recv(&out.bytes).unwrap();
///         moved = true;
///     }
///     while let Some(out) = server.poll_send() {
///         client.recv(&out.bytes).unwrap();
///         moved = true;
///     }
///     if !moved { break; }
/// }
/// let saw_request = std::iter::from_fn(|| server.poll_event()).any(|ev| {
///     matches!(ev, H2Event::Headers { stream_id, .. } if stream_id == stream)
/// });
/// assert!(saw_request);
/// ```
#[derive(Debug)]
pub struct H2Connection {
    peer: Peer,
    config: H2Config,
    peer_settings: Settings,
    peer_settings_received: bool,

    hpack_encoder: HpackEncoder,
    hpack_decoder: HpackDecoder,
    frame_decoder: FrameDecoder,

    next_stream_id: StreamId,
    streams: FxHashMap<StreamId, StreamEntry>,
    /// Insertion-ordered ids of streams that may have pending data.
    data_order: Vec<StreamId>,

    conn_send_window: FlowWindow,
    conn_recv_window: FlowWindow,
    conn_recv_consumed: u32,

    preface_sent: bool,
    initial_settings_sent: bool,
    window_bonus_sent: bool,
    goaway_received: bool,
    dead: bool,

    control_queue: VecDeque<Frame>,
    headers_queue: VecDeque<Frame>,
    events: VecDeque<H2Event>,

    /// Scratch bytes reserved at the front of every [`Outgoing`] buffer
    /// (see [`Outgoing::headroom`]). Zero unless the transport opts in.
    send_headroom: usize,
    /// Round-robin cursor into `data_order`.
    rr_cursor: usize,
    /// Set when a full [`H2Connection::poll_send`] pass came up empty and
    /// nothing has changed since: the next poll can answer `None` without
    /// re-walking the schedule. Cleared by every mutation that could make
    /// output available (queueing frames or data, and `recv`, which covers
    /// window updates and settings from the peer).
    output_idle: bool,
    /// Private xorshift state for [`SendPolicy::RandomOrder`].
    rand_state: u64,
    /// Frame buffers handed back by [`H2Connection::recycle_outgoing`],
    /// reused by [`emit`](Self::emit) so a pump loop that drains its
    /// [`Outgoing`]s promptly sends without per-frame allocation.
    spare_bufs: Vec<Vec<u8>>,

    stats: H2Stats,
}

impl H2Connection {
    /// Creates the client endpoint.
    pub fn new_client(config: H2Config) -> Self {
        Self::new(Peer::Client, config)
    }

    /// Creates the server endpoint.
    pub fn new_server(config: H2Config) -> Self {
        Self::new(Peer::Server, config)
    }

    fn new(peer: Peer, config: H2Config) -> Self {
        let rand_state = match config.send_policy {
            SendPolicy::RandomOrder { seed } => seed | 1,
            _ => 1,
        };
        H2Connection {
            peer,
            peer_settings: Settings::default(),
            peer_settings_received: false,
            hpack_encoder: HpackEncoder::with_table_size(
                config.settings.header_table_size as usize,
            ),
            hpack_decoder: HpackDecoder::with_table_size(
                config.settings.header_table_size as usize,
            ),
            frame_decoder: {
                let mut d = FrameDecoder::new(peer == Peer::Server);
                d.set_opaque_data(config.opaque_data_payloads);
                d
            },
            next_stream_id: match peer {
                Peer::Client => StreamId(1),
                Peer::Server => StreamId(2),
            },
            streams: FxHashMap::default(),
            data_order: Vec::new(),
            conn_send_window: FlowWindow::default(),
            conn_recv_window: FlowWindow::new(
                crate::flow::DEFAULT_WINDOW + config.connection_window_bonus,
            ),
            conn_recv_consumed: 0,
            preface_sent: peer == Peer::Server, // only clients send it
            initial_settings_sent: false,
            window_bonus_sent: config.connection_window_bonus == 0,
            goaway_received: false,
            dead: false,
            control_queue: VecDeque::new(),
            headers_queue: VecDeque::new(),
            events: VecDeque::new(),
            send_headroom: 0,
            rr_cursor: 0,
            output_idle: false,
            rand_state,
            spare_bufs: Vec::new(),
            stats: H2Stats::default(),
            config,
        }
    }

    /// Reserves `headroom` scratch bytes at the front of every frame buffer
    /// this connection emits, so a transport layer can seal frames in place
    /// instead of copying them into a fresh record buffer. The wire bytes
    /// are unchanged; only [`Outgoing::headroom`] moves.
    pub fn set_send_headroom(&mut self, headroom: usize) {
        self.send_headroom = headroom;
    }

    /// Returns an [`Outgoing`]'s frame buffer for reuse once the caller is
    /// finished with it (sealed elsewhere, or copied onto the wire). The
    /// next [`poll_send`](Self::poll_send) emits into a recycled buffer
    /// instead of allocating; a small pool is kept so batched pump loops
    /// that drain several frames before recycling still hit it.
    pub fn recycle_outgoing(&mut self, mut buf: Vec<u8>) {
        if self.spare_bufs.len() < Self::MAX_SPARE_BUFS && buf.capacity() > 0 {
            buf.clear();
            self.spare_bufs.push(buf);
        }
    }

    /// Cap on pooled frame buffers: enough to cover a drained pump burst,
    /// small enough that an idle connection pins almost nothing.
    const MAX_SPARE_BUFS: usize = 8;

    /// Surrenders every pooled frame buffer to `sink` (for an external
    /// buffer pool). For connections whose work is done: frees the frame
    /// pool back to the shard instead of pinning it until teardown.
    pub fn shed_spare_capacity(&mut self, sink: &mut dyn FnMut(Vec<u8>)) {
        for buf in self.spare_bufs.drain(..) {
            sink(buf);
        }
    }

    /// Seeds the frame-buffer pool from recycled capacity, up to the pool
    /// cap. `supply` is polled per slot; return `None` to stop early.
    pub fn adopt_spare_capacity(&mut self, supply: &mut dyn FnMut() -> Option<Vec<u8>>) {
        while self.spare_bufs.len() < Self::MAX_SPARE_BUFS {
            let Some(mut buf) = supply() else { return };
            buf.clear();
            self.spare_bufs.push(buf);
        }
    }

    // ---- inspectors -------------------------------------------------------

    /// Which side this endpoint is.
    pub fn peer(&self) -> Peer {
        self.peer
    }

    /// Counters.
    pub fn stats(&self) -> H2Stats {
        self.stats
    }

    /// The peer's settings, once received.
    pub fn peer_settings(&self) -> &Settings {
        &self.peer_settings
    }

    /// True once the peer's SETTINGS frame has arrived.
    pub fn is_ready(&self) -> bool {
        self.peer_settings_received
    }

    /// True if the connection has failed or received GOAWAY.
    pub fn is_closed(&self) -> bool {
        self.dead || self.goaway_received
    }

    /// A stream's state, if known.
    pub fn stream_state(&self, id: StreamId) -> Option<StreamState> {
        self.streams.get(&id).map(|s| s.state)
    }

    /// Body bytes queued but not yet sent on a stream.
    pub fn pending_data(&self, id: StreamId) -> usize {
        self.streams.get(&id).map_or(0, |s| s.pending.len())
    }

    /// Connection-level send window currently available (peer credit).
    pub fn conn_send_available(&self) -> usize {
        self.conn_send_window.available()
    }

    /// Ids of streams that still have body bytes queued.
    pub fn streams_with_pending_data(&self) -> Vec<StreamId> {
        let mut ids: Vec<StreamId> = self
            .streams
            .iter()
            .filter(|(_, e)| !e.pending.is_empty())
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Stream whose HEADERS/CONTINUATION sequence is mid-flight in the
    /// receive decoder (RFC 7540 §4.3 blocks every other frame until it
    /// completes) — the handle the server guard's header timeout watches.
    pub fn in_progress_header_stream(&self) -> Option<StreamId> {
        self.frame_decoder.in_progress_header_stream()
    }

    /// Send-window credit currently available on a stream (peer credit
    /// capped by what the peer granted; 0 for unknown streams). A stream
    /// with pending data and zero credit is stalled on the *peer* — the
    /// zero-window / slow-read signature.
    pub fn stream_send_available(&self, id: StreamId) -> usize {
        self.streams.get(&id).map_or(0, |e| {
            if e.state.can_send() {
                e.send_window.available()
            } else {
                0
            }
        })
    }

    /// Count of remotely-initiated streams not yet fully closed — the
    /// population bounded by our advertised `SETTINGS_MAX_CONCURRENT_STREAMS`.
    pub fn open_remote_streams(&self) -> usize {
        let local_is_client = matches!(self.peer, Peer::Client);
        self.streams
            .iter()
            .filter(|(id, e)| {
                id.is_client_initiated() != local_is_client && e.state != StreamState::Closed
            })
            .count()
    }

    // ---- application surface ----------------------------------------------

    /// Opens a new stream with a header block (a request, on the client).
    ///
    /// # Errors
    ///
    /// Fails if the connection is dead or the peer's
    /// `SETTINGS_MAX_CONCURRENT_STREAMS` limit is reached (RFC 7540
    /// §5.1.2) — callers should retry after streams close.
    pub fn open_stream(
        &mut self,
        headers: &[HeaderField],
        end_stream: bool,
    ) -> Result<StreamId, H2Error> {
        self.output_idle = false;
        if self.is_closed() {
            return Err(H2Error::new(ErrorCode::Cancel, "connection closed"));
        }
        let open_locally_initiated = self
            .streams
            .iter()
            .filter(|(id, e)| {
                id.is_client_initiated() == matches!(self.peer, Peer::Client)
                    && e.state != StreamState::Closed
            })
            .count();
        if open_locally_initiated >= self.peer_settings.max_concurrent_streams as usize {
            return Err(H2Error::new(
                ErrorCode::RefusedStream,
                "peer's concurrent stream limit reached",
            ));
        }
        let id = self.next_stream_id;
        self.next_stream_id = id.next_for_initiator();
        let state = if end_stream {
            StreamState::Open.on_local_end()
        } else {
            StreamState::Open
        };
        self.streams.insert(
            id,
            StreamEntry::new(
                state,
                self.peer_settings.initial_window_size,
                self.config.settings.initial_window_size,
            ),
        );
        self.data_order.push(id);
        let block = self.hpack_encoder.encode(headers);
        let pad = self.headers_pad(block.len());
        self.headers_queue.push_back(Frame::Headers {
            stream_id: id,
            end_stream,
            header_block: block,
            pad,
        });
        Ok(id)
    }

    /// Sends a header block on an existing (peer-initiated) stream — a
    /// response, on the server.
    ///
    /// # Errors
    ///
    /// Fails if the stream is unknown or cannot send.
    pub fn send_headers(
        &mut self,
        stream_id: StreamId,
        headers: &[HeaderField],
        end_stream: bool,
    ) -> Result<(), H2Error> {
        self.output_idle = false;
        let entry = self
            .streams
            .get_mut(&stream_id)
            .ok_or_else(|| H2Error::new(ErrorCode::StreamClosed, "unknown stream"))?;
        if !entry.state.can_send() {
            return Err(H2Error::new(ErrorCode::StreamClosed, "stream cannot send"));
        }
        if end_stream {
            entry.state = entry.state.on_local_end();
        }
        let block = self.hpack_encoder.encode(headers);
        let pad = self.headers_pad(block.len());
        self.headers_queue.push_back(Frame::Headers {
            stream_id,
            end_stream,
            header_block: block,
            pad,
        });
        Ok(())
    }

    /// Pad schedule for a HEADERS payload of `len` bytes under the
    /// configured quantization, or `None` when padding is off or the block
    /// will split into a CONTINUATION sequence (which is never padded).
    fn headers_pad(&self, len: usize) -> Option<u8> {
        let max = self.peer_settings.max_frame_size as usize;
        if len > max {
            return None;
        }
        quantize_pad(len, self.config.headers_pad_quantum, max)
    }

    /// Queues body bytes on a stream, copying them once into a shared
    /// chunk; the mux schedules them under flow control. `end_stream`
    /// marks the stream finished once these bytes drain. Callers that
    /// already hold a [`SharedBytes`] should use
    /// [`send_data_shared`](Self::send_data_shared) and skip the copy.
    ///
    /// # Errors
    ///
    /// Fails if the stream is unknown or cannot send.
    pub fn send_data(
        &mut self,
        stream_id: StreamId,
        data: &[u8],
        end_stream: bool,
    ) -> Result<(), H2Error> {
        self.output_idle = false;
        self.send_data_shared(stream_id, SharedBytes::copy_from_slice(data), end_stream)
    }

    /// Queues an already-shared body chunk on a stream without copying it:
    /// the mux slices DATA frames straight out of this buffer.
    ///
    /// # Errors
    ///
    /// Fails if the stream is unknown or cannot send.
    pub fn send_data_shared(
        &mut self,
        stream_id: StreamId,
        data: SharedBytes,
        end_stream: bool,
    ) -> Result<(), H2Error> {
        self.output_idle = false;
        let entry = self
            .streams
            .get_mut(&stream_id)
            .ok_or_else(|| H2Error::new(ErrorCode::StreamClosed, "unknown stream"))?;
        if !entry.state.can_send() {
            return Err(H2Error::new(ErrorCode::StreamClosed, "stream cannot send"));
        }
        entry.pending.push(data);
        if end_stream {
            entry.pending_end = true;
        }
        // The mux's schedule drops idle streams lazily; re-register.
        if !self.data_order.contains(&stream_id) {
            self.data_order.push(stream_id);
        }
        Ok(())
    }

    /// Resets a stream: queues RST_STREAM and drops its pending data.
    pub fn send_rst(&mut self, stream_id: StreamId, error_code: ErrorCode) {
        self.output_idle = false;
        if let Some(entry) = self.streams.get_mut(&stream_id) {
            entry.state = StreamState::Closed;
            entry.pending.clear();
            entry.pending_end = false;
        }
        self.stats.resets_sent += 1;
        self.control_queue.push_back(Frame::RstStream {
            stream_id,
            error_code,
        });
    }

    /// Queues a PING.
    pub fn send_ping(&mut self, data: [u8; 8]) {
        self.output_idle = false;
        self.control_queue
            .push_back(Frame::Ping { ack: false, data });
    }

    /// Sets a stream's local scheduling weight and announces it with a
    /// PRIORITY frame (wire value = weight − 1 per RFC 7540 §6.3).
    pub fn set_stream_weight(&mut self, stream_id: StreamId, weight: u16) {
        self.output_idle = false;
        let weight = weight.clamp(1, 256);
        if let Some(entry) = self.streams.get_mut(&stream_id) {
            entry.weight = weight;
        }
        self.control_queue.push_back(Frame::Priority {
            stream_id,
            depends_on: StreamId::CONNECTION,
            exclusive: false,
            weight: (weight - 1) as u8,
        });
    }

    /// A stream's current scheduling weight.
    pub fn stream_weight(&self, stream_id: StreamId) -> Option<u16> {
        self.streams.get(&stream_id).map(|e| e.weight)
    }

    /// Queues a GOAWAY.
    pub fn send_goaway(&mut self, error_code: ErrorCode) {
        self.output_idle = false;
        let last = StreamId(self.next_stream_id.0.saturating_sub(2));
        self.control_queue.push_back(Frame::GoAway {
            last_stream_id: last,
            error_code,
        });
    }

    /// Pops the next application event.
    pub fn poll_event(&mut self) -> Option<H2Event> {
        self.events.pop_front()
    }

    // ---- output ------------------------------------------------------------

    /// Produces the next chunk of wire output, or `None` when idle.
    pub fn poll_send(&mut self) -> Option<Outgoing> {
        if self.dead || self.output_idle {
            return None;
        }
        if !self.preface_sent {
            self.preface_sent = true;
            return Some(Outgoing {
                bytes: CLIENT_PREFACE.to_vec(),
                headroom: 0,
                body: SharedBytes::new(),
                tail_pad: 0,
                meta: OutgoingMeta::Preface,
            });
        }
        if !self.initial_settings_sent {
            self.initial_settings_sent = true;
            let frame = Frame::Settings {
                ack: false,
                settings: self.config.settings.to_wire(),
            };
            return Some(self.emit(frame));
        }
        if !self.window_bonus_sent {
            self.window_bonus_sent = true;
            let frame = Frame::WindowUpdate {
                stream_id: StreamId::CONNECTION,
                increment: self.config.connection_window_bonus,
            };
            return Some(self.emit(frame));
        }
        if let Some(frame) = self.control_queue.pop_front() {
            return Some(self.emit(frame));
        }
        if let Some(frame) = self.headers_queue.pop_front() {
            self.stats.headers_sent += 1;
            return Some(self.emit(frame));
        }
        let out = self.poll_send_data();
        self.output_idle = out.is_none();
        out
    }

    fn poll_send_data(&mut self) -> Option<Outgoing> {
        // Drop closed/empty streams from the schedule lazily.
        self.data_order.retain(|id| {
            self.streams
                .get(id)
                .is_some_and(|e| !e.pending.is_empty() || e.pending_end)
        });
        if self.data_order.is_empty() {
            return None;
        }
        let conn_avail = self.conn_send_window.available();
        // Candidate test: a stream that can make progress right now. The
        // common policies pick with one pass over `data_order` instead of
        // materializing the candidate list (this probe runs on every pump
        // round, so it must not allocate).
        let is_ready = |e: &StreamEntry| {
            (e.sendable() > 0 && conn_avail > 0)
                || (e.pending.is_empty() && e.pending_end && e.state.can_send())
        };
        let pick = match self.config.send_policy {
            SendPolicy::Sequential => {
                let first = self
                    .data_order
                    .iter()
                    .position(|id| is_ready(&self.streams[id]));
                let Some(i) = first else {
                    return self.note_send_stall(conn_avail);
                };
                i
            }
            SendPolicy::RoundRobin => {
                // First ready index at or after the cursor, wrapping to the
                // first ready index overall.
                let mut first = None;
                let mut at_or_after = None;
                for (i, id) in self.data_order.iter().enumerate() {
                    if !is_ready(&self.streams[id]) {
                        continue;
                    }
                    if first.is_none() {
                        first = Some(i);
                    }
                    if i >= self.rr_cursor {
                        at_or_after = Some(i);
                        break;
                    }
                }
                let Some(i) = at_or_after.or(first) else {
                    return self.note_send_stall(conn_avail);
                };
                self.rr_cursor = i + 1;
                if self.rr_cursor >= self.data_order.len() {
                    self.rr_cursor = 0;
                }
                i
            }
            SendPolicy::RandomOrder { .. } | SendPolicy::WeightedFair => {
                return self.poll_send_data_listed(conn_avail);
            }
        };
        self.send_data_at(pick, conn_avail)
    }

    /// Records a connection-window stall when data is pending but the
    /// connection window is exhausted; the shared no-candidate exit.
    fn note_send_stall(&mut self, conn_avail: usize) -> Option<Outgoing> {
        if conn_avail == 0
            && self
                .data_order
                .iter()
                .any(|id| self.streams[id].sendable() > 0)
        {
            self.stats.conn_window_stalls += 1;
        }
        None
    }

    /// The list-materializing scheduler for policies whose pick needs the
    /// whole candidate set (random draw, deficit round-robin).
    fn poll_send_data_listed(&mut self, conn_avail: usize) -> Option<Outgoing> {
        let ready: Vec<usize> = self
            .data_order
            .iter()
            .enumerate()
            .filter(|(_, id)| {
                let e = &self.streams[id];
                (e.sendable() > 0 && conn_avail > 0)
                    || (e.pending.is_empty() && e.pending_end && e.state.can_send())
            })
            .map(|(i, _)| i)
            .collect();
        if ready.is_empty() {
            return self.note_send_stall(conn_avail);
        }
        let pick = match self.config.send_policy {
            SendPolicy::Sequential | SendPolicy::RoundRobin => unreachable!("handled inline"),
            SendPolicy::RandomOrder { .. } => {
                // xorshift64* pick.
                let mut x = self.rand_state;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                self.rand_state = x;
                let r = (x.wrapping_mul(0x2545F4914F6CDD1D) >> 32) as usize;
                ready[r % ready.len()]
            }
            SendPolicy::WeightedFair => {
                // Deficit round-robin: take any ready stream with positive
                // credit; when all are exhausted, replenish ready streams
                // in proportion to their weights.
                loop {
                    if let Some(&i) = ready
                        .iter()
                        .find(|&&i| self.streams[&self.data_order[i]].credit > 0)
                    {
                        break i;
                    }
                    for &i in &ready {
                        let id = self.data_order[i];
                        let e = self.streams.get_mut(&id).expect("ready stream");
                        // One weight unit buys 128 bytes of service.
                        e.credit += e.weight as i64 * 128;
                    }
                }
            }
        };
        self.send_data_at(pick, conn_avail)
    }

    /// Emits the next DATA chunk of the stream at `data_order[pick]`.
    fn send_data_at(&mut self, pick: usize, conn_avail: usize) -> Option<Outgoing> {
        let id = self.data_order[pick];
        let max_frame = self.peer_settings.max_frame_size as usize;
        let quantum = self.config.data_pad_quantum;
        let entry = self.streams.get_mut(&id).expect("scheduled stream exists");
        let chunk_cap = self.config.data_chunk_size.min(max_frame);
        let n = entry.sendable().min(chunk_cap).min(conn_avail);
        // Padding is drawn from flow-control window *slack* only: RFC 7540
        // §6.9.1 debits the whole padded payload, and a defense must never
        // displace data bytes or deadlock the mux when windows run tight.
        let window_slack = entry
            .send_window
            .available()
            .min(conn_avail)
            .saturating_sub(n);
        let pad = quantize_pad(n, quantum, n + window_slack.min(max_frame - n));
        let data = entry.pending.take(n);
        let end_stream = entry.pending.is_empty() && entry.pending_end;
        if end_stream {
            entry.pending_end = false;
            entry.state = entry.state.on_local_end();
        }
        let cost = n + crate::frame::pad_overhead(pad);
        entry.send_window.consume(cost);
        entry.credit -= n as i64;
        self.conn_send_window.consume(cost);
        self.stats.data_frames_sent += 1;
        self.stats.data_bytes_sent += n as u64;
        let frame = Frame::Data {
            stream_id: id,
            end_stream,
            data,
            pad,
        };
        Some(self.emit(frame))
    }

    fn emit(&mut self, frame: Frame) -> Outgoing {
        if let Frame::Data { pad, .. } | Frame::Headers { pad, .. } = &frame {
            self.stats.pad_bytes_sent += crate::frame::pad_overhead(*pad) as u64;
        }
        // Header blocks larger than the peer's max frame size leave as a
        // HEADERS + CONTINUATION sequence (RFC 7540 §6.10).
        if let Frame::Headers {
            stream_id,
            end_stream,
            header_block,
            ..
        } = &frame
        {
            let max = self.peer_settings.max_frame_size as usize;
            if header_block.len() > max {
                let bytes = encode_headers_split(*stream_id, *end_stream, header_block, max);
                return Outgoing {
                    meta: OutgoingMeta::Frame {
                        frame_type: FrameType::Headers,
                        stream_id: *stream_id,
                        payload_len: header_block.len(),
                        end_stream: *end_stream,
                    },
                    headroom: 0,
                    body: SharedBytes::new(),
                    tail_pad: 0,
                    bytes,
                };
            }
        }
        let headroom = self.send_headroom;
        let mut bytes = self
            .spare_bufs
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(headroom + crate::frame::FRAME_HEADER_LEN + 64));
        bytes.resize(headroom, 0);
        // Split DATA sends: encode only the 9-byte header (plus pad-length
        // byte) and pass the shared body chunk through untouched. The body
        // is the overwhelming majority of the frame's bytes, and a
        // transport with a gather seal reads it exactly once — straight
        // from the stream's response buffer to the wire.
        let frame = match frame {
            Frame::Data {
                stream_id,
                end_stream,
                data,
                pad,
            } if self.config.split_data_frames => {
                let mut fl = if end_stream {
                    crate::frame::flags::END_STREAM
                } else {
                    0
                };
                if pad.is_some() {
                    fl |= crate::frame::flags::PADDED;
                }
                let payload_len = data.len() + crate::frame::pad_overhead(pad);
                crate::codec::encode_frame_header_into(
                    &mut bytes,
                    payload_len,
                    FrameType::Data,
                    fl,
                    stream_id,
                );
                if let Some(p) = pad {
                    bytes.push(p);
                }
                return Outgoing {
                    bytes,
                    headroom,
                    body: data,
                    tail_pad: pad.map_or(0, |p| p as usize),
                    meta: OutgoingMeta::Frame {
                        frame_type: FrameType::Data,
                        stream_id,
                        payload_len,
                        end_stream,
                    },
                };
            }
            other => other,
        };
        encode_frame_into(&mut bytes, &frame);
        let meta = OutgoingMeta::Frame {
            frame_type: frame.frame_type(),
            stream_id: frame.stream_id(),
            payload_len: bytes.len() - headroom - crate::frame::FRAME_HEADER_LEN,
            end_stream: matches!(
                frame,
                Frame::Data {
                    end_stream: true,
                    ..
                } | Frame::Headers {
                    end_stream: true,
                    ..
                }
            ),
        };
        Outgoing {
            bytes,
            headroom,
            body: SharedBytes::new(),
            tail_pad: 0,
            meta,
        }
    }

    // ---- input ---------------------------------------------------------------

    /// Feeds received transport bytes into the connection.
    ///
    /// # Errors
    ///
    /// A returned error is fatal: the connection queues a GOAWAY (drain it
    /// with [`poll_send`](Self::poll_send)) and refuses further work.
    pub fn recv(&mut self, bytes: &[u8]) -> Result<(), H2Error> {
        self.output_idle = false;
        if self.dead {
            return Err(H2Error::new(ErrorCode::InternalError, "connection dead"));
        }
        let mut input = bytes;
        loop {
            match self.frame_decoder.next_frame_borrowed(&mut input) {
                Ok(None) if input.is_empty() => return Ok(()),
                Ok(None) => {} // consumed a mid-sequence fragment; keep going
                Ok(Some(frame)) => self.handle_frame(frame)?,
                Err(_) => {
                    let err = H2Error::new(ErrorCode::ProtocolError, "frame decode failed");
                    self.fail(err.code);
                    return Err(err);
                }
            }
        }
    }

    fn fail(&mut self, code: ErrorCode) {
        self.send_goaway(code);
        self.dead = true;
    }

    fn handle_frame(&mut self, frame: Frame) -> Result<(), H2Error> {
        match frame {
            Frame::Settings { ack, settings } => {
                if ack {
                    return Ok(());
                }
                self.stats.settings_received += 1;
                let old_initial = self.peer_settings.initial_window_size;
                self.peer_settings.apply(&settings);
                self.frame_decoder
                    .set_max_frame_size(self.config.settings.max_frame_size as usize);
                let delta = self.peer_settings.initial_window_size as i64 - old_initial as i64;
                if delta != 0 {
                    for entry in self.streams.values_mut() {
                        entry.send_window.adjust(delta);
                    }
                }
                self.peer_settings_received = true;
                self.control_queue.push_back(Frame::Settings {
                    ack: true,
                    settings: vec![],
                });
                self.events
                    .push_back(H2Event::PeerSettings(self.peer_settings.clone()));
                Ok(())
            }
            Frame::Ping { ack, data } => {
                if ack {
                    self.events.push_back(H2Event::PingAcked);
                } else {
                    self.control_queue
                        .push_back(Frame::Ping { ack: true, data });
                }
                Ok(())
            }
            Frame::WindowUpdate {
                stream_id,
                increment,
            } => {
                if stream_id == StreamId::CONNECTION {
                    self.conn_send_window.expand(increment).map_err(|_| {
                        let err =
                            H2Error::new(ErrorCode::FlowControlError, "connection window overflow");
                        self.fail(err.code);
                        err
                    })?;
                } else if let Some(entry) = self.streams.get_mut(&stream_id) {
                    entry.send_window.expand(increment).map_err(|_| {
                        let err =
                            H2Error::new(ErrorCode::FlowControlError, "stream window overflow");
                        self.fail(err.code);
                        err
                    })?;
                }
                Ok(())
            }
            Frame::Headers {
                stream_id,
                end_stream,
                header_block,
                ..
            } => {
                let headers = self.hpack_decoder.decode(&header_block).map_err(|_| {
                    let err = H2Error::new(ErrorCode::CompressionError, "hpack decode failed");
                    self.fail(err.code);
                    err
                })?;
                self.stats.headers_received += 1;
                // RFC 7540 §5.1.2: our advertised MAX_CONCURRENT_STREAMS
                // binds the *peer's* opens too. A HEADERS opening a new
                // remotely-initiated stream beyond the limit is refused
                // with RST_STREAM(REFUSED_STREAM); the block was already
                // HPACK-decoded above, so the connection-wide compression
                // context stays synchronized (§4.3), but no stream state is
                // created and nothing is delivered.
                let remote_open = stream_id.is_client_initiated()
                    != matches!(self.peer, Peer::Client)
                    && !self.streams.contains_key(&stream_id);
                if remote_open
                    && self.open_remote_streams()
                        >= self.config.settings.max_concurrent_streams as usize
                {
                    self.send_rst(stream_id, ErrorCode::RefusedStream);
                    return Ok(());
                }
                let entry = self.streams.entry(stream_id).or_insert_with(|| {
                    StreamEntry::new(
                        StreamState::Open,
                        self.peer_settings.initial_window_size,
                        self.config.settings.initial_window_size,
                    )
                });
                if entry.state == StreamState::Closed {
                    // HEADERS racing our RST_STREAM: the block was HPACK-
                    // decoded above — the compression context is connection-
                    // wide and skipping a block would desynchronize it
                    // (RFC 7540 §4.3) — but the stream is dead, so nothing
                    // is delivered and no state transition happens.
                    return Ok(());
                }
                if end_stream {
                    entry.state = entry.state.on_remote_end();
                }
                if !self.data_order.contains(&stream_id) {
                    self.data_order.push(stream_id);
                }
                self.events.push_back(H2Event::Headers {
                    stream_id,
                    headers,
                    end_stream,
                });
                Ok(())
            }
            Frame::Data {
                stream_id,
                end_stream,
                data,
                pad,
            } => {
                self.stats.data_frames_received += 1;
                self.stats.data_bytes_received += data.len() as u64;
                // Connection-level accounting. RFC 7540 §6.9.1: the whole
                // payload — pad-length byte and padding included — debits
                // the windows, so padded senders and unpadded ledgers stay
                // in sync (and the WINDOW_UPDATEs below re-credit the same
                // padded totals).
                let len = data.len() + crate::frame::pad_overhead(pad);
                if len > self.conn_recv_window.available() {
                    let err = H2Error::new(
                        ErrorCode::FlowControlError,
                        "peer overran connection window",
                    );
                    self.fail(err.code);
                    return Err(err);
                }
                self.conn_recv_window.consume(len);
                self.conn_recv_consumed += len as u32;
                let initial = crate::flow::DEFAULT_WINDOW + self.config.connection_window_bonus;
                if self.conn_recv_consumed >= initial / 2 {
                    let inc = self.conn_recv_consumed;
                    self.conn_recv_consumed = 0;
                    self.conn_recv_window.expand(inc).expect("restoring credit");
                    self.control_queue.push_back(Frame::WindowUpdate {
                        stream_id: StreamId::CONNECTION,
                        increment: inc,
                    });
                }
                // Stream-level accounting. DATA for a stream we already
                // reset (or never opened) may still arrive — it was in
                // flight when the RST_STREAM crossed it. Its connection-
                // window debit above has already happened, exactly once
                // (RFC 7540 §5.1, §6.9: flow control is not reclaimed by
                // resets); the payload itself is discarded, not delivered.
                let deliver = match self.streams.get_mut(&stream_id) {
                    Some(entry) if entry.state == StreamState::Closed => false,
                    Some(entry) => {
                        if len > entry.recv_window.available() {
                            let err = H2Error::new(
                                ErrorCode::FlowControlError,
                                "peer overran stream window",
                            );
                            self.fail(err.code);
                            return Err(err);
                        }
                        entry.recv_window.consume(len);
                        entry.recv_consumed += len as u32;
                        if entry.recv_consumed >= self.config.settings.initial_window_size / 2 {
                            let inc = entry.recv_consumed;
                            entry.recv_consumed = 0;
                            entry.recv_window.expand(inc).expect("restoring credit");
                            self.control_queue.push_back(Frame::WindowUpdate {
                                stream_id,
                                increment: inc,
                            });
                        }
                        if end_stream {
                            entry.state = entry.state.on_remote_end();
                        }
                        true
                    }
                    None => false,
                };
                if deliver {
                    self.events.push_back(H2Event::Data {
                        stream_id,
                        data,
                        end_stream,
                    });
                }
                Ok(())
            }
            Frame::RstStream {
                stream_id,
                error_code,
            } => {
                self.stats.resets_received += 1;
                if let Some(entry) = self.streams.get_mut(&stream_id) {
                    entry.state = StreamState::Closed;
                    entry.pending.clear();
                    entry.pending_end = false;
                }
                self.events.push_back(H2Event::Reset {
                    stream_id,
                    error_code,
                });
                Ok(())
            }
            Frame::GoAway {
                last_stream_id,
                error_code,
            } => {
                self.goaway_received = true;
                self.events.push_back(H2Event::GoAway {
                    last_stream_id,
                    error_code,
                });
                // RFC 7540 §6.8: locally-initiated streams above
                // `last_stream_id` were not and will never be processed by
                // the peer. Cancel them now — clearing pending output and
                // surfacing a REFUSED_STREAM reset per stream — so requests
                // in flight at GOAWAY error out instead of hanging until
                // the trial deadline.
                let local_is_client = matches!(self.peer, Peer::Client);
                let mut orphaned: Vec<StreamId> = self
                    .streams
                    .iter()
                    .filter(|(id, e)| {
                        id.is_client_initiated() == local_is_client
                            && id.0 > last_stream_id.0
                            && e.state != StreamState::Closed
                    })
                    .map(|(&id, _)| id)
                    .collect();
                orphaned.sort_unstable();
                for id in orphaned {
                    let entry = self.streams.get_mut(&id).expect("stream just listed");
                    entry.state = StreamState::Closed;
                    entry.pending.clear();
                    entry.pending_end = false;
                    self.events.push_back(H2Event::Reset {
                        stream_id: id,
                        error_code: ErrorCode::RefusedStream,
                    });
                }
                Ok(())
            }
            Frame::Priority {
                stream_id, weight, ..
            } => {
                // Wire weight is value + 1 (RFC 7540 §6.3); applied if the
                // stream exists (prioritizing unknown streams is legal but
                // meaningless to this mux).
                if let Some(entry) = self.streams.get_mut(&stream_id) {
                    entry.weight = weight as u16 + 1;
                }
                Ok(())
            }
        }
    }
}
