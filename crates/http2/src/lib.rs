//! # h2priv-http2 — the HTTP/2 protocol substrate
//!
//! Part of the `h2priv` reproduction of *"Depending on HTTP/2 for Privacy?
//! Good Luck!"* (DSN 2020). The paper investigates whether HTTP/2
//! *multiplexing* — interleaved DATA frames of concurrently-served objects
//! — hides encrypted object sizes from an on-path observer. This crate
//! implements the protocol machinery that produces (or withholds) that
//! interleaving:
//!
//! * [`Frame`]/[`FrameDecoder`] — RFC 7540 framing, including
//!   `RST_STREAM` (the signal the adversary forces in §IV-D) and `GOAWAY`.
//! * [`hpack`] — RFC 7541 header compression with static + dynamic tables,
//!   which is why GET requests fit in single TCP segments and can be
//!   counted by the paper's gateway monitor.
//! * [`FlowWindow`] — stream and connection flow control, the mechanism
//!   that keeps large responses in flight long enough to interleave.
//! * [`H2Connection`] — the sans-IO connection with a pluggable DATA mux
//!   ([`SendPolicy`]): `RoundRobin` reproduces the paper's multi-threaded
//!   server, `Sequential` the serialized behaviour the attack forces, and
//!   `RandomOrder` the §VII defense sketch.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod codec;
mod connection;
mod error;
mod flow;
mod frame;
pub mod hpack;
mod settings;
mod stream;

pub use codec::{
    encode_frame, encode_headers_split, FrameDecodeError, FrameDecoder, CLIENT_PREFACE,
};
pub use connection::{H2Connection, H2Event, H2Stats, Outgoing, OutgoingMeta, Peer};
pub use error::{ErrorCode, H2Error};
pub use flow::{FlowWindow, WindowOverflow, DEFAULT_WINDOW, MAX_WINDOW};
pub use frame::{
    flags, pad_overhead, Frame, FrameType, SettingId, DEFAULT_MAX_FRAME_SIZE, FRAME_HEADER_LEN,
};
pub use hpack::HeaderField;
pub use settings::{H2Config, SendPolicy, Settings};
pub use stream::{StreamId, StreamState};

#[cfg(test)]
mod conn_tests;
