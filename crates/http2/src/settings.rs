//! Connection settings (RFC 7540 §6.5) and scheduler configuration.

use crate::flow::DEFAULT_WINDOW;
use crate::frame::{SettingId, DEFAULT_MAX_FRAME_SIZE};

/// The SETTINGS parameters an endpoint advertises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Settings {
    /// HPACK dynamic table capacity.
    pub header_table_size: u32,
    /// Whether the peer may push (always false in the model; the paper
    /// discusses push only as a possible *defense*, §VII).
    pub enable_push: bool,
    /// Concurrent stream limit.
    pub max_concurrent_streams: u32,
    /// Per-stream initial flow-control window.
    pub initial_window_size: u32,
    /// Largest frame payload the sender will accept.
    pub max_frame_size: u32,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            header_table_size: 4_096,
            enable_push: false,
            max_concurrent_streams: 128,
            initial_window_size: DEFAULT_WINDOW,
            max_frame_size: DEFAULT_MAX_FRAME_SIZE as u32,
        }
    }
}

impl Settings {
    /// Serializes to the SETTINGS frame parameter list.
    pub fn to_wire(&self) -> Vec<(SettingId, u32)> {
        vec![
            (SettingId::HeaderTableSize, self.header_table_size),
            (SettingId::EnablePush, self.enable_push as u32),
            (SettingId::MaxConcurrentStreams, self.max_concurrent_streams),
            (SettingId::InitialWindowSize, self.initial_window_size),
            (SettingId::MaxFrameSize, self.max_frame_size),
        ]
    }

    /// Applies received parameters on top of the current values.
    pub fn apply(&mut self, params: &[(SettingId, u32)]) {
        for &(id, value) in params {
            match id {
                SettingId::HeaderTableSize => self.header_table_size = value,
                SettingId::EnablePush => self.enable_push = value != 0,
                SettingId::MaxConcurrentStreams => self.max_concurrent_streams = value,
                SettingId::InitialWindowSize => self.initial_window_size = value,
                SettingId::MaxFrameSize => self.max_frame_size = value,
                SettingId::MaxHeaderListSize => {}
            }
        }
    }
}

/// How the connection's mux picks which stream's DATA to send next —
/// the source of multiplexing (or its absence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendPolicy {
    /// Rotate across streams with pending data: the paper's multi-threaded
    /// HTTP/2 server, whose "concurrent server threads serve multiple
    /// objects on the same TCP connection, effectively multiplexing them"
    /// (§II).
    RoundRobin,
    /// Finish one stream before starting the next: HTTP/1.1-style
    /// sequential service (the paper's Fig. 1 "Case 1" baseline, and what
    /// the adversary *forces* the server into).
    Sequential,
    /// Pick a pseudo-random pending stream per frame: the §VII defense
    /// sketch ("the client can opt for a different priority/order of object
    /// delivery every time").
    RandomOrder {
        /// Seed for the scheduler's private generator.
        seed: u64,
    },
    /// Deficit-weighted round-robin honoring RFC 7540 PRIORITY weights:
    /// streams share the mux in proportion to their weight (1–256,
    /// default 16). The §VII discussion notes prioritization as another
    /// lever a client could vary for privacy.
    WeightedFair,
}

/// Full connection configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct H2Config {
    /// Our advertised settings.
    pub settings: Settings,
    /// DATA scheduling policy.
    pub send_policy: SendPolicy,
    /// Write granularity of the mux: at most this many bytes of one
    /// stream's data per DATA frame. Models the server worker's buffer
    /// size; must be ≤ the peer's `max_frame_size`. Smaller values give
    /// finer-grained interleaving.
    pub data_chunk_size: usize,
    /// Extra connection-level window credit announced immediately after the
    /// preface (browsers send a large connection WINDOW_UPDATE at startup;
    /// 0 keeps the strict RFC default of 65 535 bytes).
    pub connection_window_bonus: u32,
    /// Frame-size quantization for DATA (a padding defense): when > 1,
    /// DATA frames carry RFC 7540 §6.1 padding so the total payload
    /// (pad-length byte + data + padding) rounds up to a multiple of this
    /// quantum — a deterministic pad schedule that hides exact chunk
    /// sizes. Padding is best-effort: it is drawn from flow-control window
    /// *slack* (never displacing data bytes) and capped by the 255-octet
    /// pad field and the peer's max frame size. 0 disables padding.
    pub data_pad_quantum: usize,
    /// Frame-size quantization for HEADERS: when > 1, single-frame HEADERS
    /// payloads are padded up to a multiple of this quantum (capped at 255
    /// pad octets). Header blocks large enough to split into CONTINUATION
    /// sequences are never padded. 0 disables padding.
    pub headers_pad_quantum: usize,
    /// Deliver received DATA payloads as opaque length-only views (backed
    /// by a shared zero page) instead of copying the bytes out of the
    /// receive buffer. Padding is still validated against the real wire
    /// bytes and flow control is unchanged — only the payload *contents*
    /// of [`H2Event::Data`] are replaced by zeros. For harness hosts whose
    /// applications consume lengths, never bodies (the simulated browser
    /// records sizes and timing), this removes a per-frame allocation and
    /// copy of every received body byte.
    ///
    /// [`H2Event::Data`]: crate::connection::H2Event::Data
    pub opaque_data_payloads: bool,
    /// Emit DATA frames split into header and body parts: `poll_send`
    /// returns the encoded header in [`Outgoing::bytes`] and the body as
    /// the untouched shared chunk in [`Outgoing::body`], so a transport
    /// with a gather seal writes body bytes to the wire without first
    /// copying them into a frame buffer. Off by default: plain consumers
    /// expect [`Outgoing::frame_bytes`] to be the whole frame.
    ///
    /// [`Outgoing::bytes`]: crate::connection::Outgoing::bytes
    /// [`Outgoing::body`]: crate::connection::Outgoing::body
    /// [`Outgoing::frame_bytes`]: crate::connection::Outgoing::frame_bytes
    pub split_data_frames: bool,
}

impl Default for H2Config {
    fn default() -> Self {
        H2Config {
            settings: Settings::default(),
            send_policy: SendPolicy::RoundRobin,
            data_chunk_size: 2_048,
            connection_window_bonus: 0,
            data_pad_quantum: 0,
            headers_pad_quantum: 0,
            opaque_data_payloads: false,
            split_data_frames: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_rfc() {
        let s = Settings::default();
        assert_eq!(s.initial_window_size, 65_535);
        assert_eq!(s.max_frame_size, 16_384);
        assert_eq!(s.header_table_size, 4_096);
        assert!(!s.enable_push);
    }

    #[test]
    fn wire_roundtrip() {
        let s = Settings {
            initial_window_size: 262_144,
            max_concurrent_streams: 42,
            ..Default::default()
        };
        let mut applied = Settings::default();
        applied.apply(&s.to_wire());
        assert_eq!(applied, s);
    }

    #[test]
    fn apply_is_partial() {
        let mut s = Settings::default();
        s.apply(&[(SettingId::InitialWindowSize, 1_000)]);
        assert_eq!(s.initial_window_size, 1_000);
        assert_eq!(s.max_frame_size, 16_384); // untouched
    }

    #[test]
    fn config_default_is_multiplexing() {
        assert_eq!(H2Config::default().send_policy, SendPolicy::RoundRobin);
    }
}
