//! End-to-end tests of two [`H2Connection`]s wired back to back.

use crate::*;

fn shuttle(a: &mut H2Connection, b: &mut H2Connection) {
    loop {
        let mut moved = false;
        while let Some(out) = a.poll_send() {
            b.recv(&out.bytes).unwrap();
            moved = true;
        }
        while let Some(out) = b.poll_send() {
            a.recv(&out.bytes).unwrap();
            moved = true;
        }
        if !moved {
            break;
        }
    }
}

fn ready_pair(client_cfg: H2Config, server_cfg: H2Config) -> (H2Connection, H2Connection) {
    let mut c = H2Connection::new_client(client_cfg);
    let mut s = H2Connection::new_server(server_cfg);
    shuttle(&mut c, &mut s);
    assert!(c.is_ready() && s.is_ready());
    (c, s)
}

fn get(path: &str) -> Vec<HeaderField> {
    vec![
        HeaderField::new(":method", "GET"),
        HeaderField::new(":scheme", "https"),
        HeaderField::new(":authority", "example.org"),
        HeaderField::new(":path", path),
    ]
}

fn resp_200() -> Vec<HeaderField> {
    vec![HeaderField::new(":status", "200")]
}

fn drain_events(c: &mut H2Connection) -> Vec<H2Event> {
    std::iter::from_fn(|| c.poll_event()).collect()
}

/// Collects (stream, len) for each DATA frame received.
fn data_sequence(events: &[H2Event]) -> Vec<(StreamId, usize)> {
    events
        .iter()
        .filter_map(|ev| match ev {
            H2Event::Data {
                stream_id, data, ..
            } => Some((*stream_id, data.len())),
            _ => None,
        })
        .collect()
}

#[test]
fn settings_exchange_completes() {
    let (c, s) = ready_pair(H2Config::default(), H2Config::default());
    assert_eq!(c.peer(), Peer::Client);
    assert_eq!(s.peer(), Peer::Server);
}

#[test]
fn request_response_roundtrip() {
    let (mut c, mut s) = ready_pair(H2Config::default(), H2Config::default());
    let sid = c.open_stream(&get("/index.html"), true).unwrap();
    shuttle(&mut c, &mut s);
    let events = drain_events(&mut s);
    let req = events.iter().find_map(|ev| match ev {
        H2Event::Headers {
            stream_id,
            headers,
            end_stream,
        } => Some((*stream_id, headers.clone(), *end_stream)),
        _ => None,
    });
    let (rsid, headers, end) = req.expect("request seen");
    assert_eq!(rsid, sid);
    assert!(end);
    assert!(headers.contains(&HeaderField::new(":path", "/index.html")));

    s.send_headers(sid, &resp_200(), false).unwrap();
    s.send_data(sid, &vec![7u8; 5000], true).unwrap();
    shuttle(&mut c, &mut s);
    let events = drain_events(&mut c);
    let body: usize = data_sequence(&events).iter().map(|(_, l)| l).sum();
    assert_eq!(body, 5000);
    assert_eq!(c.stream_state(sid), Some(StreamState::Closed));
    assert_eq!(s.stream_state(sid), Some(StreamState::Closed));
}

#[test]
fn round_robin_interleaves_two_responses() {
    let (mut c, mut s) = ready_pair(H2Config::default(), H2Config::default());
    let a = c.open_stream(&get("/a"), true).unwrap();
    let b = c.open_stream(&get("/b"), true).unwrap();
    shuttle(&mut c, &mut s);
    drain_events(&mut s);
    s.send_headers(a, &resp_200(), false).unwrap();
    s.send_headers(b, &resp_200(), false).unwrap();
    s.send_data(a, &vec![1u8; 10_000], true).unwrap();
    s.send_data(b, &vec![2u8; 10_000], true).unwrap();
    shuttle(&mut c, &mut s);
    let seq = data_sequence(&drain_events(&mut c));
    // Interleaved: stream a does not finish before b starts.
    let first_b = seq.iter().position(|&(id, _)| id == b).unwrap();
    let last_a = seq.iter().rposition(|&(id, _)| id == a).unwrap();
    assert!(first_b < last_a, "sequence not interleaved: {seq:?}");
}

#[test]
fn sequential_policy_serializes_responses() {
    let server_cfg = H2Config {
        send_policy: SendPolicy::Sequential,
        ..H2Config::default()
    };
    let (mut c, mut s) = ready_pair(H2Config::default(), server_cfg);
    let a = c.open_stream(&get("/a"), true).unwrap();
    let b = c.open_stream(&get("/b"), true).unwrap();
    shuttle(&mut c, &mut s);
    drain_events(&mut s);
    s.send_headers(a, &resp_200(), false).unwrap();
    s.send_headers(b, &resp_200(), false).unwrap();
    s.send_data(a, &vec![1u8; 10_000], true).unwrap();
    s.send_data(b, &vec![2u8; 10_000], true).unwrap();
    shuttle(&mut c, &mut s);
    let seq = data_sequence(&drain_events(&mut c));
    let first_b = seq.iter().position(|&(id, _)| id == b).unwrap();
    let last_a = seq.iter().rposition(|&(id, _)| id == a).unwrap();
    assert!(last_a < first_b, "sequence not serialized: {seq:?}");
}

#[test]
fn random_policy_is_deterministic_per_seed() {
    fn run(seed: u64) -> Vec<(StreamId, usize)> {
        let server_cfg = H2Config {
            send_policy: SendPolicy::RandomOrder { seed },
            ..H2Config::default()
        };
        let (mut c, mut s) = ready_pair(H2Config::default(), server_cfg);
        let a = c.open_stream(&get("/a"), true).unwrap();
        let b = c.open_stream(&get("/b"), true).unwrap();
        shuttle(&mut c, &mut s);
        drain_events(&mut s);
        s.send_headers(a, &resp_200(), false).unwrap();
        s.send_headers(b, &resp_200(), false).unwrap();
        s.send_data(a, &vec![1u8; 8_000], true).unwrap();
        s.send_data(b, &vec![2u8; 8_000], true).unwrap();
        shuttle(&mut c, &mut s);
        data_sequence(&drain_events(&mut c))
    }
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6));
}

#[test]
fn data_chunk_size_bounds_frames() {
    let server_cfg = H2Config {
        data_chunk_size: 1_000,
        ..H2Config::default()
    };
    let (mut c, mut s) = ready_pair(H2Config::default(), server_cfg);
    let a = c.open_stream(&get("/a"), true).unwrap();
    shuttle(&mut c, &mut s);
    drain_events(&mut s);
    s.send_headers(a, &resp_200(), false).unwrap();
    s.send_data(a, &vec![1u8; 5_500], true).unwrap();
    shuttle(&mut c, &mut s);
    let seq = data_sequence(&drain_events(&mut c));
    assert!(seq.iter().all(|&(_, l)| l <= 1_000), "{seq:?}");
    assert_eq!(seq.iter().map(|(_, l)| l).sum::<usize>(), 5_500);
}

#[test]
fn flow_control_stalls_without_updates() {
    // A response bigger than the 64 KiB connection window cannot fully
    // drain until WINDOW_UPDATEs flow back.
    let (mut c, mut s) = ready_pair(H2Config::default(), H2Config::default());
    let a = c.open_stream(&get("/big"), true).unwrap();
    shuttle(&mut c, &mut s);
    drain_events(&mut s);
    s.send_headers(a, &resp_200(), false).unwrap();
    s.send_data(a, &vec![9u8; 200_000], true).unwrap();
    // One-way only: server → client, no return path for WINDOW_UPDATE.
    let mut sent = 0usize;
    while let Some(out) = s.poll_send() {
        if let OutgoingMeta::Frame {
            frame_type: FrameType::Data,
            payload_len,
            ..
        } = out.meta
        {
            sent += payload_len;
        }
        c.recv(&out.bytes).unwrap();
    }
    assert!(sent <= 65_535, "sent {sent} beyond the connection window");
    // Open the return path: the rest drains.
    shuttle(&mut c, &mut s);
    let total: usize = data_sequence(&drain_events(&mut c))
        .iter()
        .map(|(_, l)| l)
        .sum();
    assert_eq!(total, 200_000);
}

#[test]
fn window_bonus_lifts_connection_limit() {
    let client_cfg = H2Config {
        connection_window_bonus: 1 << 20,
        ..H2Config::default()
    };
    let (mut c, mut s) = ready_pair(client_cfg, H2Config::default());
    let a = c.open_stream(&get("/big"), true).unwrap();
    shuttle(&mut c, &mut s);
    drain_events(&mut s);
    s.send_headers(a, &resp_200(), false).unwrap();
    s.send_data(a, &vec![9u8; 200_000], true).unwrap();
    // One-way: the stream window (65 535) is now the binding limit.
    let mut sent = 0usize;
    while let Some(out) = s.poll_send() {
        if let OutgoingMeta::Frame {
            frame_type: FrameType::Data,
            payload_len,
            ..
        } = out.meta
        {
            sent += payload_len;
        }
        c.recv(&out.bytes).unwrap();
    }
    assert!(sent > 60_000 && sent <= 65_535, "sent = {sent}");
}

#[test]
fn rst_stream_drops_pending_data() {
    let (mut c, mut s) = ready_pair(H2Config::default(), H2Config::default());
    let a = c.open_stream(&get("/a"), true).unwrap();
    shuttle(&mut c, &mut s);
    drain_events(&mut s);
    s.send_headers(a, &resp_200(), false).unwrap();
    s.send_data(a, &vec![1u8; 50_000], true).unwrap();
    // Client resets before the response drains.
    c.send_rst(a, ErrorCode::Cancel);
    // Deliver the reset to the server.
    while let Some(out) = c.poll_send() {
        s.recv(&out.bytes).unwrap();
    }
    assert_eq!(s.pending_data(a), 0);
    assert_eq!(s.stream_state(a), Some(StreamState::Closed));
    let events = drain_events(&mut s);
    assert!(events
        .iter()
        .any(|ev| matches!(ev, H2Event::Reset { stream_id, .. } if *stream_id == a)));
    assert_eq!(s.stats().resets_received, 1);
    assert_eq!(c.stats().resets_sent, 1);
}

#[test]
fn late_data_after_reset_is_discarded() {
    let (mut c, mut s) = ready_pair(H2Config::default(), H2Config::default());
    let a = c.open_stream(&get("/a"), true).unwrap();
    shuttle(&mut c, &mut s);
    drain_events(&mut s);
    s.send_headers(a, &resp_200(), false).unwrap();
    s.send_data(a, &vec![1u8; 4_000], true).unwrap();
    // Server emits some DATA that is "in flight".
    let in_flight: Vec<_> = std::iter::from_fn(|| s.poll_send()).collect();
    // Client resets, then the in-flight data arrives.
    c.send_rst(a, ErrorCode::Cancel);
    drain_events(&mut c);
    for out in in_flight {
        c.recv(&out.bytes).unwrap();
    }
    // No Data events for the reset stream reach the application.
    let events = drain_events(&mut c);
    assert!(!events
        .iter()
        .any(|ev| matches!(ev, H2Event::Data { stream_id, .. } if *stream_id == a)));
}

#[test]
fn reset_stream_conn_accounting_is_exactly_once() {
    // §IV-D flush regression: DATA in flight across a RST_STREAM must be
    // debited from — and credited back to — the *connection* window exactly
    // once, even though it is never delivered to the application. A leak
    // (never credited) pins the window at zero after a few flushed bodies;
    // a double credit inflates it past its initial size.
    let (mut c, mut s) = ready_pair(H2Config::default(), H2Config::default());
    let initial = s.conn_send_available();
    // Ten flushed bodies of 30 kB vastly exceed the 64 kB default window:
    // the transfer only keeps moving if reset-stream DATA earns credit.
    for round in 0..10 {
        let a = c.open_stream(&get("/flush"), true).unwrap();
        shuttle(&mut c, &mut s);
        drain_events(&mut s);
        s.send_headers(a, &resp_200(), false).unwrap();
        s.send_data(a, &vec![0xDD; 30_000], true).unwrap();
        // Some of the body goes into flight before the reset.
        let in_flight: Vec<_> = std::iter::from_fn(|| s.poll_send()).collect();
        c.send_rst(a, ErrorCode::Cancel);
        for out in in_flight {
            c.recv(&out.bytes).unwrap();
        }
        shuttle(&mut c, &mut s);
        drain_events(&mut s);
        // None of the flushed body reaches the application...
        assert!(
            !drain_events(&mut c)
                .iter()
                .any(|ev| matches!(ev, H2Event::Data { stream_id, .. } if *stream_id == a)),
            "round {round}: reset-stream DATA surfaced"
        );
        // ...and the server's view of the connection window never exceeds
        // its initial size (a double credit would overshoot here).
        assert!(
            s.conn_send_available() <= initial,
            "round {round}: conn window over-credited ({} > {initial})",
            s.conn_send_available()
        );
        // Nothing may remain stuck in the server's send queue.
        assert_eq!(s.pending_data(a), 0, "round {round}: flush stalled");
    }
    // A clean request after all the flushes still completes in full: the
    // window was not leaked away.
    let b = c.open_stream(&get("/after"), true).unwrap();
    shuttle(&mut c, &mut s);
    drain_events(&mut s);
    s.send_headers(b, &resp_200(), false).unwrap();
    s.send_data(b, &vec![0xEE; 60_000], true).unwrap();
    shuttle(&mut c, &mut s);
    let body: usize = data_sequence(&drain_events(&mut c))
        .iter()
        .filter(|(id, _)| *id == b)
        .map(|(_, l)| l)
        .sum();
    assert_eq!(body, 60_000, "post-flush transfer lost window credit");
}

#[test]
fn ping_pong() {
    let (mut c, mut s) = ready_pair(H2Config::default(), H2Config::default());
    c.send_ping([3; 8]);
    shuttle(&mut c, &mut s);
    assert!(drain_events(&mut c)
        .iter()
        .any(|ev| matches!(ev, H2Event::PingAcked)));
}

#[test]
fn goaway_closes_connection() {
    let (mut c, mut s) = ready_pair(H2Config::default(), H2Config::default());
    s.send_goaway(ErrorCode::NoError);
    shuttle(&mut c, &mut s);
    assert!(c.is_closed());
    assert!(drain_events(&mut c)
        .iter()
        .any(|ev| matches!(ev, H2Event::GoAway { .. })));
    assert!(c.open_stream(&get("/x"), true).is_err());
}

#[test]
fn many_concurrent_streams() {
    let (mut c, mut s) = ready_pair(H2Config::default(), H2Config::default());
    let ids: Vec<StreamId> = (0..20)
        .map(|i| c.open_stream(&get(&format!("/obj{i}")), true).unwrap())
        .collect();
    shuttle(&mut c, &mut s);
    drain_events(&mut s);
    for (i, &id) in ids.iter().enumerate() {
        s.send_headers(id, &resp_200(), false).unwrap();
        s.send_data(id, &vec![i as u8; 3_000], true).unwrap();
    }
    shuttle(&mut c, &mut s);
    let events = drain_events(&mut c);
    for &id in &ids {
        let total: usize = data_sequence(&events)
            .iter()
            .filter(|&&(sid, _)| sid == id)
            .map(|(_, l)| l)
            .sum();
        assert_eq!(total, 3_000, "stream {id}");
    }
}

#[test]
fn send_on_unknown_stream_fails() {
    let (mut c, _s) = ready_pair(H2Config::default(), H2Config::default());
    assert!(c.send_data(StreamId(99), b"x", false).is_err());
    assert!(c.send_headers(StreamId(99), &resp_200(), false).is_err());
}

#[test]
fn stream_ids_are_odd_and_increasing() {
    let (mut c, _s) = ready_pair(H2Config::default(), H2Config::default());
    let a = c.open_stream(&get("/1"), true).unwrap();
    let b = c.open_stream(&get("/2"), true).unwrap();
    assert_eq!(a, StreamId(1));
    assert_eq!(b, StreamId(3));
}

#[test]
fn garbage_input_kills_connection_with_goaway() {
    let (mut c, _s) = ready_pair(H2Config::default(), H2Config::default());
    // A PUSH_PROMISE (unsupported) is a protocol error.
    let push = [0u8, 0, 4, 0x5, 0, 0, 0, 0, 1, 0, 0, 0, 2];
    assert!(c.recv(&push).is_err());
    // The connection is dead but the GOAWAY was queued first.
    assert!(c.is_closed());
}

#[test]
fn weighted_fair_shares_by_weight() {
    let server_cfg = H2Config {
        send_policy: SendPolicy::WeightedFair,
        data_chunk_size: 1_024,
        ..H2Config::default()
    };
    let (mut c, mut s) = ready_pair(H2Config::default(), server_cfg);
    let heavy = c.open_stream(&get("/heavy"), true).unwrap();
    let light = c.open_stream(&get("/light"), true).unwrap();
    shuttle(&mut c, &mut s);
    drain_events(&mut s);
    s.set_stream_weight(heavy, 64);
    s.set_stream_weight(light, 8);
    s.send_headers(heavy, &resp_200(), false).unwrap();
    s.send_headers(light, &resp_200(), false).unwrap();
    s.send_data(heavy, &vec![1u8; 40_000], true).unwrap();
    s.send_data(light, &vec![2u8; 40_000], true).unwrap();
    // Measure the share each stream got up to the instant the heavy
    // stream finished: DRR should have served them roughly 8:1 until then.
    let mut heavy_bytes = 0usize;
    let mut light_bytes = 0usize;
    let mut heavy_done = false;
    while let Some(out) = s.poll_send() {
        if let OutgoingMeta::Frame {
            frame_type: FrameType::Data,
            stream_id,
            payload_len,
            end_stream,
        } = out.meta
        {
            if !heavy_done {
                if stream_id == heavy {
                    heavy_bytes += payload_len;
                    heavy_done = end_stream;
                } else {
                    light_bytes += payload_len;
                }
            }
        }
        c.recv(&out.bytes).unwrap();
    }
    assert!(light_bytes > 0, "light stream starved entirely");
    let ratio = heavy_bytes as f64 / light_bytes as f64;
    assert!(
        (4.0..=14.0).contains(&ratio),
        "expected roughly 8:1 service, got {heavy_bytes}:{light_bytes}"
    );
    // Both still complete.
    shuttle(&mut c, &mut s);
    let totals: usize = data_sequence(&drain_events(&mut c))
        .iter()
        .map(|(_, l)| l)
        .sum();
    assert_eq!(totals, 80_000);
}

#[test]
fn priority_frames_update_weights() {
    let (mut c, mut s) = ready_pair(H2Config::default(), H2Config::default());
    let a = c.open_stream(&get("/a"), true).unwrap();
    shuttle(&mut c, &mut s);
    drain_events(&mut s);
    assert_eq!(s.stream_weight(a), Some(16));
    c.set_stream_weight(a, 128);
    shuttle(&mut c, &mut s);
    assert_eq!(s.stream_weight(a), Some(128));
}

#[test]
fn concurrent_stream_limit_is_enforced() {
    let server_cfg = H2Config {
        settings: Settings {
            max_concurrent_streams: 3,
            ..Settings::default()
        },
        ..H2Config::default()
    };
    let (mut c, mut s) = ready_pair(H2Config::default(), server_cfg);
    let ids: Vec<StreamId> = (0..3)
        .map(|i| c.open_stream(&get(&format!("/{i}")), true).unwrap())
        .collect();
    // The fourth is refused locally.
    let err = c.open_stream(&get("/overflow"), true).unwrap_err();
    assert_eq!(err.code, ErrorCode::RefusedStream);
    // Completing a stream frees a slot.
    shuttle(&mut c, &mut s);
    drain_events(&mut s);
    s.send_headers(ids[0], &resp_200(), false).unwrap();
    s.send_data(ids[0], &[1u8; 100], true).unwrap();
    shuttle(&mut c, &mut s);
    drain_events(&mut c);
    assert!(c.open_stream(&get("/now-fits"), true).is_ok());
}

/// Builds the raw bytes of one HEADERS frame (END_HEADERS, optional
/// END_STREAM) for a hand-rolled hostile client.
fn raw_headers(enc: &mut hpack::Encoder, stream: u32, end_stream: bool) -> Vec<u8> {
    encode_frame(&Frame::Headers {
        stream_id: StreamId(stream),
        end_stream,
        header_block: enc.encode(&get("/hoard")),
        pad: None,
    })
}

/// Drains a connection's wire output and parses it into frames.
fn drain_frames(c: &mut H2Connection) -> Vec<Frame> {
    let mut dec = FrameDecoder::new(false);
    while let Some(out) = c.poll_send() {
        if !matches!(out.meta, OutgoingMeta::Preface) {
            dec.push(out.frame_bytes());
        }
    }
    std::iter::from_fn(|| dec.next_frame().unwrap()).collect()
}

#[test]
fn remote_streams_beyond_advertised_limit_are_refused() {
    let server_cfg = H2Config {
        settings: Settings {
            max_concurrent_streams: 2,
            ..Settings::default()
        },
        ..H2Config::default()
    };
    let mut s = H2Connection::new_server(server_cfg);
    // A hostile client ignores the advertised limit: preface, SETTINGS,
    // then three opens back to back.
    let mut wire = CLIENT_PREFACE.to_vec();
    wire.extend_from_slice(&encode_frame(&Frame::Settings {
        ack: false,
        settings: vec![],
    }));
    let mut enc = hpack::Encoder::new();
    for stream in [1u32, 3, 5] {
        wire.extend_from_slice(&raw_headers(&mut enc, stream, true));
    }
    s.recv(&wire).unwrap();
    let delivered: Vec<StreamId> = drain_events(&mut s)
        .iter()
        .filter_map(|ev| match ev {
            H2Event::Headers { stream_id, .. } => Some(*stream_id),
            _ => None,
        })
        .collect();
    assert_eq!(delivered, vec![StreamId(1), StreamId(3)]);
    assert_eq!(s.open_remote_streams(), 2);
    // The third open got RST_STREAM(REFUSED_STREAM) and no stream state.
    let resets: Vec<(StreamId, ErrorCode)> = drain_frames(&mut s)
        .iter()
        .filter_map(|f| match f {
            Frame::RstStream {
                stream_id,
                error_code,
            } => Some((*stream_id, *error_code)),
            _ => None,
        })
        .collect();
    assert_eq!(resets, vec![(StreamId(5), ErrorCode::RefusedStream)]);
    assert_eq!(s.stream_state(StreamId(5)), None);
    assert_eq!(s.stats().resets_sent, 1);
}

#[test]
fn refused_remote_stream_keeps_hpack_synchronized() {
    let server_cfg = H2Config {
        settings: Settings {
            max_concurrent_streams: 1,
            ..Settings::default()
        },
        ..H2Config::default()
    };
    let mut s = H2Connection::new_server(server_cfg);
    let mut wire = CLIENT_PREFACE.to_vec();
    wire.extend_from_slice(&encode_frame(&Frame::Settings {
        ack: false,
        settings: vec![],
    }));
    // The refused stream's block still indexes into the dynamic table; the
    // follow-up block on stream 1 (after stream 1 closes... stream 1 first)
    let mut enc = hpack::Encoder::new();
    wire.extend_from_slice(&raw_headers(&mut enc, 1, true));
    wire.extend_from_slice(&raw_headers(&mut enc, 3, true)); // refused
    s.recv(&wire).unwrap();
    drain_events(&mut s);
    drain_frames(&mut s);
    // Close stream 1 so a new open fits, then reuse the table entries the
    // refused block installed. Decoding succeeds only if the server kept
    // decoding refused blocks (RFC 7540 §4.3).
    s.send_headers(StreamId(1), &resp_200(), true).unwrap();
    drain_frames(&mut s);
    let mut wire = Vec::new();
    wire.extend_from_slice(&raw_headers(&mut enc, 5, true));
    s.recv(&wire).unwrap();
    let delivered: Vec<StreamId> = drain_events(&mut s)
        .iter()
        .filter_map(|ev| match ev {
            H2Event::Headers { stream_id, .. } => Some(*stream_id),
            _ => None,
        })
        .collect();
    assert_eq!(delivered, vec![StreamId(5)]);
}

#[test]
fn goaway_cancels_streams_above_last_stream_id() {
    let (mut c, _s) = ready_pair(H2Config::default(), H2Config::default());
    let a = c.open_stream(&get("/a"), true).unwrap();
    let b = c.open_stream(&get("/b"), false).unwrap();
    c.send_data(b, &[7u8; 4_096], false).unwrap();
    let d = c.open_stream(&get("/d"), true).unwrap();
    assert_eq!((a, b, d), (StreamId(1), StreamId(3), StreamId(5)));
    // The server walks away having processed only stream 1.
    c.recv(&encode_frame(&Frame::GoAway {
        last_stream_id: StreamId(1),
        error_code: ErrorCode::NoError,
    }))
    .unwrap();
    let events = drain_events(&mut c);
    assert!(events.iter().any(
        |ev| matches!(ev, H2Event::GoAway { last_stream_id, .. } if *last_stream_id == StreamId(1))
    ));
    let cancelled: Vec<StreamId> = events
        .iter()
        .filter_map(|ev| match ev {
            H2Event::Reset {
                stream_id,
                error_code: ErrorCode::RefusedStream,
            } => Some(*stream_id),
            _ => None,
        })
        .collect();
    assert_eq!(cancelled, vec![StreamId(3), StreamId(5)]);
    assert_eq!(c.stream_state(a), Some(StreamState::HalfClosedLocal));
    assert_eq!(c.stream_state(b), Some(StreamState::Closed));
    assert_eq!(c.stream_state(d), Some(StreamState::Closed));
    assert_eq!(c.pending_data(b), 0, "cancelled output is dropped");
}

#[test]
fn settings_received_counter_and_header_sequence_inspector() {
    let (mut c, mut s) = ready_pair(H2Config::default(), H2Config::default());
    assert_eq!(s.stats().settings_received, 1, "the handshake SETTINGS");
    for _ in 0..3 {
        s.recv(&encode_frame(&Frame::Settings {
            ack: false,
            settings: vec![],
        }))
        .unwrap();
    }
    assert_eq!(s.stats().settings_received, 4);
    // A HEADERS frame without END_HEADERS leaves the sequence open.
    assert_eq!(s.in_progress_header_stream(), None);
    let sid = c.open_stream(&get("/x"), true).unwrap();
    let mut frames = Vec::new();
    while let Some(out) = c.poll_send() {
        frames.push(out);
    }
    let headers_wire = frames
        .iter()
        .find(|o| {
            matches!(
                o.meta,
                OutgoingMeta::Frame {
                    frame_type: FrameType::Headers,
                    ..
                }
            )
        })
        .unwrap()
        .frame_bytes()
        .to_vec();
    // Clear the END_HEADERS flag (byte 4 of the frame header) and truncate
    // nothing: the sequence is now open until a CONTINUATION closes it.
    let mut partial = headers_wire.clone();
    partial[4] &= !flags::END_HEADERS;
    s.recv(&partial).unwrap();
    assert_eq!(s.in_progress_header_stream(), Some(sid));
}
