//! HPACK header compression (RFC 7541).
//!
//! Implements prefix-coded integers, literal strings with optional
//! [`huffman`] coding (off by default — see that module for the codebook
//! note and why the monitor calibration prefers plain literals), indexed
//! fields against the combined static+dynamic table, and literals
//! with/without incremental indexing.
//!
//! HPACK matters to the reproduction for a subtle reason: because request
//! header blocks compress to a few dozen bytes, every GET request fits in
//! one TCP segment — which is what lets the paper's gateway count GETs by
//! watching single `application_data` records in the client→server
//! direction (§V "Adversary Setup").

pub mod huffman;
mod table;

pub use table::{DynamicTable, HeaderField, IndexTable, STATIC_TABLE};

/// Errors from decoding a header block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HpackError {
    /// The block ended mid-field.
    Truncated,
    /// An index pointed outside both tables.
    InvalidIndex,
    /// An integer exceeded implementation limits.
    IntegerOverflow,
    /// A string literal was not valid UTF-8 (the model keeps headers as
    /// strings; real HPACK allows arbitrary octets).
    InvalidString,
    /// A Huffman-coded literal failed to decode (bad padding).
    HuffmanUnsupported,
}

impl std::fmt::Display for HpackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            HpackError::Truncated => "header block truncated",
            HpackError::InvalidIndex => "invalid table index",
            HpackError::IntegerOverflow => "integer too large",
            HpackError::InvalidString => "string literal not valid utf-8",
            HpackError::HuffmanUnsupported => "huffman-coded literal failed to decode",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for HpackError {}

/// Encodes an integer with an `n`-bit prefix (RFC 7541 §5.1). The prefix
/// byte's high bits are supplied in `first_byte_flags`.
pub fn encode_integer(out: &mut Vec<u8>, first_byte_flags: u8, prefix_bits: u8, value: usize) {
    debug_assert!((1..=8).contains(&prefix_bits));
    let max_prefix = (1usize << prefix_bits) - 1;
    if value < max_prefix {
        out.push(first_byte_flags | value as u8);
        return;
    }
    out.push(first_byte_flags | max_prefix as u8);
    let mut rest = value - max_prefix;
    while rest >= 128 {
        out.push((rest % 128 + 128) as u8);
        rest /= 128;
    }
    out.push(rest as u8);
}

/// Decodes an integer with an `n`-bit prefix. Returns the value and the
/// number of bytes consumed.
///
/// # Errors
///
/// Fails on truncation or values above `2^32`.
pub fn decode_integer(buf: &[u8], prefix_bits: u8) -> Result<(usize, usize), HpackError> {
    debug_assert!((1..=8).contains(&prefix_bits));
    let max_prefix = (1usize << prefix_bits) - 1;
    let first = *buf.first().ok_or(HpackError::Truncated)?;
    let mut value = (first as usize) & max_prefix;
    if value < max_prefix {
        return Ok((value, 1));
    }
    let mut shift = 0u32;
    for (i, &b) in buf[1..].iter().enumerate() {
        value = value
            .checked_add(((b & 0x7f) as usize) << shift)
            .ok_or(HpackError::IntegerOverflow)?;
        if value > u32::MAX as usize {
            return Err(HpackError::IntegerOverflow);
        }
        if b & 0x80 == 0 {
            return Ok((value, i + 2));
        }
        shift += 7;
        if shift > 28 {
            return Err(HpackError::IntegerOverflow);
        }
    }
    Err(HpackError::Truncated)
}

fn encode_string(out: &mut Vec<u8>, s: &str, use_huffman: bool) {
    if use_huffman {
        let coded = huffman::encode(s.as_bytes());
        if coded.len() < s.len() {
            // H bit = 1, 7-bit length prefix over the coded length.
            encode_integer(out, 0x80, 7, coded.len());
            out.extend_from_slice(&coded);
            return;
        }
        // Huffman would expand this string: fall through to plain.
    }
    // H bit = 0 (no Huffman), 7-bit length prefix.
    encode_integer(out, 0x00, 7, s.len());
    out.extend_from_slice(s.as_bytes());
}

fn decode_string(buf: &[u8]) -> Result<(String, usize), HpackError> {
    let first = *buf.first().ok_or(HpackError::Truncated)?;
    let coded = first & 0x80 != 0;
    let (len, consumed) = decode_integer(buf, 7)?;
    let end = consumed + len;
    if buf.len() < end {
        return Err(HpackError::Truncated);
    }
    let raw;
    let bytes: &[u8] = if coded {
        raw = huffman::decode(&buf[consumed..end]).map_err(|_| HpackError::HuffmanUnsupported)?;
        &raw
    } else {
        &buf[consumed..end]
    };
    let s = std::str::from_utf8(bytes)
        .map_err(|_| HpackError::InvalidString)?
        .to_owned();
    Ok((s, end))
}

/// HPACK encoder: one per connection direction, stateful via its dynamic
/// table.
#[derive(Debug, Clone)]
pub struct Encoder {
    table: IndexTable,
    /// Fields whose values should never enter the dynamic table (e.g.
    /// `authorization`); encoded as never-indexed literals.
    sensitive: Vec<String>,
    /// Huffman-code string literals (off by default; see [`huffman`]).
    use_huffman: bool,
}

impl Encoder {
    /// Creates an encoder with the default 4096-byte dynamic table.
    pub fn new() -> Self {
        Encoder::with_table_size(4096)
    }

    /// Creates an encoder with a specific dynamic-table capacity.
    pub fn with_table_size(max: usize) -> Self {
        Encoder {
            table: IndexTable::new(max),
            sensitive: vec!["authorization".to_owned(), "set-cookie".to_owned()],
            use_huffman: false,
        }
    }

    /// Enables or disables Huffman coding of string literals.
    pub fn set_huffman(&mut self, on: bool) {
        self.use_huffman = on;
    }

    /// Encodes a header list into a block fragment.
    pub fn encode(&mut self, fields: &[HeaderField]) -> Vec<u8> {
        let mut out = Vec::new();
        for field in fields {
            self.encode_field(&mut out, field);
        }
        out
    }

    fn encode_field(&mut self, out: &mut Vec<u8>, field: &HeaderField) {
        if self.sensitive.iter().any(|s| s == &field.name) {
            // Never-indexed literal (0001xxxx).
            match self.table.find_name(&field.name) {
                Some(idx) => encode_integer(out, 0x10, 4, idx),
                None => {
                    encode_integer(out, 0x10, 4, 0);
                    encode_string(out, &field.name, self.use_huffman);
                }
            }
            encode_string(out, &field.value, self.use_huffman);
            return;
        }
        if let Some(idx) = self.table.find(field) {
            // Indexed field (1xxxxxxx).
            encode_integer(out, 0x80, 7, idx);
            return;
        }
        // Literal with incremental indexing (01xxxxxx).
        match self.table.find_name(&field.name) {
            Some(idx) => encode_integer(out, 0x40, 6, idx),
            None => {
                encode_integer(out, 0x40, 6, 0);
                encode_string(out, &field.name, self.use_huffman);
            }
        }
        encode_string(out, &field.value, self.use_huffman);
        self.table.insert(field.clone());
    }

    /// Dynamic-table entry count (diagnostics).
    pub fn dynamic_len(&self) -> usize {
        self.table.dynamic_len()
    }
}

impl Default for Encoder {
    fn default() -> Self {
        Encoder::new()
    }
}

/// HPACK decoder: the peer of an [`Encoder`].
#[derive(Debug, Clone)]
pub struct Decoder {
    table: IndexTable,
    /// Largest dynamic-table-size update declared by any decoded block
    /// (`None` until a size-update instruction is seen). The conformance
    /// oracle uses this to verify the encoder never declares a table
    /// larger than the decoder's advertised `SETTINGS_HEADER_TABLE_SIZE`.
    max_size_update: Option<usize>,
}

impl Decoder {
    /// Creates a decoder with the default 4096-byte dynamic table.
    pub fn new() -> Self {
        Decoder::with_table_size(4096)
    }

    /// Creates a decoder with a specific dynamic-table capacity.
    pub fn with_table_size(max: usize) -> Self {
        Decoder {
            table: IndexTable::new(max),
            max_size_update: None,
        }
    }

    /// Current dynamic-table occupancy in HPACK size units.
    pub fn dynamic_size(&self) -> usize {
        self.table.dynamic_size()
    }

    /// Largest dynamic-table-size update seen across all decoded blocks.
    pub fn max_size_update(&self) -> Option<usize> {
        self.max_size_update
    }

    /// Decodes a complete header block fragment.
    ///
    /// # Errors
    ///
    /// Fails on malformed input; HPACK state is then ruined and the
    /// connection must be torn down with `COMPRESSION_ERROR` (RFC 7541 §2.2).
    pub fn decode(&mut self, mut buf: &[u8]) -> Result<Vec<HeaderField>, HpackError> {
        let mut out = Vec::new();
        while !buf.is_empty() {
            let first = buf[0];
            if first & 0x80 != 0 {
                // Indexed field.
                let (idx, used) = decode_integer(buf, 7)?;
                buf = &buf[used..];
                let field = self.table.get(idx).ok_or(HpackError::InvalidIndex)?;
                out.push(field);
            } else if first & 0xC0 == 0x40 {
                // Literal with incremental indexing.
                let (field, used) = self.decode_literal(buf, 6)?;
                buf = &buf[used..];
                self.table.insert(field.clone());
                out.push(field);
            } else if first & 0xE0 == 0x20 {
                // Dynamic table size update.
                let (size, used) = decode_integer(buf, 5)?;
                buf = &buf[used..];
                self.max_size_update = Some(self.max_size_update.map_or(size, |m| m.max(size)));
                self.table.set_max_dynamic_size(size);
            } else {
                // Literal without indexing (0000) or never indexed (0001).
                let (field, used) = self.decode_literal(buf, 4)?;
                buf = &buf[used..];
                out.push(field);
            }
        }
        Ok(out)
    }

    fn decode_literal(
        &mut self,
        buf: &[u8],
        prefix_bits: u8,
    ) -> Result<(HeaderField, usize), HpackError> {
        let (name_idx, mut used) = decode_integer(buf, prefix_bits)?;
        let name = if name_idx == 0 {
            let (name, n) = decode_string(&buf[used..])?;
            used += n;
            name
        } else {
            self.table
                .get(name_idx)
                .ok_or(HpackError::InvalidIndex)?
                .name
        };
        let (value, n) = decode_string(&buf[used..])?;
        used += n;
        Ok((HeaderField::new(name, value), used))
    }
}

impl Default for Decoder {
    fn default() -> Self {
        Decoder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req_headers() -> Vec<HeaderField> {
        vec![
            HeaderField::new(":method", "GET"),
            HeaderField::new(":scheme", "https"),
            HeaderField::new(":authority", "www.isidewith.com"),
            HeaderField::new(":path", "/polls/presidential"),
            HeaderField::new("user-agent", "Firefox/74.0"),
            HeaderField::new("accept", "text/html"),
        ]
    }

    #[test]
    fn integer_small_values() {
        let mut out = Vec::new();
        encode_integer(&mut out, 0x80, 7, 10);
        assert_eq!(out, vec![0x8A]);
        assert_eq!(decode_integer(&out, 7).unwrap(), (10, 1));
    }

    #[test]
    fn integer_rfc_example_1337() {
        // RFC 7541 C.1.2: 1337 with a 5-bit prefix.
        let mut out = Vec::new();
        encode_integer(&mut out, 0x00, 5, 1337);
        assert_eq!(out, vec![0x1F, 0x9A, 0x0A]);
        assert_eq!(decode_integer(&out, 5).unwrap(), (1337, 3));
    }

    #[test]
    fn integer_boundary_at_prefix_max() {
        for prefix in 1..=8u8 {
            let max = (1usize << prefix) - 1;
            for value in [0, 1, max - 1, max, max + 1, max + 127, 100_000] {
                let mut out = Vec::new();
                encode_integer(&mut out, 0, prefix, value);
                let (got, used) = decode_integer(&out, prefix).unwrap();
                assert_eq!(got, value, "prefix={prefix}");
                assert_eq!(used, out.len());
            }
        }
    }

    #[test]
    fn integer_truncated() {
        assert_eq!(decode_integer(&[], 7), Err(HpackError::Truncated));
        // Prefix saturated, continuation missing.
        assert_eq!(decode_integer(&[0x7F], 7), Err(HpackError::Truncated));
        assert_eq!(decode_integer(&[0x7F, 0x80], 7), Err(HpackError::Truncated));
    }

    #[test]
    fn integer_overflow_rejected() {
        let buf = [0x7F, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        assert_eq!(decode_integer(&buf, 7), Err(HpackError::IntegerOverflow));
    }

    #[test]
    fn roundtrip_request_headers() {
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        let block = enc.encode(&req_headers());
        let got = dec.decode(&block).unwrap();
        assert_eq!(got, req_headers());
    }

    #[test]
    fn second_request_is_smaller() {
        // Incremental indexing: repeated custom headers become 1-byte
        // indexed fields.
        let mut enc = Encoder::new();
        let first = enc.encode(&req_headers());
        let second = enc.encode(&req_headers());
        assert!(
            second.len() < first.len() / 2,
            "first={} second={}",
            first.len(),
            second.len()
        );
    }

    #[test]
    fn stateful_decode_across_blocks() {
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        let b1 = enc.encode(&req_headers());
        let b2 = enc.encode(&req_headers());
        assert_eq!(dec.decode(&b1).unwrap(), req_headers());
        assert_eq!(dec.decode(&b2).unwrap(), req_headers());
    }

    #[test]
    fn sensitive_fields_never_indexed() {
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        let fields = vec![HeaderField::new("authorization", "Bearer tok")];
        let b1 = enc.encode(&fields);
        let b2 = enc.encode(&fields);
        // No indexing: the second block is not shorter.
        assert_eq!(b1.len(), b2.len());
        assert_eq!(enc.dynamic_len(), 0);
        assert_eq!(dec.decode(&b1).unwrap(), fields);
    }

    #[test]
    fn static_only_fields_are_one_byte() {
        let mut enc = Encoder::new();
        let block = enc.encode(&[HeaderField::new(":method", "GET")]);
        assert_eq!(block, vec![0x82]); // RFC 7541 C.4.1 first byte
    }

    #[test]
    fn decoder_rejects_bad_index() {
        let mut dec = Decoder::new();
        let mut block = Vec::new();
        encode_integer(&mut block, 0x80, 7, 200); // beyond both tables
        assert_eq!(dec.decode(&block), Err(HpackError::InvalidIndex));
    }

    #[test]
    fn huffman_blocks_roundtrip_and_shrink() {
        let mut enc = Encoder::new();
        enc.set_huffman(true);
        let mut dec = Decoder::new();
        let fields = vec![
            HeaderField::new(":path", "/img/parties/constitution.png"),
            HeaderField::new("user-agent", "Mozilla/5.0 Firefox/74.0"),
        ];
        let coded = enc.encode(&fields);
        assert_eq!(dec.decode(&coded).unwrap(), fields);
        let mut plain_enc = Encoder::new();
        let plain = plain_enc.encode(&fields);
        assert!(
            coded.len() < plain.len(),
            "huffman should shrink: {} vs {}",
            coded.len(),
            plain.len()
        );
    }

    #[test]
    fn decoder_rejects_bad_huffman_padding() {
        let mut dec = Decoder::new();
        // Literal with incremental indexing, new name, H bit set, one
        // all-zero byte: 8 bits of non-EOS padding.
        let block = vec![0x40, 0x81, 0x00];
        assert_eq!(dec.decode(&block), Err(HpackError::HuffmanUnsupported));
    }

    #[test]
    fn table_size_update_applies() {
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        let block = enc.encode(&[HeaderField::new("x-a", "1")]);
        dec.decode(&block).unwrap();
        // Size update to zero evicts everything.
        let mut upd = Vec::new();
        encode_integer(&mut upd, 0x20, 5, 0);
        dec.decode(&upd).unwrap();
        // Referencing the (now evicted) entry fails.
        let mut idx_ref = Vec::new();
        encode_integer(&mut idx_ref, 0x80, 7, 62);
        assert_eq!(dec.decode(&idx_ref), Err(HpackError::InvalidIndex));
    }

    #[test]
    fn typical_get_request_compresses_small() {
        // The paper's monitor relies on GETs fitting in single segments.
        let mut enc = Encoder::new();
        enc.encode(&req_headers()); // warm the table
        let block = enc.encode(&[
            HeaderField::new(":method", "GET"),
            HeaderField::new(":scheme", "https"),
            HeaderField::new(":authority", "www.isidewith.com"),
            HeaderField::new(":path", "/images/party_3.png"),
            HeaderField::new("user-agent", "Firefox/74.0"),
            HeaderField::new("accept", "text/html"),
        ]);
        assert!(block.len() < 40, "block = {} bytes", block.len());
    }
}
