//! Huffman string coding for HPACK (the RFC 7541 §5.2 mechanism).
//!
//! Mechanically faithful: canonical Huffman codes over the 256 octets plus
//! EOS, most-significant-bit-first bit packing, and EOS-prefix padding of
//! the final partial byte (decoding treats a padding longer than 7 bits or
//! a non-EOS padding as an error, as the RFC requires).
//!
//! **Codebook note.** The RFC ships a fixed table derived from large
//! samples of real header text. This implementation *constructs* a
//! canonical codebook at first use from an embedded frequency model of
//! header text (letters, digits, URL punctuation weighted high; control
//! bytes weighted low). Both endpoints of a connection therefore agree by
//! construction, and the compression ratio on header-like text is
//! comparable; only the exact bit patterns differ from the RFC table. The
//! simulation keeps Huffman **off by default** because the monitor's
//! GET-size classifier is calibrated against non-Huffman record sizes (see
//! `h2priv-core`).

use std::sync::OnceLock;

/// Decoding error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HuffmanError {
    /// The bit stream decoded to EOS mid-string or ended inside a symbol
    /// with non-EOS padding.
    InvalidPadding,
}

impl std::fmt::Display for HuffmanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid huffman padding")
    }
}

impl std::error::Error for HuffmanError {}

/// Number of symbols: 256 octets + EOS.
const SYMBOLS: usize = 257;
/// The EOS symbol index.
const EOS: usize = 256;

/// Relative frequency model of header-text octets (higher = shorter code).
fn weight(byte: usize) -> u64 {
    match byte as u8 {
        b'a'..=b'z' => 900,
        b'0'..=b'9' => 800,
        b'A'..=b'Z' => 300,
        b'/' | b'.' | b'-' | b'_' | b'=' | b'&' | b'?' | b';' | b',' | b':' => 600,
        b' ' | b'%' | b'+' | b'*' | b'"' | b'(' | b')' | b'[' | b']' | b'{' | b'}' => 120,
        0x21..=0x7E => 60, // other printable ASCII
        0x80..=0xFF => 2,  // raw high bytes are rare in headers
        _ => 1,            // control bytes effectively never appear
    }
}

#[derive(Debug, Clone, Copy)]
struct Code {
    bits: u32,
    len: u8,
}

struct Tables {
    encode: [Code; SYMBOLS],
    /// Flat binary decode tree: node → (left, right); leaves hold the
    /// symbol as `usize::MAX - sym` is avoided by a separate enum-free
    /// encoding: `child >= TREE_LEAF_BASE` means leaf `child - TREE_LEAF_BASE`.
    tree: Vec<[u32; 2]>,
}

const LEAF_BASE: u32 = 1 << 30;

/// Builds canonical Huffman code lengths with package-merge-free simple
/// heap construction (lengths may exceed 32 only for pathological weights,
/// which the model never produces; asserted).
fn build_tables() -> Tables {
    // Standard two-queue Huffman over (weight, symbol-set) using a heap of
    // (weight, node index) with an explicit parent tree.
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    struct Item(u64, u32); // (weight, node id) — id breaks ties stably
    let mut heap = std::collections::BinaryHeap::new();
    // parents[i] for internal tree; symbols 0..SYMBOLS are leaves.
    let mut parents: Vec<u32> = vec![u32::MAX; SYMBOLS];
    for sym in 0..SYMBOLS {
        let w = if sym == EOS { 1 } else { weight(sym) };
        heap.push(std::cmp::Reverse(Item(w, sym as u32)));
    }
    let mut next_id = SYMBOLS as u32;
    while heap.len() > 1 {
        let std::cmp::Reverse(Item(wa, a)) = heap.pop().expect("len > 1");
        let std::cmp::Reverse(Item(wb, b)) = heap.pop().expect("len > 1");
        let id = next_id;
        next_id += 1;
        parents.resize(next_id as usize, u32::MAX);
        parents[a as usize] = id;
        parents[b as usize] = id;
        heap.push(std::cmp::Reverse(Item(wa + wb, id)));
    }
    // Code length of a symbol = depth in the parent chain.
    let mut lengths = [0u8; SYMBOLS];
    for (sym, len) in lengths.iter_mut().enumerate() {
        let mut node = sym as u32;
        let mut depth = 0u8;
        while parents[node as usize] != u32::MAX {
            node = parents[node as usize];
            depth += 1;
        }
        *len = depth;
        assert!(depth <= 32, "code length overflow");
    }
    // Canonical code assignment: sort by (length, symbol).
    let mut order: Vec<usize> = (0..SYMBOLS).collect();
    order.sort_by_key(|&s| (lengths[s], s));
    let mut encode = [Code { bits: 0, len: 0 }; SYMBOLS];
    let mut code = 0u32;
    let mut prev_len = 0u8;
    for &sym in &order {
        let len = lengths[sym];
        code <<= len - prev_len;
        encode[sym] = Code { bits: code, len };
        code += 1;
        prev_len = len;
    }
    // Decode tree from the canonical codes.
    let mut tree: Vec<[u32; 2]> = vec![[0, 0]];
    for (sym, c) in encode.iter().enumerate() {
        let mut node = 0usize;
        for i in (0..c.len).rev() {
            let bit = ((c.bits >> i) & 1) as usize;
            if i == 0 {
                tree[node][bit] = LEAF_BASE + sym as u32;
            } else {
                if tree[node][bit] == 0 {
                    tree.push([0, 0]);
                    let new = (tree.len() - 1) as u32;
                    tree[node][bit] = new;
                }
                node = tree[node][bit] as usize;
            }
        }
    }
    Tables { encode, tree }
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(build_tables)
}

/// Huffman-encodes `input`, padding the final byte with EOS-prefix bits.
pub fn encode(input: &[u8]) -> Vec<u8> {
    let t = tables();
    let mut out = Vec::with_capacity(input.len());
    let mut acc: u64 = 0;
    let mut acc_bits: u32 = 0;
    for &byte in input {
        let c = t.encode[byte as usize];
        acc = (acc << c.len) | c.bits as u64;
        acc_bits += c.len as u32;
        while acc_bits >= 8 {
            acc_bits -= 8;
            out.push((acc >> acc_bits) as u8);
        }
    }
    if acc_bits > 0 {
        // Pad with the most-significant bits of EOS (all-ones prefix in
        // canonical ordering of the rarest symbol — exactly the RFC rule).
        let eos = t.encode[EOS];
        let pad = 8 - acc_bits;
        let pad_bits = (eos.bits >> (eos.len as u32 - pad)) as u64;
        acc = (acc << pad) | pad_bits;
        out.push(acc as u8);
    }
    out
}

/// Decodes a Huffman-coded string.
///
/// # Errors
///
/// Fails when the trailing padding is longer than 7 bits, is not an EOS
/// prefix, or EOS appears inside the stream.
pub fn decode(input: &[u8]) -> Result<Vec<u8>, HuffmanError> {
    let t = tables();
    let mut out = Vec::with_capacity(input.len() * 2);
    let mut node = 0usize;
    let mut bits_since_symbol = 0u32;
    let mut all_ones_since_symbol = true;
    for &byte in input {
        for i in (0..8).rev() {
            let bit = ((byte >> i) & 1) as usize;
            bits_since_symbol += 1;
            all_ones_since_symbol &= is_eos_prefix_bit(t, node, bit);
            let next = t.tree[node][bit];
            if next >= LEAF_BASE {
                let sym = (next - LEAF_BASE) as usize;
                if sym == EOS {
                    return Err(HuffmanError::InvalidPadding);
                }
                out.push(sym as u8);
                node = 0;
                bits_since_symbol = 0;
                all_ones_since_symbol = true;
            } else {
                node = next as usize;
            }
        }
    }
    // Whatever remains must be a strict EOS prefix of at most 7 bits.
    if bits_since_symbol >= 8 || !all_ones_since_symbol {
        return Err(HuffmanError::InvalidPadding);
    }
    Ok(out)
}

/// Checks whether taking `bit` from `node` stays on the EOS path.
fn is_eos_prefix_bit(t: &Tables, node: usize, bit: usize) -> bool {
    // Walk EOS's code and see if (node, bit) lies on it. Cheap because the
    // EOS code is ≤ 32 bits; we recompute the path position from the node
    // by walking from the root each time a symbol completes, so here we
    // only need "is this edge on the EOS path from this node" — which for
    // canonical codes with EOS = all-ones simplifies to `bit == 1` on the
    // rightmost spine. The builder gives EOS the largest code, which in
    // canonical (length, symbol) order is the all-ones pattern of maximal
    // length, so its path is the all-ones spine.
    let _ = (t, node);
    bit == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_header_text() {
        for s in [
            "www.isidewith.com",
            "/img/parties/democratic.png",
            "gzip, deflate, br",
            "Mozilla/5.0 (X11; Linux x86_64; rv:74.0)",
            "",
        ] {
            let enc = encode(s.as_bytes());
            assert_eq!(decode(&enc).unwrap(), s.as_bytes());
        }
    }

    #[test]
    fn compresses_header_like_text() {
        let s = b"/app/results-preload.js?version=20200316&cache=0";
        let enc = encode(s);
        assert!(
            enc.len() < s.len(),
            "no compression: {} -> {}",
            s.len(),
            enc.len()
        );
    }

    #[test]
    fn roundtrip_all_octets() {
        let all: Vec<u8> = (0..=255).collect();
        let enc = encode(&all);
        assert_eq!(decode(&enc).unwrap(), all);
    }

    #[test]
    fn eos_is_all_ones_spine() {
        // The padding logic relies on EOS being the all-ones code.
        let t = super::tables();
        let eos = t.encode[super::EOS];
        assert_eq!(
            eos.bits,
            (1u32 << eos.len).wrapping_sub(1) & ((1u32 << eos.len) - 1)
        );
        assert_eq!(eos.bits.count_ones() as u8, eos.len);
    }

    #[test]
    fn bad_padding_rejected() {
        // A lone zero byte is 8 bits of non-EOS padding.
        assert_eq!(decode(&[0x00]), Err(HuffmanError::InvalidPadding));
    }

    #[test]
    fn truncated_tail_that_is_eos_prefix_ok() {
        // Encoding "a" leaves EOS-prefix padding; decode accepts it.
        let enc = encode(b"a");
        assert_eq!(decode(&enc).unwrap(), b"a");
    }

    #[test]
    fn common_symbols_get_short_codes() {
        let t = super::tables();
        assert!(t.encode[b'a' as usize].len <= 6);
        assert!(t.encode[b'/' as usize].len <= 7);
        assert!(t.encode[0x01].len >= 14, "control bytes must be long");
    }
}
