//! HPACK indexing tables (RFC 7541 §2.3, Appendix A).

/// A header field: name and value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HeaderField {
    /// Field name (lowercase by HTTP/2 convention).
    pub name: String,
    /// Field value.
    pub value: String,
}

impl HeaderField {
    /// Creates a field.
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Self {
        HeaderField {
            name: name.into(),
            value: value.into(),
        }
    }

    /// RFC 7541 §4.1 size: name + value + 32 bytes of overhead.
    pub fn hpack_size(&self) -> usize {
        self.name.len() + self.value.len() + 32
    }
}

/// The 61-entry HPACK static table (RFC 7541 Appendix A).
pub const STATIC_TABLE: &[(&str, &str)] = &[
    (":authority", ""),
    (":method", "GET"),
    (":method", "POST"),
    (":path", "/"),
    (":path", "/index.html"),
    (":scheme", "http"),
    (":scheme", "https"),
    (":status", "200"),
    (":status", "204"),
    (":status", "206"),
    (":status", "304"),
    (":status", "400"),
    (":status", "404"),
    (":status", "500"),
    ("accept-charset", ""),
    ("accept-encoding", "gzip, deflate"),
    ("accept-language", ""),
    ("accept-ranges", ""),
    ("accept", ""),
    ("access-control-allow-origin", ""),
    ("age", ""),
    ("allow", ""),
    ("authorization", ""),
    ("cache-control", ""),
    ("content-disposition", ""),
    ("content-encoding", ""),
    ("content-language", ""),
    ("content-length", ""),
    ("content-location", ""),
    ("content-range", ""),
    ("content-type", ""),
    ("cookie", ""),
    ("date", ""),
    ("etag", ""),
    ("expect", ""),
    ("expires", ""),
    ("from", ""),
    ("host", ""),
    ("if-match", ""),
    ("if-modified-since", ""),
    ("if-none-match", ""),
    ("if-range", ""),
    ("if-unmodified-since", ""),
    ("last-modified", ""),
    ("link", ""),
    ("location", ""),
    ("max-forwards", ""),
    ("proxy-authenticate", ""),
    ("proxy-authorization", ""),
    ("range", ""),
    ("referer", ""),
    ("refresh", ""),
    ("retry-after", ""),
    ("server", ""),
    ("set-cookie", ""),
    ("strict-transport-security", ""),
    ("transfer-encoding", ""),
    ("user-agent", ""),
    ("vary", ""),
    ("via", ""),
    ("www-authenticate", ""),
];

/// The dynamic table: FIFO of recently indexed fields, size-bounded.
#[derive(Debug, Clone)]
pub struct DynamicTable {
    entries: std::collections::VecDeque<HeaderField>,
    size: usize,
    max_size: usize,
}

impl DynamicTable {
    /// Creates a table with the given capacity (SETTINGS_HEADER_TABLE_SIZE;
    /// default 4096).
    pub fn new(max_size: usize) -> Self {
        DynamicTable {
            entries: std::collections::VecDeque::new(),
            size: 0,
            max_size,
        }
    }

    /// Current occupancy in RFC 7541 size units.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts at the front, evicting from the back until it fits. A field
    /// larger than the whole table empties it (RFC 7541 §4.4).
    pub fn insert(&mut self, field: HeaderField) {
        let fsize = field.hpack_size();
        while self.size + fsize > self.max_size {
            let Some(evicted) = self.entries.pop_back() else {
                // Table empty and the field still doesn't fit.
                self.size = 0;
                return;
            };
            self.size -= evicted.hpack_size();
        }
        self.size += fsize;
        self.entries.push_front(field);
    }

    /// Resizes the capacity, evicting as needed.
    pub fn set_max_size(&mut self, max_size: usize) {
        self.max_size = max_size;
        while self.size > self.max_size {
            let evicted = self.entries.pop_back().expect("size > 0 implies entries");
            self.size -= evicted.hpack_size();
        }
    }

    /// 0-based lookup (0 = most recently inserted).
    pub fn get(&self, index: usize) -> Option<&HeaderField> {
        self.entries.get(index)
    }

    /// Finds a fully matching entry, returning its 0-based index.
    pub fn find(&self, field: &HeaderField) -> Option<usize> {
        self.entries.iter().position(|e| e == field)
    }

    /// Finds an entry with a matching name, returning its 0-based index.
    pub fn find_name(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.name == name)
    }
}

/// Combined static + dynamic index space (1-based per RFC 7541 §2.3.3).
#[derive(Debug, Clone)]
pub struct IndexTable {
    dynamic: DynamicTable,
}

impl IndexTable {
    /// Creates an index with the given dynamic-table capacity.
    pub fn new(max_dynamic_size: usize) -> Self {
        IndexTable {
            dynamic: DynamicTable::new(max_dynamic_size),
        }
    }

    /// Looks up a 1-based index.
    pub fn get(&self, index: usize) -> Option<HeaderField> {
        if index == 0 {
            return None;
        }
        if index <= STATIC_TABLE.len() {
            let (n, v) = STATIC_TABLE[index - 1];
            return Some(HeaderField::new(n, v));
        }
        self.dynamic.get(index - STATIC_TABLE.len() - 1).cloned()
    }

    /// Finds the 1-based index of an exact match, preferring the static
    /// table.
    pub fn find(&self, field: &HeaderField) -> Option<usize> {
        if let Some(pos) = STATIC_TABLE
            .iter()
            .position(|&(n, v)| n == field.name && v == field.value)
        {
            return Some(pos + 1);
        }
        self.dynamic
            .find(field)
            .map(|pos| pos + STATIC_TABLE.len() + 1)
    }

    /// Finds a 1-based index whose *name* matches.
    pub fn find_name(&self, name: &str) -> Option<usize> {
        if let Some(pos) = STATIC_TABLE.iter().position(|&(n, _)| n == name) {
            return Some(pos + 1);
        }
        self.dynamic
            .find_name(name)
            .map(|pos| pos + STATIC_TABLE.len() + 1)
    }

    /// Inserts into the dynamic table.
    pub fn insert(&mut self, field: HeaderField) {
        self.dynamic.insert(field);
    }

    /// Resizes the dynamic table.
    pub fn set_max_dynamic_size(&mut self, max: usize) {
        self.dynamic.set_max_size(max);
    }

    /// Dynamic-table entry count (diagnostics).
    pub fn dynamic_len(&self) -> usize {
        self.dynamic.len()
    }

    /// Dynamic-table occupancy in HPACK size units (RFC 7541 §4.1).
    pub fn dynamic_size(&self) -> usize {
        self.dynamic.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_table_has_61_entries() {
        assert_eq!(STATIC_TABLE.len(), 61);
        assert_eq!(STATIC_TABLE[1], (":method", "GET"));
        assert_eq!(STATIC_TABLE[7], (":status", "200"));
        assert_eq!(STATIC_TABLE[60], ("www-authenticate", ""));
    }

    #[test]
    fn field_size_rule() {
        assert_eq!(HeaderField::new("a", "bc").hpack_size(), 35);
    }

    #[test]
    fn dynamic_insert_and_lookup() {
        let mut t = DynamicTable::new(4096);
        t.insert(HeaderField::new("x-one", "1"));
        t.insert(HeaderField::new("x-two", "2"));
        assert_eq!(t.get(0).unwrap().name, "x-two"); // newest first
        assert_eq!(t.get(1).unwrap().name, "x-one");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn dynamic_eviction_fifo() {
        // Capacity for about two small entries.
        let mut t = DynamicTable::new(80);
        t.insert(HeaderField::new("a", "1")); // 34
        t.insert(HeaderField::new("b", "2")); // 34
        t.insert(HeaderField::new("c", "3")); // 34 — evicts "a"
        assert_eq!(t.len(), 2);
        assert!(t.find(&HeaderField::new("a", "1")).is_none());
        assert!(t.find(&HeaderField::new("c", "3")).is_some());
    }

    #[test]
    fn oversized_field_empties_table() {
        let mut t = DynamicTable::new(40);
        t.insert(HeaderField::new("a", "1"));
        t.insert(HeaderField::new("name", "v".repeat(100)));
        assert!(t.is_empty());
        assert_eq!(t.size(), 0);
    }

    #[test]
    fn resize_evicts() {
        let mut t = DynamicTable::new(4096);
        for i in 0..10 {
            t.insert(HeaderField::new(format!("h{i}"), "v"));
        }
        t.set_max_size(70); // room for two ~35-byte entries
        assert!(t.len() <= 2);
    }

    #[test]
    fn combined_index_space() {
        let mut idx = IndexTable::new(4096);
        assert_eq!(idx.get(2).unwrap(), HeaderField::new(":method", "GET"));
        assert_eq!(idx.get(0), None);
        idx.insert(HeaderField::new("x-custom", "v"));
        assert_eq!(idx.get(62).unwrap(), HeaderField::new("x-custom", "v"));
        assert_eq!(idx.find(&HeaderField::new("x-custom", "v")), Some(62));
        assert_eq!(idx.find(&HeaderField::new(":method", "GET")), Some(2));
    }

    #[test]
    fn find_name_prefers_static() {
        let mut idx = IndexTable::new(4096);
        idx.insert(HeaderField::new("cookie", "session=1"));
        assert_eq!(idx.find_name("cookie"), Some(32)); // static entry
        assert_eq!(idx.find_name("x-missing"), None);
    }

    #[test]
    fn dynamic_index_shifts_on_insert() {
        let mut idx = IndexTable::new(4096);
        idx.insert(HeaderField::new("first", "1"));
        idx.insert(HeaderField::new("second", "2"));
        assert_eq!(idx.get(62).unwrap().name, "second");
        assert_eq!(idx.get(63).unwrap().name, "first");
    }
}
