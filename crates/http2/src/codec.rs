//! Frame serialization (RFC 7540 §4.1) and the connection preface.

use crate::error::ErrorCode;
use crate::frame::{flags, Frame, FrameType, SettingId, DEFAULT_MAX_FRAME_SIZE, FRAME_HEADER_LEN};
use crate::stream::StreamId;

/// The 24-byte client connection preface (RFC 7540 §3.5).
pub const CLIENT_PREFACE: &[u8] = b"PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n";

/// Errors from decoding the frame layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameDecodeError {
    /// Frame length exceeds the negotiated maximum.
    FrameTooLarge,
    /// A fixed-layout frame had the wrong payload size.
    BadLength(FrameType),
    /// PUSH_PROMISE arrived although push is disabled in the model.
    PushUnsupported,
    /// CONTINUATION arrived outside a header sequence, or a non-
    /// CONTINUATION frame interrupted one (RFC 7540 §6.10).
    UnexpectedContinuation,
    /// A PADDED frame declared a pad length of the payload length or more
    /// — a connection error of type PROTOCOL_ERROR (RFC 7540 §6.1).
    BadPadding(FrameType),
    /// A PADDED frame carried non-zero padding octets. RFC 7540 §6.1 says
    /// padding MUST be zero and a receiver MAY treat violations as
    /// PROTOCOL_ERROR; this model always does, so covert channels in pad
    /// bytes surface as conformance violations.
    NonZeroPadding(FrameType),
    /// The client preface bytes were wrong.
    BadPreface,
}

impl std::fmt::Display for FrameDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameDecodeError::FrameTooLarge => write!(f, "frame exceeds max frame size"),
            FrameDecodeError::BadLength(t) => write!(f, "bad payload length for {t:?}"),
            FrameDecodeError::PushUnsupported => write!(f, "push promise not supported"),
            FrameDecodeError::UnexpectedContinuation => write!(f, "unexpected continuation"),
            FrameDecodeError::BadPadding(t) => {
                write!(f, "pad length >= payload length for {t:?} (PROTOCOL_ERROR)")
            }
            FrameDecodeError::NonZeroPadding(t) => {
                write!(f, "non-zero padding octets in {t:?} (PROTOCOL_ERROR)")
            }
            FrameDecodeError::BadPreface => write!(f, "invalid client preface"),
        }
    }
}

impl std::error::Error for FrameDecodeError {}

fn put_u24(out: &mut Vec<u8>, v: usize) {
    debug_assert!(v < 1 << 24);
    out.extend_from_slice(&[(v >> 16) as u8, (v >> 8) as u8, v as u8]);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn header(out: &mut Vec<u8>, len: usize, ftype: FrameType, fl: u8, stream: StreamId) {
    put_u24(out, len);
    out.push(ftype.as_u8());
    out.push(fl);
    put_u32(out, stream.0 & 0x7FFF_FFFF);
}

/// Appends a bare 9-byte frame header — the split-DATA send path encodes
/// the header alone and hands the body through as a shared chunk.
pub(crate) fn encode_frame_header_into(
    out: &mut Vec<u8>,
    payload_len: usize,
    ftype: FrameType,
    fl: u8,
    stream: StreamId,
) {
    header(out, payload_len, ftype, fl, stream);
}

/// Encodes a header block as a HEADERS frame followed by CONTINUATION
/// frames when the block exceeds `max_frame_size` (RFC 7540 §6.10).
pub fn encode_headers_split(
    stream_id: StreamId,
    end_stream: bool,
    block: &[u8],
    max_frame_size: usize,
) -> Vec<u8> {
    let max = max_frame_size.max(1);
    if block.len() <= max {
        return encode_frame(&Frame::Headers {
            stream_id,
            end_stream,
            header_block: block.to_vec(),
            pad: None,
        });
    }
    let mut out = Vec::with_capacity(block.len() + 64);
    let chunks: Vec<&[u8]> = block.chunks(max).collect();
    let last = chunks.len() - 1;
    for (i, chunk) in chunks.into_iter().enumerate() {
        if i == 0 {
            // HEADERS without END_HEADERS.
            let fl = if end_stream { flags::END_STREAM } else { 0 };
            header(&mut out, chunk.len(), FrameType::Headers, fl, stream_id);
        } else {
            let fl = if i == last { flags::END_HEADERS } else { 0 };
            header(
                &mut out,
                chunk.len(),
                FrameType::Continuation,
                fl,
                stream_id,
            );
        }
        out.extend_from_slice(chunk);
    }
    out
}

/// Encodes one frame to wire bytes.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::new();
    encode_frame_into(&mut out, frame);
    out
}

/// Encodes one frame, appending its wire bytes to `out`. Lets a caller
/// reserve headroom in front of the frame for in-place transport sealing.
pub fn encode_frame_into(out: &mut Vec<u8>, frame: &Frame) {
    match frame {
        Frame::Data {
            stream_id,
            end_stream,
            data,
            pad,
        } => {
            let mut fl = if *end_stream { flags::END_STREAM } else { 0 };
            if pad.is_some() {
                fl |= flags::PADDED;
            }
            let len = data.len() + crate::frame::pad_overhead(*pad);
            header(out, len, FrameType::Data, fl, *stream_id);
            if let Some(p) = pad {
                out.push(*p);
            }
            out.extend_from_slice(data);
            if let Some(p) = pad {
                out.resize(out.len() + *p as usize, 0);
            }
        }
        Frame::Headers {
            stream_id,
            end_stream,
            header_block,
            pad,
        } => {
            let mut fl = flags::END_HEADERS;
            if *end_stream {
                fl |= flags::END_STREAM;
            }
            if pad.is_some() {
                fl |= flags::PADDED;
            }
            let len = header_block.len() + crate::frame::pad_overhead(*pad);
            header(out, len, FrameType::Headers, fl, *stream_id);
            if let Some(p) = pad {
                out.push(*p);
            }
            out.extend_from_slice(header_block);
            if let Some(p) = pad {
                out.resize(out.len() + *p as usize, 0);
            }
        }
        Frame::Priority {
            stream_id,
            depends_on,
            exclusive,
            weight,
        } => {
            header(out, 5, FrameType::Priority, 0, *stream_id);
            let dep = (depends_on.0 & 0x7FFF_FFFF) | if *exclusive { 0x8000_0000 } else { 0 };
            put_u32(out, dep);
            out.push(*weight);
        }
        Frame::RstStream {
            stream_id,
            error_code,
        } => {
            header(out, 4, FrameType::RstStream, 0, *stream_id);
            put_u32(out, error_code.as_u32());
        }
        Frame::Settings { ack, settings } => {
            let fl = if *ack { flags::ACK } else { 0 };
            header(
                out,
                settings.len() * 6,
                FrameType::Settings,
                fl,
                StreamId::CONNECTION,
            );
            for &(id, value) in settings {
                out.extend_from_slice(&id.as_u16().to_be_bytes());
                put_u32(out, value);
            }
        }
        Frame::Ping { ack, data } => {
            let fl = if *ack { flags::ACK } else { 0 };
            header(out, 8, FrameType::Ping, fl, StreamId::CONNECTION);
            out.extend_from_slice(data);
        }
        Frame::GoAway {
            last_stream_id,
            error_code,
        } => {
            header(out, 8, FrameType::GoAway, 0, StreamId::CONNECTION);
            put_u32(out, last_stream_id.0 & 0x7FFF_FFFF);
            put_u32(out, error_code.as_u32());
        }
        Frame::WindowUpdate {
            stream_id,
            increment,
        } => {
            header(out, 4, FrameType::WindowUpdate, 0, *stream_id);
            put_u32(out, increment & 0x7FFF_FFFF);
        }
    }
}

/// Incremental frame parser over a byte stream.
///
/// Consumed frames advance a cursor rather than draining the front of the
/// buffer, so parsing a frame does not `memmove` the bytes behind it; the
/// consumed prefix is reclaimed when parsing pauses for more bytes.
#[derive(Debug, Clone)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Start of unconsumed bytes in `buf`.
    pos: usize,
    max_frame_size: usize,
    /// Client preface bytes still expected (server side only).
    preface_remaining: usize,
    /// An in-progress header sequence: (stream, end_stream, accumulated
    /// block). While set, only CONTINUATION frames for that stream are
    /// legal (RFC 7540 §6.10).
    header_sequence: Option<(StreamId, bool, Vec<u8>)>,
    /// When set, decoded DATA payloads are length-only zero-page views
    /// (see [`H2Config::opaque_data_payloads`]); padding is still
    /// validated against the real bytes.
    ///
    /// [`H2Config::opaque_data_payloads`]: crate::settings::H2Config::opaque_data_payloads
    opaque_data: bool,
}

impl FrameDecoder {
    /// Creates a decoder. `expect_preface` is true on the server, which
    /// must first consume the 24-byte client preface.
    pub fn new(expect_preface: bool) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            pos: 0,
            max_frame_size: DEFAULT_MAX_FRAME_SIZE,
            preface_remaining: if expect_preface {
                CLIENT_PREFACE.len()
            } else {
                0
            },
            header_sequence: None,
            opaque_data: false,
        }
    }

    /// Updates the advertised `SETTINGS_MAX_FRAME_SIZE`.
    pub fn set_max_frame_size(&mut self, size: usize) {
        self.max_frame_size = size;
    }

    /// Switches DATA payload delivery to opaque length-only views.
    pub fn set_opaque_data(&mut self, opaque: bool) {
        self.opaque_data = opaque;
    }

    /// Stream of the HEADERS/CONTINUATION sequence currently being
    /// reassembled, if one is open. While it is, RFC 7540 §4.3 forbids the
    /// peer from interleaving any other frame — which is exactly why a
    /// slow-trickled sequence pins receiver state (the slow-HEADERS DoS).
    pub fn in_progress_header_stream(&self) -> Option<StreamId> {
        self.header_sequence.as_ref().map(|(id, _, _)| *id)
    }

    /// Appends received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed.
    fn buffered_len(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reclaims the consumed prefix. Called only when parsing pauses, so
    /// the cost is once per burst of frames, not once per frame.
    fn compact(&mut self) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Attempts to parse the next frame; `Ok(None)` means more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// Fails on protocol violations; the connection must then GOAWAY.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameDecodeError> {
        if self.preface_remaining > 0 {
            let avail = self.buf.len() - self.pos;
            let take = self.preface_remaining.min(avail);
            let expected = &CLIENT_PREFACE[CLIENT_PREFACE.len() - self.preface_remaining..][..take];
            if &self.buf[self.pos..self.pos + take] != expected {
                return Err(FrameDecodeError::BadPreface);
            }
            self.pos += take;
            self.preface_remaining -= take;
            if self.preface_remaining > 0 {
                self.compact();
                return Ok(None);
            }
        }
        let avail = &self.buf[self.pos..];
        if avail.len() < FRAME_HEADER_LEN {
            self.compact();
            return Ok(None);
        }
        let len = ((avail[0] as usize) << 16) | ((avail[1] as usize) << 8) | avail[2] as usize;
        if len > self.max_frame_size {
            return Err(FrameDecodeError::FrameTooLarge);
        }
        if avail.len() < FRAME_HEADER_LEN + len {
            self.compact();
            return Ok(None);
        }
        let ftype = avail[3];
        let fl = avail[4];
        let stream_id =
            StreamId(u32::from_be_bytes([avail[5], avail[6], avail[7], avail[8]]) & 0x7FFF_FFFF);
        // DATA fast path: build the frame straight from the buffered bytes
        // — one copy of the content (zero in opaque mode) instead of a
        // payload `to_vec` plus a padded re-copy.
        if self.header_sequence.is_none() && ftype == FrameType::Data.as_u8() {
            let frame = data_frame_from_payload(
                self.opaque_data,
                fl,
                stream_id,
                &avail[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len],
            )?;
            self.pos += FRAME_HEADER_LEN + len;
            if self.pos == self.buf.len() {
                self.buf.clear();
                self.pos = 0;
            }
            return Ok(Some(frame));
        }
        let payload: Vec<u8> = avail[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len].to_vec();
        self.pos += FRAME_HEADER_LEN + len;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        let Some(ftype) = FrameType::from_u8(ftype) else {
            // RFC 7540 §4.1: unknown types are ignored.
            return self.next_frame();
        };
        // A header sequence admits only its own CONTINUATIONs.
        if let Some((seq_stream, _, _)) = &self.header_sequence {
            if ftype != FrameType::Continuation || stream_id != *seq_stream {
                return Err(FrameDecodeError::UnexpectedContinuation);
            }
        }
        match self.parse(ftype, fl, stream_id, payload)? {
            Some(frame) => Ok(Some(frame)),
            None => self.next_frame(), // mid-sequence fragment consumed
        }
    }

    /// Attempts to parse the next frame from the internal buffer plus
    /// `input`, consuming from `input`. The streaming variant of
    /// [`next_frame`](Self::next_frame): complete frames that lie entirely
    /// within `input` are parsed borrowed — only their payload is copied
    /// out, never the whole stream — and a trailing partial frame is
    /// stashed for the next feed. `Ok(None)` with a non-empty `input`
    /// means the consumed bytes completed a mid-sequence fragment; call
    /// again until `input` is empty.
    ///
    /// # Errors
    ///
    /// As for [`next_frame`](Self::next_frame).
    pub fn next_frame_borrowed(
        &mut self,
        input: &mut &[u8],
    ) -> Result<Option<Frame>, FrameDecodeError> {
        if self.preface_remaining > 0 {
            // Startup path (once per connection): lean on the buffered
            // parser until the preface is consumed.
            self.push(input);
            *input = &[];
            return self.next_frame();
        }
        if self.buffered_len() > 0 {
            // Top the stashed partial frame up with only what it needs,
            // then let the buffered parser finish it.
            if self.buffered_len() < FRAME_HEADER_LEN {
                let take = (FRAME_HEADER_LEN - self.buffered_len()).min(input.len());
                self.buf.extend_from_slice(&input[..take]);
                *input = &input[take..];
            }
            if self.buffered_len() < FRAME_HEADER_LEN {
                self.compact();
                return Ok(None);
            }
            let avail = &self.buf[self.pos..];
            let len = ((avail[0] as usize) << 16) | ((avail[1] as usize) << 8) | avail[2] as usize;
            if len > self.max_frame_size {
                return Err(FrameDecodeError::FrameTooLarge);
            }
            let take = (FRAME_HEADER_LEN + len)
                .saturating_sub(self.buffered_len())
                .min(input.len());
            self.buf.extend_from_slice(&input[..take]);
            *input = &input[take..];
            if self.buffered_len() < FRAME_HEADER_LEN + len {
                self.compact();
                return Ok(None);
            }
            return self.next_frame();
        }
        let avail = *input;
        if avail.len() < FRAME_HEADER_LEN {
            self.buf.extend_from_slice(avail);
            *input = &[];
            return Ok(None);
        }
        let len = ((avail[0] as usize) << 16) | ((avail[1] as usize) << 8) | avail[2] as usize;
        if len > self.max_frame_size {
            return Err(FrameDecodeError::FrameTooLarge);
        }
        if avail.len() < FRAME_HEADER_LEN + len {
            self.buf.extend_from_slice(avail);
            *input = &[];
            return Ok(None);
        }
        let ftype = avail[3];
        let fl = avail[4];
        let stream_id =
            StreamId(u32::from_be_bytes([avail[5], avail[6], avail[7], avail[8]]) & 0x7FFF_FFFF);
        // DATA fast path, as in `next_frame`: parse padding and content
        // straight from the borrowed input.
        if self.header_sequence.is_none() && ftype == FrameType::Data.as_u8() {
            let frame = data_frame_from_payload(
                self.opaque_data,
                fl,
                stream_id,
                &avail[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len],
            )?;
            *input = &input[FRAME_HEADER_LEN + len..];
            return Ok(Some(frame));
        }
        let payload: Vec<u8> = avail[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len].to_vec();
        *input = &input[FRAME_HEADER_LEN + len..];
        let Some(ftype) = FrameType::from_u8(ftype) else {
            // RFC 7540 §4.1: unknown types are ignored.
            return self.next_frame_borrowed(input);
        };
        // A header sequence admits only its own CONTINUATIONs.
        if let Some((seq_stream, _, _)) = &self.header_sequence {
            if ftype != FrameType::Continuation || stream_id != *seq_stream {
                return Err(FrameDecodeError::UnexpectedContinuation);
            }
        }
        match self.parse(ftype, fl, stream_id, payload)? {
            Some(frame) => Ok(Some(frame)),
            None => self.next_frame_borrowed(input), // mid-sequence fragment consumed
        }
    }

    fn parse(
        &mut self,
        ftype: FrameType,
        fl: u8,
        stream_id: StreamId,
        payload: Vec<u8>,
    ) -> Result<Option<Frame>, FrameDecodeError> {
        match ftype {
            FrameType::Data => Ok(Some(data_frame_from_payload(
                self.opaque_data,
                fl,
                stream_id,
                &payload,
            )?)),
            FrameType::Headers => {
                let (mut block, pad) = strip_padding(FrameType::Headers, fl, payload)?;
                if fl & flags::PRIORITY != 0 {
                    if block.len() < 5 {
                        return Err(FrameDecodeError::BadLength(FrameType::Headers));
                    }
                    block.drain(..5); // dependency + weight, advisory only
                }
                if fl & flags::END_HEADERS == 0 {
                    // Begin a header sequence awaiting CONTINUATION. The
                    // opening frame's padding is already accounted on the
                    // wire; the reassembled block reports no pad.
                    self.header_sequence = Some((stream_id, fl & flags::END_STREAM != 0, block));
                    return Ok(None);
                }
                Ok(Some(Frame::Headers {
                    stream_id,
                    end_stream: fl & flags::END_STREAM != 0,
                    header_block: block,
                    pad,
                }))
            }
            FrameType::Priority => {
                if payload.len() != 5 {
                    return Err(FrameDecodeError::BadLength(FrameType::Priority));
                }
                let dep = u32::from_be_bytes([payload[0], payload[1], payload[2], payload[3]]);
                Ok(Some(Frame::Priority {
                    stream_id,
                    depends_on: StreamId(dep & 0x7FFF_FFFF),
                    exclusive: dep & 0x8000_0000 != 0,
                    weight: payload[4],
                }))
            }
            FrameType::RstStream => {
                if payload.len() != 4 {
                    return Err(FrameDecodeError::BadLength(FrameType::RstStream));
                }
                Ok(Some(Frame::RstStream {
                    stream_id,
                    error_code: ErrorCode::from_u32(u32::from_be_bytes(
                        payload[..4].try_into().expect("4 bytes"),
                    )),
                }))
            }
            FrameType::Settings => {
                if !payload.len().is_multiple_of(6) {
                    return Err(FrameDecodeError::BadLength(FrameType::Settings));
                }
                let mut settings = Vec::new();
                for chunk in payload.chunks_exact(6) {
                    let id = u16::from_be_bytes([chunk[0], chunk[1]]);
                    let value = u32::from_be_bytes([chunk[2], chunk[3], chunk[4], chunk[5]]);
                    if let Some(id) = SettingId::from_u16(id) {
                        settings.push((id, value));
                    }
                    // Unknown settings are ignored (RFC 7540 §6.5.2).
                }
                Ok(Some(Frame::Settings {
                    ack: fl & flags::ACK != 0,
                    settings,
                }))
            }
            FrameType::Ping => {
                if payload.len() != 8 {
                    return Err(FrameDecodeError::BadLength(FrameType::Ping));
                }
                Ok(Some(Frame::Ping {
                    ack: fl & flags::ACK != 0,
                    data: payload[..8].try_into().expect("8 bytes"),
                }))
            }
            FrameType::GoAway => {
                if payload.len() < 8 {
                    return Err(FrameDecodeError::BadLength(FrameType::GoAway));
                }
                Ok(Some(Frame::GoAway {
                    last_stream_id: StreamId(
                        u32::from_be_bytes(payload[..4].try_into().expect("4 bytes")) & 0x7FFF_FFFF,
                    ),
                    error_code: ErrorCode::from_u32(u32::from_be_bytes(
                        payload[4..8].try_into().expect("4 bytes"),
                    )),
                }))
            }
            FrameType::WindowUpdate => {
                if payload.len() != 4 {
                    return Err(FrameDecodeError::BadLength(FrameType::WindowUpdate));
                }
                Ok(Some(Frame::WindowUpdate {
                    stream_id,
                    increment: u32::from_be_bytes(payload[..4].try_into().expect("4 bytes"))
                        & 0x7FFF_FFFF,
                }))
            }
            FrameType::PushPromise => Err(FrameDecodeError::PushUnsupported),
            FrameType::Continuation => {
                let Some((seq_stream, end_stream, mut block)) = self.header_sequence.take() else {
                    return Err(FrameDecodeError::UnexpectedContinuation);
                };
                debug_assert_eq!(seq_stream, stream_id); // checked upstream
                block.extend_from_slice(&payload);
                if fl & flags::END_HEADERS == 0 {
                    self.header_sequence = Some((seq_stream, end_stream, block));
                    return Ok(None);
                }
                Ok(Some(Frame::Headers {
                    stream_id: seq_stream,
                    end_stream,
                    header_block: block,
                    pad: None,
                }))
            }
        }
    }
}

/// Strips DATA/HEADERS padding, returning the content bytes and the pad
/// length (`None` when the PADDED flag is unset).
///
/// # Errors
///
/// `BadPadding` when `pad_len >= payload length` — RFC 7540 §6.1 makes
/// this a connection error of type PROTOCOL_ERROR, not a droppable frame —
/// and `NonZeroPadding` when any pad octet is non-zero (padding MUST be
/// zero; this model enforces the RFC's MAY-check unconditionally so the
/// conformance oracle sees covert pad contents).
fn strip_padding(
    ftype: FrameType,
    fl: u8,
    payload: Vec<u8>,
) -> Result<(Vec<u8>, Option<u8>), FrameDecodeError> {
    if fl & flags::PADDED == 0 {
        return Ok((payload, None));
    }
    let (content, pad) = strip_padding_borrowed(ftype, fl, &payload)?;
    Ok((content.to_vec(), pad))
}

/// Borrowing variant of [`strip_padding`]: the content comes back as a
/// sub-slice of `payload`, deferring (or in opaque mode, skipping) the
/// copy.
fn strip_padding_borrowed(
    ftype: FrameType,
    fl: u8,
    payload: &[u8],
) -> Result<(&[u8], Option<u8>), FrameDecodeError> {
    if fl & flags::PADDED == 0 {
        return Ok((payload, None));
    }
    let Some((&pad_len, rest)) = payload.split_first() else {
        return Err(FrameDecodeError::BadPadding(ftype));
    };
    let Some(rest_len) = rest.len().checked_sub(pad_len as usize) else {
        return Err(FrameDecodeError::BadPadding(ftype));
    };
    if rest[rest_len..].iter().any(|&b| b != 0) {
        return Err(FrameDecodeError::NonZeroPadding(ftype));
    }
    Ok((&rest[..rest_len], Some(pad_len)))
}

/// Builds a DATA frame straight from its borrowed wire payload: padding is
/// validated against the real bytes, then the content is copied out once —
/// or, in opaque mode, replaced by a zero-page view of the same length
/// with no allocation at all.
fn data_frame_from_payload(
    opaque: bool,
    fl: u8,
    stream_id: StreamId,
    payload: &[u8],
) -> Result<Frame, FrameDecodeError> {
    let (content, pad) = strip_padding_borrowed(FrameType::Data, fl, payload)?;
    let data = if opaque {
        h2priv_bytes::SharedBytes::zeros(content.len())
    } else {
        h2priv_bytes::SharedBytes::copy_from_slice(content)
    };
    Ok(Frame::Data {
        stream_id,
        end_stream: fl & flags::END_STREAM != 0,
        data,
        pad,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let bytes = encode_frame(&frame);
        let mut dec = FrameDecoder::new(false);
        dec.push(&bytes);
        assert_eq!(dec.next_frame().unwrap(), Some(frame));
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn roundtrip_all_frame_kinds() {
        roundtrip(Frame::Data {
            stream_id: StreamId(5),
            end_stream: true,
            data: vec![1, 2, 3].into(),
            pad: None,
        });
        roundtrip(Frame::Headers {
            stream_id: StreamId(1),
            end_stream: false,
            header_block: vec![0x82, 0x87],
            pad: None,
        });
        roundtrip(Frame::Priority {
            stream_id: StreamId(3),
            depends_on: StreamId(1),
            exclusive: true,
            weight: 200,
        });
        roundtrip(Frame::RstStream {
            stream_id: StreamId(7),
            error_code: ErrorCode::Cancel,
        });
        roundtrip(Frame::Settings {
            ack: false,
            settings: vec![
                (SettingId::InitialWindowSize, 65_535),
                (SettingId::MaxFrameSize, 16_384),
            ],
        });
        roundtrip(Frame::Settings {
            ack: true,
            settings: vec![],
        });
        roundtrip(Frame::Ping {
            ack: true,
            data: [9; 8],
        });
        roundtrip(Frame::GoAway {
            last_stream_id: StreamId(13),
            error_code: ErrorCode::NoError,
        });
        roundtrip(Frame::WindowUpdate {
            stream_id: StreamId(0),
            increment: 32_768,
        });
    }

    #[test]
    fn padded_roundtrip_across_pad_schedules() {
        // Encode→decode identity for PADDED DATA/HEADERS across pad
        // lengths, including the zero-pad (length-byte-only) edge and the
        // maximum 255.
        for pad in [0u8, 1, 7, 32, 255] {
            roundtrip(Frame::Data {
                stream_id: StreamId(5),
                end_stream: pad % 2 == 0,
                data: vec![0xA5; 100].into(),
                pad: Some(pad),
            });
            roundtrip(Frame::Headers {
                stream_id: StreamId(3),
                end_stream: false,
                header_block: vec![0x82, 0x87, 0x84],
                pad: Some(pad),
            });
        }
        // All-padding DATA: zero content bytes is legal (pad_len == rest).
        roundtrip(Frame::Data {
            stream_id: StreamId(9),
            end_stream: false,
            data: vec![].into(),
            pad: Some(16),
        });
    }

    #[test]
    fn padded_wire_layout_matches_rfc() {
        let bytes = encode_frame(&Frame::Data {
            stream_id: StreamId(1),
            end_stream: false,
            data: vec![7, 8].into(),
            pad: Some(3),
        });
        // length = 1 pad-length byte + 2 data + 3 padding = 6.
        assert_eq!(&bytes[..3], &[0, 0, 6]);
        assert_eq!(bytes[3], 0x0); // DATA
        assert_eq!(bytes[4], 0x8); // PADDED
        assert_eq!(&bytes[9..], &[3, 7, 8, 0, 0, 0]);
    }

    #[test]
    fn header_layout_matches_rfc() {
        let bytes = encode_frame(&Frame::Data {
            stream_id: StreamId(5),
            end_stream: true,
            data: vec![0xAA; 300].into(),
            pad: None,
        });
        assert_eq!(bytes.len(), 9 + 300);
        assert_eq!(&bytes[..3], &[0, 1, 44]); // length 300
        assert_eq!(bytes[3], 0x0); // DATA
        assert_eq!(bytes[4], 0x1); // END_STREAM
        assert_eq!(&bytes[5..9], &[0, 0, 0, 5]);
    }

    #[test]
    fn incremental_parsing() {
        let bytes = encode_frame(&Frame::Ping {
            ack: false,
            data: [1; 8],
        });
        let mut dec = FrameDecoder::new(false);
        for &b in &bytes[..bytes.len() - 1] {
            dec.push(&[b]);
            assert_eq!(dec.next_frame().unwrap(), None);
        }
        dec.push(&bytes[bytes.len() - 1..]);
        assert!(matches!(
            dec.next_frame().unwrap(),
            Some(Frame::Ping { .. })
        ));
    }

    #[test]
    fn preface_consumed_before_frames() {
        let mut dec = FrameDecoder::new(true);
        dec.push(&CLIENT_PREFACE[..10]);
        assert_eq!(dec.next_frame().unwrap(), None);
        dec.push(&CLIENT_PREFACE[10..]);
        let frame = Frame::Settings {
            ack: false,
            settings: vec![],
        };
        dec.push(&encode_frame(&frame));
        assert_eq!(dec.next_frame().unwrap(), Some(frame));
    }

    #[test]
    fn bad_preface_rejected() {
        let mut dec = FrameDecoder::new(true);
        dec.push(b"GET / HTTP/1.1\r\n");
        assert_eq!(dec.next_frame(), Err(FrameDecodeError::BadPreface));
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut dec = FrameDecoder::new(false);
        dec.set_max_frame_size(16);
        let bytes = encode_frame(&Frame::Data {
            stream_id: StreamId(1),
            end_stream: false,
            data: vec![0; 17].into(),
            pad: None,
        });
        dec.push(&bytes);
        assert_eq!(dec.next_frame(), Err(FrameDecodeError::FrameTooLarge));
    }

    #[test]
    fn unknown_frame_type_skipped() {
        let mut raw = Vec::new();
        // Unknown type 0xEE, 3-byte payload.
        raw.extend_from_slice(&[0, 0, 3, 0xEE, 0, 0, 0, 0, 1, 9, 9, 9]);
        raw.extend(encode_frame(&Frame::Ping {
            ack: false,
            data: [2; 8],
        }));
        let mut dec = FrameDecoder::new(false);
        dec.push(&raw);
        assert!(matches!(
            dec.next_frame().unwrap(),
            Some(Frame::Ping { .. })
        ));
    }

    #[test]
    fn unknown_settings_ignored() {
        let mut raw = Vec::new();
        // SETTINGS with one unknown id (0x99) and one known.
        raw.extend_from_slice(&[0, 0, 12, 0x4, 0, 0, 0, 0, 0]);
        raw.extend_from_slice(&0x99u16.to_be_bytes());
        raw.extend_from_slice(&7u32.to_be_bytes());
        raw.extend_from_slice(&0x4u16.to_be_bytes());
        raw.extend_from_slice(&1000u32.to_be_bytes());
        let mut dec = FrameDecoder::new(false);
        dec.push(&raw);
        match dec.next_frame().unwrap().unwrap() {
            Frame::Settings { settings, .. } => {
                assert_eq!(settings, vec![(SettingId::InitialWindowSize, 1000)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_length_detected() {
        let mut raw = Vec::new();
        raw.extend_from_slice(&[0, 0, 3, 0x3, 0, 0, 0, 0, 5, 1, 2, 3]); // RST needs 4
        let mut dec = FrameDecoder::new(false);
        dec.push(&raw);
        assert_eq!(
            dec.next_frame(),
            Err(FrameDecodeError::BadLength(FrameType::RstStream))
        );
    }

    #[test]
    fn padded_data_stripped() {
        // Hand-built DATA frame with PADDED flag: pad_len=2, data = [7,8].
        let mut raw = Vec::new();
        raw.extend_from_slice(&[0, 0, 5, 0x0, 0x8, 0, 0, 0, 1]);
        raw.extend_from_slice(&[2, 7, 8, 0, 0]);
        let mut dec = FrameDecoder::new(false);
        dec.push(&raw);
        match dec.next_frame().unwrap().unwrap() {
            Frame::Data { data, pad, .. } => {
                assert_eq!(data, vec![7, 8]);
                assert_eq!(pad, Some(2), "pad length survives decoding");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pad_length_equal_to_payload_is_protocol_error() {
        // RFC 7540 §6.1: pad_len >= payload length is a connection error.
        // payload = [pad_len] ++ 2 trailing bytes; pad_len 3 >= 3.
        let mut raw = Vec::new();
        raw.extend_from_slice(&[0, 0, 3, 0x0, 0x8, 0, 0, 0, 1]);
        raw.extend_from_slice(&[3, 0, 0]);
        let mut dec = FrameDecoder::new(false);
        dec.push(&raw);
        assert_eq!(
            dec.next_frame(),
            Err(FrameDecodeError::BadPadding(FrameType::Data))
        );
    }

    #[test]
    fn pad_length_exceeding_payload_is_protocol_error() {
        let mut raw = Vec::new();
        raw.extend_from_slice(&[0, 0, 4, 0x0, 0x8, 0, 0, 0, 1]);
        raw.extend_from_slice(&[200, 1, 2, 3]);
        let mut dec = FrameDecoder::new(false);
        dec.push(&raw);
        assert_eq!(
            dec.next_frame(),
            Err(FrameDecodeError::BadPadding(FrameType::Data))
        );
    }

    #[test]
    fn empty_padded_payload_is_protocol_error() {
        // PADDED flag with a zero-length payload: no room for the
        // pad-length byte itself.
        let mut raw = Vec::new();
        raw.extend_from_slice(&[0, 0, 0, 0x0, 0x8, 0, 0, 0, 1]);
        let mut dec = FrameDecoder::new(false);
        dec.push(&raw);
        assert_eq!(
            dec.next_frame(),
            Err(FrameDecodeError::BadPadding(FrameType::Data))
        );
    }

    #[test]
    fn padded_headers_bad_pad_is_protocol_error() {
        let mut raw = Vec::new();
        raw.extend_from_slice(&[0, 0, 2, 0x1, 0x8 | 0x4, 0, 0, 0, 5]);
        raw.extend_from_slice(&[9, 0]);
        let mut dec = FrameDecoder::new(false);
        dec.push(&raw);
        assert_eq!(
            dec.next_frame(),
            Err(FrameDecodeError::BadPadding(FrameType::Headers))
        );
    }

    #[test]
    fn non_zero_padding_is_rejected() {
        // pad_len=2 but the pad octets are 0xFF — RFC 7540 §6.1 padding
        // MUST be zero; this decoder enforces the MAY-check.
        let mut raw = Vec::new();
        raw.extend_from_slice(&[0, 0, 5, 0x0, 0x8, 0, 0, 0, 1]);
        raw.extend_from_slice(&[2, 7, 8, 0xFF, 0xFF]);
        let mut dec = FrameDecoder::new(false);
        dec.push(&raw);
        assert_eq!(
            dec.next_frame(),
            Err(FrameDecodeError::NonZeroPadding(FrameType::Data))
        );
    }

    #[test]
    fn push_promise_unsupported() {
        let mut raw = Vec::new();
        raw.extend_from_slice(&[0, 0, 4, 0x5, 0, 0, 0, 0, 1, 0, 0, 0, 2]);
        let mut dec = FrameDecoder::new(false);
        dec.push(&raw);
        assert_eq!(dec.next_frame(), Err(FrameDecodeError::PushUnsupported));
    }
}

#[cfg(test)]
mod continuation_tests {
    use super::*;

    #[test]
    fn small_blocks_stay_single_headers() {
        let wire = encode_headers_split(StreamId(1), true, &[1, 2, 3], 16_384);
        let mut dec = FrameDecoder::new(false);
        dec.push(&wire);
        assert_eq!(
            dec.next_frame().unwrap(),
            Some(Frame::Headers {
                stream_id: StreamId(1),
                end_stream: true,
                header_block: vec![1, 2, 3],
                pad: None,
            })
        );
    }

    #[test]
    fn oversized_block_splits_and_reassembles() {
        let block: Vec<u8> = (0..10_000u32).map(|i| i as u8).collect();
        let wire = encode_headers_split(StreamId(7), true, &block, 4_096);
        // 3 frames: HEADERS + CONTINUATION + CONTINUATION(END_HEADERS).
        let mut dec = FrameDecoder::new(false);
        dec.push(&wire);
        let frame = dec.next_frame().unwrap().expect("reassembled");
        assert_eq!(
            frame,
            Frame::Headers {
                stream_id: StreamId(7),
                end_stream: true,
                header_block: block,
                pad: None,
            }
        );
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn sequence_survives_chunked_delivery() {
        let block: Vec<u8> = vec![0xAB; 9_000];
        let wire = encode_headers_split(StreamId(3), false, &block, 4_000);
        let mut dec = FrameDecoder::new(false);
        let mut got = None;
        for chunk in wire.chunks(777) {
            dec.push(chunk);
            while let Some(f) = dec.next_frame().unwrap() {
                assert!(got.is_none());
                got = Some(f);
            }
        }
        match got.expect("frame") {
            Frame::Headers {
                header_block,
                end_stream,
                ..
            } => {
                assert_eq!(header_block.len(), 9_000);
                assert!(!end_stream);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn interrupting_a_sequence_is_a_protocol_error() {
        let block: Vec<u8> = vec![0xCD; 9_000];
        let mut wire = Vec::new();
        // HEADERS without END_HEADERS…
        let split = encode_headers_split(StreamId(3), false, &block, 4_000);
        wire.extend_from_slice(&split[..FRAME_HEADER_LEN + 4_000]);
        // …then an unrelated PING.
        wire.extend(encode_frame(&Frame::Ping {
            ack: false,
            data: [0; 8],
        }));
        let mut dec = FrameDecoder::new(false);
        dec.push(&wire);
        assert_eq!(
            dec.next_frame(),
            Err(FrameDecodeError::UnexpectedContinuation)
        );
    }

    #[test]
    fn bare_continuation_is_a_protocol_error() {
        let mut raw = Vec::new();
        raw.extend_from_slice(&[0, 0, 2, 0x9, 0x4, 0, 0, 0, 3, 1, 2]);
        let mut dec = FrameDecoder::new(false);
        dec.push(&raw);
        assert_eq!(
            dec.next_frame(),
            Err(FrameDecodeError::UnexpectedContinuation)
        );
    }

    #[test]
    fn continuation_for_wrong_stream_is_rejected() {
        let block: Vec<u8> = vec![0xEF; 5_000];
        let split = encode_headers_split(StreamId(3), false, &block, 4_000);
        let mut wire = Vec::new();
        wire.extend_from_slice(&split[..FRAME_HEADER_LEN + 4_000]);
        // CONTINUATION for a different stream.
        wire.extend_from_slice(&[0, 0, 1, 0x9, 0x4, 0, 0, 0, 9, 0xAA]);
        let mut dec = FrameDecoder::new(false);
        dec.push(&wire);
        assert_eq!(
            dec.next_frame(),
            Err(FrameDecodeError::UnexpectedContinuation)
        );
    }
}
