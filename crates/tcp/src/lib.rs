//! # h2priv-tcp — the TCP substrate
//!
//! Part of the `h2priv` reproduction of *"Depending on HTTP/2 for Privacy?
//! Good Luck!"* (DSN 2020). The paper's attack never touches HTTP/2 frames
//! directly; every lever works by provoking TCP mechanisms:
//!
//! * injected **jitter** delays GET requests past the client's RTO, causing
//!   the "bunch of retransmission requests" of §IV-B — implemented by
//!   [`RttEstimator`] (RFC 6298 with backoff) and the go-back-N /
//!   fast-retransmit paths of [`TcpConnection`];
//! * **bandwidth throttling** shrinks the bandwidth-delay product so "the
//!   TCP protocol … responds by decreasing the size of the TCP sender
//!   window" (§IV-C) — implemented by [`NewReno`] congestion control;
//! * **targeted drops** push the connection into repeated timeouts with
//!   exponentially backed-off RTOs, and eventually the "broken connection"
//!   abort the paper reports at extreme settings — implemented by the
//!   consecutive-timeout limit in [`TcpConnection`].
//!
//! The stack is sans-IO: segments in via [`TcpConnection::on_segment`],
//! segments out via [`TcpConnection::poll_transmit`], time via
//! [`TcpConnection::on_tick`]. `h2priv-testkit` adapts it onto
//! `h2priv-netsim` nodes.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod congestion;
mod connection;
mod reassembly;
mod rope;
mod rtt;
mod segment;
mod seq;
mod stats;

pub use congestion::{CcPhase, NewReno};
pub use connection::{AbortReason, TcpConfig, TcpConnection, TcpState};
pub use reassembly::Reassembler;
pub use rtt::RttEstimator;
pub use segment::{TcpFlags, TcpSegment, DEFAULT_MSS, HEADER_BYTES};
pub use seq::Seq;
pub use stats::TcpStats;
