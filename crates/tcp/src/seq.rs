//! 32-bit TCP sequence-number arithmetic (RFC 793 / RFC 1982).
//!
//! Sequence numbers wrap; comparisons are defined relative to a window of
//! half the space. Internally the connection tracks 64-bit stream offsets
//! and converts at the wire boundary, but the wire format — and therefore
//! everything the passive monitor sees — uses real wrapping 32-bit values.

use std::fmt;
use std::ops::{Add, Sub};

/// A 32-bit wrapping TCP sequence number.
///
/// # Examples
///
/// ```
/// use h2priv_tcp::Seq;
///
/// let a = Seq(u32::MAX - 1);
/// let b = a + 4; // wraps
/// assert_eq!(b, Seq(2));
/// assert!(a.lt(b));
/// assert_eq!(b - a, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Seq(pub u32);

impl Seq {
    /// Wrapping-less-than: true iff `self` precedes `other` within half the
    /// sequence space.
    pub fn lt(self, other: Seq) -> bool {
        (other.0.wrapping_sub(self.0) as i32) > 0
    }

    /// Wrapping `self <= other`.
    pub fn leq(self, other: Seq) -> bool {
        self == other || self.lt(other)
    }

    /// Wrapping-greater-than.
    pub fn gt(self, other: Seq) -> bool {
        other.lt(self)
    }

    /// Wrapping `self >= other`.
    pub fn geq(self, other: Seq) -> bool {
        self == other || self.gt(other)
    }

    /// The later of two sequence numbers (wrapping order).
    pub fn max(self, other: Seq) -> Seq {
        if self.geq(other) {
            self
        } else {
            other
        }
    }
}

impl Add<u32> for Seq {
    type Output = Seq;
    fn add(self, rhs: u32) -> Seq {
        Seq(self.0.wrapping_add(rhs))
    }
}

impl Sub<Seq> for Seq {
    type Output = u32;
    /// Wrapping distance from `rhs` forward to `self`.
    fn sub(self, rhs: Seq) -> u32 {
        self.0.wrapping_sub(rhs.0)
    }
}

impl fmt::Display for Seq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ordering() {
        assert!(Seq(1).lt(Seq(2)));
        assert!(!Seq(2).lt(Seq(1)));
        assert!(!Seq(5).lt(Seq(5)));
        assert!(Seq(5).leq(Seq(5)));
        assert!(Seq(9).gt(Seq(3)));
        assert!(Seq(9).geq(Seq(9)));
    }

    #[test]
    fn wrapping_ordering() {
        let near_max = Seq(u32::MAX - 10);
        let wrapped = Seq(5);
        assert!(near_max.lt(wrapped));
        assert!(wrapped.gt(near_max));
    }

    #[test]
    fn add_wraps() {
        assert_eq!(Seq(u32::MAX) + 1, Seq(0));
        assert_eq!(Seq(u32::MAX - 2) + 5, Seq(2));
    }

    #[test]
    fn sub_is_forward_distance() {
        assert_eq!(Seq(10) - Seq(4), 6);
        assert_eq!(Seq(2) - Seq(u32::MAX - 1), 4);
    }

    #[test]
    fn max_uses_wrapping_order() {
        assert_eq!(Seq(5).max(Seq(9)), Seq(9));
        assert_eq!(Seq(5).max(Seq(u32::MAX)), Seq(5)); // MAX precedes 5 here
    }
}
