//! 32-bit TCP sequence-number arithmetic (RFC 793 / RFC 1982).
//!
//! Sequence numbers wrap; comparisons are defined relative to a window of
//! half the space. Internally the connection tracks 64-bit stream offsets
//! and converts at the wire boundary, but the wire format — and therefore
//! everything the passive monitor sees — uses real wrapping 32-bit values.

use std::fmt;
use std::ops::{Add, Sub};

/// A 32-bit wrapping TCP sequence number.
///
/// # Examples
///
/// ```
/// use h2priv_tcp::Seq;
///
/// let a = Seq(u32::MAX - 1);
/// let b = a + 4; // wraps
/// assert_eq!(b, Seq(2));
/// assert!(a.lt(b));
/// assert_eq!(b - a, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Seq(pub u32);

impl Seq {
    /// Wrapping-less-than: true iff `self` precedes `other` within half the
    /// sequence space.
    pub fn lt(self, other: Seq) -> bool {
        (other.0.wrapping_sub(self.0) as i32) > 0
    }

    /// Wrapping `self <= other`.
    pub fn leq(self, other: Seq) -> bool {
        self == other || self.lt(other)
    }

    /// Wrapping-greater-than.
    pub fn gt(self, other: Seq) -> bool {
        other.lt(self)
    }

    /// Wrapping `self >= other`.
    pub fn geq(self, other: Seq) -> bool {
        self == other || self.gt(other)
    }

    /// The later of two sequence numbers (wrapping order).
    pub fn max(self, other: Seq) -> Seq {
        if self.geq(other) {
            self
        } else {
            other
        }
    }
}

impl Add<u32> for Seq {
    type Output = Seq;
    fn add(self, rhs: u32) -> Seq {
        Seq(self.0.wrapping_add(rhs))
    }
}

impl Sub<Seq> for Seq {
    type Output = u32;
    /// Wrapping distance from `rhs` forward to `self`.
    fn sub(self, rhs: Seq) -> u32 {
        self.0.wrapping_sub(rhs.0)
    }
}

impl fmt::Display for Seq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ordering() {
        assert!(Seq(1).lt(Seq(2)));
        assert!(!Seq(2).lt(Seq(1)));
        assert!(!Seq(5).lt(Seq(5)));
        assert!(Seq(5).leq(Seq(5)));
        assert!(Seq(9).gt(Seq(3)));
        assert!(Seq(9).geq(Seq(9)));
    }

    #[test]
    fn wrapping_ordering() {
        let near_max = Seq(u32::MAX - 10);
        let wrapped = Seq(5);
        assert!(near_max.lt(wrapped));
        assert!(wrapped.gt(near_max));
    }

    #[test]
    fn add_wraps() {
        assert_eq!(Seq(u32::MAX) + 1, Seq(0));
        assert_eq!(Seq(u32::MAX - 2) + 5, Seq(2));
    }

    #[test]
    fn sub_is_forward_distance() {
        assert_eq!(Seq(10) - Seq(4), 6);
        assert_eq!(Seq(2) - Seq(u32::MAX - 1), 4);
    }

    #[test]
    fn max_uses_wrapping_order() {
        assert_eq!(Seq(5).max(Seq(9)), Seq(9));
        assert_eq!(Seq(5).max(Seq(u32::MAX)), Seq(5)); // MAX precedes 5 here
    }

    #[test]
    fn ordering_sweep_across_wrap_boundary() {
        // Exhaustive local sweep straddling the wrap point: for every base
        // near u32::MAX and every forward step within the window, the
        // ordering predicates must agree with 64-bit arithmetic.
        let bases = (0..32u32).map(|i| (u32::MAX - 16).wrapping_add(i)); // wraps halfway
        for base in bases {
            let a = Seq(base);
            for step in 1..=64u32 {
                let b = a + step;
                assert!(a.lt(b), "{a} < {a}+{step}");
                assert!(a.leq(b) && b.geq(a) && b.gt(a));
                assert!(!b.lt(a), "{a}+{step} must not precede {a}");
                assert_eq!(b - a, step, "forward distance across wrap");
                assert_eq!(a.max(b), b);
            }
            assert!(a.leq(a) && a.geq(a) && !a.lt(a) && !a.gt(a));
        }
    }

    #[test]
    fn half_window_boundary_is_never_less_both_ways() {
        // RFC 1982: comparisons are defined only within half the space;
        // at exactly 2^31 apart the order is undefined. Our lt() answers
        // false in *both* directions there — what must never happen is
        // both directions claiming "less" at once.
        for base in [0u32, 1, u32::MAX, u32::MAX / 2, 0x8000_0000] {
            let a = Seq(base);
            let just_under = a + (u32::MAX / 2); // 2^31 - 1 ahead
            assert!(a.lt(just_under), "2^31-1 ahead is still 'later'");
            assert!(!just_under.lt(a));
            let exactly_half = a + 0x8000_0000;
            assert!(!a.lt(exactly_half), "2^31 ahead is outside the window");
            assert!(!exactly_half.lt(a), "undefined, but never both-less");
            assert_eq!(exactly_half - a, 0x8000_0000);
        }
    }
}
