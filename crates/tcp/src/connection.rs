//! The TCP connection state machine (sans-IO).
//!
//! One [`TcpConnection`] is one endpoint of a connection. It is driven by
//! its host: incoming segments go in through [`TcpConnection::on_segment`],
//! outgoing segments come out of [`TcpConnection::poll_transmit`], and the
//! retransmission clock is polled via [`TcpConnection::poll_timeout`] /
//! fired via [`TcpConnection::on_tick`]. This sans-IO shape keeps the whole
//! protocol unit-testable without a simulator.
//!
//! The implementation is deliberately classic — immediate ACKs, duplicate
//! ACKs on gaps, NewReno fast retransmit/recovery, go-back-N on RTO,
//! exponential backoff, connection abort after too many consecutive
//! timeouts — because those are the exact behaviours the paper's adversary
//! provokes and exploits (§IV).

use h2priv_bytes::SharedBytes;
use h2priv_netsim::{SimDuration, SimTime};

use crate::congestion::{CcPhase, NewReno};
use crate::reassembly::Reassembler;
use crate::rope::SendRope;
use crate::rtt::RttEstimator;
use crate::segment::{TcpFlags, TcpSegment, DEFAULT_MSS};
use crate::seq::Seq;
use crate::stats::TcpStats;

/// Why a connection died.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The peer sent RST.
    PeerReset,
    /// Too many consecutive retransmission timeouts — the paper's "broken
    /// connection" outcome (§IV-C, §V).
    TooManyTimeouts,
    /// The local application aborted.
    LocalAbort,
    /// A protocol violation (unexpected segment for the state).
    ProtocolError,
}

/// Connection lifecycle states (condensed RFC 793 diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// No connection yet.
    Closed,
    /// Client sent SYN.
    SynSent,
    /// Server got SYN, sent SYN-ACK.
    SynRcvd,
    /// Data may flow.
    Established,
    /// We sent FIN, awaiting its ACK (and possibly the peer's FIN).
    FinWait,
    /// Peer sent FIN; we may still send.
    CloseWait,
    /// Both FINs exchanged, ours not yet acknowledged.
    LastAck,
    /// Fully closed.
    Done,
    /// Aborted; see [`TcpConnection::abort_reason`].
    Aborted,
}

/// Tuning knobs for a connection.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes per segment).
    pub mss: usize,
    /// Initial congestion window, in segments (RFC 6928: 10).
    pub initial_window_segments: usize,
    /// Receive window advertised to the peer, in bytes.
    pub receive_window: u32,
    /// RTO before any RTT sample exists.
    pub initial_rto: SimDuration,
    /// Lower clamp for the RTO.
    pub min_rto: SimDuration,
    /// Upper clamp for the RTO.
    pub max_rto: SimDuration,
    /// Duplicate ACKs required to trigger fast retransmit.
    pub dup_ack_threshold: u32,
    /// Consecutive RTOs after which the connection is declared broken.
    pub max_consecutive_timeouts: u32,
    /// Delayed-ACK timeout (RFC 1122 §4.2.3.2): a lone in-order segment's
    /// ACK is deferred up to this long or until a second segment arrives.
    /// `None` (the default, and the calibration's choice) acknowledges
    /// every segment immediately — dup-ACK generation under loss is what
    /// the reproduction's attack dynamics lean on.
    pub delayed_ack: Option<SimDuration>,
    /// Initial send sequence number.
    pub iss: Seq,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: DEFAULT_MSS,
            initial_window_segments: 10,
            receive_window: 1 << 20,
            initial_rto: SimDuration::from_secs(1),
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(60),
            dup_ack_threshold: 3,
            max_consecutive_timeouts: 6,
            delayed_ack: None,
            iss: Seq(1_000),
        }
    }
}

/// One endpoint of a TCP connection.
///
/// # Examples
///
/// Two connections wired back-to-back in a test harness:
///
/// ```
/// use h2priv_netsim::SimTime;
/// use h2priv_tcp::{TcpConfig, TcpConnection};
///
/// let mut client = TcpConnection::client(TcpConfig::default());
/// let mut server = TcpConnection::server(TcpConfig::default());
/// client.write(b"GET /");
///
/// // Exchange segments until quiescent.
/// let now = SimTime::ZERO;
/// for _ in 0..16 {
///     let mut moved = false;
///     while let Some(seg) = client.poll_transmit(now) {
///         server.on_segment(seg, now);
///         moved = true;
///     }
///     while let Some(seg) = server.poll_transmit(now) {
///         client.on_segment(seg, now);
///         moved = true;
///     }
///     if !moved { break; }
/// }
/// assert!(client.is_established() && server.is_established());
/// assert_eq!(server.read(), b"GET /");
/// ```
#[derive(Debug)]
pub struct TcpConnection {
    config: TcpConfig,
    state: TcpState,
    abort_reason: Option<AbortReason>,

    // ---- send side ----
    /// Unacknowledged (and unsent) bytes, as a rope of shared chunks
    /// indexed by absolute stream offset. The fully-acked prefix is
    /// released as acknowledgments arrive.
    send_buf: SendRope,
    /// First unacknowledged stream offset.
    snd_una: u64,
    /// Next offset to transmit.
    snd_nxt: u64,
    /// Highest offset ever transmitted (for retransmission detection).
    snd_max: u64,
    /// Offset of our FIN, once `close()` is called.
    fin_offset: Option<u64>,
    fin_sent: bool,
    fin_acked: bool,
    /// Peer's advertised receive window.
    peer_window: u32,
    /// Fast-retransmit request: retransmit one segment at `snd_una` now.
    fast_rexmit: bool,
    /// NewReno recovery point (offset); dup-ACK logic is disabled below it.
    recovery: Option<u64>,
    dup_acks: u32,
    cc: NewReno,
    rtt: RttEstimator,
    /// Outstanding RTT probe: (offset that must be acked, send time).
    rtt_probe: Option<(u64, SimTime)>,
    /// Absolute deadline of the retransmission timer.
    rto_deadline: Option<SimTime>,
    consecutive_timeouts: u32,
    /// Highest offset outstanding when the last RTO fired. The backed-off
    /// RTO persists until an ACK *beyond* this point — an ACK of data first
    /// sent after the timeout — arrives (RFC 6298, 5.7); ACKs that only
    /// cover retransmitted ranges are ambiguous under Karn's algorithm and
    /// leave the backoff alone.
    backoff_point: Option<u64>,
    /// When a data segment was last transmitted (idle detection, RFC 7661).
    last_data_sent: Option<SimTime>,

    // ---- receive side ----
    reassembler: Reassembler,
    /// Peer's initial sequence number, learned from its SYN.
    peer_iss: Option<Seq>,
    /// Stream offset of the peer's FIN, if received.
    peer_fin_offset: Option<u64>,
    /// Pure ACKs queued for emission, with their ack values captured at
    /// segment-processing time (one immediate ACK per received data
    /// segment, even if the driver batches deliveries).
    pending_acks: std::collections::VecDeque<Seq>,
    /// Deferred-ACK deadline when delayed ACKs are enabled and exactly one
    /// unacknowledged in-order segment has arrived.
    delayed_ack_deadline: Option<SimTime>,

    /// A RST should be emitted.
    rst_pending: bool,
    /// Cleared when a full [`poll_transmit`](Self::poll_transmit) pass
    /// returned `None` and no state has changed since: the next poll can
    /// answer `None` without re-walking the send machinery. Every mutator
    /// that could make a segment sendable (`write`, `close`, `abort`,
    /// `on_segment`, `on_tick`) sets it again. Purely an idle-path
    /// short-circuit — segment content and ordering are unchanged.
    output_pending: bool,
    /// SYN (or SYN-ACK) is in flight, awaiting its ACK or timeout.
    syn_in_flight: bool,

    stats: TcpStats,
}

impl TcpConnection {
    /// Creates the initiating endpoint; the first
    /// [`poll_transmit`](Self::poll_transmit) emits the SYN.
    pub fn client(config: TcpConfig) -> Self {
        Self::new(config, true)
    }

    /// Creates the accepting endpoint; it waits for a SYN.
    pub fn server(config: TcpConfig) -> Self {
        Self::new(config, false)
    }

    fn new(config: TcpConfig, is_client: bool) -> Self {
        let cc = NewReno::new(config.mss, config.initial_window_segments);
        let rtt = RttEstimator::new(config.initial_rto, config.min_rto, config.max_rto);
        TcpConnection {
            state: if is_client {
                TcpState::SynSent
            } else {
                TcpState::Closed
            },
            abort_reason: None,
            send_buf: SendRope::new(),
            snd_una: 0,
            snd_nxt: 0,
            snd_max: 0,
            fin_offset: None,
            fin_sent: false,
            fin_acked: false,
            peer_window: config.receive_window,
            fast_rexmit: false,
            recovery: None,
            dup_acks: 0,
            cc,
            rtt,
            rtt_probe: None,
            rto_deadline: None,
            consecutive_timeouts: 0,
            backoff_point: None,
            last_data_sent: None,
            reassembler: Reassembler::new(),
            peer_iss: None,
            peer_fin_offset: None,
            pending_acks: std::collections::VecDeque::new(),
            delayed_ack_deadline: None,
            rst_pending: false,
            output_pending: true,
            syn_in_flight: false,
            stats: TcpStats::default(),
            config,
        }
    }

    // ---- inspectors -----------------------------------------------------

    /// Current state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// True once the handshake has completed.
    pub fn is_established(&self) -> bool {
        matches!(
            self.state,
            TcpState::Established | TcpState::FinWait | TcpState::CloseWait | TcpState::LastAck
        )
    }

    /// True if the connection died; see [`abort_reason`](Self::abort_reason).
    pub fn is_aborted(&self) -> bool {
        self.state == TcpState::Aborted
    }

    /// Why the connection aborted, if it did.
    pub fn abort_reason(&self) -> Option<AbortReason> {
        self.abort_reason
    }

    /// Counters.
    pub fn stats(&self) -> &TcpStats {
        &self.stats
    }

    /// Bytes in flight (sent, unacknowledged).
    pub fn flight(&self) -> usize {
        (self.snd_nxt - self.snd_una) as usize
    }

    /// Current congestion window (bytes).
    pub fn cwnd(&self) -> usize {
        self.cc.cwnd()
    }

    /// Current slow-start threshold (bytes).
    pub fn ssthresh(&self) -> usize {
        self.cc.ssthresh()
    }

    /// Current congestion phase.
    pub fn cc_phase(&self) -> CcPhase {
        self.cc.phase()
    }

    /// Smoothed RTT, once measured.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.rtt.srtt()
    }

    /// Configured maximum segment size (bytes).
    pub fn mss(&self) -> usize {
        self.config.mss
    }

    /// First unacknowledged send-stream offset.
    pub fn snd_una(&self) -> u64 {
        self.snd_una
    }

    /// Highest send-stream offset ever transmitted.
    pub fn snd_max(&self) -> u64 {
        self.snd_max
    }

    /// Current RTO backoff exponent (0 when no timeout is outstanding).
    pub fn rto_backoff_exp(&self) -> u32 {
        self.rtt.backoff_exp()
    }

    /// End offset of the outstanding Karn RTT probe, if any. The probe must
    /// be invalidated whenever a retransmission overlaps it (no samples
    /// from retransmitted segments); the conformance oracle checks this.
    pub fn rtt_probe_end(&self) -> Option<u64> {
        self.rtt_probe.map(|(end, _)| end)
    }

    /// Total bytes ever written to the send stream (the current stream
    /// length); the next written byte gets this offset.
    pub fn total_written(&self) -> u64 {
        self.send_buf.total()
    }

    /// Bytes written but not yet acknowledged by the peer (what a kernel
    /// would hold in the socket send buffer). Hosts use this for
    /// application-layer backpressure.
    pub fn buffered(&self) -> usize {
        (self.send_buf.total() - self.snd_una) as usize
    }

    /// Bytes written but not yet sent.
    pub fn unsent(&self) -> usize {
        (self.send_buf.total() - self.snd_nxt) as usize
    }

    /// Bytes *resident* in the send buffer right now — queued chunks not
    /// yet released by acknowledgments. Unlike
    /// [`total_written`](Self::total_written) this is a gauge, not a
    /// cumulative counter: on a healthy connection it stays bounded by
    /// the send window however much data the stream carries. Also
    /// surfaced as [`TcpStats::send_buf_bytes`](crate::TcpStats).
    pub fn send_buf_bytes(&self) -> usize {
        self.send_buf.resident()
    }

    /// True when all written data (and FIN if closed) has been acknowledged.
    pub fn send_drained(&self) -> bool {
        self.snd_una == self.send_buf.total() && (self.fin_offset.is_none() || self.fin_acked)
    }

    // ---- application surface --------------------------------------------

    /// Queues application bytes for transmission, copying them once into
    /// a fresh shared chunk. Returns the number of bytes accepted (0
    /// after `close()` or on a dead connection). Callers that already
    /// hold a [`SharedBytes`] should use
    /// [`write_shared`](Self::write_shared) and skip the copy.
    pub fn write(&mut self, data: &[u8]) -> usize {
        self.output_pending = true;
        if self.fin_offset.is_some() || self.state == TcpState::Aborted {
            return 0;
        }
        self.send_buf.push(SharedBytes::copy_from_slice(data));
        self.stats.send_buf_bytes = self.send_buf.resident() as u64;
        data.len()
    }

    /// Queues an already-shared chunk for transmission without copying
    /// it: segmentation (and any retransmission) will hand out sub-slices
    /// of this very buffer. Returns the number of bytes accepted.
    pub fn write_shared(&mut self, data: SharedBytes) -> usize {
        self.output_pending = true;
        if self.fin_offset.is_some() || self.state == TcpState::Aborted {
            return 0;
        }
        let len = data.len();
        self.send_buf.push(data);
        self.stats.send_buf_bytes = self.send_buf.resident() as u64;
        len
    }

    /// Drains bytes received in order.
    pub fn read(&mut self) -> Vec<u8> {
        self.reassembler.read()
    }

    /// Drains bytes received in order into `out` (appending), reusing the
    /// caller's buffer. See [`Reassembler::read_into`].
    pub fn read_into(&mut self, out: &mut Vec<u8>) {
        self.reassembler.read_into(out);
    }

    /// Takes the send buffer's recycled chunk backing buffer, if one was
    /// recovered when an acknowledgment released it (empty, capacity
    /// intact). Senders that queue one coalesced buffer per pump pass get
    /// their previous buffer back here and reuse it for the next pass.
    pub fn take_send_spare(&mut self) -> Option<Vec<u8>> {
        self.send_buf.take_spare()
    }

    /// Seeds the send buffer's recycled-chunk slot with a used buffer (a
    /// pool warming a fresh connection); kept only if the slot is empty.
    pub fn give_send_spare(&mut self, buf: Vec<u8>) {
        self.send_buf.give_spare(buf);
    }

    /// Surrenders every idle buffer this connection is holding for reuse
    /// — the send rope's recycled chunk and the reassembler's drained
    /// `ready` buffer — to `sink`. For connections whose work is done
    /// (completed page loads in a fleet): the freed capacity goes back to
    /// a pool instead of sitting on the connection until teardown. Live
    /// data is never shed; a connection that springs back to life simply
    /// reallocates.
    pub fn shed_spare_capacity(&mut self, sink: &mut dyn FnMut(Vec<u8>)) {
        if let Some(buf) = self.send_buf.take_spare() {
            sink(buf);
        }
        if let Some(buf) = self.reassembler.take_ready_spare() {
            sink(buf);
        }
    }

    /// Warms this connection's buffers from recycled capacity: the send
    /// rope's spare slot and the reassembler's `ready` buffer. `supply` is
    /// polled per slot; return `None` to stop early.
    pub fn adopt_spare_capacity(&mut self, supply: &mut dyn FnMut() -> Option<Vec<u8>>) {
        if let Some(buf) = supply() {
            self.send_buf.give_spare(buf);
        }
        if let Some(buf) = supply() {
            self.reassembler.give_ready_spare(buf);
        }
    }

    /// Bytes received in order and not yet drained by [`read`](Self::read).
    pub fn available(&self) -> usize {
        self.reassembler.ready_len()
    }

    /// Begins a graceful close: a FIN is sent once all queued data has been
    /// transmitted. Further writes are rejected.
    pub fn close(&mut self) {
        self.output_pending = true;
        if self.fin_offset.is_none() {
            self.fin_offset = Some(self.send_buf.total());
        }
    }

    /// Aborts immediately; the next [`poll_transmit`](Self::poll_transmit)
    /// emits a RST.
    pub fn abort(&mut self) {
        self.output_pending = true;
        if self.state != TcpState::Aborted {
            self.state = TcpState::Aborted;
            self.abort_reason = Some(AbortReason::LocalAbort);
            self.rst_pending = true;
        }
    }

    // ---- wire <-> offset conversions ------------------------------------

    fn wire_seq(&self, offset: u64) -> Seq {
        self.config.iss + 1 + (offset as u32)
    }

    fn offset_of_ack(&self, ack: Seq) -> Option<u64> {
        // ack acknowledges our stream: offset = ack - (iss + 1).
        let base = self.config.iss + 1;
        if ack.geq(base) {
            Some((ack - base) as u64)
        } else {
            None
        }
    }

    fn rcv_ack_field(&self) -> Seq {
        match self.peer_iss {
            None => Seq(0),
            Some(peer_iss) => {
                let mut n = self.reassembler.ack_point();
                // Consume the peer's FIN once all its data has arrived.
                if let Some(fin) = self.peer_fin_offset {
                    if self.reassembler.ack_point() >= fin {
                        n = fin + 1;
                    }
                }
                peer_iss + 1 + (n as u32)
            }
        }
    }

    // ---- segment construction -------------------------------------------

    fn base_segment(&self, flags: TcpFlags, seq: Seq, payload: SharedBytes) -> TcpSegment {
        TcpSegment {
            seq,
            ack: if flags.ack {
                self.rcv_ack_field()
            } else {
                Seq(0)
            },
            flags,
            window: self.config.receive_window,
            payload,
        }
    }

    // ---- output ----------------------------------------------------------

    /// Produces the next segment this endpoint wants to transmit, or `None`
    /// when idle. Call in a loop until `None`.
    pub fn poll_transmit(&mut self, now: SimTime) -> Option<TcpSegment> {
        if !self.output_pending {
            return None;
        }
        // RST has absolute priority.
        if self.rst_pending {
            self.rst_pending = false;
            self.stats.segments_sent += 1;
            return Some(self.base_segment(
                TcpFlags::RST,
                self.wire_seq(self.snd_nxt),
                SharedBytes::new(),
            ));
        }
        let seg = match self.state {
            TcpState::Closed | TcpState::Aborted => None,
            TcpState::Done => self.poll_pure_ack(),
            TcpState::SynSent => self.poll_syn(now),
            TcpState::SynRcvd => self.poll_syn_ack(now),
            _ => self.poll_established(now),
        };
        self.output_pending = seg.is_some();
        seg
    }

    /// Emits one queued pure ACK, if any.
    fn poll_pure_ack(&mut self) -> Option<TcpSegment> {
        let ack = self.pending_acks.pop_front()?;
        self.stats.segments_sent += 1;
        let mut seg = self.base_segment(
            TcpFlags::ACK,
            self.wire_seq(self.snd_nxt),
            SharedBytes::new(),
        );
        seg.ack = ack;
        Some(seg)
    }

    fn poll_syn(&mut self, now: SimTime) -> Option<TcpSegment> {
        if self.syn_in_flight {
            return None;
        }
        self.syn_in_flight = true;
        self.arm_rto(now);
        self.stats.segments_sent += 1;
        Some(self.base_segment(TcpFlags::SYN, self.config.iss, SharedBytes::new()))
    }

    fn poll_syn_ack(&mut self, now: SimTime) -> Option<TcpSegment> {
        if self.syn_in_flight {
            return None;
        }
        self.syn_in_flight = true;
        self.arm_rto(now);
        self.stats.segments_sent += 1;
        Some(self.base_segment(TcpFlags::SYN_ACK, self.config.iss, SharedBytes::new()))
    }

    fn poll_established(&mut self, now: SimTime) -> Option<TcpSegment> {
        // RFC 7661: after an idle period of at least one RTO with nothing
        // in flight, restart from the initial congestion window.
        if self.flight() == 0 {
            if let Some(last) = self.last_data_sent {
                if now.saturating_since(last) >= self.rtt.rto() {
                    self.cc.on_idle_restart(self.config.initial_window_segments);
                    self.last_data_sent = None;
                }
            }
        }
        // 1. Fast retransmit of the first unacknowledged segment.
        if self.fast_rexmit {
            self.fast_rexmit = false;
            if self.snd_una < self.send_buf.total() {
                return Some(self.make_data_segment(self.snd_una, now, true));
            }
            if self.fin_needs_rexmit() {
                return Some(self.make_fin_segment(now, true));
            }
        }
        // 2. New (or go-back-N re-sent) data within both windows.
        let window = self.cc.cwnd().min(self.peer_window as usize);
        let limit = self.snd_una + window as u64;
        if self.snd_nxt < self.send_buf.total() && self.snd_nxt < limit {
            let offset = self.snd_nxt;
            let seg = self.make_data_segment(offset, now, offset < self.snd_max);
            self.snd_nxt = offset + seg.payload.len() as u64;
            return Some(seg);
        }
        // 3. FIN once all data is out.
        if let Some(fin_offset) = self.fin_offset {
            if !self.fin_sent && self.snd_nxt >= fin_offset && self.snd_nxt >= self.send_buf.total()
            {
                self.fin_sent = true;
                if self.state == TcpState::Established {
                    self.state = TcpState::FinWait;
                } else if self.state == TcpState::CloseWait {
                    self.state = TcpState::LastAck;
                }
                return Some(self.make_fin_segment(now, false));
            }
        }
        // 4. Pure ACK.
        self.poll_pure_ack()
    }

    fn fin_needs_rexmit(&self) -> bool {
        self.fin_sent && !self.fin_acked
    }

    fn make_data_segment(&mut self, offset: u64, now: SimTime, is_rexmit: bool) -> TcpSegment {
        let end = (offset + self.config.mss as u64).min(self.send_buf.total());
        let payload = self.send_buf.slice(offset, end);
        debug_assert!(!payload.is_empty());
        if is_rexmit {
            self.stats.retransmissions += 1;
            self.stats.retransmitted_bytes += payload.len() as u64;
            // Karn: invalidate any probe the retransmission could satisfy.
            if let Some((probe_end, _)) = self.rtt_probe {
                if offset < probe_end {
                    self.rtt_probe = None;
                }
            }
        } else {
            self.snd_max = self.snd_max.max(end);
            if self.rtt_probe.is_none() {
                self.rtt_probe = Some((end, now));
            }
        }
        self.arm_rto(now);
        self.last_data_sent = Some(now);
        self.stats.segments_sent += 1;
        self.stats.bytes_sent += payload.len() as u64;
        // The cumulative ack on this data segment subsumes queued pure ACKs.
        self.pending_acks.clear();
        self.base_segment(TcpFlags::ACK, self.wire_seq(offset), payload)
    }

    fn make_fin_segment(&mut self, now: SimTime, is_rexmit: bool) -> TcpSegment {
        if is_rexmit {
            self.stats.retransmissions += 1;
        }
        self.arm_rto(now);
        self.stats.segments_sent += 1;
        self.pending_acks.clear();
        let fin_offset = self.fin_offset.expect("fin requested");
        self.base_segment(
            TcpFlags::FIN_ACK,
            self.wire_seq(fin_offset),
            SharedBytes::new(),
        )
    }

    // ---- timers ----------------------------------------------------------

    /// The absolute time of the next timer deadline (retransmission or
    /// delayed ACK), if any.
    pub fn poll_timeout(&self) -> Option<SimTime> {
        match (self.rto_deadline, self.delayed_ack_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Advances the clock: if the retransmission deadline has passed, the
    /// timeout reaction runs (go-back-N, window collapse, backoff); a due
    /// delayed ACK is flushed.
    pub fn on_tick(&mut self, now: SimTime) {
        self.output_pending = true;
        self.flush_delayed_ack(now);
        let Some(deadline) = self.rto_deadline else {
            return;
        };
        if now < deadline {
            return;
        }
        self.rto_deadline = None;
        match self.state {
            TcpState::SynSent | TcpState::SynRcvd => {
                self.stats.timeouts += 1;
                self.consecutive_timeouts += 1;
                if self.consecutive_timeouts > self.config.max_consecutive_timeouts {
                    self.die(AbortReason::TooManyTimeouts);
                    return;
                }
                self.stats.syn_retransmissions += 1;
                self.rtt.on_timeout();
                self.backoff_point = Some(self.backoff_point.unwrap_or(0).max(self.snd_max));
                self.syn_in_flight = false; // re-emit SYN / SYN-ACK
            }
            TcpState::Established | TcpState::FinWait | TcpState::CloseWait | TcpState::LastAck => {
                if self.flight() == 0 && !self.fin_needs_rexmit() {
                    return; // spurious
                }
                if std::env::var_os("H2PRIV_TCP_DEBUG").is_some() {
                    eprintln!(
                        "RTO at {now}: rto={} srtt={:?} flight={} una={} nxt={} max={} backoff={}",
                        self.rtt.rto(),
                        self.rtt.srtt(),
                        self.flight(),
                        self.snd_una,
                        self.snd_nxt,
                        self.snd_max,
                        self.rtt.backoff_exp(),
                    );
                }
                self.stats.timeouts += 1;
                self.consecutive_timeouts += 1;
                if self.consecutive_timeouts > self.config.max_consecutive_timeouts {
                    self.die(AbortReason::TooManyTimeouts);
                    return;
                }
                self.rtt.on_timeout();
                self.backoff_point = Some(self.backoff_point.unwrap_or(0).max(self.snd_max));
                self.cc
                    .on_timeout(self.flight(), self.consecutive_timeouts == 1);
                // Go-back-N: rewind the send cursor.
                self.snd_nxt = self.snd_una;
                self.recovery = None;
                self.dup_acks = 0;
                self.fast_rexmit = false;
                if self.fin_needs_rexmit() && self.snd_una >= self.send_buf.total() {
                    self.fast_rexmit = true; // re-send the FIN
                }
                self.arm_rto(now);
            }
            _ => {}
        }
    }

    fn arm_rto(&mut self, now: SimTime) {
        self.rto_deadline = Some(now + self.rtt.rto());
    }

    fn die(&mut self, reason: AbortReason) {
        self.state = TcpState::Aborted;
        self.abort_reason = Some(reason);
        self.rto_deadline = None;
    }

    // ---- input -----------------------------------------------------------

    /// Processes one received segment.
    pub fn on_segment(&mut self, seg: TcpSegment, now: SimTime) {
        self.output_pending = true;
        if self.state == TcpState::Aborted || self.state == TcpState::Done {
            return;
        }
        self.stats.segments_received += 1;
        if seg.flags.rst {
            self.die(AbortReason::PeerReset);
            return;
        }
        match self.state {
            TcpState::Closed => self.on_segment_listen(seg),
            TcpState::SynSent => self.on_segment_syn_sent(seg, now),
            TcpState::SynRcvd => self.on_segment_syn_rcvd(seg, now),
            _ => self.on_segment_established(seg, now),
        }
    }

    fn on_segment_listen(&mut self, seg: TcpSegment) {
        if seg.flags.syn && !seg.flags.ack {
            self.peer_iss = Some(seg.seq);
            self.peer_window = seg.window;
            self.state = TcpState::SynRcvd;
        }
        // Anything else in LISTEN is ignored (real stacks RST; our model
        // only ever connects matched pairs).
    }

    fn on_segment_syn_sent(&mut self, seg: TcpSegment, _now: SimTime) {
        if seg.flags.syn && seg.flags.ack {
            // Our SYN is acknowledged iff ack == iss + 1.
            if seg.ack == self.config.iss + 1 {
                self.peer_iss = Some(seg.seq);
                self.peer_window = seg.window;
                self.consecutive_timeouts = 0;
                self.rto_deadline = None;
                self.state = TcpState::Established;
                self.queue_ack();
            }
        }
    }

    fn on_segment_syn_rcvd(&mut self, seg: TcpSegment, now: SimTime) {
        if seg.flags.ack && seg.ack == self.config.iss + 1 {
            self.consecutive_timeouts = 0;
            self.rto_deadline = None;
            self.state = TcpState::Established;
            // The handshake ACK may carry data (TLS false start does this).
            self.on_segment_established(seg, now);
        } else if seg.flags.syn && !seg.flags.ack {
            // Duplicate SYN: let the SYN-ACK retransmit machinery answer.
            self.syn_in_flight = false;
        }
    }

    fn on_segment_established(&mut self, seg: TcpSegment, now: SimTime) {
        if seg.flags.ack {
            self.process_ack(&seg, now);
        }
        let Some(peer_iss) = self.peer_iss else {
            return;
        };
        if !seg.payload.is_empty() {
            let offset = (seg.seq - (peer_iss + 1)) as u64;
            let before = self.reassembler.ack_point();
            self.reassembler.insert(offset, &seg.payload);
            let after = self.reassembler.ack_point();
            self.stats.bytes_received += (after - before).min(seg.payload.len() as u64);
            if self.reassembler.has_gap() || after == before {
                // Out-of-order or duplicate data: RFC 5681 mandates an
                // immediate (duplicate) ACK regardless of delayed ACKs.
                self.stats.dup_acks_sent += 1;
                self.queue_ack();
            } else {
                self.queue_data_ack(now);
            }
        }
        if seg.flags.fin {
            let fin_offset = (seg.seq_end() - (peer_iss + 1)) as u64 - 1;
            self.peer_fin_offset = Some(fin_offset);
            self.queue_ack();
            match self.state {
                TcpState::Established => self.state = TcpState::CloseWait,
                TcpState::FinWait if self.fin_acked => self.state = TcpState::Done,
                _ => {}
            }
        }
        self.maybe_finish_close();
    }

    fn maybe_finish_close(&mut self) {
        match self.state {
            TcpState::FinWait if self.fin_acked && self.peer_fin_offset.is_some() => {
                self.state = TcpState::Done;
            }
            TcpState::LastAck if self.fin_acked => {
                self.state = TcpState::Done;
            }
            _ => {}
        }
    }

    /// Queues one immediate pure ACK carrying the current ack point.
    fn queue_ack(&mut self) {
        let ack = self.rcv_ack_field();
        self.pending_acks.push_back(ack);
        self.delayed_ack_deadline = None;
    }

    /// Queues an ACK for an in-order data segment, possibly deferring it
    /// (RFC 1122 delayed ACK: at most one segment unacknowledged, and a
    /// second arrival or the timer flushes immediately).
    fn queue_data_ack(&mut self, now: SimTime) {
        match self.config.delayed_ack {
            None => self.queue_ack(),
            Some(delay) => {
                if self.delayed_ack_deadline.take().is_some() {
                    // Second segment: acknowledge both at once.
                    self.queue_ack();
                } else {
                    self.delayed_ack_deadline = Some(now + delay);
                }
            }
        }
    }

    /// Flushes a due delayed ACK.
    fn flush_delayed_ack(&mut self, now: SimTime) {
        if let Some(deadline) = self.delayed_ack_deadline {
            if now >= deadline {
                self.queue_ack();
            }
        }
    }

    fn process_ack(&mut self, seg: &TcpSegment, now: SimTime) {
        let Some(mut ack_offset) = self.offset_of_ack(seg.ack) else {
            return;
        };
        self.peer_window = seg.window;
        // The ACK may cover our FIN.
        if let Some(fin_offset) = self.fin_offset {
            if self.fin_sent && ack_offset > fin_offset {
                self.fin_acked = true;
                ack_offset = fin_offset;
                self.rto_deadline = None;
                self.maybe_finish_close();
            }
        }
        let data_len = self.send_buf.total();
        let ack_offset = ack_offset.min(data_len);
        if ack_offset > self.snd_una {
            let newly = (ack_offset - self.snd_una) as usize;
            self.snd_una = ack_offset;
            self.snd_nxt = self.snd_nxt.max(self.snd_una);
            // Reclaim the fully-acknowledged prefix of the send buffer.
            self.send_buf.release_until(self.snd_una);
            self.stats.send_buf_bytes = self.send_buf.resident() as u64;
            self.dup_acks = 0;
            self.consecutive_timeouts = 0;
            // A backed-off RTO persists until new data — data beyond what
            // was outstanding at the timeout — is cumulatively acked.
            match self.backoff_point {
                Some(point) if ack_offset <= point => {}
                _ => {
                    self.backoff_point = None;
                    self.rtt.on_progress();
                }
            }
            // RTT sample (Karn-safe: probe is invalidated on retransmit).
            if let Some((probe_end, sent_at)) = self.rtt_probe {
                if ack_offset >= probe_end {
                    self.rtt.on_sample(now - sent_at);
                    self.rtt_probe = None;
                }
            }
            // NewReno partial-ACK handling.
            if let Some(recover) = self.recovery {
                if ack_offset < recover {
                    self.fast_rexmit = true; // retransmit the next hole
                } else {
                    self.recovery = None;
                }
            }
            self.cc.on_ack(newly, ack_offset, self.flight());
            if self.flight() == 0 && !self.fin_needs_rexmit() {
                self.rto_deadline = None;
            } else {
                self.arm_rto(now);
            }
        } else if ack_offset == self.snd_una && seg.is_pure_ack() && self.flight() > 0 {
            self.dup_acks += 1;
            self.stats.dup_acks_received += 1;
            if self.dup_acks == self.config.dup_ack_threshold {
                if self.cc.on_dup_ack_threshold(self.flight(), self.snd_max) {
                    self.recovery = Some(self.snd_max);
                    self.fast_rexmit = true;
                    self.stats.fast_retransmits += 1;
                }
            } else if self.dup_acks > self.config.dup_ack_threshold {
                self.cc.on_extra_dup_ack();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(super) fn pump(a: &mut TcpConnection, b: &mut TcpConnection, now: SimTime) {
        // Exchange until quiescent at a single instant.
        loop {
            let mut moved = false;
            while let Some(seg) = a.poll_transmit(now) {
                b.on_segment(seg, now);
                moved = true;
            }
            while let Some(seg) = b.poll_transmit(now) {
                a.on_segment(seg, now);
                moved = true;
            }
            if !moved {
                break;
            }
        }
    }

    pub(super) fn established_pair() -> (TcpConnection, TcpConnection) {
        let mut c = TcpConnection::client(TcpConfig::default());
        let mut s = TcpConnection::server(TcpConfig::default());
        pump(&mut c, &mut s, SimTime::ZERO);
        assert!(c.is_established() && s.is_established());
        (c, s)
    }

    #[test]
    fn handshake_completes() {
        let (c, s) = established_pair();
        assert_eq!(c.state(), TcpState::Established);
        assert_eq!(s.state(), TcpState::Established);
    }

    #[test]
    fn data_flows_both_ways() {
        let (mut c, mut s) = established_pair();
        c.write(b"request bytes");
        s.write(b"response bytes");
        pump(&mut c, &mut s, SimTime::from_millis(1));
        assert_eq!(s.read(), b"request bytes");
        assert_eq!(c.read(), b"response bytes");
    }

    #[test]
    fn large_transfer_segments_at_mss() {
        let (mut c, mut s) = established_pair();
        let data = vec![0xAB; 100_000];
        c.write(&data);
        // Drive with advancing time so cwnd growth applies.
        for ms in 1..200 {
            pump(&mut c, &mut s, SimTime::from_millis(ms));
            if s.available() >= data.len() {
                break;
            }
        }
        let got = s.read();
        assert_eq!(got.len(), data.len());
        assert_eq!(got, data);
        assert_eq!(c.stats().retransmissions, 0);
    }

    #[test]
    fn graceful_close_both_sides() {
        let (mut c, mut s) = established_pair();
        c.write(b"bye");
        c.close();
        pump(&mut c, &mut s, SimTime::from_millis(1));
        assert_eq!(s.read(), b"bye");
        assert_eq!(s.state(), TcpState::CloseWait);
        s.close();
        pump(&mut c, &mut s, SimTime::from_millis(2));
        assert_eq!(c.state(), TcpState::Done);
        assert_eq!(s.state(), TcpState::Done);
    }

    #[test]
    fn write_after_close_rejected() {
        let (mut c, _s) = established_pair();
        c.close();
        assert_eq!(c.write(b"more"), 0);
    }

    #[test]
    fn rst_aborts_peer() {
        let (mut c, mut s) = established_pair();
        c.abort();
        pump(&mut c, &mut s, SimTime::from_millis(1));
        assert!(s.is_aborted());
        assert_eq!(s.abort_reason(), Some(AbortReason::PeerReset));
        assert_eq!(c.abort_reason(), Some(AbortReason::LocalAbort));
    }

    #[test]
    fn lost_segment_triggers_fast_retransmit() {
        let (mut c, mut s) = established_pair();
        let data = vec![1u8; 20 * 1460];
        c.write(&data);
        let now = SimTime::from_millis(1);
        // Collect the first window of segments; drop the first data segment.
        let mut segs = Vec::new();
        while let Some(seg) = c.poll_transmit(now) {
            segs.push(seg);
        }
        assert!(segs.len() >= 4, "need several segments, got {}", segs.len());
        for seg in segs.drain(..).skip(1) {
            s.on_segment(seg, now);
        }
        // Server sends dup ACKs for the hole.
        let now = SimTime::from_millis(2);
        while let Some(seg) = s.poll_transmit(now) {
            c.on_segment(seg, now);
        }
        assert!(c.stats().fast_retransmits >= 1, "fast retransmit expected");
        // Continue normally; everything arrives.
        for ms in 3..300 {
            pump(&mut c, &mut s, SimTime::from_millis(ms));
        }
        assert_eq!(s.read(), data);
    }

    #[test]
    fn timeout_retransmits_and_collapses_window() {
        let (mut c, mut s) = established_pair();
        c.write(&vec![2u8; 5 * 1460]);
        let now = SimTime::from_millis(1);
        // All segments vanish.
        while c.poll_transmit(now).is_some() {}
        let cwnd_before = c.cwnd();
        let deadline = c.poll_timeout().expect("rto armed");
        c.on_tick(deadline);
        assert_eq!(c.stats().timeouts, 1);
        assert!(c.cwnd() < cwnd_before);
        assert_eq!(c.cc_phase(), CcPhase::SlowStart);
        // Go-back-N: data is re-sent and the transfer completes.
        for ms in (deadline.as_millis() + 1)..(deadline.as_millis() + 2000) {
            pump(&mut c, &mut s, SimTime::from_millis(ms));
            c.on_tick(SimTime::from_millis(ms));
        }
        assert_eq!(s.read(), vec![2u8; 5 * 1460]);
        assert!(c.stats().retransmissions >= 1);
    }

    #[test]
    fn repeated_timeouts_break_connection() {
        let cfg = TcpConfig {
            max_consecutive_timeouts: 3,
            ..Default::default()
        };
        let mut c = TcpConnection::client(cfg);
        let mut s = TcpConnection::server(TcpConfig::default());
        pump(&mut c, &mut s, SimTime::ZERO);
        c.write(b"doomed");
        let mut now = SimTime::from_millis(1);
        // The network black-holes everything from now on.
        for _ in 0..10 {
            while c.poll_transmit(now).is_some() {}
            match c.poll_timeout() {
                Some(d) => {
                    now = d;
                    c.on_tick(now);
                }
                None => break,
            }
            if c.is_aborted() {
                break;
            }
        }
        assert!(c.is_aborted());
        assert_eq!(c.abort_reason(), Some(AbortReason::TooManyTimeouts));
    }

    #[test]
    fn rto_backs_off_exponentially() {
        let (mut c, mut s) = established_pair();
        // Prime the RTT estimator with a 10 ms round trip.
        c.write(b"x");
        let t0 = SimTime::from_millis(10);
        while let Some(seg) = c.poll_transmit(t0) {
            s.on_segment(seg, t0);
        }
        let t1 = SimTime::from_millis(20);
        while let Some(seg) = s.poll_transmit(t1) {
            c.on_segment(seg, t1);
        }
        c.write(&vec![3u8; 1460]);
        let mut now = SimTime::from_millis(30);
        while c.poll_transmit(now).is_some() {}
        let d1 = c.poll_timeout().unwrap() - now;
        c.on_tick(c.poll_timeout().unwrap());
        now += d1;
        while c.poll_transmit(now).is_some() {}
        let d2 = c.poll_timeout().unwrap() - now;
        assert!(
            d2 >= d1 * 2 - SimDuration::from_millis(1),
            "d1={d1} d2={d2}"
        );
    }

    #[test]
    fn receiver_sends_dup_acks_on_gap() {
        let (mut c, mut s) = established_pair();
        c.write(&vec![4u8; 6 * 1460]);
        let now = SimTime::from_millis(1);
        let mut segs = Vec::new();
        while let Some(seg) = c.poll_transmit(now) {
            segs.push(seg);
        }
        // Deliver all but the first.
        let n = segs.len();
        for seg in segs.into_iter().skip(1) {
            s.on_segment(seg, now);
        }
        assert_eq!(s.stats().dup_acks_sent as usize, n - 1);
    }

    #[test]
    fn peer_window_limits_sending() {
        let cfg = TcpConfig {
            receive_window: 2 * 1460, // tiny receiver
            ..Default::default()
        };
        let mut c = TcpConnection::client(TcpConfig::default());
        let mut s = TcpConnection::server(cfg);
        pump(&mut c, &mut s, SimTime::ZERO);
        c.write(&vec![5u8; 100 * 1460]);
        let now = SimTime::from_millis(1);
        let mut sent = 0usize;
        while let Some(seg) = c.poll_transmit(now) {
            sent += seg.payload.len();
        }
        assert!(sent <= 2 * 1460, "sent {sent} beyond peer window");
    }

    #[test]
    fn stats_count_segments() {
        let (mut c, mut s) = established_pair();
        c.write(b"hello");
        pump(&mut c, &mut s, SimTime::from_millis(1));
        assert!(c.stats().segments_sent >= 2); // SYN + data
        assert!(s.stats().segments_received >= 2);
        assert_eq!(s.stats().bytes_received, 5);
    }

    #[test]
    fn srtt_is_measured() {
        let (mut c, mut s) = established_pair();
        c.write(b"probe");
        let t0 = SimTime::from_millis(100);
        while let Some(seg) = c.poll_transmit(t0) {
            s.on_segment(seg, t0);
        }
        let t1 = SimTime::from_millis(150);
        while let Some(seg) = s.poll_transmit(t1) {
            c.on_segment(seg, t1);
        }
        assert_eq!(c.srtt(), Some(SimDuration::from_millis(50)));
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;

    #[test]
    fn syn_retransmits_until_budget_exhausted() {
        let cfg = TcpConfig {
            max_consecutive_timeouts: 2,
            ..Default::default()
        };
        let mut c = TcpConnection::client(cfg);
        let mut now = SimTime::ZERO;
        let mut syns = 0;
        loop {
            while let Some(seg) = c.poll_transmit(now) {
                assert!(seg.flags.syn);
                syns += 1;
            }
            match c.poll_timeout() {
                Some(d) => {
                    now = d;
                    c.on_tick(now);
                }
                None => break,
            }
            if c.is_aborted() {
                break;
            }
        }
        assert!(c.is_aborted());
        assert_eq!(c.abort_reason(), Some(AbortReason::TooManyTimeouts));
        assert_eq!(syns, 3); // initial + 2 retries
        assert_eq!(c.stats().syn_retransmissions, 2);
    }

    #[test]
    fn spurious_tick_is_harmless() {
        let mut c = TcpConnection::client(TcpConfig::default());
        // No deadline armed yet: ticking does nothing.
        c.on_tick(SimTime::from_secs(5));
        assert_eq!(c.stats().timeouts, 0);
        assert!(!c.is_aborted());
    }

    #[test]
    fn write_after_abort_rejected() {
        let mut c = TcpConnection::client(TcpConfig::default());
        c.abort();
        assert_eq!(c.write(b"too late"), 0);
        // The RST is emitted exactly once.
        let rst = c.poll_transmit(SimTime::ZERO).expect("rst");
        assert!(rst.flags.rst);
        assert!(c.poll_transmit(SimTime::ZERO).is_none());
    }

    #[test]
    fn segments_to_dead_connection_ignored() {
        let mut c = TcpConnection::client(TcpConfig::default());
        c.abort();
        let before = c.stats().segments_received;
        c.on_segment(
            TcpSegment {
                seq: Seq(1),
                ack: Seq(1),
                flags: TcpFlags::ACK,
                window: 100,
                payload: vec![1, 2, 3].into(),
            },
            SimTime::ZERO,
        );
        assert_eq!(c.stats().segments_received, before);
        assert!(c.read().is_empty());
    }

    #[test]
    fn idle_restart_fires_between_spaced_objects() {
        // Establish, prime RTT, transfer, go idle past the RTO, transfer
        // again: the second transfer starts from the initial window.
        let mut c = TcpConnection::client(TcpConfig::default());
        let mut s = TcpConnection::server(TcpConfig {
            iss: Seq(77),
            ..TcpConfig::default()
        });
        let mut now = SimTime::ZERO;
        let pump = |c: &mut TcpConnection, s: &mut TcpConnection, now: SimTime| loop {
            let mut moved = false;
            while let Some(seg) = c.poll_transmit(now) {
                s.on_segment(seg, now);
                moved = true;
            }
            while let Some(seg) = s.poll_transmit(now) {
                c.on_segment(seg, now);
                moved = true;
            }
            if !moved {
                break;
            }
        };
        pump(&mut c, &mut s, now);
        // Grow cwnd with a large transfer; the back-to-back harness acks
        // instantly, so the window grows within a handful of pumps.
        c.write(&vec![1u8; 200_000]);
        for ms in 0..50 {
            now = SimTime::from_millis(ms);
            pump(&mut c, &mut s, now);
            if c.send_drained() {
                break;
            }
        }
        assert_eq!(s.read().len(), 200_000);
        let grown = c.cwnd();
        assert!(grown > 10 * 1460, "cwnd grew to {grown}");
        // Idle far longer than the RTO, then send again: the next poll
        // restarts from the initial window.
        now += SimDuration::from_secs(30);
        c.write(b"after idle");
        let _ = c.poll_transmit(now);
        assert_eq!(c.cwnd(), 10 * 1460, "idle restart should reset cwnd");
    }
}

#[cfg(test)]
mod delayed_ack_tests {
    use super::*;

    fn pair_with_delack() -> (TcpConnection, TcpConnection) {
        let cfg = TcpConfig {
            delayed_ack: Some(SimDuration::from_millis(40)),
            ..Default::default()
        };
        let mut c = TcpConnection::client(TcpConfig::default());
        let mut s = TcpConnection::server(cfg);
        let now = SimTime::ZERO;
        for _ in 0..8 {
            let mut moved = false;
            while let Some(seg) = c.poll_transmit(now) {
                s.on_segment(seg, now);
                moved = true;
            }
            while let Some(seg) = s.poll_transmit(now) {
                c.on_segment(seg, now);
                moved = true;
            }
            if !moved {
                break;
            }
        }
        (c, s)
    }

    #[test]
    fn single_segment_ack_is_deferred_until_timer() {
        let (mut c, mut s) = pair_with_delack();
        c.write(b"lonely segment");
        let t = SimTime::from_millis(10);
        while let Some(seg) = c.poll_transmit(t) {
            s.on_segment(seg, t);
        }
        // No immediate ACK.
        assert!(s.poll_transmit(t).is_none());
        let deadline = s.poll_timeout().expect("delayed-ack timer armed");
        assert_eq!(deadline, t + SimDuration::from_millis(40));
        s.on_tick(deadline);
        let ack = s.poll_transmit(deadline).expect("flushed ack");
        assert!(ack.is_pure_ack());
    }

    #[test]
    fn second_segment_flushes_immediately() {
        let (mut c, mut s) = pair_with_delack();
        c.write(&vec![1u8; 1460]);
        let t = SimTime::from_millis(10);
        let seg1 = c.poll_transmit(t).unwrap();
        s.on_segment(seg1, t);
        assert!(s.poll_transmit(t).is_none());
        c.write(&vec![2u8; 1460]);
        let seg2 = c.poll_transmit(t).unwrap();
        s.on_segment(seg2, t);
        let ack = s.poll_transmit(t).expect("ack for two segments");
        assert!(ack.is_pure_ack());
        // One cumulative ACK covers both segments.
        assert!(s.poll_transmit(t).is_none());
    }

    #[test]
    fn out_of_order_data_acks_immediately_despite_delack() {
        let (mut c, mut s) = pair_with_delack();
        c.write(&vec![3u8; 4 * 1460]);
        let t = SimTime::from_millis(10);
        let mut segs = Vec::new();
        while let Some(seg) = c.poll_transmit(t) {
            segs.push(seg);
        }
        // Drop the first segment; deliver the rest: every delivery is a
        // dup ACK, sent immediately.
        let delivered = segs.len() - 1;
        for seg in segs.into_iter().skip(1) {
            s.on_segment(seg, t);
        }
        let mut acks = 0;
        while let Some(seg) = s.poll_transmit(t) {
            assert!(seg.is_pure_ack());
            acks += 1;
        }
        assert_eq!(acks, delivered);
    }
}

#[cfg(test)]
mod rto_backoff_tests {
    use super::tests::{established_pair, pump};
    use super::*;

    #[test]
    fn rto_backoff_persists_until_new_data_acked() {
        // RFC 6298 (5.7): after a timeout the backed-off RTO must survive
        // dup ACKs and ACKs of the data that was outstanding at the
        // timeout; only an ACK covering data sent afterwards resets it.
        let (mut c, mut s) = established_pair();
        let t1 = SimTime::from_millis(10);
        c.write(&vec![5u8; 5 * 1460]);
        let mut segs = Vec::new();
        while let Some(seg) = c.poll_transmit(t1) {
            segs.push(seg);
        }
        assert_eq!(segs.len(), 5);
        // Lose the first segment; the rest arrive and draw dup ACKs.
        for seg in segs.into_iter().skip(1) {
            s.on_segment(seg, t1);
        }
        let mut dup_acks = Vec::new();
        while let Some(seg) = s.poll_transmit(t1) {
            dup_acks.push(seg);
        }
        assert!(dup_acks.len() >= 2);

        let t2 = SimTime::from_millis(2_000); // past the armed RTO
        c.on_tick(t2);
        assert_eq!(c.rto_backoff_exp(), 1, "timeout should back off the RTO");
        let rexmit = c.poll_transmit(t2).expect("RTO retransmission");
        assert!(!rexmit.payload.is_empty());

        // Two dup ACKs (below the fast-retransmit threshold): no progress,
        // backoff stays.
        for seg in dup_acks.into_iter().take(2) {
            c.on_segment(seg, t2);
        }
        assert_eq!(c.rto_backoff_exp(), 1, "dup ACKs must not clear backoff");

        // The retransmission fills the hole; the cumulative ACK covers all
        // five segments — still only data outstanding at the timeout.
        s.on_segment(rexmit, t2);
        while let Some(seg) = s.poll_transmit(t2) {
            c.on_segment(seg, t2);
        }
        assert_eq!(c.snd_una(), 5 * 1460);
        assert_eq!(
            c.rto_backoff_exp(),
            1,
            "ACK of retransmitted-era data must not clear backoff"
        );

        // New data sent after the timeout, once acked, resets the timer.
        c.write(&[6u8; 100]);
        let t3 = SimTime::from_millis(2_100);
        pump(&mut c, &mut s, t3);
        assert_eq!(c.snd_una(), 5 * 1460 + 100);
        assert_eq!(c.rto_backoff_exp(), 0, "ACK of new data clears backoff");
    }
}
