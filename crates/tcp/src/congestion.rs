//! Reno/NewReno congestion control.
//!
//! The paper's bandwidth-throttling phase (§IV-C) works because shrinking
//! the bandwidth-delay product makes TCP "respond to this change by
//! decreasing the size of the TCP sender window". That response is this
//! module: queueing delay inflates RTT and drops trigger
//! multiplicative decrease, so the sender's window — and with it the burst
//! of outstanding fast-retransmits — contracts.

use crate::segment::DEFAULT_MSS;

/// Congestion-control phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcPhase {
    /// Exponential window growth until `ssthresh`.
    SlowStart,
    /// Additive increase.
    CongestionAvoidance,
    /// NewReno fast recovery (entered on 3 dup-ACKs).
    FastRecovery,
}

/// NewReno congestion controller.
///
/// All quantities are in bytes. The controller is sans-IO: the connection
/// feeds it ACK/dup-ACK/timeout events and reads back `cwnd`.
#[derive(Debug, Clone)]
pub struct NewReno {
    mss: usize,
    cwnd: usize,
    ssthresh: usize,
    phase: CcPhase,
    /// Bytes acked since the last cwnd bump (congestion avoidance).
    acked_accum: usize,
    /// `recover`: highest sequence outstanding when loss was detected,
    /// expressed as a stream offset; ACKs below it are partial.
    recover_offset: u64,
}

impl NewReno {
    /// Creates a controller with the given MSS and initial window
    /// (RFC 6928 recommends 10 MSS).
    pub fn new(mss: usize, initial_window_segments: usize) -> Self {
        NewReno {
            mss,
            cwnd: mss * initial_window_segments,
            ssthresh: usize::MAX / 2,
            phase: CcPhase::SlowStart,
            acked_accum: 0,
            recover_offset: 0,
        }
    }

    /// Creates a controller with default MSS and a 10-segment initial window.
    pub fn default_config() -> Self {
        NewReno::new(DEFAULT_MSS, 10)
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> usize {
        self.cwnd
    }

    /// Current slow-start threshold in bytes.
    pub fn ssthresh(&self) -> usize {
        self.ssthresh
    }

    /// Current phase.
    pub fn phase(&self) -> CcPhase {
        self.phase
    }

    /// A new cumulative ACK advanced the window by `newly_acked` bytes.
    /// `ack_offset` is the new send-unacknowledged stream offset;
    /// `flight` is bytes still outstanding after this ACK.
    pub fn on_ack(&mut self, newly_acked: usize, ack_offset: u64, _flight: usize) {
        match self.phase {
            CcPhase::SlowStart => {
                // RFC 5681 (3.1) / RFC 3465 ABC with L=1: grow by at most
                // one MSS per ACK, so a stretch ACK (one ACK covering many
                // segments, common behind delayed-ACK receivers and ACK
                // thinning middleboxes) cannot inflate cwnd by the whole
                // acked amount in one step.
                self.cwnd = self.cwnd.saturating_add(newly_acked.min(self.mss));
                if self.cwnd >= self.ssthresh {
                    self.cwnd = self.ssthresh;
                    self.phase = CcPhase::CongestionAvoidance;
                }
            }
            CcPhase::CongestionAvoidance => {
                // cwnd += MSS per cwnd bytes acked.
                self.acked_accum += newly_acked;
                while self.acked_accum >= self.cwnd {
                    self.acked_accum -= self.cwnd;
                    self.cwnd += self.mss;
                }
            }
            CcPhase::FastRecovery => {
                if ack_offset >= self.recover_offset {
                    // Full ACK: leave recovery, deflate to ssthresh.
                    self.cwnd = self.ssthresh;
                    self.phase = CcPhase::CongestionAvoidance;
                    self.acked_accum = 0;
                } else {
                    // Partial ACK: stay in recovery (the connection
                    // retransmits the next hole); deflate by the amount
                    // acked, then inflate by one MSS.
                    self.cwnd = self
                        .cwnd
                        .saturating_sub(newly_acked)
                        .saturating_add(self.mss)
                        .max(self.mss);
                }
            }
        }
    }

    /// Third duplicate ACK: enter fast recovery.
    ///
    /// `flight` is the bytes outstanding; `highest_offset` is the stream
    /// offset one past the highest byte sent (the NewReno `recover` point).
    /// Returns true if recovery was (re-)entered — the caller should fast-
    /// retransmit the first unacknowledged segment.
    pub fn on_dup_ack_threshold(&mut self, flight: usize, highest_offset: u64) -> bool {
        if self.phase == CcPhase::FastRecovery {
            return false;
        }
        self.ssthresh = (flight / 2).max(2 * self.mss);
        self.cwnd = self.ssthresh + 3 * self.mss;
        self.phase = CcPhase::FastRecovery;
        self.recover_offset = highest_offset;
        true
    }

    /// Additional duplicate ACK while in fast recovery: inflate.
    pub fn on_extra_dup_ack(&mut self) {
        if self.phase == CcPhase::FastRecovery {
            self.cwnd = self.cwnd.saturating_add(self.mss);
        }
    }

    /// Connection went idle for at least one RTO (RFC 7661): restart from
    /// the initial window rather than blasting a stale cwnd into the
    /// network. The slow-start threshold is *raised* toward the proven
    /// window so the restart regrows exponentially.
    pub fn on_idle_restart(&mut self, initial_window_segments: usize) {
        let initial = self.mss * initial_window_segments;
        if self.cwnd > initial {
            self.ssthresh = self.ssthresh.max(self.cwnd * 3 / 4);
            self.cwnd = initial;
            self.phase = CcPhase::SlowStart;
            self.acked_accum = 0;
        }
    }

    /// Retransmission timeout: collapse to one segment and restart
    /// slow start.
    ///
    /// `first_of_burst` distinguishes a fresh loss event from the
    /// exponential-backoff repeats of the same stall: only the first
    /// timeout halves `ssthresh` (during backoff the flight is a single
    /// segment, and halving *that* would pin the threshold at its floor —
    /// real stacks remember the pre-loss ssthresh).
    pub fn on_timeout(&mut self, flight: usize, first_of_burst: bool) {
        if first_of_burst {
            self.ssthresh = (flight / 2).max(2 * self.mss);
        }
        self.cwnd = self.mss;
        self.phase = CcPhase::SlowStart;
        self.acked_accum = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: usize = 1460;

    fn cc() -> NewReno {
        NewReno::new(MSS, 10)
    }

    #[test]
    fn initial_window_is_ten_segments() {
        assert_eq!(cc().cwnd(), 10 * MSS);
        assert_eq!(cc().phase(), CcPhase::SlowStart);
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut c = cc();
        let start = c.cwnd();
        // ACK a full window's worth of data.
        let mut acked = 0;
        while acked < start {
            c.on_ack(MSS, (acked + MSS) as u64, start);
            acked += MSS;
        }
        assert_eq!(c.cwnd(), 2 * start);
    }

    #[test]
    fn slow_start_stretch_ack_growth_is_capped() {
        // RFC 3465 (L=1): a stretch ACK covering four segments still grows
        // cwnd by at most one MSS.
        let mut c = cc();
        let start = c.cwnd();
        c.on_ack(4 * MSS, (4 * MSS) as u64, start);
        assert_eq!(c.cwnd(), start + MSS);
    }

    #[test]
    fn slow_start_exits_at_ssthresh() {
        let mut c = cc();
        c.on_dup_ack_threshold(20 * MSS, 1000);
        // ssthresh = 10 MSS; timeout then grow back.
        c.on_timeout(20 * MSS, true);
        assert_eq!(c.cwnd(), MSS);
        assert_eq!(c.phase(), CcPhase::SlowStart);
        for i in 0..40 {
            c.on_ack(MSS, (i * MSS) as u64, 10 * MSS);
            if c.phase() == CcPhase::CongestionAvoidance {
                break;
            }
        }
        assert_eq!(c.phase(), CcPhase::CongestionAvoidance);
        assert_eq!(c.cwnd(), c.ssthresh());
    }

    #[test]
    fn congestion_avoidance_linear_growth() {
        let mut c = cc();
        c.on_dup_ack_threshold(20 * MSS, 1000);
        c.on_ack(MSS, 2000, 0); // full ACK exits recovery
        assert_eq!(c.phase(), CcPhase::CongestionAvoidance);
        let w = c.cwnd();
        // ACK one full window: cwnd should grow by about one MSS.
        let mut acked = 0;
        while acked < w {
            c.on_ack(MSS, 0, w);
            acked += MSS;
        }
        assert!(
            c.cwnd() >= w + MSS && c.cwnd() < w + 3 * MSS,
            "cwnd={}",
            c.cwnd()
        );
    }

    #[test]
    fn fast_recovery_halves_window() {
        let mut c = cc();
        let flight = 10 * MSS;
        assert!(c.on_dup_ack_threshold(flight, 99));
        assert_eq!(c.ssthresh(), 5 * MSS);
        assert_eq!(c.cwnd(), 5 * MSS + 3 * MSS);
        assert_eq!(c.phase(), CcPhase::FastRecovery);
    }

    #[test]
    fn dup_ack_threshold_idempotent_in_recovery() {
        let mut c = cc();
        assert!(c.on_dup_ack_threshold(10 * MSS, 99));
        assert!(!c.on_dup_ack_threshold(10 * MSS, 99));
    }

    #[test]
    fn extra_dup_acks_inflate() {
        let mut c = cc();
        c.on_dup_ack_threshold(10 * MSS, 99);
        let w = c.cwnd();
        c.on_extra_dup_ack();
        assert_eq!(c.cwnd(), w + MSS);
    }

    #[test]
    fn extra_dup_acks_outside_recovery_ignored() {
        let mut c = cc();
        let w = c.cwnd();
        c.on_extra_dup_ack();
        assert_eq!(c.cwnd(), w);
    }

    #[test]
    fn partial_ack_keeps_recovery() {
        let mut c = cc();
        c.on_dup_ack_threshold(10 * MSS, 10_000);
        c.on_ack(MSS, 5_000, 5 * MSS); // below recover point
        assert_eq!(c.phase(), CcPhase::FastRecovery);
        c.on_ack(MSS, 10_000, 0); // reaches recover point
        assert_eq!(c.phase(), CcPhase::CongestionAvoidance);
        assert_eq!(c.cwnd(), c.ssthresh());
    }

    #[test]
    fn timeout_collapses_window() {
        let mut c = cc();
        c.on_timeout(10 * MSS, true);
        assert_eq!(c.cwnd(), MSS);
        assert_eq!(c.ssthresh(), 5 * MSS);
        assert_eq!(c.phase(), CcPhase::SlowStart);
    }

    #[test]
    fn idle_restart_collapses_large_window() {
        let mut c = cc();
        // Grow well past the initial window.
        for i in 0..100 {
            c.on_ack(MSS, (i * MSS) as u64, 10 * MSS);
        }
        let grown = c.cwnd();
        assert!(grown > 10 * MSS);
        c.on_idle_restart(10);
        assert_eq!(c.cwnd(), 10 * MSS);
        assert_eq!(c.phase(), CcPhase::SlowStart);
        // The threshold remembers the proven window: regrowth is fast.
        assert!(c.ssthresh() >= grown * 3 / 4);
        // Idle restart never grows the window.
        c.on_timeout(10 * MSS, true);
        let small = c.cwnd();
        c.on_idle_restart(10);
        assert_eq!(c.cwnd(), small);
    }

    #[test]
    fn backoff_timeouts_do_not_recollapse_ssthresh() {
        let mut c = cc();
        c.on_timeout(100 * MSS, true);
        let after_first = c.ssthresh();
        assert_eq!(after_first, 50 * MSS);
        // Backed-off repeats with a 1-segment flight keep the threshold.
        c.on_timeout(MSS, false);
        c.on_timeout(MSS, false);
        assert_eq!(c.ssthresh(), after_first);
        // A fresh loss event does halve again.
        c.on_timeout(MSS, true);
        assert_eq!(c.ssthresh(), 2 * MSS);
    }

    #[test]
    fn ssthresh_floor_is_two_mss() {
        let mut c = cc();
        c.on_timeout(MSS, true);
        assert_eq!(c.ssthresh(), 2 * MSS);
    }
}
