//! Round-trip-time estimation and retransmission timeout (RFC 6298).
//!
//! The attack's timing lever works *through* this machinery: when the
//! adversary holds a GET request at the gateway, the client's RTO — grown
//! from smoothed RTT — eventually fires and the request is retransmitted,
//! which is the "bunch of retransmission requests" the paper observes under
//! heavy jitter (§IV-B). Karn's algorithm (no samples from retransmitted
//! segments) and exponential backoff are both implemented because both are
//! load-bearing: backoff is what makes the client "wait for a longer time
//! before attempting to send fast-retransmission requests" after the forced
//! stream reset (§IV-D).

use h2priv_netsim::SimDuration;

/// RFC 6298 RTT estimator with exponential RTO backoff.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto: SimDuration,
    backoff_exp: u32,
    min_rto: SimDuration,
    max_rto: SimDuration,
}

impl RttEstimator {
    /// Creates an estimator.
    ///
    /// `initial_rto` applies before any sample (RFC 6298 recommends 1 s);
    /// `min_rto`/`max_rto` clamp the computed value.
    pub fn new(initial_rto: SimDuration, min_rto: SimDuration, max_rto: SimDuration) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            rto: initial_rto,
            backoff_exp: 0,
            min_rto,
            max_rto,
        }
    }

    /// The smoothed RTT, if at least one sample has been taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Current retransmission timeout, including any backoff.
    pub fn rto(&self) -> SimDuration {
        let backed_off = self.rto * 2u64.saturating_pow(self.backoff_exp);
        backed_off.min(self.max_rto)
    }

    /// Current backoff exponent (0 when no timeouts are outstanding).
    pub fn backoff_exp(&self) -> u32 {
        self.backoff_exp
    }

    /// Feeds one RTT sample from a segment that was *not* retransmitted
    /// (Karn's algorithm is the caller's responsibility: never sample a
    /// retransmitted segment).
    pub fn on_sample(&mut self, rtt: SimDuration) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                // RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - RTT|
                let delta = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = self.rttvar.mul_f64(0.75) + delta.mul_f64(0.25);
                // SRTT = 7/8 SRTT + 1/8 RTT
                self.srtt = Some(srtt.mul_f64(0.875) + rtt.mul_f64(0.125));
            }
        }
        let srtt = self.srtt.expect("just set");
        let raw = srtt + (self.rttvar * 4).max(SimDuration::from_millis(1));
        self.rto = raw.max(self.min_rto).min(self.max_rto);
        // RFC 6298 (5.7): a sample recomputes the *base* RTO but must not
        // discard a still-outstanding backoff — only an ACK of new data
        // (reported via `on_progress`) may collapse it.
    }

    /// Doubles the RTO after a retransmission timeout.
    pub fn on_timeout(&mut self) {
        self.backoff_exp = self.backoff_exp.saturating_add(1).min(16);
    }

    /// Clears backoff after forward progress. Per RFC 6298 (5.7) the caller
    /// must invoke this only for an ACK of *new* data — data first sent
    /// after the timeout — not for ACKs that merely cover retransmitted
    /// ranges (those are ambiguous under Karn's algorithm).
    pub fn on_progress(&mut self) {
        self.backoff_exp = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RttEstimator {
        RttEstimator::new(
            SimDuration::from_secs(1),
            SimDuration::from_millis(200),
            SimDuration::from_secs(60),
        )
    }

    #[test]
    fn initial_rto_before_samples() {
        let e = est();
        assert_eq!(e.rto(), SimDuration::from_secs(1));
        assert_eq!(e.srtt(), None);
    }

    #[test]
    fn first_sample_initializes() {
        let mut e = est();
        e.on_sample(SimDuration::from_millis(100));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(100)));
        // RTO = SRTT + 4 * RTTVAR = 100 + 4*50 = 300 ms.
        assert_eq!(e.rto(), SimDuration::from_millis(300));
    }

    #[test]
    fn steady_samples_converge() {
        let mut e = est();
        for _ in 0..100 {
            e.on_sample(SimDuration::from_millis(100));
        }
        let srtt = e.srtt().unwrap();
        assert!((srtt.as_millis_f64() - 100.0).abs() < 1.0, "srtt = {srtt}");
        // Variance decays toward zero; RTO approaches the min clamp region.
        assert!(e.rto() <= SimDuration::from_millis(300));
        assert!(e.rto() >= SimDuration::from_millis(200));
    }

    #[test]
    fn min_rto_clamps() {
        let mut e = est();
        for _ in 0..200 {
            e.on_sample(SimDuration::from_millis(10));
        }
        assert_eq!(e.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn timeout_backoff_doubles() {
        let mut e = est();
        e.on_sample(SimDuration::from_millis(100));
        let base = e.rto();
        e.on_timeout();
        assert_eq!(e.rto(), base * 2);
        e.on_timeout();
        assert_eq!(e.rto(), base * 4);
        e.on_progress();
        assert_eq!(e.rto(), base);
    }

    #[test]
    fn max_rto_caps_backoff() {
        let mut e = est();
        e.on_sample(SimDuration::from_millis(100));
        for _ in 0..30 {
            e.on_timeout();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(60));
    }

    #[test]
    fn sample_preserves_outstanding_backoff() {
        // RFC 6298 (5.7): taking a sample recomputes the base RTO but must
        // not silently cancel a backoff that is still outstanding.
        let mut e = est();
        e.on_sample(SimDuration::from_millis(100));
        let base = e.rto();
        e.on_timeout();
        assert!(e.backoff_exp() > 0);
        e.on_sample(SimDuration::from_millis(100));
        assert!(e.backoff_exp() > 0, "sample must not clear backoff");
        assert!(e.rto() > base, "RTO stays backed off until new data acked");
        e.on_progress();
        assert_eq!(e.backoff_exp(), 0);
    }

    #[test]
    fn variance_grows_on_jitter() {
        let mut stable = est();
        let mut jittery = est();
        for i in 0..50 {
            stable.on_sample(SimDuration::from_millis(100));
            jittery.on_sample(SimDuration::from_millis(if i % 2 == 0 { 50 } else { 150 }));
        }
        assert!(jittery.rto() > stable.rto());
    }
}
