//! Per-connection counters.
//!
//! Table I of the paper reports the *increase in the number of
//! retransmissions* as injected jitter grows, and Fig. 5 plots
//! retransmissions against throttled bandwidth; both are read off
//! [`TcpStats::retransmissions`] collected from the simulated endpoints.

/// Counters maintained by a [`TcpConnection`](crate::TcpConnection).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpStats {
    /// Segments emitted (including control segments and retransmissions).
    pub segments_sent: u64,
    /// Segments processed from the peer.
    pub segments_received: u64,
    /// Payload bytes sent (including retransmitted bytes).
    pub bytes_sent: u64,
    /// New in-order payload bytes received.
    pub bytes_received: u64,
    /// Data/FIN segments retransmitted, by any mechanism.
    pub retransmissions: u64,
    /// Payload bytes retransmitted.
    pub retransmitted_bytes: u64,
    /// Fast-retransmit events (3rd duplicate ACK).
    pub fast_retransmits: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// SYN / SYN-ACK retransmissions.
    pub syn_retransmissions: u64,
    /// Duplicate ACKs received from the peer.
    pub dup_acks_received: u64,
    /// Duplicate ACKs we sent (out-of-order arrivals).
    pub dup_acks_sent: u64,
    /// Bytes *resident* in the send buffer (queued chunks not yet
    /// released by acknowledgments). A gauge, not a cumulative counter:
    /// on a healthy connection it stays bounded by the send window no
    /// matter how much data the stream carries. See
    /// [`TcpConnection::send_buf_bytes`](crate::TcpConnection::send_buf_bytes).
    pub send_buf_bytes: u64,
}

impl TcpStats {
    /// Sums two endpoints' counters (e.g. client + server of one trial).
    pub fn merged(&self, other: &TcpStats) -> TcpStats {
        TcpStats {
            segments_sent: self.segments_sent + other.segments_sent,
            segments_received: self.segments_received + other.segments_received,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            bytes_received: self.bytes_received + other.bytes_received,
            retransmissions: self.retransmissions + other.retransmissions,
            retransmitted_bytes: self.retransmitted_bytes + other.retransmitted_bytes,
            fast_retransmits: self.fast_retransmits + other.fast_retransmits,
            timeouts: self.timeouts + other.timeouts,
            syn_retransmissions: self.syn_retransmissions + other.syn_retransmissions,
            dup_acks_received: self.dup_acks_received + other.dup_acks_received,
            dup_acks_sent: self.dup_acks_sent + other.dup_acks_sent,
            send_buf_bytes: self.send_buf_bytes + other.send_buf_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = TcpStats::default();
        assert_eq!(s.segments_sent, 0);
        assert_eq!(s.retransmissions, 0);
    }

    #[test]
    fn merged_sums_fields() {
        let a = TcpStats {
            segments_sent: 3,
            retransmissions: 2,
            ..TcpStats::default()
        };
        let b = TcpStats {
            segments_sent: 4,
            timeouts: 1,
            ..TcpStats::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.segments_sent, 7);
        assert_eq!(m.retransmissions, 2);
        assert_eq!(m.timeouts, 1);
    }
}
