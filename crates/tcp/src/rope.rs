//! The sender's chunked retransmission buffer.
//!
//! The send buffer used to be one flat `Vec<u8>` indexed by stream
//! offset: every segment (and every retransmit) copied its payload out
//! with `send_buf[a..b].to_vec()`, and the acknowledged prefix was never
//! reclaimed — `snd_una` just indexed ever deeper into a Vec that grew
//! for the life of the connection. [`SendRope`] replaces it with a
//! `VecDeque` of [`SharedBytes`] chunks addressed by absolute stream
//! offset: segmentation hands out O(1) sub-slices of the queued chunks,
//! and fully-acknowledged chunks are popped off the front, so the
//! resident buffer tracks the unacknowledged window instead of the
//! cumulative stream.

use std::collections::VecDeque;

use h2priv_bytes::SharedBytes;

/// A queue of shared byte chunks forming one contiguous stream, indexed
/// by absolute stream offset.
///
/// Invariant: the chunks cover `[base, total)` contiguously, with no
/// empty chunks. `total` only grows; `base` only advances (as acked
/// chunks are released) and never passes `total`.
#[derive(Debug, Default)]
pub(crate) struct SendRope {
    chunks: VecDeque<SharedBytes>,
    /// Stream offset of the first byte of `chunks[0]`.
    base: u64,
    /// Stream length: every byte ever pushed lives at `[0, total)`.
    total: u64,
    /// One fully-acknowledged chunk's backing buffer, recovered for reuse.
    /// Senders that queue one coalesced buffer per pump pass (the batched
    /// host path) get their previous buffer back once it is acked, so the
    /// steady-state write path recycles instead of allocating.
    spare: Option<Vec<u8>>,
}

impl SendRope {
    pub(crate) fn new() -> SendRope {
        SendRope::default()
    }

    /// Total bytes ever appended — the stream length. The next appended
    /// byte gets this offset.
    pub(crate) fn total(&self) -> u64 {
        self.total
    }

    /// Bytes currently held (not yet released by [`release_until`](Self::release_until)).
    pub(crate) fn resident(&self) -> usize {
        (self.total - self.base) as usize
    }

    /// Appends a chunk at offset [`total`](Self::total). Empty chunks are
    /// ignored. O(1), shares the chunk's backing buffer.
    pub(crate) fn push(&mut self, chunk: SharedBytes) {
        if chunk.is_empty() {
            return;
        }
        self.total += chunk.len() as u64;
        self.chunks.push_back(chunk);
    }

    /// Returns the bytes at stream offsets `[start, end)`.
    ///
    /// When the range lies within a single chunk — the steady-state case,
    /// since TLS records span many MSS-sized segments — this is an O(1)
    /// allocation-free sub-slice. A range straddling a chunk boundary is
    /// materialized with one copy.
    ///
    /// # Panics
    ///
    /// Panics if the range is decreasing, starts below the released
    /// prefix, or ends past [`total`](Self::total).
    pub(crate) fn slice(&self, start: u64, end: u64) -> SharedBytes {
        assert!(
            self.base <= start && start <= end && end <= self.total,
            "slice {start}..{end} outside retained range {}..{}",
            self.base,
            self.total
        );
        if start == end {
            return SharedBytes::new();
        }
        let mut chunk_start = self.base;
        let mut iter = self.chunks.iter();
        // Skip chunks wholly before the range.
        let first = loop {
            let chunk = iter.next().expect("range is within the retained chunks");
            let chunk_end = chunk_start + chunk.len() as u64;
            if start < chunk_end {
                break chunk;
            }
            chunk_start = chunk_end;
        };
        let lo = (start - chunk_start) as usize;
        if end <= chunk_start + first.len() as u64 {
            // Entirely inside one chunk: share it.
            return first.slice(lo..lo + (end - start) as usize);
        }
        // Straddles chunks: materialize the spanning bytes once.
        let mut out = Vec::with_capacity((end - start) as usize);
        out.extend_from_slice(&first[lo..]);
        let mut pos = chunk_start + first.len() as u64;
        for chunk in iter {
            let take = ((end - pos) as usize).min(chunk.len());
            out.extend_from_slice(&chunk[..take]);
            pos += take as u64;
            if pos == end {
                break;
            }
        }
        SharedBytes::from_vec(out)
    }

    /// Releases chunks wholly below `offset` (the new `snd_una`). A chunk
    /// the offset lands inside is retained whole: its backing buffer is
    /// still referenced by the unacknowledged suffix either way.
    pub(crate) fn release_until(&mut self, offset: u64) {
        while let Some(front) = self.chunks.front() {
            let front_end = self.base + front.len() as u64;
            if front_end > offset {
                break;
            }
            self.base = front_end;
            let chunk = self.chunks.pop_front().expect("front exists");
            // Reclaim the backing buffer when nothing else (in-flight
            // segment payloads, wire taps) still references it.
            if self.spare.is_none() {
                if let Ok(mut vec) = chunk.try_into_vec() {
                    vec.clear();
                    self.spare = Some(vec);
                }
            }
        }
    }

    /// Takes the recycled buffer recovered from the most recently released
    /// chunk, if any. The buffer is empty with its capacity intact.
    pub(crate) fn take_spare(&mut self) -> Option<Vec<u8>> {
        self.spare.take()
    }

    /// Seeds the recycled-buffer slot (a pool handing a fresh connection a
    /// used buffer instead of letting it allocate). Kept only when the
    /// slot is empty and `buf` has capacity; `buf` is cleared.
    pub(crate) fn give_spare(&mut self, mut buf: Vec<u8>) {
        if self.spare.is_none() && buf.capacity() > 0 {
            buf.clear();
            self.spare = Some(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rope_of(chunks: &[&[u8]]) -> SendRope {
        let mut rope = SendRope::new();
        for c in chunks {
            rope.push(SharedBytes::copy_from_slice(c));
        }
        rope
    }

    #[test]
    fn empty_rope() {
        let rope = SendRope::new();
        assert_eq!(rope.total(), 0);
        assert_eq!(rope.resident(), 0);
        assert!(rope.slice(0, 0).is_empty());
    }

    #[test]
    fn push_accumulates_offsets() {
        let rope = rope_of(&[b"abc", b"defg"]);
        assert_eq!(rope.total(), 7);
        assert_eq!(rope.resident(), 7);
    }

    #[test]
    fn empty_chunks_are_ignored() {
        let mut rope = rope_of(&[b"ab"]);
        rope.push(SharedBytes::new());
        assert_eq!(rope.total(), 2);
        assert_eq!(rope.slice(0, 2), *b"ab");
    }

    #[test]
    fn slice_within_one_chunk() {
        let rope = rope_of(&[b"0123456789"]);
        assert_eq!(rope.slice(2, 5), *b"234");
        assert_eq!(rope.slice(0, 10), *b"0123456789");
    }

    #[test]
    fn slice_across_chunks() {
        let rope = rope_of(&[b"abc", b"def", b"ghi"]);
        assert_eq!(rope.slice(1, 8), *b"bcdefgh");
        assert_eq!(rope.slice(3, 6), *b"def");
        assert_eq!(rope.slice(2, 4), *b"cd");
    }

    #[test]
    fn release_pops_whole_chunks() {
        let mut rope = rope_of(&[b"abc", b"def", b"ghi"]);
        rope.release_until(3);
        assert_eq!(rope.resident(), 6);
        assert_eq!(rope.total(), 9);
        assert_eq!(rope.slice(3, 9), *b"defghi");
        // Mid-chunk offset: the chunk stays resident.
        rope.release_until(7);
        assert_eq!(rope.resident(), 3);
        assert_eq!(rope.slice(7, 9), *b"hi");
        rope.release_until(9);
        assert_eq!(rope.resident(), 0);
    }

    #[test]
    fn push_after_release_keeps_offsets_absolute() {
        let mut rope = rope_of(&[b"abc"]);
        rope.release_until(3);
        rope.push(SharedBytes::copy_from_slice(b"xyz"));
        assert_eq!(rope.total(), 6);
        assert_eq!(rope.slice(4, 6), *b"yz");
    }

    #[test]
    #[should_panic(expected = "outside retained range")]
    fn slice_below_released_prefix_panics() {
        let mut rope = rope_of(&[b"abc", b"def"]);
        rope.release_until(3);
        rope.slice(2, 4);
    }

    #[test]
    #[should_panic(expected = "outside retained range")]
    fn slice_past_total_panics() {
        rope_of(&[b"abc"]).slice(1, 4);
    }

    #[test]
    fn released_unique_chunk_is_recycled() {
        let mut rope = SendRope::new();
        rope.push(SharedBytes::from_vec(vec![7u8; 64]));
        assert!(rope.take_spare().is_none());
        rope.release_until(64);
        let spare = rope.take_spare().expect("unique chunk recovered");
        assert!(spare.is_empty());
        assert!(spare.capacity() >= 64);
        assert!(rope.take_spare().is_none(), "spare is taken once");
    }

    #[test]
    fn shared_chunk_is_not_recycled() {
        let mut rope = SendRope::new();
        let chunk = SharedBytes::from_vec(vec![7u8; 64]);
        let _tap = chunk.clone();
        rope.push(chunk);
        rope.release_until(64);
        assert!(rope.take_spare().is_none(), "still referenced elsewhere");
    }
}
