//! TCP segments as they appear on the simulated wire.

use crate::seq::Seq;
use h2priv_bytes::SharedBytes;
use std::fmt;

/// Modeled size of the IP + TCP headers on every segment, in bytes.
/// (20 IP + 20 TCP, no options — timestamps etc. are not modeled.)
pub const HEADER_BYTES: u32 = 40;

/// Default maximum segment size: 1500-byte Ethernet MTU minus headers.
pub const DEFAULT_MSS: usize = 1460;

/// TCP header flags (only the ones the model uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// Synchronize sequence numbers (connection setup).
    pub syn: bool,
    /// Acknowledgment field is valid.
    pub ack: bool,
    /// No more data from sender (graceful close).
    pub fin: bool,
    /// Reset the connection.
    pub rst: bool,
}

impl TcpFlags {
    /// Flags for a plain data or pure-ACK segment.
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
    };
    /// Flags for an initial SYN.
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
    };
    /// Flags for a SYN-ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
    };
    /// Flags for a FIN-ACK.
    pub const FIN_ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: true,
        rst: false,
    };
    /// Flags for a RST.
    pub const RST: TcpFlags = TcpFlags {
        syn: false,
        ack: false,
        fin: false,
        rst: true,
    };
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.syn {
            parts.push("SYN");
        }
        if self.ack {
            parts.push("ACK");
        }
        if self.fin {
            parts.push("FIN");
        }
        if self.rst {
            parts.push("RST");
        }
        if parts.is_empty() {
            parts.push("-");
        }
        write!(f, "{}", parts.join("|"))
    }
}

/// One TCP segment. This is the payload type carried by
/// `h2priv_netsim::Packet` throughout the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    /// Sequence number of the first payload byte (or of the SYN/FIN).
    pub seq: Seq,
    /// Acknowledgment number (next expected byte), valid iff `flags.ack`.
    pub ack: Seq,
    /// Header flags.
    pub flags: TcpFlags,
    /// Advertised receive window, in bytes.
    pub window: u32,
    /// Payload bytes (encrypted TLS records in the h2priv stack). A
    /// shared slice of the sender's retransmission buffer: cloning the
    /// segment through links, middleboxes and taps shares the bytes
    /// instead of copying them.
    pub payload: SharedBytes,
}

impl TcpSegment {
    /// Total on-the-wire size of this segment.
    pub fn wire_bytes(&self) -> u32 {
        HEADER_BYTES + self.payload.len() as u32
    }

    /// Sequence space this segment occupies (payload bytes, plus one for
    /// SYN and one for FIN).
    pub fn seq_len(&self) -> u32 {
        let mut len = self.payload.len() as u32;
        if self.flags.syn {
            len += 1;
        }
        if self.flags.fin {
            len += 1;
        }
        len
    }

    /// The sequence number just past this segment.
    pub fn seq_end(&self) -> Seq {
        self.seq + self.seq_len()
    }

    /// True if this is a pure acknowledgment (no payload, no SYN/FIN/RST).
    pub fn is_pure_ack(&self) -> bool {
        self.flags.ack
            && !self.flags.syn
            && !self.flags.fin
            && !self.flags.rst
            && self.payload.is_empty()
    }
}

impl fmt::Display for TcpSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} seq={} ack={} len={} win={}]",
            self.flags,
            self.seq,
            self.ack,
            self.payload.len(),
            self.window
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_seg(len: usize) -> TcpSegment {
        TcpSegment {
            seq: Seq(100),
            ack: Seq(1),
            flags: TcpFlags::ACK,
            window: 65_535,
            payload: vec![0; len].into(),
        }
    }

    #[test]
    fn wire_bytes_includes_headers() {
        assert_eq!(data_seg(0).wire_bytes(), 40);
        assert_eq!(data_seg(1460).wire_bytes(), 1500);
    }

    #[test]
    fn seq_len_counts_syn_and_fin() {
        let mut s = data_seg(10);
        assert_eq!(s.seq_len(), 10);
        s.flags.syn = true;
        assert_eq!(s.seq_len(), 11);
        s.flags.fin = true;
        assert_eq!(s.seq_len(), 12);
        assert_eq!(s.seq_end(), Seq(112));
    }

    #[test]
    fn pure_ack_detection() {
        assert!(data_seg(0).is_pure_ack());
        assert!(!data_seg(1).is_pure_ack());
        let syn = TcpSegment {
            seq: Seq(0),
            ack: Seq(0),
            flags: TcpFlags::SYN,
            window: 0,
            payload: SharedBytes::new(),
        };
        assert!(!syn.is_pure_ack());
    }

    #[test]
    fn display_flags() {
        assert_eq!(format!("{}", TcpFlags::SYN_ACK), "SYN|ACK");
        assert_eq!(format!("{}", TcpFlags::default()), "-");
        assert_eq!(format!("{}", TcpFlags::RST), "RST");
    }
}
