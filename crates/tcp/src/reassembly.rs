//! Receive-side stream reassembly.
//!
//! Buffers out-of-order payload keyed by 64-bit stream offset and releases
//! the longest in-order prefix. The same structure is reused by the
//! adversary's *passive* monitor (`h2priv-analysis`) to reconstruct the
//! byte stream it observes on the wire — reassembly is not an endpoint
//! privilege, which is precisely why TLS record boundaries leak.

use std::collections::BTreeMap;

/// Reassembles a byte stream from segments arriving at arbitrary offsets.
///
/// Offsets are absolute 64-bit stream positions (the connection translates
/// wire sequence numbers). Overlapping and duplicate data is tolerated and
/// deduplicated, as retransmissions routinely overlap.
#[derive(Debug, Clone, Default)]
pub struct Reassembler {
    /// Next offset expected (everything before it has been released).
    next_offset: u64,
    /// Out-of-order chunks: start offset → bytes.
    pending: BTreeMap<u64, Vec<u8>>,
    /// Ready in-order bytes not yet drained by the application.
    ready: Vec<u8>,
    /// Total duplicate bytes discarded (diagnostics).
    duplicate_bytes: u64,
}

impl Reassembler {
    /// Creates an empty reassembler expecting offset 0.
    pub fn new() -> Self {
        Reassembler::default()
    }

    /// The next stream offset that has not yet been received in order.
    pub fn next_offset(&self) -> u64 {
        self.next_offset + self.ready.len() as u64
    }

    /// The offset up to which data has been *released or is ready*, i.e.
    /// the cumulative-ACK point.
    pub fn ack_point(&self) -> u64 {
        self.next_offset()
    }

    /// In-order bytes ready to be drained by [`read`](Self::read).
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Bytes sitting out of order (diagnostics).
    pub fn pending_bytes(&self) -> usize {
        self.pending.values().map(Vec::len).sum()
    }

    /// Duplicate bytes discarded so far.
    pub fn duplicate_bytes(&self) -> u64 {
        self.duplicate_bytes
    }

    /// True if out-of-order data is buffered — the signal for sending a
    /// duplicate ACK.
    pub fn has_gap(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Inserts `data` at absolute stream `offset`.
    pub fn insert(&mut self, offset: u64, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        let end = offset + data.len() as u64;
        let ack = self.ack_point();
        if end <= ack {
            self.duplicate_bytes += data.len() as u64;
            return; // wholly old
        }
        // Trim the already-received prefix.
        let (offset, data) = if offset < ack {
            self.duplicate_bytes += ack - offset;
            (ack, &data[(ack - offset) as usize..])
        } else {
            (offset, data)
        };
        if offset == self.ack_point() {
            self.ready.extend_from_slice(data);
        } else {
            // Store out of order; trim against existing chunks lazily at
            // drain time by inserting only bytes not already covered.
            self.insert_pending(offset, data.to_vec());
        }
        self.drain_pending();
    }

    fn insert_pending(&mut self, offset: u64, data: Vec<u8>) {
        // Check the predecessor chunk for overlap.
        let mut offset = offset;
        let mut data = data;
        if let Some((&prev_start, prev)) = self.pending.range(..=offset).next_back() {
            let prev_end = prev_start + prev.len() as u64;
            if prev_end >= offset + data.len() as u64 {
                self.duplicate_bytes += data.len() as u64;
                return; // fully covered
            }
            if prev_end > offset {
                let trim = (prev_end - offset) as usize;
                self.duplicate_bytes += trim as u64;
                data.drain(..trim);
                offset = prev_end;
            }
        }
        // Absorb/trim successors that overlap the new chunk.
        let new_end = offset + data.len() as u64;
        let overlapping: Vec<u64> = self
            .pending
            .range(offset..new_end)
            .map(|(&k, _)| k)
            .collect();
        for key in overlapping {
            let chunk = self.pending.remove(&key).expect("key present");
            let chunk_end = key + chunk.len() as u64;
            if chunk_end > new_end {
                // Keep the non-overlapping tail.
                let keep_from = (new_end - key) as usize;
                self.duplicate_bytes += keep_from as u64;
                self.pending.insert(new_end, chunk[keep_from..].to_vec());
            } else {
                self.duplicate_bytes += chunk.len() as u64;
            }
        }
        self.pending.insert(offset, data);
    }

    fn drain_pending(&mut self) {
        loop {
            let ack = self.ack_point();
            let Some((&start, _)) = self.pending.first_key_value() else {
                return;
            };
            if start > ack {
                return;
            }
            let chunk = self.pending.remove(&start).expect("key present");
            let chunk_end = start + chunk.len() as u64;
            if chunk_end <= ack {
                self.duplicate_bytes += chunk.len() as u64;
                continue;
            }
            let skip = (ack - start) as usize;
            self.duplicate_bytes += skip as u64;
            self.ready.extend_from_slice(&chunk[skip..]);
        }
    }

    /// Drains all in-order bytes received so far.
    pub fn read(&mut self) -> Vec<u8> {
        let out = std::mem::take(&mut self.ready);
        self.next_offset += out.len() as u64;
        out
    }

    /// Drains all in-order bytes into `out` (appending), reusing the
    /// caller's buffer instead of surrendering the internal one. The
    /// batched host path calls this with one shared scratch buffer per
    /// shard, so draining N hosts costs zero steady-state allocations.
    pub fn read_into(&mut self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.ready);
        self.next_offset += self.ready.len() as u64;
        self.ready.clear();
    }

    /// Surrenders the drained `ready` buffer's capacity (for a buffer
    /// pool), if it is empty and holds any. The reassembler reallocates on
    /// the next in-order insert, so this is for streams that are done.
    pub fn take_ready_spare(&mut self) -> Option<Vec<u8>> {
        if self.ready.is_empty() && self.ready.capacity() > 0 {
            Some(std::mem::take(&mut self.ready))
        } else {
            None
        }
    }

    /// Seeds the `ready` buffer with recycled capacity (the inverse of
    /// [`take_ready_spare`](Self::take_ready_spare)); kept only when the
    /// current buffer is empty with no capacity. `buf` is cleared.
    pub fn give_ready_spare(&mut self, mut buf: Vec<u8>) {
        if self.ready.is_empty() && self.ready.capacity() == 0 && buf.capacity() > 0 {
            buf.clear();
            self.ready = buf;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_delivery() {
        let mut r = Reassembler::new();
        r.insert(0, b"hello ");
        r.insert(6, b"world");
        assert_eq!(r.read(), b"hello world");
        assert_eq!(r.next_offset(), 11);
        assert!(!r.has_gap());
    }

    #[test]
    fn out_of_order_fills_gap() {
        let mut r = Reassembler::new();
        r.insert(6, b"world");
        assert!(r.has_gap());
        assert_eq!(r.read(), b"");
        r.insert(0, b"hello ");
        assert_eq!(r.read(), b"hello world");
        assert!(!r.has_gap());
    }

    #[test]
    fn duplicates_are_discarded() {
        let mut r = Reassembler::new();
        r.insert(0, b"abcdef");
        assert_eq!(r.read(), b"abcdef");
        r.insert(0, b"abcdef");
        assert_eq!(r.read(), b"");
        assert_eq!(r.duplicate_bytes(), 6);
    }

    #[test]
    fn partial_overlap_with_released_data() {
        let mut r = Reassembler::new();
        r.insert(0, b"abcd");
        assert_eq!(r.read(), b"abcd");
        // Retransmission covering old + new bytes.
        r.insert(2, b"cdEF");
        assert_eq!(r.read(), b"EF");
        assert_eq!(r.duplicate_bytes(), 2);
    }

    #[test]
    fn overlapping_pending_chunks() {
        let mut r = Reassembler::new();
        r.insert(10, b"JKLM");
        r.insert(8, b"HIJK"); // overlaps [10,12)
        r.insert(12, b"LMNO"); // overlaps [12,14)
        r.insert(0, b"ABCDEFGH");
        assert_eq!(r.read(), b"ABCDEFGHHIJKLMNO");
    }

    #[test]
    fn chunk_fully_covered_by_pending() {
        let mut r = Reassembler::new();
        r.insert(4, b"EFGHIJ");
        r.insert(5, b"FG"); // inside existing chunk
        r.insert(0, b"ABCD");
        assert_eq!(r.read(), b"ABCDEFGHIJ");
    }

    #[test]
    fn empty_insert_is_noop() {
        let mut r = Reassembler::new();
        r.insert(5, b"");
        assert!(!r.has_gap());
        assert_eq!(r.read(), b"");
    }

    #[test]
    fn ack_point_tracks_contiguity() {
        let mut r = Reassembler::new();
        assert_eq!(r.ack_point(), 0);
        r.insert(0, b"abc");
        assert_eq!(r.ack_point(), 3);
        r.insert(10, b"xyz");
        assert_eq!(r.ack_point(), 3);
        r.insert(3, b"defghij");
        assert_eq!(r.ack_point(), 13);
    }

    #[test]
    fn interleaved_reads() {
        let mut r = Reassembler::new();
        r.insert(0, b"one");
        assert_eq!(r.read(), b"one");
        r.insert(3, b"two");
        r.insert(9, b"four");
        assert_eq!(r.read(), b"two");
        r.insert(6, b"333");
        assert_eq!(r.read(), b"333four");
    }

    #[test]
    fn pending_bytes_accounting() {
        let mut r = Reassembler::new();
        r.insert(100, b"abcde");
        assert_eq!(r.pending_bytes(), 5);
        r.insert(200, b"fg");
        assert_eq!(r.pending_bytes(), 7);
    }

    #[test]
    fn massive_shuffle_reassembles() {
        // Deterministic pseudo-shuffle of 1000 chunks.
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let mut chunks: Vec<(u64, &[u8])> = data
            .chunks(100)
            .enumerate()
            .map(|(i, c)| ((i * 100) as u64, c))
            .collect();
        // Simple LCG-driven swap shuffle.
        let mut state = 12345u64;
        for i in (1..chunks.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            chunks.swap(i, j);
        }
        let mut r = Reassembler::new();
        for (off, c) in chunks {
            r.insert(off, c);
        }
        assert_eq!(r.read(), data);
        assert_eq!(r.pending_bytes(), 0);
    }
}
