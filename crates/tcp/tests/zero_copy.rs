//! Zero-copy send-path regression tests.
//!
//! This binary installs the allocation-counting global allocator from
//! `h2priv-bytes` (the `count-allocs` dev feature) and proves the two
//! properties the chunked send buffer was built for:
//!
//! * steady-state segmentation and ack processing perform **zero** heap
//!   allocations per segment — payloads are O(1) shared sub-slices of the
//!   queued chunks, and acked chunks are popped, not compacted; and
//! * the resident send buffer tracks the unacknowledged window, not the
//!   cumulative stream, so long transfers run in bounded memory.

use h2priv_bytes::count_alloc::{measure, CountingAlloc};
use h2priv_bytes::SharedBytes;
use h2priv_netsim::SimTime;
use h2priv_tcp::{TcpConfig, TcpConnection, TcpSegment};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn pump(a: &mut TcpConnection, b: &mut TcpConnection, now: SimTime) {
    loop {
        let mut moved = false;
        while let Some(seg) = a.poll_transmit(now) {
            b.on_segment(seg, now);
            moved = true;
        }
        while let Some(seg) = b.poll_transmit(now) {
            a.on_segment(seg, now);
            moved = true;
        }
        if !moved {
            break;
        }
    }
}

fn established_pair() -> (TcpConnection, TcpConnection) {
    let mut c = TcpConnection::client(TcpConfig::default());
    let mut s = TcpConnection::server(TcpConfig::default());
    pump(&mut c, &mut s, SimTime::ZERO);
    assert!(c.is_established() && s.is_established());
    (c, s)
}

#[test]
fn steady_state_send_path_is_allocation_free() {
    let (mut c, mut s) = established_pair();

    // Warm-up: grow the congestion window and let every internal buffer
    // reach its steady-state size before counting.
    c.write_shared(SharedBytes::from_vec(vec![7u8; 128 * 1024]));
    for ms in 1..200u64 {
        pump(&mut c, &mut s, SimTime::from_millis(ms));
        if s.available() >= 128 * 1024 {
            break;
        }
    }
    assert_eq!(s.read().len(), 128 * 1024, "warm-up transfer incomplete");

    // Steady state: one large application chunk; segmentation slices it,
    // acks release it. Only the *sender's* calls are measured — the
    // receiver's reassembly legitimately buffers.
    let total = 256 * 1024;
    c.write_shared(SharedBytes::from_vec(vec![9u8; total]));
    let mut segs: Vec<TcpSegment> = Vec::with_capacity(256);
    let mut acks: Vec<TcpSegment> = Vec::with_capacity(256);
    let mut sender_allocs = 0u64;
    for ms in 200..2_000u64 {
        let now = SimTime::from_millis(ms);
        segs.clear();
        let ((), n) = measure(|| {
            while let Some(seg) = c.poll_transmit(now) {
                segs.push(seg);
            }
        });
        sender_allocs += n;
        acks.clear();
        for seg in segs.drain(..) {
            s.on_segment(seg, now);
        }
        while let Some(ack) = s.poll_transmit(now) {
            acks.push(ack);
        }
        let ((), n) = measure(|| {
            for ack in acks.drain(..) {
                c.on_segment(ack, now);
            }
        });
        sender_allocs += n;
        if s.available() >= total {
            break;
        }
    }
    assert_eq!(s.read().len(), total, "steady-state transfer incomplete");
    assert_eq!(
        sender_allocs, 0,
        "steady-state segmentation/ack path must not allocate"
    );
}

#[test]
fn resident_send_buffer_stays_bounded() {
    let (mut c, mut s) = established_pair();

    // Stream 2 MiB through the connection in 64 KiB application chunks,
    // acking and draining continuously.
    let chunk = 64 * 1024;
    let total = 2 * 1024 * 1024;
    let mut written = 0usize;
    let mut received = 0usize;
    let mut max_resident = 0usize;
    for ms in 1..10_000u64 {
        if written < total {
            written += c.write_shared(SharedBytes::from_vec(vec![3u8; chunk]));
        }
        pump(&mut c, &mut s, SimTime::from_millis(ms));
        received += s.read().len();
        max_resident = max_resident.max(c.send_buf_bytes());
        if received >= total {
            break;
        }
    }
    assert_eq!(received, total, "transfer incomplete");
    // The old flat send buffer kept every streamed byte resident for the
    // life of the connection (2 MiB here). The rope must stay bounded by
    // the unacked window plus one queued application chunk.
    assert!(
        max_resident <= 512 * 1024,
        "resident send buffer grew to {max_resident} bytes on a {total}-byte stream"
    );
    // Fully acked: nothing resident.
    assert_eq!(c.send_buf_bytes(), 0, "acked bytes must be released");
}
