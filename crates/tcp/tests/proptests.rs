//! Property-based tests of the TCP substrate: whatever the network does —
//! loss, reordering, duplication — an established connection must deliver
//! the exact byte stream, in order, or abort cleanly.
//!
//! Gated behind the `proptests` feature: the external `proptest` crate is
//! unavailable in offline builds. Re-add the dev-dependency and enable the
//! feature to run these.
#![cfg(feature = "proptests")]

use h2priv_netsim::{SimDuration, SimTime};
use h2priv_tcp::{Reassembler, Seq, TcpConfig, TcpConnection, TcpSegment};
use proptest::prelude::*;

// ---------- sequence arithmetic ------------------------------------------

proptest! {
    #[test]
    fn seq_ordering_is_antisymmetric(a: u32, b: u32) {
        let (sa, sb) = (Seq(a), Seq(b));
        if sa != sb {
            prop_assert_ne!(sa.lt(sb), sb.lt(sa));
        } else {
            prop_assert!(!sa.lt(sb) && !sb.lt(sa));
        }
    }

    #[test]
    fn seq_add_then_sub_roundtrips(a: u32, d in 0u32..=i32::MAX as u32) {
        let s = Seq(a);
        prop_assert_eq!((s + d) - s, d);
        if d > 0 {
            prop_assert!(s.lt(s + d));
        }
    }
}

// ---------- reassembly ----------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Chunks delivered in any order, with arbitrary duplication, always
    /// reassemble to the original stream.
    #[test]
    fn reassembly_is_order_and_duplication_invariant(
        len in 1usize..5_000,
        chunk in 1usize..700,
        order in proptest::collection::vec(any::<prop::sample::Index>(), 0..64),
    ) {
        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        let chunks: Vec<(u64, &[u8])> = data
            .chunks(chunk)
            .enumerate()
            .map(|(i, c)| ((i * chunk) as u64, c))
            .collect();
        let mut r = Reassembler::new();
        // A shuffled pass with duplicates...
        for idx in &order {
            let (off, c) = chunks[idx.index(chunks.len())];
            r.insert(off, c);
        }
        // ...then one in-order pass to guarantee completeness.
        for &(off, c) in &chunks {
            r.insert(off, c);
        }
        prop_assert_eq!(r.read(), data);
        prop_assert_eq!(r.pending_bytes(), 0);
    }

    /// Overlapping retransmissions never corrupt previously released data.
    #[test]
    fn reassembly_overlaps_never_corrupt(
        len in 2usize..2_000,
        cut in 1usize..1_999,
    ) {
        let cut = cut.min(len - 1);
        let data: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
        let mut r = Reassembler::new();
        r.insert(0, &data[..cut]);
        let first = r.read();
        prop_assert_eq!(&first[..], &data[..cut]);
        // Retransmit everything from zero.
        r.insert(0, &data);
        let rest = r.read();
        prop_assert_eq!(&rest[..], &data[cut..]);
    }
}

// ---------- full connections over adversarial "networks" ------------------

/// Drives two connections over a deterministic lossy/reordering channel
/// derived from `pattern`. Returns what the server received (None if the
/// client aborted).
fn run_over_channel(data: &[u8], pattern: u64, drop_mod: u64) -> Option<Vec<u8>> {
    let mut client = TcpConnection::client(TcpConfig::default());
    let mut server = TcpConnection::server(TcpConfig {
        iss: Seq(50_000),
        ..TcpConfig::default()
    });
    client.write(data);
    let mut state = pattern | 1;
    let mut step = |seg: TcpSegment,
                    to_server: bool,
                    c: &mut TcpConnection,
                    s: &mut TcpConnection,
                    now: SimTime,
                    held: &mut Vec<(bool, TcpSegment)>| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        match state % drop_mod {
            0 => {}                           // drop
            1 => held.push((to_server, seg)), // delay (reorder)
            _ => {
                if to_server {
                    s.on_segment(seg, now);
                } else {
                    c.on_segment(seg, now);
                }
            }
        }
    };
    let mut held: Vec<(bool, TcpSegment)> = Vec::new();
    let mut now = SimTime::ZERO;
    for _ in 0..3_000 {
        let mut moved = false;
        while let Some(seg) = client.poll_transmit(now) {
            step(seg, true, &mut client, &mut server, now, &mut held);
            moved = true;
        }
        while let Some(seg) = server.poll_transmit(now) {
            step(seg, false, &mut client, &mut server, now, &mut held);
            moved = true;
        }
        // Deliver one held (reordered) segment per round.
        if let Some((to_server, seg)) = held.pop() {
            if to_server {
                server.on_segment(seg, now);
            } else {
                client.on_segment(seg, now);
            }
            moved = true;
        }
        if client.is_aborted() || server.is_aborted() {
            return None;
        }
        if !moved {
            // Advance to the next retransmission deadline.
            let next = [client.poll_timeout(), server.poll_timeout()]
                .into_iter()
                .flatten()
                .min();
            match next {
                Some(deadline) => {
                    now = deadline;
                    client.on_tick(now);
                    server.on_tick(now);
                }
                None => break,
            }
        } else {
            now += SimDuration::from_micros(100);
        }
    }
    Some(server.read())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// With loss and reordering, TCP delivers the exact stream (or the
    /// endpoint gives up after its timeout budget — never corruption).
    #[test]
    fn tcp_delivers_exactly_despite_loss_and_reordering(
        len in 1usize..30_000,
        pattern: u64,
        drop_mod in 4u64..20,
    ) {
        let data: Vec<u8> = (0..len).map(|i| (i % 255) as u8).collect();
        if let Some(received) = run_over_channel(&data, pattern, drop_mod) {
            prop_assert_eq!(received, data);
        }
    }

    /// On a perfect channel, delivery is guaranteed and retransmission-free.
    #[test]
    fn tcp_clean_channel_no_retransmissions(len in 1usize..20_000, pattern: u64) {
        let data: Vec<u8> = (0..len).map(|i| (i % 253) as u8).collect();
        let mut client = TcpConnection::client(TcpConfig::default());
        let mut server = TcpConnection::server(TcpConfig {
            iss: Seq(1),
            ..TcpConfig::default()
        });
        let _ = pattern;
        client.write(&data);
        let mut now = SimTime::ZERO;
        for _ in 0..2_000 {
            let mut moved = false;
            while let Some(seg) = client.poll_transmit(now) {
                server.on_segment(seg, now);
                moved = true;
            }
            while let Some(seg) = server.poll_transmit(now) {
                client.on_segment(seg, now);
                moved = true;
            }
            if !moved { break; }
            now += SimDuration::from_millis(1);
        }
        prop_assert_eq!(server.read(), data);
        prop_assert_eq!(client.stats().retransmissions, 0);
        prop_assert_eq!(client.stats().timeouts, 0);
    }
}
