//! Whole-experiment benchmarks: one bench target per paper exhibit,
//! measuring the cost of a single trial under that exhibit's condition.
//! (The `repro` binary aggregates 100-trial batches; these benches keep
//! `cargo bench` bounded while still executing every exhibit's code path.)

use std::time::Duration;

use h2priv_bench::harness::{black_box, Harness};
use h2priv_core::experiment::{
    analyze_trial, calibrate_size_map, objects_of_interest, paper_scenario, run_paper_trial,
};
use h2priv_core::AttackConfig;
use h2priv_netsim::{mbps, SimDuration};

fn bench_fig1(h: &mut Harness) {
    h.bench("fig1_boundaries/both_cases", || {
        black_box(h2priv_bench::fig1::run());
    });
}

fn bench_table1(h: &mut Harness) {
    h.bench("table1_jitter/baseline_trial", || {
        black_box(run_paper_trial(1, None, |_| {}));
    });
    let attack = AttackConfig::jitter_only(SimDuration::from_millis(50));
    h.bench("table1_jitter/jitter50_trial", move || {
        black_box(run_paper_trial(1, Some(&attack), |_| {}));
    });
}

fn bench_fig5(h: &mut Harness) {
    let attack = AttackConfig::jitter_and_throttle(SimDuration::from_millis(50), mbps(14));
    h.bench("fig5_bandwidth/jitter50_throttle14_trial", move || {
        black_box(run_paper_trial(1, Some(&attack), |_| {}));
    });
}

fn bench_ivd(h: &mut Harness) {
    let attack = AttackConfig::paper_attack();
    h.bench("ivd_stream_reset/drop80_trial", move || {
        black_box(run_paper_trial(1, Some(&attack), |_| {}));
    });
}

fn bench_table2(h: &mut Harness) {
    let (iw, _) = paper_scenario(0);
    let objects = objects_of_interest(&iw);
    let map = calibrate_size_map(&objects);
    let attack = AttackConfig::paper_attack();
    h.bench("table2_attack/full_attack_trial_with_analysis", move || {
        let trial = run_paper_trial(1, Some(&attack), |_| {});
        let start = trial
            .adversary
            .as_ref()
            .and_then(|a| a.analysis_start(&attack));
        let objects = objects_of_interest(&trial.iw);
        black_box(analyze_trial(&trial, &map, &objects, start));
    });
    h.bench("table2_attack/calibrate_size_map", move || {
        black_box(calibrate_size_map(&objects));
    });
}

fn bench_analysis(h: &mut Harness) {
    let trial = run_paper_trial(1, None, |_| {});
    {
        let trace = trial.result.trace.clone();
        h.bench("analysis_pipeline/extract_records_full_trace", move || {
            black_box(h2priv_analysis::extract_records(&trace));
        });
    }
    let records = h2priv_analysis::extract_records(&trial.result.trace);
    let data = h2priv_analysis::app_data_records(&records, h2priv_netsim::Dir::RightToLeft);
    h.bench("analysis_pipeline/segment_bursts", move || {
        black_box(h2priv_analysis::segment_bursts(
            &data,
            h2priv_core::experiment::BURST_GAP,
        ));
    });
    h.bench(
        "analysis_pipeline/degree_of_multiplexing_all_objects",
        || {
            for object in trial.iw.site.objects() {
                black_box(trial.result.truth.min_degree_for(object.id));
            }
        },
    );
}

fn main() {
    let mut h = Harness::default();
    // Whole-trial bodies are expensive; keep the measurement budget small.
    h.measurement_time(Duration::from_millis(150));
    bench_fig1(&mut h);
    bench_table1(&mut h);
    bench_fig5(&mut h);
    bench_ivd(&mut h);
    bench_table2(&mut h);
    bench_analysis(&mut h);
    h.finish();
}
