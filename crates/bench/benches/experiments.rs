//! Whole-experiment benchmarks: one bench target per paper exhibit,
//! measuring the cost of a single trial under that exhibit's condition.
//! (The `repro` binary aggregates 100-trial batches; these benches keep
//! `cargo bench` bounded while still executing every exhibit's code path.)

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use h2priv_core::experiment::{
    analyze_trial, calibrate_size_map, objects_of_interest, paper_scenario, run_paper_trial,
};
use h2priv_core::AttackConfig;
use h2priv_netsim::{mbps, SimDuration};

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_boundaries");
    group.sample_size(10);
    group.bench_function("both_cases", |b| {
        b.iter(|| black_box(h2priv_bench::fig1::run()))
    });
    group.finish();
}

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_jitter");
    group.sample_size(10);
    group.bench_function("baseline_trial", |b| {
        b.iter(|| black_box(run_paper_trial(1, None, |_| {})))
    });
    let attack = AttackConfig::jitter_only(SimDuration::from_millis(50));
    group.bench_function("jitter50_trial", |b| {
        b.iter(|| black_box(run_paper_trial(1, Some(&attack), |_| {})))
    });
    group.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_bandwidth");
    group.sample_size(10);
    let attack = AttackConfig::jitter_and_throttle(SimDuration::from_millis(50), mbps(14));
    group.bench_function("jitter50_throttle14_trial", |b| {
        b.iter(|| black_box(run_paper_trial(1, Some(&attack), |_| {})))
    });
    group.finish();
}

fn bench_ivd(c: &mut Criterion) {
    let mut group = c.benchmark_group("ivd_stream_reset");
    group.sample_size(10);
    let attack = AttackConfig::paper_attack();
    group.bench_function("drop80_trial", |b| {
        b.iter(|| black_box(run_paper_trial(1, Some(&attack), |_| {})))
    });
    group.finish();
}

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_attack");
    group.sample_size(10);
    let (iw, _) = paper_scenario(0);
    let objects = objects_of_interest(&iw);
    let map = calibrate_size_map(&objects);
    let attack = AttackConfig::paper_attack();
    group.bench_function("full_attack_trial_with_analysis", |b| {
        b.iter(|| {
            let trial = run_paper_trial(1, Some(&attack), |_| {});
            let start = trial
                .adversary
                .as_ref()
                .and_then(|a| a.analysis_start(&attack));
            let objects = objects_of_interest(&trial.iw);
            black_box(analyze_trial(&trial, &map, &objects, start))
        })
    });
    group.bench_function("calibrate_size_map", |b| {
        b.iter(|| black_box(calibrate_size_map(&objects)))
    });
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_pipeline");
    group.sample_size(10);
    let trial = run_paper_trial(1, None, |_| {});
    group.bench_function("extract_records_full_trace", |b| {
        b.iter(|| black_box(h2priv_analysis::extract_records(&trial.result.trace)))
    });
    let records = h2priv_analysis::extract_records(&trial.result.trace);
    let data = h2priv_analysis::app_data_records(&records, h2priv_netsim::Dir::RightToLeft);
    group.bench_function("segment_bursts", |b| {
        b.iter(|| {
            black_box(h2priv_analysis::segment_bursts(
                &data,
                h2priv_core::experiment::BURST_GAP,
            ))
        })
    });
    group.bench_function("degree_of_multiplexing_all_objects", |b| {
        b.iter(|| {
            for object in trial.iw.site.objects() {
                black_box(trial.result.truth.min_degree_for(object.id));
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig1,
    bench_table1,
    bench_fig5,
    bench_ivd,
    bench_table2,
    bench_analysis
);
criterion_main!(benches);
