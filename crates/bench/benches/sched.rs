//! Event-scheduler microbenchmark: the calendar queue (`CalendarQueue`)
//! against the 4-ary min-heap it replaced (`MinHeap4`), isolated from the
//! protocol stacks, at the event mixes the trials actually produce.
//!
//! Three regimes, payload sized like the engine's event (a `Packet` of
//! `TcpSegment` is 72 bytes):
//!
//! * `fig5_mix` — the measured fig5 trial shape: bimodal deadlines (µs-scale
//!   serialization/ACK events plus an RTO/stall-scale far tail), queue held
//!   at ~2k live entries, steady-state push/pop.
//! * `burst` — near-only dense trains (12 µs serialization quanta), the
//!   regime the bucket ring is built for.
//! * `tombstone_pop` — pop-through of an RTO-rearm-style backlog, the
//!   cancelled-timer drain that inflates trial queues.
//!
//! Run via `make bench-sched`; `scripts/lint.sh` executes it as a smoke
//! check so a scheduler regression fails CI before it blurs into
//! whole-trial numbers.

use h2priv_bench::harness::{black_box, Harness};
use h2priv_netsim::internals::{CalendarQueue, MinHeap4};
use h2priv_netsim::{SimDuration, SimTime};

/// Mimics the engine's event payload footprint (`Ev<TcpSegment>`). The
/// heap stored whole events inline, so its entries must carry the payload
/// too — `Ord` ignores it (the `(at, seq)` prefix decides first and is
/// unique).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Payload([u64; 9]);

impl Payload {
    fn new(seed: u64) -> Self {
        Payload([seed; 9])
    }
}

/// xorshift64*: deterministic workload without external RNG crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// The fig5 trial's measured deadline mix: slightly more near than far
/// inserts (54% / 46%), with the far tail spread over RTO-to-stall scales.
fn fig5_delta(rng: &mut Rng) -> u64 {
    let r = rng.next();
    match r % 100 {
        0..=53 => rng.next() % 50_000,                     // ≤ 50 µs
        54..=89 => 100_000_000 + rng.next() % 900_000_000, // RTO-scale
        _ => 1_000_000_000 + rng.next() % 4_000_000_000,   // stall-scale
    }
}

/// Steady-state push+pop pair on a queue held at `hold` live entries.
/// Returns closures so both implementations run the identical schedule.
fn bench_fig5_mix(h: &mut Harness) {
    const HOLD: usize = 2_000;

    let mut rng = Rng(0x5EED);
    let mut wheel = CalendarQueue::new();
    let mut seq = 0u64;
    for _ in 0..HOLD {
        wheel.push(
            SimTime::ZERO + SimDuration::from_nanos(fig5_delta(&mut rng)),
            seq,
            Payload::new(seq),
        );
        seq += 1;
    }
    h.bench("sched/wheel_fig5_mix", move || {
        let (at, _, v) = wheel.pop().expect("steady state");
        black_box(v);
        wheel.push(
            at + SimDuration::from_nanos(fig5_delta(&mut rng)),
            seq,
            Payload::new(seq),
        );
        seq += 1;
    });

    let mut rng = Rng(0x5EED);
    let mut heap: MinHeap4<(SimTime, u64, Payload)> = MinHeap4::new();
    let mut seq = 0u64;
    for _ in 0..HOLD {
        heap.push((
            SimTime::ZERO + SimDuration::from_nanos(fig5_delta(&mut rng)),
            seq,
            Payload::new(seq),
        ));
        seq += 1;
    }
    h.bench("sched/heap_fig5_mix", move || {
        let (at, _, v) = heap.pop().expect("steady state");
        black_box(v);
        heap.push((
            at + SimDuration::from_nanos(fig5_delta(&mut rng)),
            seq,
            Payload::new(seq),
        ));
        seq += 1;
    });
}

/// Dense near-future trains: 0–48 µs deadlines (serialization quanta).
fn bench_burst(h: &mut Harness) {
    const HOLD: usize = 256;

    let mut rng = Rng(7);
    let mut wheel = CalendarQueue::new();
    let mut seq = 0u64;
    for _ in 0..HOLD {
        wheel.push(
            SimTime::ZERO + SimDuration::from_nanos(rng.next() % 48_000),
            seq,
            Payload::new(seq),
        );
        seq += 1;
    }
    h.bench("sched/wheel_burst", move || {
        let (at, _, v) = wheel.pop().expect("steady state");
        black_box(v);
        wheel.push(
            at + SimDuration::from_nanos(rng.next() % 48_000),
            seq,
            Payload::new(seq),
        );
        seq += 1;
    });

    let mut rng = Rng(7);
    let mut heap: MinHeap4<(SimTime, u64, Payload)> = MinHeap4::new();
    let mut seq = 0u64;
    for _ in 0..HOLD {
        heap.push((
            SimTime::ZERO + SimDuration::from_nanos(rng.next() % 48_000),
            seq,
            Payload::new(seq),
        ));
        seq += 1;
    }
    h.bench("sched/heap_burst", move || {
        let (at, _, v) = heap.pop().expect("steady state");
        black_box(v);
        heap.push((
            at + SimDuration::from_nanos(rng.next() % 48_000),
            seq,
            Payload::new(seq),
        ));
        seq += 1;
    });
}

/// RTO-rearm backlog drain: refill a 4k-deep far-future backlog, then pop
/// it dry — the shape of a cancelled-timer tombstone flush.
fn bench_tombstone_pop(h: &mut Harness) {
    const DEPTH: u64 = 4_096;

    h.bench("sched/wheel_tombstone_pop", || {
        let mut rng = Rng(11);
        let mut wheel = CalendarQueue::new();
        for seq in 0..DEPTH {
            let at = SimTime::from_nanos(200_000_000 + rng.next() % 800_000_000);
            wheel.push(at, seq, Payload::new(seq));
        }
        while let Some((_, _, v)) = wheel.pop() {
            black_box(v);
        }
    });

    h.bench("sched/heap_tombstone_pop", || {
        let mut rng = Rng(11);
        let mut heap: MinHeap4<(SimTime, u64, Payload)> = MinHeap4::new();
        for seq in 0..DEPTH {
            let at = SimTime::from_nanos(200_000_000 + rng.next() % 800_000_000);
            heap.push((at, seq, Payload::new(seq)));
        }
        while let Some((_, _, v)) = heap.pop() {
            black_box(v);
        }
    });
}

fn main() {
    let mut h = Harness::from_args(std::env::args().skip(1));
    bench_fig5_mix(&mut h);
    bench_burst(&mut h);
    bench_tombstone_pop(&mut h);
    h.finish();
}
