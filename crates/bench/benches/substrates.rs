//! Microbenchmarks of the protocol substrates: the hot paths every trial
//! exercises millions of times.

use h2priv_bench::harness::{black_box, Harness};
use h2priv_http2::hpack::{Decoder, Encoder, HeaderField};
use h2priv_http2::{encode_frame, Frame, FrameDecoder, StreamId};
use h2priv_tcp::{Reassembler, Seq, TcpConfig, TcpConnection};
use h2priv_tls::{ContentType, RecordCipher, RecordReader, RecordScanner, RecordWriter};

fn request_headers() -> Vec<HeaderField> {
    vec![
        HeaderField::new(":method", "GET"),
        HeaderField::new(":scheme", "https"),
        HeaderField::new(":authority", "www.isidewith.com"),
        HeaderField::new(":path", "/img/parties/democratic.png"),
        HeaderField::new("user-agent", "h2priv-firefox/74.0"),
        HeaderField::new("accept", "*/*"),
    ]
}

fn bench_hpack(h: &mut Harness) {
    h.bench("hpack/encode_request_cold", || {
        let mut enc = Encoder::new();
        black_box(enc.encode(&request_headers()));
    });
    let mut warm = Encoder::new();
    warm.encode(&request_headers());
    h.bench("hpack/encode_request_warm", move || {
        black_box(warm.encode(&request_headers()));
    });
    let mut enc = Encoder::new();
    let block = enc.encode(&request_headers());
    h.bench("hpack/decode_request", move || {
        let mut dec = Decoder::new();
        black_box(dec.decode(&block).unwrap());
    });
}

fn bench_frame_codec(h: &mut Harness) {
    let frame = Frame::Data {
        stream_id: StreamId(7),
        end_stream: false,
        data: vec![0xAB; 2048].into(),
        pad: None,
    };
    {
        let frame = frame.clone();
        h.bench_throughput("frame_codec/encode_data_2k", 2048, move || {
            black_box(encode_frame(&frame));
        });
    }
    let wire = encode_frame(&frame);
    h.bench_throughput("frame_codec/decode_data_2k", 2048, move || {
        let mut dec = FrameDecoder::new(false);
        dec.push(&wire);
        black_box(dec.next_frame().unwrap());
    });
}

fn bench_tls(h: &mut Harness) {
    let payload = vec![0x5Au8; 2048];
    {
        let payload = payload.clone();
        let mut w = RecordWriter::new(RecordCipher::new(1, 1));
        h.bench_throughput("tls_records/seal_2k", 2048, move || {
            black_box(w.seal_message(ContentType::ApplicationData, &payload));
        });
    }
    {
        let payload = payload.clone();
        h.bench_throughput("tls_records/seal_open_roundtrip_2k", 2048, move || {
            let mut w = RecordWriter::new(RecordCipher::new(1, 1));
            let mut r = RecordReader::new(RecordCipher::new(1, 1));
            let wire = w.seal_message(ContentType::ApplicationData, &payload);
            r.push(&wire);
            black_box(r.next_message().unwrap());
        });
    }
    let mut w = RecordWriter::new(RecordCipher::new(1, 1));
    let wire = w.seal_message(ContentType::ApplicationData, &payload);
    h.bench_throughput("tls_records/scanner_headers_only_2k", 2048, move || {
        let mut s = RecordScanner::new();
        black_box(s.push(&wire));
    });
}

fn bench_reassembly(h: &mut Harness) {
    // 100 KB delivered as 1460-byte segments, 10 % delivered out of order.
    let data: Vec<u8> = (0..100_000u32).map(|i| i as u8).collect();
    let mut chunks: Vec<(u64, Vec<u8>)> = data
        .chunks(1460)
        .enumerate()
        .map(|(i, c)| ((i * 1460) as u64, c.to_vec()))
        .collect();
    let n = chunks.len();
    for i in (0..n.saturating_sub(1)).step_by(10) {
        chunks.swap(i, i + 1);
    }
    let bytes = data.len() as u64;
    h.bench_throughput(
        "tcp_reassembly/insert_100k_mild_reorder",
        bytes,
        move || {
            let mut r = Reassembler::new();
            for (off, c) in &chunks {
                r.insert(*off, c);
            }
            black_box(r.read());
        },
    );
}

fn bench_tcp_transfer(h: &mut Harness) {
    h.bench("tcp_connection/handshake_plus_64k_transfer", || {
        let mut client = TcpConnection::client(TcpConfig::default());
        let mut server = TcpConnection::server(TcpConfig {
            iss: Seq(9_000),
            ..TcpConfig::default()
        });
        client.write(&vec![7u8; 65_536]);
        let mut now = h2priv_netsim::SimTime::ZERO;
        for _ in 0..200 {
            let mut moved = false;
            while let Some(seg) = client.poll_transmit(now) {
                server.on_segment(seg, now);
                moved = true;
            }
            while let Some(seg) = server.poll_transmit(now) {
                client.on_segment(seg, now);
                moved = true;
            }
            if !moved {
                break;
            }
            now += h2priv_netsim::SimDuration::from_millis(1);
        }
        black_box(server.read());
    });
}

fn main() {
    let mut h = Harness::default();
    bench_hpack(&mut h);
    bench_frame_codec(&mut h);
    bench_tls(&mut h);
    bench_reassembly(&mut h);
    bench_tcp_transfer(&mut h);
    h.finish();
}
