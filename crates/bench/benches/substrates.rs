//! Microbenchmarks of the protocol substrates: the hot paths every trial
//! exercises millions of times.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use h2priv_http2::hpack::{Decoder, Encoder, HeaderField};
use h2priv_http2::{encode_frame, Frame, FrameDecoder, StreamId};
use h2priv_tcp::{Reassembler, Seq, TcpConfig, TcpConnection};
use h2priv_tls::{ContentType, RecordCipher, RecordReader, RecordScanner, RecordWriter};

fn request_headers() -> Vec<HeaderField> {
    vec![
        HeaderField::new(":method", "GET"),
        HeaderField::new(":scheme", "https"),
        HeaderField::new(":authority", "www.isidewith.com"),
        HeaderField::new(":path", "/img/parties/democratic.png"),
        HeaderField::new("user-agent", "h2priv-firefox/74.0"),
        HeaderField::new("accept", "*/*"),
    ]
}

fn bench_hpack(c: &mut Criterion) {
    let mut group = c.benchmark_group("hpack");
    group.bench_function("encode_request_cold", |b| {
        b.iter(|| {
            let mut enc = Encoder::new();
            black_box(enc.encode(&request_headers()))
        })
    });
    group.bench_function("encode_request_warm", |b| {
        let mut enc = Encoder::new();
        enc.encode(&request_headers());
        b.iter(|| black_box(enc.encode(&request_headers())))
    });
    group.bench_function("decode_request", |b| {
        let mut enc = Encoder::new();
        let block = enc.encode(&request_headers());
        b.iter(|| {
            let mut dec = Decoder::new();
            black_box(dec.decode(&block).unwrap())
        })
    });
    group.finish();
}

fn bench_frame_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_codec");
    let frame = Frame::Data {
        stream_id: StreamId(7),
        end_stream: false,
        data: vec![0xAB; 2048],
    };
    group.throughput(Throughput::Bytes(2048));
    group.bench_function("encode_data_2k", |b| {
        b.iter(|| black_box(encode_frame(&frame)))
    });
    let wire = encode_frame(&frame);
    group.bench_function("decode_data_2k", |b| {
        b.iter(|| {
            let mut dec = FrameDecoder::new(false);
            dec.push(&wire);
            black_box(dec.next_frame().unwrap())
        })
    });
    group.finish();
}

fn bench_tls(c: &mut Criterion) {
    let mut group = c.benchmark_group("tls_records");
    let payload = vec![0x5Au8; 2048];
    group.throughput(Throughput::Bytes(2048));
    group.bench_function("seal_2k", |b| {
        let mut w = RecordWriter::new(RecordCipher::new(1, 1));
        b.iter(|| black_box(w.seal_message(ContentType::ApplicationData, &payload)))
    });
    group.bench_function("seal_open_roundtrip_2k", |b| {
        b.iter(|| {
            let mut w = RecordWriter::new(RecordCipher::new(1, 1));
            let mut r = RecordReader::new(RecordCipher::new(1, 1));
            let wire = w.seal_message(ContentType::ApplicationData, &payload);
            r.push(&wire);
            black_box(r.next_message().unwrap())
        })
    });
    group.bench_function("scanner_headers_only_2k", |b| {
        let mut w = RecordWriter::new(RecordCipher::new(1, 1));
        let wire = w.seal_message(ContentType::ApplicationData, &payload);
        b.iter(|| {
            let mut s = RecordScanner::new();
            black_box(s.push(&wire))
        })
    });
    group.finish();
}

fn bench_reassembly(c: &mut Criterion) {
    let mut group = c.benchmark_group("tcp_reassembly");
    // 100 KB delivered as 1460-byte segments, 10 % delivered out of order.
    let data: Vec<u8> = (0..100_000u32).map(|i| i as u8).collect();
    let mut chunks: Vec<(u64, Vec<u8>)> = data
        .chunks(1460)
        .enumerate()
        .map(|(i, c)| ((i * 1460) as u64, c.to_vec()))
        .collect();
    let n = chunks.len();
    for i in (0..n.saturating_sub(1)).step_by(10) {
        chunks.swap(i, i + 1);
    }
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("insert_100k_mild_reorder", |b| {
        b.iter(|| {
            let mut r = Reassembler::new();
            for (off, c) in &chunks {
                r.insert(*off, c);
            }
            black_box(r.read())
        })
    });
    group.finish();
}

fn bench_tcp_transfer(c: &mut Criterion) {
    let mut group = c.benchmark_group("tcp_connection");
    group.sample_size(20);
    group.bench_function("handshake_plus_64k_transfer", |b| {
        b.iter(|| {
            let mut client = TcpConnection::client(TcpConfig::default());
            let mut server = TcpConnection::server(TcpConfig {
                iss: Seq(9_000),
                ..TcpConfig::default()
            });
            client.write(&vec![7u8; 65_536]);
            let mut now = h2priv_netsim::SimTime::ZERO;
            for _ in 0..200 {
                let mut moved = false;
                while let Some(seg) = client.poll_transmit(now) {
                    server.on_segment(seg, now);
                    moved = true;
                }
                while let Some(seg) = server.poll_transmit(now) {
                    client.on_segment(seg, now);
                    moved = true;
                }
                if !moved {
                    break;
                }
                now += h2priv_netsim::SimDuration::from_millis(1);
            }
            black_box(server.read())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hpack,
    bench_frame_codec,
    bench_tls,
    bench_reassembly,
    bench_tcp_transfer
);
criterion_main!(benches);
