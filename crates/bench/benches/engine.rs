//! Raw discrete-event engine throughput, independent of the experiment
//! layer: a two-node ping-pong workload measured in events per second.
//! Engine regressions (allocation per event, routing rebuilds, timer
//! bookkeeping) show up here before they blur into whole-trial numbers.

use std::time::Instant;

use h2priv_bench::harness::black_box;
use h2priv_netsim::{Context, LinkConfig, Node, NodeId, Packet, SimDuration, Simulator};

/// Echoes every packet back forever; the run is stopped by event budget.
struct PingPong {
    peer: NodeId,
}

impl Node<u64> for PingPong {
    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        ctx.send(Packet::new(ctx.node_id(), self.peer, 100, 0));
    }
    fn on_packet(&mut self, p: Packet<u64>, ctx: &mut Context<'_, u64>) {
        ctx.send(Packet::new(p.dst, p.src, p.wire_bytes, p.payload + 1));
    }
}

/// Like [`PingPong`] but also arms and cancels a timer per packet,
/// exercising the timer bookkeeping path.
struct TimerPingPong {
    peer: NodeId,
    armed: Option<h2priv_netsim::TimerId>,
}

impl Node<u64> for TimerPingPong {
    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        ctx.send(Packet::new(ctx.node_id(), self.peer, 100, 0));
    }
    fn on_packet(&mut self, p: Packet<u64>, ctx: &mut Context<'_, u64>) {
        if let Some(id) = self.armed.take() {
            ctx.cancel_timer(id);
        }
        self.armed = Some(ctx.set_timer(SimDuration::from_millis(200), 1));
        ctx.send(Packet::new(p.dst, p.src, p.wire_bytes, p.payload + 1));
    }
}

fn run_ping_pong(events: u64, with_timers: bool) -> (u64, f64) {
    let mut sim = Simulator::new(7);
    let a = sim.reserve_node_id();
    let b = sim.reserve_node_id();
    if with_timers {
        sim.install_node(
            a,
            Box::new(TimerPingPong {
                peer: b,
                armed: None,
            }),
        );
        sim.install_node(
            b,
            Box::new(TimerPingPong {
                peer: a,
                armed: None,
            }),
        );
    } else {
        sim.install_node(a, Box::new(PingPong { peer: b }));
        sim.install_node(b, Box::new(PingPong { peer: a }));
    }
    sim.add_link(a, b, LinkConfig::with_delay(SimDuration::from_micros(50)));
    sim.set_event_budget(events);
    let t0 = Instant::now();
    let summary = black_box(sim.run());
    let secs = t0.elapsed().as_secs_f64();
    (summary.events, summary.events as f64 / secs)
}

fn main() {
    let events = 1_000_000;
    // Warmup.
    run_ping_pong(events / 10, false);
    for (label, with_timers) in [("ping_pong", false), ("ping_pong_with_timers", true)] {
        let (processed, events_per_sec) = run_ping_pong(events, with_timers);
        println!(
            "engine/{label:<24} {processed} events  {:.2} M events/sec",
            events_per_sec / 1e6
        );
    }
}
