//! A minimal `std::time::Instant`-based micro-benchmark harness.
//!
//! The criterion crate is unavailable in offline builds, and the bench
//! targets only need medians and throughput lines, so this module provides
//! the subset the repo uses: named benchmark functions, automatic
//! iteration-count calibration, and a stable one-line-per-bench report.
//! Bench binaries (`harness = false`) build a [`Harness`], register
//! closures, and call [`Harness::finish`].

use std::time::{Duration, Instant};

/// Re-export of the standard black-box optimization barrier, mirroring
/// `criterion::black_box` so bench code reads the same.
pub use std::hint::black_box;

/// One benchmark's measured result.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// `group/name` label.
    pub name: String,
    /// Iterations in the measurement pass.
    pub iters: u64,
    /// Wall time of the measurement pass.
    pub total: Duration,
    /// Mean nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Optional bytes processed per iteration (enables MB/s output).
    pub bytes_per_iter: Option<u64>,
}

impl BenchReport {
    fn render(&self) -> String {
        let per_iter = if self.ns_per_iter >= 1e6 {
            format!("{:.3} ms", self.ns_per_iter / 1e6)
        } else if self.ns_per_iter >= 1e3 {
            format!("{:.3} us", self.ns_per_iter / 1e3)
        } else {
            format!("{:.1} ns", self.ns_per_iter)
        };
        let mut line = format!(
            "{:<46} {:>12}/iter  ({} iters)",
            self.name, per_iter, self.iters
        );
        if let Some(bytes) = self.bytes_per_iter {
            let mbps = bytes as f64 / (self.ns_per_iter / 1e9) / 1e6;
            line.push_str(&format!("  {mbps:.0} MB/s"));
        }
        line
    }
}

/// The bench registry and runner.
#[derive(Debug)]
pub struct Harness {
    filter: Option<String>,
    target: Duration,
    reports: Vec<BenchReport>,
}

impl Default for Harness {
    fn default() -> Self {
        Harness::from_args(std::env::args().skip(1))
    }
}

impl Harness {
    /// Builds a harness from CLI args: any non-flag argument is a substring
    /// filter on benchmark names (`cargo bench -- hpack`). `--bench` (which
    /// cargo passes) is ignored.
    pub fn from_args(args: impl Iterator<Item = String>) -> Self {
        let filter = args.filter(|a| !a.starts_with("--")).last();
        Harness {
            filter,
            target: Duration::from_millis(300),
            reports: Vec::new(),
        }
    }

    /// Lowers the per-bench measurement budget (for expensive bodies).
    pub fn measurement_time(&mut self, target: Duration) -> &mut Self {
        self.target = target;
        self
    }

    /// Runs one benchmark: calibrates an iteration count to roughly the
    /// measurement budget, measures, and records the report.
    pub fn bench(&mut self, name: &str, mut body: impl FnMut()) -> &mut Self {
        self.bench_inner(name, None, &mut body)
    }

    /// Like [`Harness::bench`] with a bytes-per-iteration throughput label.
    pub fn bench_throughput(
        &mut self,
        name: &str,
        bytes_per_iter: u64,
        mut body: impl FnMut(),
    ) -> &mut Self {
        self.bench_inner(name, Some(bytes_per_iter), &mut body)
    }

    fn bench_inner(
        &mut self,
        name: &str,
        bytes_per_iter: Option<u64>,
        body: &mut dyn FnMut(),
    ) -> &mut Self {
        if let Some(f) = &self.filter {
            if !name.contains(f.as_str()) {
                return self;
            }
        }
        // Calibration: run once, estimate, then scale to the budget.
        let t0 = Instant::now();
        body();
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (self.target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        // Warmup pass (a quarter of the measured iterations, capped).
        for _ in 0..(iters / 4).min(1_000) {
            body();
        }
        let t0 = Instant::now();
        for _ in 0..iters {
            body();
        }
        let total = t0.elapsed();
        let report = BenchReport {
            name: name.to_owned(),
            iters,
            total,
            ns_per_iter: total.as_nanos() as f64 / iters as f64,
            bytes_per_iter,
        };
        println!("{}", report.render());
        self.reports.push(report);
        self
    }

    /// Completed reports (useful for custom summary lines).
    pub fn reports(&self) -> &[BenchReport] {
        &self.reports
    }

    /// Prints the trailer. Call at the end of `main`.
    pub fn finish(&self) {
        println!("\n{} benchmark(s) run", self.reports.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut h = Harness::from_args(std::iter::empty());
        h.measurement_time(Duration::from_millis(5));
        let mut count = 0u64;
        h.bench("smoke/add", || {
            count = black_box(count + 1);
        });
        assert_eq!(h.reports().len(), 1);
        assert!(h.reports()[0].iters >= 1);
        assert!(h.reports()[0].ns_per_iter > 0.0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut h = Harness::from_args(["nomatch".to_owned()].into_iter());
        h.measurement_time(Duration::from_millis(5));
        h.bench("smoke/other", || {});
        assert!(h.reports().is_empty());
    }
}
