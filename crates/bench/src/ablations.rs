//! Ablations of the design choices DESIGN.md §6 calls out, plus the §IV-A
//! uniform-delay control and the §VII defense sketch.

use h2priv_core::experiment::{analyze_trial, objects_of_interest, run_paper_trial};
use h2priv_core::AttackConfig;
use h2priv_http2::SendPolicy;
use h2priv_netsim::SimDuration;

use crate::common::{calibrated_map, run_batch};
use crate::json::{object, Json, ToJson};

/// One ablation outcome.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// What was varied.
    pub name: String,
    /// Condition label.
    pub condition: String,
    /// Headline metric (meaning depends on the ablation).
    pub metric: f64,
    /// What the metric is.
    pub metric_name: String,
}

impl ToJson for AblationRow {
    fn to_json(&self) -> Json {
        object([
            ("name", self.name.to_json()),
            ("condition", self.condition.to_json()),
            ("metric", self.metric.to_json()),
            ("metric_name", self.metric_name.to_json()),
        ])
    }
}

/// §IV-A: uniform delay on every packet "cannot increase the inter-arrival
/// time between two successive packets" — the HTML's multiplexing must not
/// move.
pub fn uniform_delay(trials: u64) -> Vec<AblationRow> {
    let map = calibrated_map();
    [0u64, 50, 100]
        .into_iter()
        .map(|extra_ms| {
            let batch = run_batch(trials, None, &map, |cfg| {
                cfg.client_link.delay += SimDuration::from_millis(extra_ms);
            });
            AblationRow {
                name: "uniform-delay".into(),
                condition: format!("+{extra_ms} ms on every packet"),
                metric: batch.html_non_mux_pct(),
                metric_name: "HTML non-multiplexed %".into(),
            }
        })
        .collect()
}

/// DESIGN.md §6.1: the mux policy is the source of multiplexing. Baseline
/// HTML degree under each server scheduler.
pub fn scheduler_policy(trials: u64) -> Vec<AblationRow> {
    let map = calibrated_map();
    [
        ("round-robin", SendPolicy::RoundRobin),
        ("sequential", SendPolicy::Sequential),
        ("random-order", SendPolicy::RandomOrder { seed: 11 }),
    ]
    .into_iter()
    .map(|(label, policy)| {
        let batch = run_batch(trials, None, &map, |cfg| {
            cfg.server_h2.send_policy = policy;
        });
        AblationRow {
            name: "server-scheduler".into(),
            condition: label.into(),
            metric: batch.mean_degree(0) * 100.0,
            metric_name: "mean HTML degree of multiplexing %".into(),
        }
    })
    .collect()
}

/// DESIGN.md §6.2: the browser's reset-and-re-request behaviour is what the
/// §IV-D phase exploits. With re-issue disabled the full attack loses the
/// clean re-serve of the HTML.
pub fn reissue_behaviour(trials: u64) -> Vec<AblationRow> {
    let map = calibrated_map();
    let attack = AttackConfig::paper_attack();
    [true, false]
        .into_iter()
        .map(|reissue| {
            let batch = run_batch(trials, Some(&attack), &map, |cfg| {
                cfg.browser.reissue_on_stall = reissue;
            });
            AblationRow {
                name: "browser-reissue".into(),
                condition: if reissue {
                    "reissue on stall (Firefox-like)".into()
                } else {
                    "abandon on stall".into()
                },
                metric: batch.html_success_pct(),
                metric_name: "HTML attack success %".into(),
            }
        })
        .collect()
}

/// §VII defense sketch: "the client can opt for a different priority/order
/// of object delivery every time". The images are requested in a random
/// order decoupled from the user's preference; the attack still recovers
/// *sizes* (identities), but the transmission order no longer reveals the
/// displayed ranking.
pub fn order_randomization_defense(trials: u64) -> Vec<AblationRow> {
    let map = calibrated_map();
    let attack = AttackConfig::paper_attack();
    let mut rows = Vec::new();
    for (label, defended) in [("undefended", false), ("randomized order", true)] {
        let per_seed = crate::runner::run_seeded(trials, |seed| {
            // Defense: shift the seed used for the *request order* so it no
            // longer matches the golden (displayed) order.
            let trial = if defended {
                // The displayed order is golden(seed); the requested order is
                // an unrelated permutation. We model it by running the plan
                // of a different user and scoring against this user's golden.
                run_paper_trial(
                    seed.wrapping_add(10_000),
                    Some(&attack),
                    crate::common::conformance_tweak,
                )
            } else {
                run_paper_trial(seed, Some(&attack), crate::common::conformance_tweak)
            };
            crate::common::record_conformance(&trial.result);
            crate::runner::record_sched(&trial.result.sched);
            let start = trial
                .adversary
                .as_ref()
                .and_then(|a| a.analysis_start(&attack));
            let objects = objects_of_interest(&trial.iw);
            let analysis = analyze_trial(&trial, &map, &objects, start);
            // Score the *order* against the original user's golden order.
            let golden = if defended {
                // The user whose page this "really" was.
                h2priv_netsim::SimRng::seed_from(seed.wrapping_mul(0x9E37_79B9).wrapping_add(7))
                    .permutation(8)
            } else {
                trial.iw.golden_order.clone()
            };
            let rank_hits = (0..8)
                .filter(|&rank| {
                    analysis.predicted_parties.get(rank).copied() == golden.get(rank).copied()
                })
                .count() as u64;
            let ident_hits = (1..9).filter(|&i| analysis.objects[i].identified).count() as u64;
            (rank_hits, ident_hits, trial.result.events)
        });
        crate::runner::record_events(per_seed.iter().map(|&(_, _, ev)| ev).sum());
        let rank_hits: u64 = per_seed.iter().map(|&(r, _, _)| r).sum();
        let ident_hits: u64 = per_seed.iter().map(|&(_, i, _)| i).sum();
        let rank_total = trials * 8;
        rows.push(AblationRow {
            name: "order-randomization-defense".into(),
            condition: format!("{label}: order accuracy"),
            metric: rank_hits as f64 * 100.0 / rank_total.max(1) as f64,
            metric_name: "display-rank prediction %".into(),
        });
        rows.push(AblationRow {
            name: "order-randomization-defense".into(),
            condition: format!("{label}: identification"),
            metric: ident_hits as f64 * 100.0 / (trials * 8).max(1) as f64,
            metric_name: "image identification %".into(),
        });
    }
    rows
}

/// Size-padding defense (the classic countermeasure the paper's related
/// work proposes, refs \[17\]–\[21\]): the server pads every body to a bucket
/// multiple. Measures attack success and the bandwidth overhead.
pub fn padding_defense(trials: u64) -> Vec<AblationRow> {
    let map = calibrated_map();
    let attack = AttackConfig::paper_attack();
    let mut rows = Vec::new();
    for bucket in [None, Some(2_048usize), Some(8_192)] {
        let batch = run_batch(trials, Some(&attack), &map, |cfg| {
            cfg.server.pad_bucket = bucket;
        });
        let label = match bucket {
            None => "no padding".to_owned(),
            Some(b) => format!("pad to {} KiB buckets", b / 1024),
        };
        rows.push(AblationRow {
            name: "padding-defense".into(),
            condition: format!("{label}: attack success"),
            metric: batch.html_success_pct(),
            metric_name: "HTML attack success %".into(),
        });
        // Bandwidth overhead of the padding, from the site model.
        let (iw, _) = h2priv_core::experiment::paper_scenario(0);
        let raw: u64 = iw.site.total_bytes();
        let padded: u64 = iw
            .site
            .objects()
            .iter()
            .map(|o| match bucket {
                Some(b) => (o.size.div_ceil(b) * b) as u64,
                None => o.size as u64,
            })
            .sum();
        rows.push(AblationRow {
            name: "padding-defense".into(),
            condition: format!("{label}: bandwidth overhead"),
            metric: (padded as f64 / raw as f64 - 1.0) * 100.0,
            metric_name: "extra bytes %".into(),
        });
    }
    rows
}

/// The §VII "partly multiplexed" extension: pairwise burst decomposition
/// recovers identities from merged two-object bursts that single matching
/// misses. Evaluated on the jitter-only adversary (no forced reset), whose
/// imperfect serialization leaves many merged bursts.
pub fn pairwise_decomposition(trials: u64) -> Vec<AblationRow> {
    use h2priv_analysis::{app_data_records, extract_records, segment_bursts};
    use h2priv_core::experiment::BURST_GAP;
    use h2priv_core::{identify_bursts, identify_bursts_with_pairs};
    let map = calibrated_map();
    let attack = AttackConfig::jitter_only(SimDuration::from_millis(50));
    let total = trials * 9;
    let per_seed = crate::runner::run_seeded(trials, |seed| {
        let trial = run_paper_trial(seed, Some(&attack), crate::common::conformance_tweak);
        crate::common::record_conformance(&trial.result);
        crate::runner::record_sched(&trial.result.sched);
        let records = extract_records(&trial.result.trace);
        let data = app_data_records(&records, h2priv_netsim::Dir::RightToLeft);
        let bursts = segment_bursts(&data, BURST_GAP);
        let objects = objects_of_interest(&trial.iw);
        let singles = identify_bursts(&map, &bursts);
        let pairs = identify_bursts_with_pairs(&map, &bursts);
        let single_hits = objects
            .iter()
            .filter(|&&o| singles.iter().any(|i| i.object == o))
            .count() as u64;
        let pair_hits = objects
            .iter()
            .filter(|&&o| pairs.iter().any(|i| i.object == o))
            .count() as u64;
        (single_hits, pair_hits, trial.result.events)
    });
    crate::runner::record_events(per_seed.iter().map(|&(_, _, ev)| ev).sum());
    let single_hits: u64 = per_seed.iter().map(|&(s, _, _)| s).sum();
    let pair_hits: u64 = per_seed.iter().map(|&(_, p, _)| p).sum();
    vec![
        AblationRow {
            name: "pairwise-decomposition".into(),
            condition: "single-size matching".into(),
            metric: single_hits as f64 * 100.0 / total.max(1) as f64,
            metric_name: "objects identified % (jitter-only attack)".into(),
        },
        AblationRow {
            name: "pairwise-decomposition".into(),
            condition: "with two-object sums".into(),
            metric: pair_hits as f64 * 100.0 / total.max(1) as f64,
            metric_name: "objects identified % (jitter-only attack)".into(),
        },
    ]
}

/// Runs every ablation.
pub fn run(trials: u64) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    rows.extend(uniform_delay(trials));
    rows.extend(scheduler_policy(trials));
    rows.extend(reissue_behaviour(trials));
    rows.extend(order_randomization_defense(trials));
    rows.extend(padding_defense(trials));
    rows.extend(pairwise_decomposition(trials));
    rows
}

/// Renders the ablation rows.
pub fn render(rows: &[AblationRow]) -> String {
    let mut out = String::new();
    out.push_str("ABLATIONS\n");
    let mut last = String::new();
    for r in rows {
        if r.name != last {
            out.push_str(&format!("-- {}\n", r.name));
            last = r.name.clone();
        }
        out.push_str(&format!(
            "   {:<42} {:>7.1}  ({})\n",
            r.condition, r.metric, r.metric_name
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_groups_by_name() {
        let rows = vec![
            AblationRow {
                name: "a".into(),
                condition: "x".into(),
                metric: 1.0,
                metric_name: "m".into(),
            },
            AblationRow {
                name: "a".into(),
                condition: "y".into(),
                metric: 2.0,
                metric_name: "m".into(),
            },
        ];
        let s = render(&rows);
        assert_eq!(s.matches("-- a").count(), 1);
    }
}
