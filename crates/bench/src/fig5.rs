//! Figure 5 — "Effect of bandwidth limitation on multiplexing of objects".
//!
//! Paper setup: 50 ms jitter plus a symmetric bandwidth cap at the gateway,
//! swept over {1000, 800, 500, 100, 1} Mbps, 100 downloads each. Reported
//! shape: the number of retransmissions falls as the cap tightens (solid
//! line); the success fraction first rises sharply (peaking at 800 Mbps)
//! and then declines at lower bandwidths; below 1 Mbps the connection
//! breaks.
//!
//! Topology note (see `EXPERIMENTS.md`): the crossover sits at the path's
//! native bottleneck. The paper's testbed bottlenecked near its 1 Gbps lab
//! link, so the peak appeared at 800 Mbps; our calibrated path bottlenecks
//! at the 16 Mbps WAN hop, so caps above that are no-ops and the
//! interesting region is below. We sweep additional sub-bottleneck points
//! to expose the same rise-then-fall shape.

use h2priv_core::AttackConfig;
use h2priv_netsim::{mbps, SimDuration};

use crate::common::{calibrated_map, run_batch};
use crate::json::{object, Json, ToJson};

/// One point of the regenerated Figure 5.
#[derive(Debug, Clone)]
pub struct Fig5Point {
    /// Gateway bandwidth cap, Mbps.
    pub bandwidth_mbps: u64,
    /// Total retransmissions across all trials (the solid line).
    pub retransmissions: u64,
    /// Trials where the HTML was recovered un-multiplexed, percent (the
    /// dashed line).
    pub success_pct: f64,
    /// Trials whose connection broke, percent.
    pub broken_pct: f64,
}

impl ToJson for Fig5Point {
    fn to_json(&self) -> Json {
        object([
            ("bandwidth_mbps", self.bandwidth_mbps.to_json()),
            ("retransmissions", self.retransmissions.to_json()),
            ("success_pct", self.success_pct.to_json()),
            ("broken_pct", self.broken_pct.to_json()),
        ])
    }
}

/// The paper's sweep, extended with sub-bottleneck points where our
/// calibrated path actually reacts.
pub const BANDWIDTHS_MBPS: [u64; 8] = [1000, 800, 500, 100, 14, 8, 4, 1];

/// Regenerates Figure 5 with `trials` downloads per point.
pub fn run(trials: u64) -> Vec<Fig5Point> {
    let map = calibrated_map();
    BANDWIDTHS_MBPS
        .iter()
        .map(|&bw| {
            let attack = AttackConfig::jitter_and_throttle(SimDuration::from_millis(50), mbps(bw));
            let batch = run_batch(trials, Some(&attack), &map, |_| {});
            Fig5Point {
                bandwidth_mbps: bw,
                retransmissions: batch.total_retransmissions(),
                success_pct: batch.html_non_mux_pct(),
                broken_pct: batch.broken_pct(),
            }
        })
        .collect()
}

/// Renders the figure's data series as a table plus an ASCII plot.
pub fn render(points: &[Fig5Point]) -> String {
    let mut out = String::new();
    out.push_str("FIGURE 5: Effect of bandwidth limitation (50 ms jitter active)\n");
    out.push_str("| bandwidth (Mbps) | retransmissions | success (%) | broken (%) |\n");
    out.push_str("|-----------------:|----------------:|------------:|-----------:|\n");
    for p in points {
        out.push_str(&format!(
            "| {:>16} | {:>15} | {:>11.0} | {:>10.0} |\n",
            p.bandwidth_mbps, p.retransmissions, p.success_pct, p.broken_pct
        ));
    }
    let max_rexmit = points.iter().map(|p| p.retransmissions).max().unwrap_or(1);
    out.push_str("\nretransmissions (#) and success (%) by bandwidth:\n");
    for p in points {
        let bar_r = (p.retransmissions * 30 / max_rexmit.max(1)) as usize;
        let bar_s = (p.success_pct * 0.3) as usize;
        out.push_str(&format!(
            "{:>5} Mbps  rexmit {:<31} success {:<31}\n",
            p.bandwidth_mbps,
            "#".repeat(bar_r.max(if p.retransmissions > 0 { 1 } else { 0 })),
            "*".repeat(bar_s),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_scales_bars() {
        let points = vec![
            Fig5Point {
                bandwidth_mbps: 1000,
                retransmissions: 300,
                success_pct: 40.0,
                broken_pct: 0.0,
            },
            Fig5Point {
                bandwidth_mbps: 1,
                retransmissions: 30,
                success_pct: 5.0,
                broken_pct: 20.0,
            },
        ];
        let s = render(&points);
        assert!(s.contains("1000"));
        assert!(s.contains('#'));
        assert!(s.contains('*'));
    }
}
