//! Table I — "Effect of jitter on HTTP/2 multiplexing".
//!
//! Paper values (100 downloads per row, object of interest = the 9 500 B
//! result HTML, the session's 6th GET):
//!
//! | jitter (ms) | not multiplexed (%) | retransmission increase (%) |
//! |------------:|--------------------:|----------------------------:|
//! | 0 (baseline)| 32                  | 0 (baseline)                |
//! | 25          | 46                  | ≈ 33                        |
//! | 50          | 54                  | ≈ 130                       |
//! | 100         | 54                  | ≈ 194                       |
//!
//! Shape targets: the non-multiplexed fraction rises from ≈ 32 % and
//! saturates (the extra request retransmissions re-introduce traffic around
//! the object), while retransmissions grow steeply with the per-request
//! delay.

use h2priv_core::AttackConfig;
use h2priv_netsim::SimDuration;

use crate::common::{calibrated_map, run_batch};
use crate::json::{object, Json, ToJson};

/// One row of the regenerated Table I.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Per-request jitter increment, ms.
    pub jitter_ms: u64,
    /// Trials where the HTML was not multiplexed, percent.
    pub non_multiplexed_pct: f64,
    /// Retransmission increase over the 0-jitter baseline, percent.
    pub retransmission_increase_pct: f64,
    /// Trials whose connection broke, percent.
    pub broken_pct: f64,
}

impl ToJson for Table1Row {
    fn to_json(&self) -> Json {
        object([
            ("jitter_ms", self.jitter_ms.to_json()),
            ("non_multiplexed_pct", self.non_multiplexed_pct.to_json()),
            (
                "retransmission_increase_pct",
                self.retransmission_increase_pct.to_json(),
            ),
            ("broken_pct", self.broken_pct.to_json()),
        ])
    }
}

/// The jitter values of Table I.
pub const JITTERS_MS: [u64; 4] = [0, 25, 50, 100];

/// Regenerates Table I with `trials` downloads per row.
pub fn run(trials: u64) -> Vec<Table1Row> {
    let map = calibrated_map();
    let mut rows = Vec::new();
    let mut baseline_rexmit = 0u64;
    for &jitter_ms in &JITTERS_MS {
        let attack = if jitter_ms == 0 {
            None
        } else {
            Some(AttackConfig::jitter_only(SimDuration::from_millis(
                jitter_ms,
            )))
        };
        let batch = run_batch(trials, attack.as_ref(), &map, |_| {});
        let rexmit = batch.total_retransmissions();
        if jitter_ms == 0 {
            baseline_rexmit = rexmit.max(1);
        }
        rows.push(Table1Row {
            jitter_ms,
            non_multiplexed_pct: batch.html_non_mux_pct(),
            retransmission_increase_pct: (rexmit as f64 / baseline_rexmit as f64 - 1.0) * 100.0,
            broken_pct: batch.broken_pct(),
        });
    }
    rows
}

/// Renders the table in the paper's layout.
pub fn render(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str("TABLE I: Effect of jitter on HTTP/2 multiplexing\n");
    out.push_str(
        "| jitter/request (ms) | HTML not multiplexed (%) | retransmission increase (%) |\n",
    );
    out.push_str(
        "|--------------------:|-------------------------:|----------------------------:|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {:>19} | {:>24.0} | {:>27.0} |\n",
            if r.jitter_ms == 0 {
                "0 (baseline)".to_owned()
            } else {
                r.jitter_ms.to_string()
            },
            r.non_multiplexed_pct,
            r.retransmission_increase_pct,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_has_all_rows() {
        let rows = vec![
            Table1Row {
                jitter_ms: 0,
                non_multiplexed_pct: 32.0,
                retransmission_increase_pct: 0.0,
                broken_pct: 0.0,
            },
            Table1Row {
                jitter_ms: 50,
                non_multiplexed_pct: 54.0,
                retransmission_increase_pct: 130.0,
                broken_pct: 0.0,
            },
        ];
        let s = render(&rows);
        assert!(s.contains("0 (baseline)"));
        assert!(s.contains("54"));
        assert!(s.contains("130"));
    }
}
